"""Access policies, grid certificates, and the Axis-vs-GT3 trade-off."""

import pytest

from repro.data.generators import galleon
from repro.errors import SoapFault
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService
from repro.services.security import (
    AccessPolicy,
    GT3_INSTANCE_FACTOR,
    GridCertificate,
    gt3_handshake_seconds,
)


class TestAccessPolicy:
    def test_open_permits_anyone(self):
        AccessPolicy.open().authorize("random-user")

    def test_allow_list(self):
        policy = AccessPolicy.allow("ian", "nick")
        policy.authorize("ian")
        with pytest.raises(SoapFault) as info:
            policy.authorize("mallory")
        assert "not permitted" in str(info.value)
        assert policy.denials == 1

    def test_permit_new_user(self):
        """The paper's admin action: modify permissions for a new user."""
        policy = AccessPolicy.allow("ian")
        with pytest.raises(SoapFault):
            policy.authorize("dave")
        policy.permit("dave")
        policy.authorize("dave")

    def test_revoke(self):
        policy = AccessPolicy.allow("ian")
        policy.revoke("ian")
        with pytest.raises(SoapFault):
            policy.authorize("ian")

    def test_certificate_required(self):
        policy = AccessPolicy.certified("WeSC-CA", "s3cret")
        with pytest.raises(SoapFault):
            policy.authorize("ian")     # no certificate

    def test_valid_certificate_accepted(self):
        policy = AccessPolicy.certified("WeSC-CA", "s3cret")
        cert = GridCertificate.issue("ian", "WeSC-CA", "s3cret")
        policy.authorize("ian", cert)

    def test_forged_certificate_rejected(self):
        policy = AccessPolicy.certified("WeSC-CA", "s3cret")
        forged = GridCertificate.issue("ian", "WeSC-CA", "wrong-secret")
        with pytest.raises(SoapFault):
            policy.authorize("ian", forged)

    def test_stolen_certificate_rejected(self):
        """A certificate for someone else does not authorise you."""
        policy = AccessPolicy.certified("WeSC-CA", "s3cret")
        someone_elses = GridCertificate.issue("nick", "WeSC-CA", "s3cret")
        with pytest.raises(SoapFault):
            policy.authorize("ian", someone_elses)

    def test_certified_plus_allowlist(self):
        policy = AccessPolicy.certified("WeSC-CA", "s3cret",
                                        users={"ian"})
        cert = GridCertificate.issue("nick", "WeSC-CA", "s3cret")
        with pytest.raises(SoapFault):
            policy.authorize("nick", cert)   # certified but not listed


class TestDataServiceEnforcement:
    def test_denied_subscription_faults(self, small_testbed):
        tb = small_testbed
        tb.publish_model("locked", galleon().normalized())
        tb.data_service.policy = AccessPolicy.allow("ian")
        with pytest.raises(SoapFault):
            tb.data_service.subscribe("locked", "mallory", host="athlon")
        # and nothing was registered
        assert "mallory" not in tb.data_service.session(
            "locked").subscribers

    def test_permitting_unblocks(self, small_testbed):
        tb = small_testbed
        tb.publish_model("locked2", galleon().normalized())
        tb.data_service.policy = AccessPolicy.allow("ian")
        tb.data_service.policy.permit("dave")
        tree, _ = tb.data_service.subscribe("locked2", "dave",
                                            host="athlon")
        assert tree.total_polygons() > 0


class TestGt3Container:
    def test_gt3_instance_creation_slower(self, small_testbed):
        tb = small_testbed
        axis = ServiceContainer("centrino", tb.network, http_port=9601)
        gt3 = ServiceContainer("centrino", tb.network, http_port=9602,
                               flavor="gt3")
        t0 = tb.clock.now
        axis.create_instance("render")
        axis_cost = tb.clock.now - t0
        t0 = tb.clock.now
        gt3.create_instance("render")
        gt3_cost = tb.clock.now - t0
        assert gt3_cost == pytest.approx(axis_cost * GT3_INSTANCE_FACTOR)

    def test_unknown_flavor(self, small_testbed):
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            ServiceContainer("centrino", small_testbed.network,
                             http_port=9603, flavor="websphere")

    def test_gt3_subscription_pays_gsi_handshake(self, small_testbed):
        tb = small_testbed
        gt3 = ServiceContainer("athlon", tb.network, http_port=9604,
                               flavor="gt3")
        ds = DataService("gt3-data", gt3)
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        tree = SceneTree("s")
        tree.add(MeshNode(galleon().normalized()))
        ds.create_session("s", tree, charge_time=False)

        t0 = tb.clock.now
        ds.subscribe("s", "ian", host="centrino", introspective=False)
        gt3_elapsed = tb.clock.now - t0

        t0 = tb.clock.now
        tb.publish_model("plain", galleon().normalized())
        tb.clock.advance_to(t0)  # create_session is uncharged; realign
        t0 = tb.clock.now
        tb.data_service.subscribe("plain", "ian", host="centrino",
                                  introspective=False)
        axis_elapsed = tb.clock.now - t0
        assert gt3_elapsed > axis_elapsed + 0.5 * gt3_handshake_seconds(
            gt3.cpu_factor)

    def test_handshake_scales_with_cpu(self):
        assert gt3_handshake_seconds(2.0) == pytest.approx(
            gt3_handshake_seconds(1.0) / 2)
        with pytest.raises(ValueError):
            gt3_handshake_seconds(0)
