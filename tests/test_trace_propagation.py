"""Cross-service trace propagation: one id stitches the whole journey.

The trace context rides two transports — a 16-byte ``FLAG_TRACE`` prefix
inside the CRC-protected payload of every binary frame, and a
``rave:TraceContext`` SOAP header for the control plane — and every hop
records its spans with a ``trace`` attribute.  These tests pin the wire
round-trips (including the loud failure modes: truncated prefixes,
half-written headers), the deterministic id derivation, and the two
end-to-end stories: a thin-client request whose single trace id spans
client → grid admission → render service, and a farm job whose per-frame
leases derive content-addressed span ids from the submitting trace.
"""

import pytest

from repro import obs
from repro.core.grid import TenantQuota
from repro.data.generators import galleon, uv_sphere
from repro.errors import MarshallingError
from repro.farm import RenderJob
from repro.obs.tracing import TraceContext, new_trace_context
from repro.obs.vocab import EVENT_ADMIT, EVENT_FARM_PREFIX
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.protocol import (
    FLAG_TRACE,
    FarmLease,
    FarmResult,
    frame_farm_lease,
    frame_farm_result,
    frame_message,
    frame_reject,
    frame_telemetry,
    unframe_farm_lease,
    unframe_farm_result,
    unframe_message,
    unframe_reject,
)
from repro.services.soap import soap_decode, soap_encode
from repro.testbed import build_testbed

CTX = TraceContext(trace_id="00c0ffee00c0ffee", span_id="0badcafe0badcafe")


def scene(label):
    tree = SceneTree(name=f"scene-{label}")
    tree.add(MeshNode(uv_sphere(nu=24, nv=24)))
    return tree


# -- the binary frame header --------------------------------------------------------


class TestFrameTrace:
    def test_round_trip_preserves_ids_and_body(self):
        data = frame_message(b"payload", trace=CTX)
        header, body = unframe_message(data)
        assert header.flags & FLAG_TRACE
        assert header.trace == CTX
        assert body == b"payload"

    def test_untraced_frames_have_no_context(self):
        header, body = unframe_message(frame_message(b"payload"))
        assert not header.flags & FLAG_TRACE
        assert header.trace is None
        assert body == b"payload"

    def test_prefix_is_inside_the_checksum(self):
        # flip one bit of the trace prefix: the CRC must catch it, the
        # reader never sees a half-corrupt context
        data = bytearray(frame_message(b"payload", trace=CTX))
        data[-len(b"payload") - 1] ^= 0x01
        with pytest.raises(MarshallingError, match="checksum"):
            unframe_message(bytes(data))

    def test_trace_flag_without_a_full_prefix_fails_loudly(self):
        data = frame_message(b"short", flags=FLAG_TRACE)
        with pytest.raises(MarshallingError, match="trace"):
            unframe_message(data)

    def test_telemetry_and_reject_frames_carry_the_context(self):
        _, body = unframe_message(frame_telemetry({"service": "rs-demo"},
                                                  trace=CTX))
        assert b"rs-demo" in body
        header, _ = unframe_message(frame_telemetry({"s": 1}, trace=CTX))
        assert header.trace == CTX

        info = unframe_reject(frame_reject("grid full", retry_after=3.0,
                                           trace=CTX))
        assert info.trace == CTX
        assert unframe_reject(frame_reject("grid full")).trace is None

    def test_farm_frames_carry_the_context(self):
        lease = FarmLease(job_id="anim", frame=4, session_id="scene",
                          attempt=2, deadline=9.5, trace=CTX)
        assert unframe_farm_lease(frame_farm_lease(lease)).trace == CTX
        result = FarmResult(job_id="anim", frame=4, worker="rs-onyx",
                            render_seconds=0.2, nbytes=1024, trace=CTX)
        assert unframe_farm_result(frame_farm_result(result)).trace == CTX


# -- the SOAP header twin -----------------------------------------------------------


class TestSoapTrace:
    def test_round_trip_through_the_envelope_header(self):
        data = soap_encode("RequestSession", {"tenant": "acme"}, trace=CTX)
        envelope = soap_decode(data)
        assert envelope.trace == CTX
        assert envelope.body["tenant"] == "acme"

    def test_untraced_envelopes_have_no_context(self):
        assert soap_decode(soap_encode("Ping", {})).trace is None

    def test_half_written_header_fails_loudly(self):
        xml = soap_encode("Ping", {}, trace=CTX).decode()
        broken = xml.replace(f'spanId="{CTX.span_id}"', "")
        with pytest.raises(MarshallingError, match="TraceContext"):
            soap_decode(broken.encode())


# -- deterministic id derivation ----------------------------------------------------


class TestTraceContext:
    def test_child_keeps_the_trace_and_replaces_the_span(self):
        import random

        child = CTX.child(random.Random(7))
        assert child.trace_id == CTX.trace_id
        assert child.span_id != CTX.span_id

    def test_same_seed_mints_identical_ids(self):
        import random

        first = new_trace_context(random.Random("client-1"))
        second = new_trace_context(random.Random("client-1"))
        assert first == second
        assert first.child(random.Random(3)) == second.child(random.Random(3))


# -- end to end: one request, one id, three services --------------------------------


class TestSessionJourney:
    def test_single_trace_spans_client_grid_and_render_service(self):
        with obs.observed() as bundle:
            tb = build_testbed()
            grid = tb.session_grid(member_hosts=("centrino",),
                                   recruit=False)
            grid.register_tenant(TenantQuota(tenant="acme"))
            client = tb.thin_client("pda-user")
            client.open_grid_session(grid, "acme", "s0", scene("s0"))
            client.request_frame(160, 120)

            trace_ids = bundle.tracer.trace_ids()
            assert len(trace_ids) == 1
            (tid,) = trace_ids
            spans = bundle.tracer.trace(tid)
            names = [s.name for s in spans]
            assert "request-session" in names
            assert "admission" in names
            assert "render" in names
            # ≥ 3 distinct services touched the one trace
            services = {s.attrs["service"] for s in spans}
            assert {"pda-user", grid.name, "rs-centrino"} <= services

            # the flight recorder cross-references the same id
            admits = bundle.recorder.events(EVENT_ADMIT)
            assert [e.trace for e in admits] == [tid]
            dump = bundle.recorder.dump("journey", time=tb.network.sim.now)
        assert any(e.get("trace") == tid for e in dump["events"]
                   if e["kind"] == EVENT_ADMIT)

    def test_each_request_journey_is_a_fresh_trace(self):
        with obs.observed() as bundle:
            tb = build_testbed()
            grid = tb.session_grid(member_hosts=("centrino",),
                                   recruit=False)
            grid.register_tenant(TenantQuota(tenant="acme"))
            client = tb.thin_client("pda-user")
            client.open_grid_session(grid, "acme", "s0", scene("s0"))
            first = client.trace.trace_id
            grid.release_session("s0")
            client.open_grid_session(grid, "acme", "s1", scene("s1"))
            assert client.trace.trace_id != first
            assert len(bundle.tracer.trace_ids()) == 2


# -- end to end: a farm job's frames share the submitting trace ---------------------

JOB = "anim-001"
SCENE = "scene"
JOB_TRACE = "feedbeeffeedbeef"


def finished_farm():
    tb = build_testbed(farm=True)
    tb.publish_model(SCENE, galleon(2000))
    queue = tb.farm_queue
    queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                           start_frame=1, end_frame=3, trace_id=JOB_TRACE))
    farm = tb.render_farm(worker_hosts=("onyx",))
    farm.start()
    sim = tb.network.sim
    deadline = sim.now + 120.0
    while sim.now < deadline and not queue.job(JOB).finished:
        sim.run_until(sim.now + 0.25)
    assert queue.job(JOB).finished
    return tb, queue


class TestFarmJourney:
    def test_every_frame_renders_under_the_job_trace(self):
        with obs.observed() as bundle:
            tb, queue = finished_farm()
            spans = bundle.tracer.trace(JOB_TRACE)
            renders = [s for s in spans if s.name == "farm-render"]
            assert sorted(s.attrs["frame"] for s in renders) == [1, 2, 3]
            assert {s.attrs["service"] for s in renders} == {"rs-onyx"}

            # lease and completion events carry the id too
            for kind in (EVENT_FARM_PREFIX + "lease",
                         EVENT_FARM_PREFIX + "complete"):
                events = bundle.recorder.events(kind)
                assert events and all(e.trace == JOB_TRACE for e in events)

        # the per-frame render latency lands in the queue's telemetry,
        # where the monitoring plane scrapes it
        snap = queue.telemetry.registry.snapshot()
        assert snap["rave_farm_render_seconds"]["series"][0]["count"] == 3

    def test_lease_span_ids_are_content_addressed(self):
        # two independent runs derive identical span ids for the same
        # (job, frame, attempt) — no RNG in the queue service
        def first_lease_span():
            tb = build_testbed(farm=True)
            tb.publish_model(SCENE, galleon(2000))
            tb.farm_queue.submit(RenderJob(
                job_id=JOB, session_id=SCENE, start_frame=1, end_frame=1,
                trace_id=JOB_TRACE))
            lease = unframe_farm_lease(tb.farm_queue.lease("w0"))
            assert lease.trace is not None
            assert lease.trace.trace_id == JOB_TRACE
            return lease.trace.span_id

        assert first_lease_span() == first_lease_span()

    def test_untraced_jobs_stay_untraced(self):
        tb = build_testbed(farm=True)
        tb.publish_model(SCENE, galleon(2000))
        tb.farm_queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                                       start_frame=1, end_frame=1))
        lease = unframe_farm_lease(tb.farm_queue.lease("w0"))
        assert lease.trace is None
