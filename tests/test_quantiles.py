"""Histogram quantile estimation and canonical bucket-bound labels.

The tail-latency plane stands on two pieces of arithmetic: the
``histogram_quantile`` interpolation in ``obs/quantiles.py`` and the
canonical ``%g``-style ``le`` formatting shared by the JSON snapshot and
the Prometheus exposition.  Accuracy here is bounded by construction —
an estimate can never be off by more than the width of the bucket the
rank lands in — and every test asserts exactly that bound against known
distributions (uniform, bimodal, degenerate single-bucket), including
the ``+Inf`` clamp edge case.
"""

import pytest

from repro.obs.export import prometheus_text
from repro.obs.metrics import DEFAULT_BUCKETS, Histogram, MetricsRegistry
from repro.obs.quantiles import (
    bucket_quantiles,
    buckets_from_snapshot,
    estimate_quantile,
    format_le,
    merge_cumulative,
    parse_le,
    quantile_suffix,
)

INF = float("inf")


# -- canonical le labels ------------------------------------------------------------


class TestFormatLe:
    def test_no_repr_drift_on_default_buckets(self):
        # the motivating bug: repr(0.001 * 2.5) == '0.0025000000000000001'
        assert format_le(0.001 * 2.5) == "0.0025"
        for bound in DEFAULT_BUCKETS:
            text = format_le(bound)
            assert "00000000" not in text and "99999999" not in text

    def test_special_values(self):
        assert format_le(INF) == "+Inf"
        assert format_le(-INF) == "-Inf"
        assert format_le(float("nan")) == "NaN"

    def test_round_trip_with_parse_le(self):
        for bound in (*DEFAULT_BUCKETS, 1e-9, 3.25, 12345.678):
            assert parse_le(format_le(bound)) == bound

    def test_parse_accepts_legacy_repr_keys(self):
        assert parse_le("0.0025000000000000001") \
            == pytest.approx(0.0025, abs=1e-12)

    def test_exposition_round_trip(self):
        """Every ``le`` in the Prometheus text re-parses to its bound."""
        registry = MetricsRegistry()
        registry.histogram("rave_fx_wait_seconds",
                           "fixture").observe(0.002)
        text = prometheus_text(registry)
        les = [line.split('le="')[1].split('"')[0]
               for line in text.splitlines() if 'le="' in line]
        assert les, "exposition produced no bucket lines"
        assert [parse_le(le) for le in les] == sorted(DEFAULT_BUCKETS)
        assert '0.0025"' in text and "0.0025000000000000001" not in text

    def test_snapshot_bucket_keys_are_canonical(self):
        registry = MetricsRegistry()
        registry.histogram("rave_fx_wait_seconds",
                           "fixture").observe(0.002)
        entry = registry.snapshot()["rave_fx_wait_seconds"]["series"][0]
        assert "0.0025" in entry["buckets"]
        assert "+Inf" in entry["buckets"]
        pairs = buckets_from_snapshot(entry)
        assert pairs == sorted(pairs)
        assert pairs[-1][0] == INF


class TestQuantileSuffix:
    def test_standard_quantiles(self):
        assert quantile_suffix(0.5) == "p50"
        assert quantile_suffix(0.95) == "p95"
        assert quantile_suffix(0.99) == "p99"

    def test_fractional_quantile_stays_a_valid_metric_suffix(self):
        assert quantile_suffix(0.999) == "p99_9"


# -- estimation accuracy ------------------------------------------------------------


def uniform_histogram(n=1000, width=10.0, bucket_step=1.0):
    """``n`` observations evenly spread over ``[0, width)``."""
    buckets = tuple(bucket_step * i
                    for i in range(1, int(width / bucket_step) + 1))
    hist = Histogram(buckets=buckets)
    for i in range(n):
        hist.observe(width * i / n)
    return hist


class TestEstimateQuantile:
    def test_uniform_within_one_bucket_width(self):
        hist = uniform_histogram(n=1000, width=10.0, bucket_step=1.0)
        for q in (0.5, 0.95, 0.99):
            true_value = 10.0 * q
            assert estimate_quantile(hist.cumulative_buckets(), q) \
                == pytest.approx(true_value, abs=1.0)

    def test_bimodal_within_one_bucket_width(self):
        # half the observations fast (~0.05s), half slow (~4.0s): the
        # p95 must land in the slow mode's bucket, nowhere near the mean
        hist = Histogram(buckets=DEFAULT_BUCKETS)
        for _ in range(500):
            hist.observe(0.05)
        for _ in range(500):
            hist.observe(4.0)
        pairs = hist.cumulative_buckets()
        p95 = estimate_quantile(pairs, 0.95)
        # true p95 is 4.0; its bucket is (2.5, 5.0], width 2.5
        assert p95 == pytest.approx(4.0, abs=2.5)
        assert p95 > 2.5
        assert estimate_quantile(pairs, 0.5) <= 0.05 + 0.025

    def test_all_in_one_bucket(self):
        hist = Histogram(buckets=DEFAULT_BUCKETS)
        for _ in range(100):
            hist.observe(0.3)            # every observation in (0.25, 0.5]
        pairs = hist.cumulative_buckets()
        for q in (0.5, 0.95, 0.99):
            estimate = estimate_quantile(pairs, q)
            assert 0.25 < estimate <= 0.5
            assert estimate == pytest.approx(0.3, abs=0.25)

    def test_inf_bucket_clamps_to_largest_finite_bound(self):
        hist = Histogram(buckets=(0.1, 1.0))
        for _ in range(100):
            hist.observe(50.0)           # beyond every finite bound
        assert estimate_quantile(hist.cumulative_buckets(), 0.95) == 1.0
        assert hist.quantile(0.99) == 1.0

    def test_empty_and_invalid_inputs(self):
        assert estimate_quantile([], 0.95) == 0.0
        assert estimate_quantile([(1.0, 0), (INF, 0)], 0.95) == 0.0
        with pytest.raises(ValueError):
            estimate_quantile([(1.0, 1)], 0.0)
        with pytest.raises(ValueError):
            estimate_quantile([(1.0, 1)], 1.0)

    def test_bucket_quantiles_names_match_flatten_suffixes(self):
        hist = uniform_histogram()
        named = bucket_quantiles(hist.cumulative_buckets())
        assert sorted(named) == ["p50", "p95", "p99"]
        assert named["p95"] == hist.quantile(0.95)


class TestMergeCumulative:
    def test_merged_distribution_beats_averaged_percentiles(self):
        """Federation must merge buckets, not average estimates."""
        fast = Histogram(buckets=DEFAULT_BUCKETS)
        slow = Histogram(buckets=DEFAULT_BUCKETS)
        for _ in range(99):
            fast.observe(0.01)
        fast.observe(4.0)
        for _ in range(100):
            slow.observe(4.0)
        merged = merge_cumulative([fast.cumulative_buckets(),
                                   slow.cumulative_buckets()])
        federated_p95 = estimate_quantile(merged, 0.95)
        averaged_p95 = (fast.quantile(0.95) + slow.quantile(0.95)) / 2
        # true merged p95 is 4.0 (the slowest 5% of all 200 observations
        # all waited ~4 s); the average of per-service estimates halves it
        assert federated_p95 == pytest.approx(4.0, abs=2.5)
        assert abs(averaged_p95 - federated_p95) > 1.0

    def test_merge_sums_counts_per_bound(self):
        a = [(1.0, 2), (INF, 3)]
        b = [(1.0, 5), (INF, 5)]
        assert merge_cumulative([a, b]) == [(1.0, 7), (INF, 8)]

    def test_merge_handles_disjoint_layouts_as_step_functions(self):
        a = [(1.0, 4), (INF, 4)]
        b = [(2.0, 6), (INF, 6)]
        merged = merge_cumulative([a, b])
        # at le=1.0 only a has resolved counts; at 2.0 both have
        assert merged == [(1.0, 4), (2.0, 10), (INF, 10)]

    def test_merge_of_nothing_is_empty(self):
        assert merge_cumulative([]) == []
        assert merge_cumulative([[], []]) == []
