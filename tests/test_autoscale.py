"""Alert-driven recruitment autoscaling, end to end.

Coverage for the observe→scale loop (``core/autoscale.py``) and the
plumbing it rides on:

- the grid-wide aggregate rules and the monitor's pooled view they
  evaluate (``rave_grid_*`` series under the ``_grid`` pseudo-service);
- the autoscaler's decision procedure driven by synthetic alerts:
  grow on grid-wide overload, drain-and-release on grid-wide underload,
  cooldown/hysteresis, the min/max pool bounds, and the absorb guard;
- the recruiter's live service directory (a service registered after
  the recruiter was built is still recruitable) and the recruitment
  edge cases: empty UDDI scans, everybody excluded, a partition between
  the data host and a candidate;
- the acceptance scenario: sustained monitor alerts — not manual calls —
  recruit through UDDI until the overload clears, then drain-and-release
  idle members once underload sustains, with the released services
  recruitable again, every decision on the simulated clock, and no
  grow↔release flapping inside the cooldown window.
"""

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.core.autoscale import RecruitmentAutoscaler, ScaleEvent
from repro.core.recruitment import (
    RAVE_BUSINESS,
    RENDER_TMODEL,
    Recruiter,
)
from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.errors import ServiceError
from repro.network.faults import FaultInjector
from repro.obs.dashboard import render_dashboard
from repro.obs.rules import (
    GRID_OVERLOAD_KIND,
    GRID_UNDERLOAD_KIND,
    Alert,
    default_rules,
    grid_rules,
)
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.monitor import GRID_SERVICE
from repro.services.uddi import UddiClient, UddiRegistry
from repro.services.wsdl import RENDER_SERVICE_WSDL
from repro.testbed import build_testbed

MONITOR_HOST = "registry-host"


def monitored_testbed(**kwargs):
    return build_testbed(monitor_host=MONITOR_HOST, autoscale=True,
                         **kwargs)


def pump(tb, seconds: float, step: float = 1.0) -> None:
    """Advance the simulation so the daemon ticks fire."""
    deadline = tb.clock.now + seconds
    while tb.clock.now < deadline:
        tb.network.sim.run_until(min(deadline, tb.clock.now + step))


def small_session(tb, hosts=("centrino", "athlon"), polygons=30_000,
                  session_id="scaled", target_fps=600):
    """A session on a subset of the pool, scene sized to nearly fill it."""
    tree = SceneTree(session_id)
    tree.add(MeshNode(skeleton(polygons).normalized(), name="skel"))
    tb.publish_tree(session_id, tree)
    cs = CollaborativeSession(tb.data_service, session_id,
                              target_fps=target_fps,
                              recruiter=tb.recruiter())
    for host in hosts:
        cs.connect(tb.render_service(host))
    cs.place_dataset()
    return cs


def galert(kind, service=GRID_SERVICE, value=2.0, now=0.0, rule=None):
    """A synthetic sustained alert, as the rule engine would emit it."""
    return Alert(rule=rule or kind, kind=kind, service=service,
                 since=now - 5.0, last_time=now, value=value,
                 severity="critical")


# -- grid-wide rules and aggregation ------------------------------------------------


class TestGridRules:
    def test_default_rules_include_the_grid_pair(self):
        kinds = {r.kind for r in default_rules()}
        assert GRID_OVERLOAD_KIND in kinds
        assert GRID_UNDERLOAD_KIND in kinds

    def test_grid_rules_watch_the_aggregate_series(self):
        by_kind = {r.kind: r for r in grid_rules()}
        assert by_kind[GRID_OVERLOAD_KIND].metric == "rave_grid_mean_fps"
        assert by_kind[GRID_UNDERLOAD_KIND].metric \
            == "rave_grid_mean_utilisation"

    def test_grid_values_aggregate_scraped_render_payloads(self):
        tb = monitored_testbed()
        tb.render_service("onyx").reported_fps = 12.0
        tb.render_service("centrino").reported_fps = 4.0
        pump(tb, 3.0)
        values = tb.monitor.grid_values()
        assert values["rave_grid_render_services"] == 5.0
        # services that never rendered export no fps gauge and must not
        # drag the mean down
        assert values["rave_grid_mean_fps"] == pytest.approx(8.0)
        assert values["rave_grid_min_fps"] == 4.0
        assert values["rave_grid_overloaded_fraction"] == pytest.approx(0.5)
        assert 0.0 <= values["rave_grid_mean_utilisation"] <= 1.0

    def test_no_render_payloads_mean_no_grid_series(self):
        tb = build_testbed(monitor_host=MONITOR_HOST)
        assert tb.monitor.grid_values() == {}
        assert tb.monitor.observe_grid(0.0) == {}

    def test_sustained_grid_overload_fires_under_the_pseudo_service(self):
        tb = monitored_testbed()
        for host in tb.render_services:
            tb.render_service(host).reported_fps = 2.0
        pump(tb, 7.0)
        firing = {(a.service, a.kind) for a in tb.monitor.firing_alerts()}
        assert (GRID_SERVICE, GRID_OVERLOAD_KIND) in firing

    def test_grid_alerts_do_not_drive_the_migrator(self):
        # grid-wide kinds are the autoscaler's signal; the per-service
        # migration policy must not mistake them for member overload
        tb = monitored_testbed()
        cs = small_session(tb)
        assert cs.rebalance(alerts=[galert(GRID_OVERLOAD_KIND),
                                    galert(GRID_UNDERLOAD_KIND)]) == []

    def test_snapshot_carries_the_grid_section(self):
        tb = monitored_testbed()
        tb.render_service("onyx").reported_fps = 20.0
        pump(tb, 2.0)
        snap = tb.monitor.snapshot()
        assert "rave_grid_mean_fps" in snap["grid"]
        json.dumps(snap)                       # stays serialisable


# -- construction and wiring --------------------------------------------------------


class TestAutoscalerWiring:
    def test_needs_a_monitor(self):
        tb = monitored_testbed()
        cs = small_session(tb)
        with pytest.raises(ServiceError):
            RecruitmentAutoscaler(cs, None)

    def test_rejects_bad_period_and_cooldown(self):
        tb = monitored_testbed()
        cs = small_session(tb)
        with pytest.raises(ServiceError):
            RecruitmentAutoscaler(cs, tb.monitor, period=0.0)
        with pytest.raises(ServiceError):
            RecruitmentAutoscaler(cs, tb.monitor, cooldown_seconds=-1.0)

    def test_autoscale_flag_requires_the_monitoring_plane(self):
        with pytest.raises(ServiceError):
            build_testbed(autoscale=True)

    def test_autoscale_session_requires_the_monitoring_plane(self):
        tb = build_testbed()
        with pytest.raises(ServiceError):
            tb.autoscale_session(object())

    def test_testbed_config_flows_into_the_autoscaler(self):
        tb = build_testbed(monitor_host=MONITOR_HOST,
                           autoscale={"cooldown_seconds": 2.5,
                                      "max_services": 4})
        cs = small_session(tb)
        scaler = tb.autoscale_session(cs, max_services=3)
        scaler.stop()
        assert scaler.cooldown_seconds == 2.5   # from build_testbed
        assert scaler.max_services == 3         # per-call override wins

    def test_snapshot_and_dashboard_carry_the_pool_section(self):
        tb = monitored_testbed()
        cs = small_session(tb)
        scaler = tb.autoscale_session(cs)
        scaler.stop()
        snap = tb.monitor.snapshot()
        assert snap["autoscale"]["pool_size"] == 2
        assert snap["autoscale"]["pool"][0]["size"] == 2
        json.dumps(snap)
        text = render_dashboard(snap)
        assert "render pool (autoscale)" in text
        assert "(no scale events)" in text

    def test_period_defaults_to_the_monitor_scrape_period(self):
        tb = build_testbed(monitor_host=MONITOR_HOST, autoscale=True,
                           monitor_period=0.5)
        cs = small_session(tb)
        scaler = tb.autoscale_session(cs)
        scaler.stop()
        assert scaler.period == 0.5


# -- the decision procedure, driven by synthetic alerts -----------------------------


class TestAutoscalerDecisions:
    def build(self, **kwargs):
        tb = monitored_testbed()
        cs = small_session(tb)
        kwargs.setdefault("cooldown_seconds", 4.0)
        kwargs.setdefault("drive_migration", False)
        return tb, cs, RecruitmentAutoscaler(cs, tb.monitor, **kwargs)

    def test_grid_overload_grows_through_uddi(self):
        tb, cs, scaler = self.build()
        events = scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        assert [e.kind for e in events] == ["grow"]
        assert events[0].pool_before == 2
        assert events[0].pool_after == 5
        assert events[0].reason == GRID_OVERLOAD_KIND
        assert {s.name for s in cs.render_services} \
            == {"rs-centrino", "rs-athlon", "rs-onyx", "rs-v880z",
                "rs-xeon"}

    def test_recruits_join_idle(self):
        # a recruit must not commit the whole scene on attach — it joins
        # with an empty share until migration hands it work
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        for name in ("rs-onyx", "rs-v880z", "rs-xeon"):
            recruit = next(s for s in cs.render_services
                           if s.name == name)
            assert cs.share_of(recruit) == set()
            assert recruit.committed_polygons() == 0

    def test_cooldown_defers_the_next_decision(self):
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        assert scaler.evaluate([galert(GRID_UNDERLOAD_KIND)],
                               now=11.0) == []          # still cooling
        later = scaler.evaluate([galert(GRID_UNDERLOAD_KIND)], now=20.0)
        assert [e.kind for e in later] == ["release"]

    def test_release_drains_the_least_utilised_member(self):
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        before = {s.name for s in cs.render_services}
        events = scaler.evaluate([galert(GRID_UNDERLOAD_KIND)], now=20.0)
        released = events[0].services[0]
        assert released in before
        assert released not in {s.name for s in cs.render_services}
        # a drained release is not a failure: the service stays
        # recruitable
        assert released not in cs.failed_services

    def test_released_service_is_recruited_back(self):
        # the full round trip: grow → release → grow again through UDDI
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        released = scaler.evaluate([galert(GRID_UNDERLOAD_KIND)],
                                   now=20.0)[0].services[0]
        regrow = scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=30.0)
        assert [e.kind for e in regrow] == ["grow"]
        assert released in regrow[0].services

    def test_min_services_floor_blocks_release(self):
        tb, cs, scaler = self.build(min_services=2)
        scaler._last_scale_time = None
        assert scaler.evaluate([galert(GRID_UNDERLOAD_KIND)],
                               now=50.0) == []
        assert len(cs.render_services) == 2

    def test_max_services_cap_blocks_growth(self):
        tb, cs, scaler = self.build(max_services=2)
        assert scaler.evaluate([galert(GRID_OVERLOAD_KIND)],
                               now=10.0) == []
        assert len(cs.render_services) == 2

    def test_release_refused_when_peers_cannot_absorb(self):
        # both members nearly full: draining either would overload the
        # survivor and re-trigger a grow — the other half of the flap
        # guard
        tb, cs, scaler = self.build(min_services=1)
        assert scaler.evaluate([galert(GRID_UNDERLOAD_KIND)],
                               now=10.0) == []
        assert len(cs.render_services) == 2

    def test_member_overload_with_pool_headroom_migrates_not_grows(self):
        # one slow member while peers have room: in-pool migration can
        # still relieve it, so the autoscaler must not recruit
        tb = monitored_testbed()
        cs = small_session(tb, hosts=("centrino", "xeon"),
                           polygons=12_000)
        scaler = RecruitmentAutoscaler(cs, tb.monitor,
                                       drive_migration=False)
        alerts = [galert(GRID_OVERLOAD_KIND),
                  galert("overload", service="rs-centrino")]
        assert scaler.evaluate(alerts, now=10.0) == []
        assert len(cs.render_services) == 2

    def test_no_alerts_no_actions(self):
        tb, cs, scaler = self.build()
        assert scaler.evaluate([], now=10.0) == []
        assert scaler.events == []

    def test_pool_history_records_every_size_change(self):
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        scaler.evaluate([galert(GRID_UNDERLOAD_KIND)], now=20.0)
        sizes = [size for _, size in scaler.pool_history]
        assert sizes == [2, 5, 4]

    def test_describe_is_json_serialisable(self):
        tb, cs, scaler = self.build()
        scaler.evaluate([galert(GRID_OVERLOAD_KIND)], now=10.0)
        described = json.loads(json.dumps(scaler.describe()))
        assert described["pool_size"] == 5
        assert described["events"][0]["kind"] == "grow"


# -- the recruiter's directory stays live -------------------------------------------


class TestRecruiterLiveDirectory:
    def test_services_added_after_construction_are_recruitable(self):
        # the recruiter must re-resolve access points against the
        # caller's directory at scan time, not against a snapshot taken
        # when it was built — a render service that came online later
        # would otherwise never be recruitable
        tb = build_testbed()
        directory = {}
        recruiter = Recruiter(tb.uddi_client("xeon"), directory)
        rs = tb.render_service("onyx")
        directory[rs.endpoint] = rs            # caller updates its dict
        result = recruiter.recruit()
        assert rs in result.services

    def test_register_helper_still_works(self):
        tb = build_testbed()
        recruiter = Recruiter(tb.uddi_client("xeon"), {})
        rs = tb.render_service("v880z")
        recruiter.register(rs.endpoint, rs)
        assert rs in recruiter.recruit().services


# -- recruitment edge cases ---------------------------------------------------------


class TestRecruitmentEdgeCases:
    def test_empty_uddi_scan_is_a_clean_noop(self):
        tb = build_testbed()
        registry = UddiRegistry("barren")
        registry.register_business(RAVE_BUSINESS, "RAVE")
        registry.register_tmodel(RENDER_TMODEL, RENDER_SERVICE_WSDL)
        client = UddiClient(registry, tb.network, "xeon", MONITOR_HOST)
        recruiter = Recruiter(client, {
            s.endpoint: s for s in tb.render_services.values()})
        result = recruiter.recruit()
        assert not result.found
        assert result.services == []
        cs = CollaborativeSession(tb.data_service, "empty",
                                  recruiter=recruiter)
        tb.publish_tree("empty", SceneTree("empty"))
        assert cs.recruit_more() == []

    def test_everyone_already_attached_recruits_nobody(self):
        tb = build_testbed()
        cs = small_session(tb, hosts=tuple(tb.render_services))
        assert cs.recruit_more() == []

    def test_failed_services_are_never_rerecruited(self):
        tb = build_testbed()
        cs = small_session(tb)
        cs.failed_services.add("rs-onyx")
        attached = {s.name for s in cs.recruit_more()}
        assert attached == {"rs-v880z", "rs-xeon"}

    def test_recruitment_across_a_partition_skips_unreachable_hosts(self):
        tb = build_testbed()
        cs = small_session(tb)
        injector = FaultInjector(tb.network)
        injector.partition({"v880z"})
        attached = {s.name for s in cs.recruit_more()}
        assert attached == {"rs-onyx", "rs-xeon"}
        assert "rs-v880z" not in {s.name for s in cs.render_services}
        # the partitioned host is not dead — once healed, it recruits
        injector.heal()
        assert {s.name for s in cs.recruit_more()} == {"rs-v880z"}


# -- the acceptance scenario --------------------------------------------------------


def run_autoscaled_loop(tb):
    """Closed loop: alerts (never manual calls) scale the pool, both ways.

    The load model reports a collapsed frame rate from every member while
    the scene exceeds 80% of the *pool's* budget, and a healthy rate
    otherwise — so in-pool shuffling can't clear the overload (the ratio
    is invariant under migration) but recruitment can, and the release
    guard's floor keeps the drained pool below the heavy threshold.
    """
    bundle = obs.install(clock=tb.clock)
    try:
        cs = small_session(tb)
        scaler = tb.autoscale_session(cs, cooldown_seconds=5.0,
                                      min_services=3)

        def drive():
            pool = cs.render_services
            budget = sum(s.capacity().polygon_budget(cs.target_fps)
                         for s in pool)
            committed = sum(s.committed_polygons() for s in pool)
            heavy = committed > 0.8 * budget
            for service in pool:
                service.reported_fps = 2.0 if heavy else 30.0

        for _ in range(40):
            drive()
            pump(tb, 1.0)
        scaler.stop()
        reattached = cs.recruit_more()
        return {
            "session": cs,
            "scaler": scaler,
            "events": list(scaler.events),
            "final_alert_kinds": {a.kind
                                  for a in tb.monitor.firing_alerts()},
            "snapshot": tb.monitor.snapshot(),
            "recorder": bundle.recorder,
            "reattached": sorted(s.name for s in reattached),
        }
    finally:
        obs.uninstall()


class TestClosedLoopAutoscaling:
    @pytest.fixture(scope="class")
    def loop(self):
        return run_autoscaled_loop(monitored_testbed())

    def test_sustained_overload_grew_the_pool_through_uddi(self, loop):
        grows = [e for e in loop["events"] if e.kind == "grow"]
        assert grows, "overload alerts never triggered recruitment"
        first = loop["events"][0]
        assert first.kind == "grow"
        assert first.reason == GRID_OVERLOAD_KIND
        assert first.pool_before == 2
        assert first.pool_after == 5

    def test_growth_cleared_the_overload_alert(self, loop):
        assert "overload" not in loop["final_alert_kinds"]
        assert GRID_OVERLOAD_KIND not in loop["final_alert_kinds"]

    def test_sustained_underload_drained_and_released(self, loop):
        releases = [e for e in loop["events"] if e.kind == "release"]
        assert releases, "underload alerts never released a service"
        assert all(e.reason == GRID_UNDERLOAD_KIND for e in releases)
        # the pool shrank back to the configured floor and every node is
        # still owned by a live member
        cs = loop["session"]
        scaler = loop["scaler"]
        sizes = [size for _, size in scaler.pool_history]
        assert min(sizes) == 2 and max(sizes) == 5
        assert sizes[-1] == scaler.min_services
        total = sum(len(cs.share_of(s)) for s in cs.render_services)
        assert total == len(list(cs.master_tree.geometry_nodes()))

    def test_released_services_are_recruitable_again(self, loop):
        released = {name for e in loop["events"] if e.kind == "release"
                    for name in e.services}
        assert released
        assert released & set(loop["reattached"]) == released
        assert not released & loop["session"].failed_services

    def test_no_flapping_inside_the_cooldown_window(self, loop):
        events = loop["events"]
        cooldown = loop["scaler"].cooldown_seconds
        for earlier, later in zip(events, events[1:]):
            assert later.time - earlier.time >= cooldown, \
                f"{earlier.kind}@{earlier.time:.1f} then " \
                f"{later.kind}@{later.time:.1f} inside the cooldown"

    def test_scale_events_land_in_the_flight_recorder(self, loop):
        recorder = loop["recorder"]
        assert recorder.events("scale:grow")
        assert recorder.events("scale:release")
        dump = json.dumps(recorder.dump("autoscale-test"))
        assert "scale:grow" in dump and "scale:release" in dump

    def test_snapshot_publishes_the_whole_story(self, loop):
        section = loop["snapshot"]["autoscale"]
        kinds = [e["kind"] for e in section["events"]]
        assert "grow" in kinds and "release" in kinds
        text = render_dashboard(loop["snapshot"])
        assert "render pool (autoscale)" in text
        assert "grow" in text and "release" in text

    def test_the_whole_story_is_deterministic(self, loop):
        replay = run_autoscaled_loop(monitored_testbed())
        assert json.dumps(replay["snapshot"], sort_keys=True) \
            == json.dumps(loop["snapshot"], sort_keys=True)
