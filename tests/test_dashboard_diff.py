"""The federation-aware dashboard: merging, rendering, and diffing.

:func:`merge_monitor_snapshots` folds several monitors into one view
(slots from ``wall_meta``, last-writer-wins on service collisions —
counted, never silent), :func:`render_dashboard` grows a tail-latency
sparkline panel and per-source header lines, and ``--diff`` turns two
snapshots into a CI-gateable regression report: quantile moves above a
threshold and alert churn, with a nonzero exit on regression.
"""

import json

import pytest

from repro.__main__ import main
from repro.obs.dashboard import (
    _sparkline,
    diff_snapshots,
    merge_monitor_snapshots,
    render_dashboard,
    render_diff,
)

WAIT_P95 = "rave_queue_wait_seconds_p95"
GRID_P95 = "rave_grid_queue_wait_seconds_p95"


def monitor_snapshot(service="grid-a", p95=0.2, time=10.0, alerts=(),
                     tail=None, scrape_count=3):
    return {
        "format": "rave-monitor-snapshot/1",
        "time": time,
        "period": 1.0,
        "grid": {GRID_P95: p95},
        "services": {
            service: {"host": "centrino", "kind": "grid", "events_seen": 2,
                      "metrics": {WAIT_P95: p95, "rave_rs_fps": 24.0}},
        },
        "metrics": {},
        "alerts": list(alerts),
        "slo": {},
        "tail": tail if tail is not None else {},
        "scrapes": {"count": scrape_count, "failures": 0, "bytes": 512,
                    "federate_collisions": 0},
    }


def observability_snapshot(slot, **kwargs):
    """An export-style snapshot: ``wall_meta`` slot + embedded monitor."""
    return {
        "format": "rave-observability-snapshot/1",
        "wall_meta": {slot: {"host": "registry-host"}},
        "monitor": monitor_snapshot(**kwargs),
    }


ALERT = {"rule": "queue-wait-p95", "service": "grid-a", "value": 0.9,
         "since": 4.0, "last_time": 10.0, "severity": "page",
         "kind": "tail-latency"}


class TestMergeMonitorSnapshots:
    def test_slots_come_from_wall_meta_or_index(self):
        merged = merge_monitor_snapshots([
            observability_snapshot("site-cardiff", service="grid-a"),
            monitor_snapshot(service="grid-b"),
        ])
        assert sorted(merged["sources"]) == ["monitor-1", "site-cardiff"]
        assert merged["sources"]["site-cardiff"]["services"] == ["grid-a"]
        assert sorted(merged["services"]) == ["grid-a", "grid-b"]

    def test_service_collisions_are_counted_not_silent(self):
        merged = merge_monitor_snapshots([
            monitor_snapshot(service="grid-a", p95=0.2),
            monitor_snapshot(service="grid-a", p95=0.8),
        ])
        assert merged["scrapes"]["merge_collisions"] == 1
        # last writer wins, and the survivor is the later input's entry
        assert merged["services"]["grid-a"]["metrics"][WAIT_P95] == 0.8

    def test_alerts_deduplicate_on_rule_and_service(self):
        merged = merge_monitor_snapshots([
            monitor_snapshot(service="grid-a", alerts=[ALERT]),
            monitor_snapshot(service="grid-b",
                             alerts=[ALERT,
                                     {**ALERT, "service": "grid-b"}]),
        ])
        keys = [(a["rule"], a["service"]) for a in merged["alerts"]]
        assert keys == [("queue-wait-p95", "grid-a"),
                        ("queue-wait-p95", "grid-b")]

    def test_tail_histories_interleave_in_time_order(self):
        merged = merge_monitor_snapshots([
            monitor_snapshot(service="grid-a",
                             tail={"grid-a": {WAIT_P95: [[2.0, 0.3],
                                                         [4.0, 0.5]]}}),
            monitor_snapshot(service="grid-b",
                             tail={"grid-a": {WAIT_P95: [[1.0, 0.1],
                                                         [3.0, 0.4]]}}),
        ])
        history = merged["tail"]["grid-a"][WAIT_P95]
        assert [point[0] for point in history] == [1.0, 2.0, 3.0, 4.0]

    def test_counters_sum_and_clock_is_the_latest(self):
        merged = merge_monitor_snapshots([
            monitor_snapshot(time=10.0, scrape_count=3),
            monitor_snapshot(service="grid-b", time=12.5, scrape_count=5),
        ])
        assert merged["scrapes"]["count"] == 8
        assert merged["time"] == 12.5

    def test_rejects_non_monitor_inputs(self):
        with pytest.raises(ValueError):
            merge_monitor_snapshots([])
        with pytest.raises(ValueError):
            merge_monitor_snapshots([{"format": "something-else/9"}])


class TestRenderDashboard:
    def test_federated_header_lists_every_source(self):
        merged = merge_monitor_snapshots([
            observability_snapshot("site-cardiff"),
            monitor_snapshot(service="grid-b"),
        ])
        text = render_dashboard(merged)
        assert text.startswith("RAVE grid monitor (federated)")
        assert "source site-cardiff: 1 service(s)" in text
        assert "source monitor-1: 1 service(s)" in text

    def test_single_monitor_stays_unfederated(self):
        text = render_dashboard(monitor_snapshot())
        assert text.startswith("RAVE grid monitor\n")
        assert "source " not in text

    def test_tail_panel_shows_a_sparkline_per_history(self):
        tail = {"grid-a": {WAIT_P95: [[1.0, 0.1], [2.0, 0.4], [3.0, 0.8]]}}
        text = render_dashboard(monitor_snapshot(tail=tail))
        assert "tail latency (p95)" in text
        line = next(l for l in text.splitlines() if WAIT_P95 in l
                    and "grid-a" in l)
        assert "p95 now 0.800s (3 sample(s))" in line
        assert "[" in line and "]" in line

    def test_empty_tail_panel_says_so(self):
        assert "(no tail-latency history yet)" \
            in render_dashboard(monitor_snapshot())


class TestSparkline:
    def test_scales_to_the_window_maximum(self):
        line = _sparkline([0.0, 0.4, 0.8], width=8)
        assert len(line) == 8
        assert line.endswith("@")        # the max maps to the ramp's top
        assert line.strip()[0] == " " or line.lstrip("")  # left-padded

    def test_flat_zero_history_renders_dots(self):
        assert _sparkline([0.0, 0.0], width=6).endswith("..")

    def test_window_keeps_only_the_newest_samples(self):
        # the old 9.0 spike scrolled out: the window rescales to 0.4,
        # so the newest sample (not the spike) sits at the ramp's top
        line = _sparkline([9.0, 0.1, 0.1, 0.1, 0.4], width=4)
        assert len(line) == 4
        assert line[-1] == "@"
        assert line[0] != "@"


class TestDiffSnapshots:
    def test_quantile_move_above_threshold_is_a_regression(self):
        diff = diff_snapshots(monitor_snapshot(p95=0.2),
                              monitor_snapshot(p95=0.9))
        moved = {(e["service"], e["metric"]) for e in diff["regressions"]}
        assert ("grid-a", WAIT_P95) in moved
        assert ("_grid", GRID_P95) in moved
        assert diff["regressed"]

    def test_moves_inside_the_threshold_are_noise(self):
        diff = diff_snapshots(monitor_snapshot(p95=0.2),
                              monitor_snapshot(p95=0.25))
        assert diff["regressions"] == []
        assert not diff["regressed"]

    def test_improvements_do_not_flag_regression(self):
        diff = diff_snapshots(monitor_snapshot(p95=0.9),
                              monitor_snapshot(p95=0.2))
        assert diff["regressions"] == []
        assert len(diff["improvements"]) == 2
        assert not diff["regressed"]

    def test_alert_churn_is_reported_and_new_alerts_gate(self):
        diff = diff_snapshots(monitor_snapshot(),
                              monitor_snapshot(alerts=[ALERT]))
        assert [a["rule"] for a in diff["new_alerts"]] == ["queue-wait-p95"]
        assert diff["regressed"]
        back = diff_snapshots(monitor_snapshot(alerts=[ALERT]),
                              monitor_snapshot())
        assert [a["rule"] for a in back["cleared_alerts"]] \
            == ["queue-wait-p95"]
        assert not back["regressed"]

    def test_custom_threshold_widens_the_noise_band(self):
        diff = diff_snapshots(monitor_snapshot(p95=0.2),
                              monitor_snapshot(p95=0.9), threshold=1.0)
        assert not diff["regressed"]

    def test_render_diff_verdict_lines(self):
        bad = render_diff(diff_snapshots(monitor_snapshot(p95=0.2),
                                         monitor_snapshot(p95=0.9)))
        assert "quantile regressions" in bad
        assert "0.200s -> 0.900s (+0.700s)" in bad
        assert bad.rstrip().endswith("verdict: REGRESSED")
        good = render_diff(diff_snapshots(monitor_snapshot(),
                                          monitor_snapshot()))
        assert "(none)" in good
        assert good.rstrip().endswith("verdict: no regression")


class TestDashboardCli:
    def write(self, tmp_path, name, snapshot):
        path = tmp_path / name
        path.write_text(json.dumps(snapshot))
        return str(path)

    def test_diff_exits_nonzero_on_regression(self, tmp_path, capsys):
        before = self.write(tmp_path, "before.json", monitor_snapshot(p95=0.2))
        after = self.write(tmp_path, "after.json",
                           monitor_snapshot(p95=0.9, alerts=[ALERT]))
        assert main(["dashboard", "--diff", before, after]) == 1
        out = capsys.readouterr().out
        assert "verdict: REGRESSED" in out
        assert "new alerts" in out and "queue-wait-p95" in out

    def test_diff_exits_zero_when_clean(self, tmp_path, capsys):
        before = self.write(tmp_path, "before.json", monitor_snapshot(p95=0.9))
        after = self.write(tmp_path, "after.json", monitor_snapshot(p95=0.2))
        assert main(["dashboard", "--diff", before, after]) == 0
        assert "verdict: no regression" in capsys.readouterr().out

    def test_repeated_snapshot_flags_merge_to_a_federated_view(
            self, tmp_path, capsys):
        one = self.write(tmp_path, "one.json",
                         observability_snapshot("site-cardiff"))
        two = self.write(tmp_path, "two.json",
                         monitor_snapshot(service="grid-b"))
        assert main(["dashboard", "--snapshot", one,
                     "--snapshot", two]) == 0
        out = capsys.readouterr().out
        assert out.startswith("RAVE grid monitor (federated)")
        assert "grid-b" in out

    def test_single_snapshot_renders_directly(self, tmp_path, capsys):
        one = self.write(tmp_path, "one.json", monitor_snapshot())
        assert main(["dashboard", "--snapshot", one]) == 0
        assert capsys.readouterr().out.startswith("RAVE grid monitor\n")
