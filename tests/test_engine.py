"""The render-engine timing model — the Tables 2/3/4 mechanism."""

import pytest

from repro.errors import RenderError
from repro.hardware.profiles import TESTBED, get_profile
from repro.render.engine import RenderEngine


@pytest.fixture
def centrino():
    return RenderEngine(get_profile("centrino"))


@pytest.fixture
def v880z():
    return RenderEngine(get_profile("v880z"))


class TestProfiles:
    def test_all_testbed_machines_present(self):
        assert {"onyx", "v880z", "centrino", "xeon", "athlon",
                "zaurus"} <= set(TESTBED)

    def test_unknown_machine(self):
        with pytest.raises(KeyError):
            get_profile("cray")

    def test_zaurus_cannot_render(self):
        assert not get_profile("zaurus").can_render
        with pytest.raises(RenderError):
            RenderEngine(get_profile("zaurus"))

    def test_onyx_has_three_pipes(self):
        assert get_profile("onyx").graphics_pipes == 3

    def test_volume_support_flags(self):
        assert get_profile("onyx").volume_support
        assert not get_profile("centrino").volume_support


class TestOnscreenModel:
    def test_table2_hand_render_time(self, centrino):
        """Paper: 0.83 M polygons render in 0.091 s on the Centrino."""
        t = centrino.onscreen_seconds(830_000, 200 * 200)
        assert t == pytest.approx(0.091, rel=0.15)

    def test_table2_skeleton_render_time(self, centrino):
        """Paper: 2.8 M polygons render in 0.355 s."""
        t = centrino.onscreen_seconds(2_800_000, 200 * 200)
        assert t == pytest.approx(0.355, rel=0.15)

    def test_time_grows_with_polygons(self, centrino):
        assert (centrino.onscreen_seconds(10**6, 40_000)
                > centrino.onscreen_seconds(10**5, 40_000))

    def test_time_grows_with_pixels(self, centrino):
        assert (centrino.onscreen_seconds(1000, 400 * 400)
                > centrino.onscreen_seconds(1000, 200 * 200))


class TestOffscreenModel:
    """Table 3 (400x400) and Table 4 (200x200, seq vs interleaved)."""

    def test_table3_centrino_elle(self, centrino):
        eff = centrino.offscreen_efficiency(50_000, 400 * 400)
        assert eff == pytest.approx(0.35, abs=0.04)

    def test_table3_centrino_galleon(self, centrino):
        eff = centrino.offscreen_efficiency(5_500, 400 * 400)
        assert eff == pytest.approx(0.09, abs=0.03)

    def test_table4_centrino_elle_seq(self, centrino):
        eff = centrino.offscreen_efficiency(50_000, 200 * 200, interleaved=1)
        assert eff == pytest.approx(0.55, abs=0.06)

    def test_table4_centrino_elle_int(self, centrino):
        """Interleaving recovers most of the on-screen speed (paper: 90%)."""
        eff = centrino.offscreen_efficiency(50_000, 200 * 200, interleaved=4)
        assert eff > 0.75

    def test_table4_interleaving_always_helps(self):
        for host in ("centrino", "athlon", "xeon", "onyx", "v880z"):
            engine = RenderEngine(get_profile(host))
            seq = engine.offscreen_efficiency(50_000, 200 * 200, 1)
            inter = engine.offscreen_efficiency(50_000, 200 * 200, 4)
            assert inter >= seq, host

    def test_table3_athlon_close_to_paper(self):
        engine = RenderEngine(get_profile("athlon"))
        assert engine.offscreen_efficiency(50_000, 400 * 400) == \
            pytest.approx(0.40, abs=0.06)

    def test_v880z_software_fallback_catastrophic(self, v880z, centrino):
        """Paper Table 3: XVR-4000 at 3% for Elle — the software path."""
        eff = v880z.offscreen_efficiency(50_000, 400 * 400)
        assert eff < 0.06
        assert eff < 0.25 * centrino.offscreen_efficiency(50_000, 400 * 400)

    def test_v880z_interleaving_barely_helps(self, v880z):
        """A single software pipeline cannot overlap renders (paper: 3→4%)."""
        seq = v880z.offscreen_efficiency(50_000, 200 * 200, 1)
        inter = v880z.offscreen_efficiency(50_000, 200 * 200, 4)
        assert inter < seq * 2.0

    def test_small_model_hit_harder_by_offscreen(self, centrino):
        """Fixed off-screen overhead dominates cheap frames (9% vs 35%)."""
        small = centrino.offscreen_efficiency(5_500, 400 * 400)
        large = centrino.offscreen_efficiency(50_000, 400 * 400)
        assert small < large

    def test_invalid_interleave(self, centrino):
        with pytest.raises(RenderError):
            centrino.offscreen_seconds(1000, 100, interleaved=0)


class TestTimingApi:
    def test_onscreen_timing(self, centrino):
        t = centrino.timing(10_000, 40_000, offscreen=False)
        assert t.mode == "onscreen"
        assert t.overhead_seconds == 0.0
        assert t.fps == pytest.approx(1.0 / t.total_seconds)

    def test_offscreen_timing_split(self, centrino):
        t = centrino.timing(10_000, 40_000, offscreen=True)
        assert t.mode == "offscreen"
        assert t.overhead_seconds > 0
        assert t.total_seconds == pytest.approx(
            centrino.offscreen_seconds(10_000, 40_000))

    def test_render_mesh_returns_both(self, centrino, small_galleon):
        from repro.render.camera import Camera
        from repro.render.framebuffer import FrameBuffer

        cam = Camera.looking_at((2.2, 1.4, 1.2))
        fb = FrameBuffer(64, 64)
        stats, timing = centrino.render_mesh(small_galleon, cam, fb)
        assert stats.faces_in == small_galleon.n_triangles
        assert timing.total_seconds > 0
        assert fb.coverage() > 0
