"""Multi-pipe render concurrency (the Onyx's three InfiniteReality pipes)."""

import pytest

from repro.data.generators import skeleton
from repro.scenegraph.nodes import CameraNode


@pytest.fixture
def onyx_setup(testbed):
    testbed.publish_model("pipes", skeleton(300_000).normalized())
    rs = testbed.render_service("onyx")          # 3 graphics pipes
    session, _ = rs.create_render_session(testbed.data_service, "pipes")
    return testbed, rs, session


def requests_for(session, n):
    cams = [CameraNode(position=(2.0 + 0.1 * i, 1.4, 1.2))
            for i in range(n)]
    return [(session.render_session_id, cam, 64, 64) for cam in cams]


class TestMultiPipe:
    def test_three_users_share_three_pipes(self, onyx_setup):
        """Three concurrent frames on three pipes cost one frame time."""
        tb, rs, session = onyx_setup
        single_req = requests_for(session, 1)
        t0 = tb.clock.now
        rs.render_views_parallel(single_req)
        one_frame = tb.clock.now - t0

        t0 = tb.clock.now
        results = rs.render_views_parallel(requests_for(session, 3))
        three_frames = tb.clock.now - t0
        assert len(results) == 3
        assert three_frames == pytest.approx(one_frame, rel=0.05)

    def test_fourth_user_starts_a_second_batch(self, onyx_setup):
        tb, rs, session = onyx_setup
        t0 = tb.clock.now
        rs.render_views_parallel(requests_for(session, 3))
        three = tb.clock.now - t0
        t0 = tb.clock.now
        rs.render_views_parallel(requests_for(session, 4))
        four = tb.clock.now - t0
        assert four == pytest.approx(2 * three, rel=0.1)

    def test_single_pipe_machine_serialises(self, testbed):
        testbed.publish_model("serial", skeleton(100_000).normalized())
        rs = testbed.render_service("centrino")   # one pipe
        session, _ = rs.create_render_session(testbed.data_service,
                                              "serial")
        t0 = testbed.clock.now
        rs.render_views_parallel(requests_for(session, 1))
        one = testbed.clock.now - t0
        t0 = testbed.clock.now
        rs.render_views_parallel(requests_for(session, 3))
        three = testbed.clock.now - t0
        assert three == pytest.approx(3 * one, rel=0.05)

    def test_results_in_request_order(self, onyx_setup):
        tb, rs, session = onyx_setup
        results = rs.render_views_parallel(requests_for(session, 5))
        assert len(results) == 5
        for fb, timing in results:
            assert fb.width == 64
            assert timing.total_seconds > 0

    def test_empty_request_list(self, onyx_setup):
        tb, rs, session = onyx_setup
        t0 = tb.clock.now
        assert rs.render_views_parallel([]) == []
        assert tb.clock.now == t0

    def test_clock_restored_on_bad_request(self, onyx_setup):
        from repro.errors import SessionError

        tb, rs, session = onyx_setup
        real_clock = tb.network.sim.clock
        with pytest.raises(SessionError):
            rs.render_views_parallel(
                [("nonexistent", CameraNode(), 32, 32)])
        assert tb.network.sim.clock is real_clock
