"""Seeded chaos suites: whole sessions under scripted fault schedules.

Each scenario drives the full stack — testbed, heartbeats, retries,
recovery — from one seed and asserts the system invariants:

- frames keep arriving throughout the schedule;
- after recovery, every scene node is owned by exactly one live service;
- data-service failover loses no updates;
- the same seed replays the same story.
"""

import json
from types import SimpleNamespace

import pytest

from repro import obs
from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.network.faults import FaultInjector
from repro.render.camera import Camera
from repro.scenegraph.nodes import GroupNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import AddNode, SetProperty
from repro.services.clients import ThinClient
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService
from repro.services.retry import RetryPolicy
from repro.testbed import build_testbed

THREE_HOSTS = ("onyx", "v880z", "centrino")


def build_session(tb, n_meshes=6, mesh_size=6000, hosts=THREE_HOSTS,
                  spread=True):
    """A collaborative session with every host holding part of the scene."""
    tree = SceneTree("chaos")
    for i in range(n_meshes):
        tree.add(MeshNode(skeleton(mesh_size).normalized(), name=f"m{i}"))
    tb.publish_tree("chaos", tree)
    cs = CollaborativeSession(tb.data_service, "chaos",
                              recruiter=tb.recruiter())
    for host in hosts:
        cs.connect(tb.render_service(host))
    cs.place_dataset()
    if spread:
        # guarantee all three hold work, whatever the scheduler decided
        services = [tb.render_service(h) for h in hosts]
        holders = [s for s in services if cs.share_of(s)]
        for starved in (s for s in services if not cs.share_of(s)):
            donor = max(holders, key=lambda s: len(cs.share_of(s)))
            nid = next(iter(cs.share_of(donor)))
            cs.reassign_nodes(donor, starved, [nid])
    return cs


def owned_nodes(cs):
    """Every node id owned by some attachment, asserting exactly-once."""
    owned = set()
    for service in cs.render_services:
        share = cs.share_of(service)
        assert not (share & owned), "node owned by two services"
        owned |= share
    return owned


class TestKillOneOfThree:
    """The acceptance scenario: one of three render services dies
    mid-session; the session must finish with every node reassigned and
    clean frames."""

    def run_scenario(self, seed):
        tb = build_testbed(render_hosts=THREE_HOSTS)
        inj = FaultInjector(tb.network, seed=seed)
        cs = build_session(tb)
        cs.enable_fault_tolerance(heartbeat_interval=0.25,
                                  suspect_after=1.0, dead_after=3.0)
        nodes_before = set(owned_nodes(cs))
        victim = tb.render_service("v880z")
        assert cs.share_of(victim)

        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        sim = tb.network.sim
        start = sim.now
        inj.schedule_crash(at=start + 2.0, host="v880z")

        frames = []
        # a frame every simulated second, across the crash and recovery
        for tick in range(1, 9):
            sim.run_until(start + tick)
            fb, _ = cs.render_composite(cam, 64, 64)
            frames.append((sim.now, cs.last_frame_degraded, fb))
        return tb, cs, victim, nodes_before, frames

    def test_session_completes_with_full_reassignment(self):
        tb, cs, victim, nodes_before, frames = self.run_scenario(seed=42)
        assert victim.name in cs.failed_services
        assert len(cs.recoveries) == 1
        report = cs.recoveries[0]
        assert report.failed == victim.name
        assert report.nodes_recovered > 0
        # every node owned by exactly one live service, nothing lost
        assert owned_nodes(cs) == nodes_before
        for service in cs.render_services:
            assert cs.service_live(service)
        assert victim.name not in [s.name for s in cs.render_services]

    def test_frames_keep_arriving_and_recover_cleanly(self):
        tb, cs, victim, nodes_before, frames = self.run_scenario(seed=42)
        assert len(frames) == 8              # one per tick, none missing
        recovery_time = cs.recoveries[0].time
        post = [degraded for t, degraded, fb in frames
                if t > recovery_time]
        assert post, "no frames after recovery"
        assert not any(post), "degraded frame after recovery"
        # post-recovery frames show actual content, not an empty buffer
        last_fb = frames[-1][2]
        assert last_fb.coverage() > 0

    def test_tiled_frames_have_no_stale_or_empty_tiles(self):
        tb, cs, victim, nodes_before, frames = self.run_scenario(seed=42)
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        local = cs.render_services[0]
        fb, plan, _ = cs.render_tiled(cam, 96, 96, local_service=local)
        assert not cs.last_frame_degraded
        # the dead service gets no tile in the new plan
        assert victim.name not in {a.service_name for a in plan.assignments}
        # pixel-identical to a single-service render: no stale tiles
        holder = cs.render_services[0]
        reference, _, _ = cs.render_tiled(cam, 96, 96,
                                          local_service=holder)
        assert (fb.color == reference.color).all()

    def test_same_seed_same_story(self):
        _, cs1, _, _, frames1 = self.run_scenario(seed=7)
        _, cs2, _, _, frames2 = self.run_scenario(seed=7)
        assert [r.reassigned for r in cs1.recoveries] == \
               [r.reassigned for r in cs2.recoveries]
        assert [r.time for r in cs1.recoveries] == \
               [r.time for r in cs2.recoveries]
        assert [(t, d) for t, d, _ in frames1] == \
               [(t, d) for t, d, _ in frames2]


class TestDataServiceChaos:
    """Mirror failover mid-update-stream: zero lost updates."""

    def test_failover_loses_no_updates(self):
        tb = build_testbed(render_hosts=THREE_HOSTS)
        FaultInjector(tb.network, seed=3)
        cs = build_session(tb)
        mirror = DataService(
            "rave-mirror", ServiceContainer("onyx", tb.network,
                                            http_port=9750))
        tb.data_service.add_mirror(mirror)

        published = []
        next_id = 500
        for i in range(10):
            update = AddNode.of(GroupNode(name=f"u{i}"), parent_id=0,
                                node_id=next_id + i)
            if i == 7:
                # the crash lands between apply and replicate: the mirror
                # never sees this one until failover replays the trail
                tb.data_service.mirrors.remove(mirror)
                tb.data_service.publish_update("chaos", update)
                tb.data_service.mirrors.append(mirror)
            else:
                tb.data_service.publish_update("chaos", update)
            published.append(f"u{i}")

        backup = cs.handle_data_failure()
        assert backup is mirror
        names = {n.name for n in mirror.session("chaos").tree}
        assert set(published) <= names, "updates lost in failover"

        # the session keeps working against the mirror: updates flow to
        # share holders and frames still composite
        holder = next(s for s in cs.render_services if cs.share_of(s))
        nid = next(iter(cs.share_of(holder)))
        deliveries = mirror.publish_update(
            "chaos", SetProperty(node_id=nid, field_name="name",
                                 value="post-failover"))
        assert any(name.startswith(f"{holder.name}/")
                   for name in deliveries)
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        fb, _ = cs.render_composite(cam, 64, 64)
        assert not cs.last_frame_degraded

    def test_render_service_sees_replayed_updates(self):
        """The failover-replayed tail reaches the render services' scene
        copies once they re-point at the mirror."""
        tb = build_testbed(render_hosts=THREE_HOSTS)
        cs = build_session(tb)
        mirror = DataService(
            "rave-mirror", ServiceContainer("onyx", tb.network,
                                            http_port=9751))
        tb.data_service.add_mirror(mirror)
        tb.data_service.mirrors.remove(mirror)
        tb.data_service.publish_update(
            "chaos", AddNode.of(GroupNode(name="gap"), parent_id=0,
                                node_id=700))
        tb.data_service.mirrors.append(mirror)
        cs.handle_data_failure()
        assert "gap" in {n.name for n in mirror.session("chaos").tree}
        # a post-failover update still lands on every subscriber copy
        rs = next(s for s in cs.render_services if cs.share_of(s))
        nid = next(iter(cs.share_of(rs)))
        mirror.publish_update(
            "chaos", SetProperty(node_id=nid, field_name="name",
                                 value="renamed"))
        cache = rs._scene_cache[(mirror.name, "chaos")]
        assert cache.node(nid).name == "renamed"


class TestThinClientUnderChaos:
    def test_frames_survive_link_flaps_with_retries(self):
        tb = build_testbed(render_hosts=("centrino", "athlon"))
        inj = FaultInjector(tb.network, seed=9)
        tree = SceneTree("pda")
        tree.add(MeshNode(skeleton(2000).normalized(), name="skel"))
        tb.publish_tree("pda", tree)
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service, "pda")

        client = ThinClient(
            "pda-user", "zaurus", tb.network,
            retry_policy=RetryPolicy(max_attempts=6, timeout_s=0.5,
                                     base_backoff_s=0.25, jitter=0.2),
            retry_seed=9)
        client.attach(rs, rsession.render_session_id)

        sim = tb.network.sim
        start = sim.now
        # flap the wireless uplink repeatedly while frames stream
        for k in range(3):
            inj.schedule_flap(at=start + 0.9 + 2.0 * k,
                              a="zaurus", b="switch", down_for=0.6)
        received = 0
        for i in range(6):
            if i % 2 == 0:
                # walk into the outage so the request starts mid-flap
                sim.run_until(start + 0.95 + 2.0 * (i // 2))
            fb, timing = client.request_frame(160, 120)
            received += 1
            assert fb.coverage() >= 0       # a real frame came back
        assert received == 6                 # no frame was ever lost
        assert client.frame_retries > 0      # the flaps really bit
        assert inj.events("link-down")

    def test_partition_healing_before_lease_death_needs_no_recovery(self):
        tb = build_testbed(render_hosts=THREE_HOSTS)
        inj = FaultInjector(tb.network, seed=13)
        cs = build_session(tb)
        cs.enable_fault_tolerance(heartbeat_interval=0.25,
                                  suspect_after=1.0, dead_after=6.0)
        sim = tb.network.sim
        start = sim.now
        # isolate v880z for 2 s: long enough to suspect, not to kill
        inj.schedule_partition(at=start + 1.0, group={"v880z"},
                               heal_after=2.0, name="blip")
        suspected = []
        cs.health.on_suspect.append(suspected.append)
        sim.run_until(start + 12.0)
        assert "rs-v880z" in suspected       # the blip was noticed
        assert cs.recoveries == []           # but nobody was declared dead
        assert cs.health.state("rs-v880z") == "alive"
        assert "rs-v880z" in [s.name for s in cs.render_services]


class TestFlightRecorderUnderChaos:
    """An injected crash leaves exactly ONE post-mortem dump telling the
    whole story: the fault, the lease transitions that noticed it, and
    the recovery that reassigned the work — deterministically."""

    def run_scenario(self, seed):
        tb = build_testbed(render_hosts=THREE_HOSTS)
        with obs.observed(clock=tb.clock) as bundle:
            inj = FaultInjector(tb.network, seed=seed)
            cs = build_session(tb)
            cs.enable_fault_tolerance(heartbeat_interval=0.25,
                                      suspect_after=1.0, dead_after=3.0)
            sim = tb.network.sim
            start = sim.now
            inj.schedule_crash(at=start + 2.0, host="v880z")
            # run across the crash, the lease death, the recovery, and
            # the crash dump's full 10 s grace window
            sim.run_until(start + 15.0)
            dumps = [dict(d) for d in bundle.recorder.dumps]
            return cs, dumps

    def test_exactly_one_dump_with_the_full_story(self):
        cs, dumps = self.run_scenario(seed=11)
        # the heartbeat-death dump subsumed the deferred crash dump
        assert len(dumps) == 1
        dump = dumps[0]
        assert dump["reason"] == "heartbeat-death:rs-v880z"
        kinds = [e["kind"] for e in dump["events"]]
        assert "fault:crash" in kinds
        transitions = [e for e in dump["events"]
                       if e["kind"] == "lease-transition"]
        details = " | ".join(e["detail"] for e in transitions)
        assert "alive -> suspected" in details
        assert "suspected -> dead" in details
        assert "recovery" in kinds          # reassignments made the dump
        # causal order: the fault precedes the transitions, the
        # transitions precede the recovery
        assert kinds.index("fault:crash") \
            < kinds.index("lease-transition") \
            < kinds.index("recovery")
        # and the session really did recover
        assert "rs-v880z" not in [s.name for s in cs.render_services]
        owned_nodes(cs)

    def test_crash_without_health_monitoring_still_dumps(self):
        tb = build_testbed(render_hosts=THREE_HOSTS)
        with obs.observed(clock=tb.clock) as bundle:
            inj = FaultInjector(tb.network, seed=11)
            build_session(tb)               # no enable_fault_tolerance
            sim = tb.network.sim
            inj.schedule_crash(at=sim.now + 2.0, host="v880z")
            sim.run_until(sim.now + 15.0)   # past the 10 s grace
            assert len(bundle.recorder.dumps) == 1
            dump = bundle.recorder.dumps[0]
            assert dump["reason"] == "crash:v880z"
            assert "fault:crash" in [e["kind"] for e in dump["events"]]

    def test_same_seed_same_dump(self):
        _, first = self.run_scenario(seed=23)
        _, replay = self.run_scenario(seed=23)
        assert json.dumps(first, sort_keys=True) \
            == json.dumps(replay, sort_keys=True)


class TestMonitorUnderServiceRestart:
    def test_counter_reset_does_not_swallow_post_restart_events(self):
        """A watched service replaced by a restarted instance resets its
        ``events_seen`` counter.  The monitor's forwarding watermark must
        rewind with it — otherwise everything the replacement emits,
        starting with its *first* payload, is silently dropped from the
        flight recorder."""
        from repro.obs.telemetry import ServiceTelemetry

        tb = build_testbed(monitor_host="registry-host")
        with obs.observed(clock=tb.clock) as bundle:
            original = tb.render_service("onyx").telemetry
            for i in range(5):
                original.event("render-session-created", time=float(i),
                               detail=f"pre-restart-{i}")
            sim = tb.network.sim
            sim.run_until(sim.now + 3.0)
            assert tb.monitor._forwarded["rs-onyx"] == 5

            # the host "restarts": a fresh instance under the same
            # service name, telemetry counter back at zero
            restarted = ServiceTelemetry("rs-onyx", "onyx", "render")
            restarted.event("render-session-created", time=sim.now,
                            detail="post-restart")
            tb.monitor.watch(SimpleNamespace(telemetry=restarted))
            sim.run_until(sim.now + 3.0)

            details = [e.detail for e in
                       bundle.recorder.events("telemetry:"
                                              "render-session-created")]
            assert any("post-restart" in d for d in details), \
                "the replacement's first events never reached the recorder"
            # and the watermark tracks the new counter, not the old one
            assert tb.monitor._forwarded["rs-onyx"] == 1
