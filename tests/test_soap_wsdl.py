"""SOAP envelopes, WSDL documents, and the transport channels."""

import numpy as np
import pytest

from repro.errors import MarshallingError, NetworkError, SoapFault
from repro.network.simnet import Network
from repro.network.transport import BinaryChannel, SoapChannel
from repro.services.soap import (
    SoapEnvelope,
    soap_cpu_seconds,
    soap_decode,
    soap_encode,
)
from repro.services.wsdl import (
    DATA_SERVICE_WSDL,
    Operation,
    RENDER_SERVICE_WSDL,
    WsdlDocument,
    build_wsdl,
)


class TestSoapEnvelope:
    def test_roundtrip_scalars(self):
        data = soap_encode("getCapacity", {
            "count": 42, "rate": 3.5, "name": "rs", "ok": True,
            "nothing": None})
        env = soap_decode(data)
        assert env.operation == "getCapacity"
        assert env.body == {"count": 42, "rate": 3.5, "name": "rs",
                            "ok": True, "nothing": None}

    def test_roundtrip_arrays_base64(self):
        arr = np.arange(12, dtype=np.float32).reshape(3, 4)
        env = soap_decode(soap_encode("op", {"m": arr}))
        assert np.array_equal(env.body["m"], arr)
        assert env.body["m"].dtype == np.float32

    def test_roundtrip_nested(self):
        body = {"cam": {"pos": [1.0, 2.0], "deep": {"x": b"\x00\x01"}}}
        env = soap_decode(soap_encode("op", body))
        assert env.body == body

    def test_xml_is_humanly_xml(self):
        data = soap_encode("op", {"a": 1})
        assert data.startswith(b"<?xml")
        assert b"Envelope" in data and b"Operation" in data

    def test_xml_overhead_vs_binary(self):
        """SOAP's size blow-up — the reason RAVE backs off to sockets."""
        from repro.network.marshalling import encode_value

        arr = np.zeros(10000, dtype=np.float32)
        soap_len = len(soap_encode("op", {"data": arr}))
        bin_len = len(encode_value({"data": arr}))
        assert soap_len > 1.25 * bin_len   # base64 alone is 4/3

    def test_fault_roundtrip(self):
        data = soap_encode("op", {}, fault=("Receiver", "no such session"))
        env = soap_decode(data)
        assert env.is_fault
        with pytest.raises(SoapFault) as info:
            env.raise_for_fault()
        assert "no such session" in str(info.value)

    def test_no_fault_passthrough(self):
        env = SoapEnvelope(operation="x")
        env.raise_for_fault()  # no-op

    def test_malformed_xml(self):
        with pytest.raises(MarshallingError):
            soap_decode(b"<unclosed>")

    def test_missing_operation(self):
        with pytest.raises(MarshallingError):
            soap_decode(b"<?xml version='1.0'?><Envelope><Body/></Envelope>")

    def test_unsupported_value(self):
        with pytest.raises(MarshallingError):
            soap_encode("op", {"bad": object()})

    def test_cpu_cost_scales(self):
        assert soap_cpu_seconds(10**6) > soap_cpu_seconds(10**3)
        assert soap_cpu_seconds(1000, cpu_factor=2.0) == pytest.approx(
            soap_cpu_seconds(1000) / 2)


class TestWsdl:
    def test_signature_stable_under_operation_order(self):
        ops = [Operation("a", (("x", "xsd:int"),)), Operation("b")]
        w1 = build_wsdl("S", ops)
        w2 = build_wsdl("S", list(reversed(ops)))
        assert w1.signature() == w2.signature()

    def test_signature_differs_on_params(self):
        w1 = build_wsdl("S", [Operation("a", (("x", "xsd:int"),))])
        w2 = build_wsdl("S", [Operation("a", (("x", "xsd:string"),))])
        assert w1.signature() != w2.signature()

    def test_compatibility_is_tmodel_match(self):
        clone = build_wsdl("OtherName", list(RENDER_SERVICE_WSDL.operations))
        assert clone.compatible_with(RENDER_SERVICE_WSDL)
        assert not DATA_SERVICE_WSDL.compatible_with(RENDER_SERVICE_WSDL)

    def test_xml_roundtrip(self):
        back = WsdlDocument.from_xml(RENDER_SERVICE_WSDL.to_xml())
        assert back.compatible_with(RENDER_SERVICE_WSDL)
        assert back.service_name == "RaveRenderService"

    def test_endpoint_in_xml(self):
        doc = build_wsdl("S", [Operation("a")],
                         endpoint="http://host:8080/axis/S")
        back = WsdlDocument.from_xml(doc.to_xml())
        assert back.endpoint == "http://host:8080/axis/S"

    def test_operation_lookup(self):
        assert RENDER_SERVICE_WSDL.operation("getCapacity").name == \
            "getCapacity"
        with pytest.raises(KeyError):
            RENDER_SERVICE_WSDL.operation("nope")

    def test_duplicate_operations_rejected(self):
        with pytest.raises(ValueError):
            build_wsdl("S", [Operation("a"), Operation("a")])

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            build_wsdl("", [])

    def test_malformed_xml(self):
        with pytest.raises(MarshallingError):
            WsdlDocument.from_xml(b"<oops")

    def test_digest_is_short_and_stable(self):
        d1 = RENDER_SERVICE_WSDL.signature_digest()
        d2 = RENDER_SERVICE_WSDL.signature_digest()
        assert d1 == d2 and len(d1) == 16


@pytest.fixture
def two_hosts():
    net = Network()
    net.add_host("a")
    net.add_host("b")
    net.add_link("a", "b", 100e6, 0.0002)
    return net


class TestChannels:
    def test_soap_channel_roundtrip(self, two_hosts):
        ch = SoapChannel(two_hosts, "a", "b")
        (op, body), timing = ch.send(("hello", {"x": 1}))
        assert op == "hello" and body == {"x": 1}
        assert timing.total_seconds > 0
        assert timing.nbytes > 100

    def test_soap_channel_advances_clock(self, two_hosts):
        ch = SoapChannel(two_hosts, "a", "b")
        before = two_hosts.sim.clock.now
        _, timing = ch.send(("op", {}))
        assert two_hosts.sim.clock.now == pytest.approx(
            before + timing.total_seconds)

    def test_binary_channel_roundtrip(self, two_hosts):
        ch = BinaryChannel(two_hosts, "a", "b")
        value = {"arr": np.arange(5, dtype=np.int64), "s": "x"}
        out, timing = ch.send(value)
        assert out["s"] == "x"
        assert np.array_equal(out["arr"], value["arr"])

    def test_binary_beats_soap_for_bulk(self, two_hosts):
        """The §4.3 design rule: binary for data, SOAP only for control."""
        payload = {"data": np.zeros(100_000, np.float32)}
        _, t_bin = BinaryChannel(two_hosts, "a", "b").send(payload)
        _, t_soap = SoapChannel(two_hosts, "a", "b").send(("op", payload))
        assert t_soap.nbytes > t_bin.nbytes
        assert t_soap.total_seconds > t_bin.total_seconds

    def test_introspective_binary_channel_slower(self, two_hosts):
        payload = {"data": np.zeros(100_000, np.float32)}
        _, fast = BinaryChannel(two_hosts, "a", "b").send(payload)
        _, slow = BinaryChannel(two_hosts, "a", "b",
                                introspective=True).send(payload)
        assert slow.marshal_seconds > 10 * fast.marshal_seconds

    def test_request_combines_timings(self, two_hosts):
        ch = SoapChannel(two_hosts, "a", "b")
        resp, timing = ch.request(("q", {"n": 1}), ("r", {"n": 2}))
        assert resp[0] == "r"
        assert timing.nbytes > 200   # both directions

    def test_unknown_host(self, two_hosts):
        with pytest.raises(NetworkError):
            SoapChannel(two_hosts, "a", "ghost")

    def test_soap_payload_type_checked(self, two_hosts):
        ch = SoapChannel(two_hosts, "a", "b")
        with pytest.raises(NetworkError):
            ch.send([1, 2, 3])

    def test_channel_statistics(self, two_hosts):
        ch = BinaryChannel(two_hosts, "a", "b")
        ch.send({"x": 1})
        ch.send({"x": 2})
        assert ch.messages_sent == 2
        assert ch.bytes_sent > 0
