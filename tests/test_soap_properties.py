"""Property-based tests for the SOAP/WSDL layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.services.soap import soap_decode, soap_encode
from repro.services.wsdl import Operation, WsdlDocument, build_wsdl

# XML 1.0 forbids most control characters; generated text sticks to
# printable content, which is what service payloads carry anyway.
xml_text = st.text(
    alphabet=st.characters(min_codepoint=0x20, max_codepoint=0x2FF,
                           exclude_characters="\x7f"),
    max_size=40)

soap_values = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(-2**62, 2**62),
        st.floats(allow_nan=False, allow_infinity=False),
        xml_text,
        st.binary(max_size=64),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(xml_text.filter(bool), children, max_size=4),
    ),
    max_leaves=15)


class TestSoapProperties:
    @given(st.dictionaries(xml_text.filter(bool), soap_values, max_size=5))
    @settings(max_examples=100, deadline=None)
    def test_body_roundtrip(self, body):
        env = soap_decode(soap_encode("op", body))
        assert env.operation == "op"
        assert env.body == body

    @given(st.integers(0, 2**32 - 1),
           st.sampled_from(["<f4", "<f8", "<i4", "<u2", "u1"]),
           st.integers(0, 50), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_ndarray_roundtrip(self, seed, dtype, n, cols):
        rng = np.random.default_rng(seed)
        arr = (rng.random((n, cols)) * 100).astype(np.dtype(dtype))
        env = soap_decode(soap_encode("op", {"a": arr}))
        back = env.body["a"]
        assert back.dtype == arr.dtype
        assert back.shape == arr.shape
        assert np.array_equal(back, arr)

    @given(xml_text.filter(bool), xml_text)
    @settings(max_examples=60, deadline=None)
    def test_fault_roundtrip(self, code, reason):
        env = soap_decode(soap_encode("op", {}, fault=(code, reason)))
        assert env.is_fault
        assert env.fault == (code, reason)

    @given(st.dictionaries(xml_text.filter(bool), soap_values, max_size=4))
    @settings(max_examples=40, deadline=None)
    def test_envelope_always_parseable_xml(self, body):
        from xml.etree import ElementTree as ET

        data = soap_encode("op", body)
        ET.fromstring(data)   # must not raise


op_names = st.text(
    alphabet=st.characters(min_codepoint=ord("a"), max_codepoint=ord("z")),
    min_size=1, max_size=12)
params = st.lists(
    st.tuples(op_names, st.sampled_from(
        ["xsd:string", "xsd:long", "xsd:double", "rave:struct"])),
    max_size=4).map(tuple)


class TestWsdlProperties:
    @given(st.lists(
        st.builds(Operation, name=op_names, inputs=params, outputs=params),
        min_size=1, max_size=5, unique_by=lambda op: op.name))
    @settings(max_examples=60, deadline=None)
    def test_xml_roundtrip_preserves_signature(self, operations):
        doc = build_wsdl("Svc", operations)
        back = WsdlDocument.from_xml(doc.to_xml())
        assert back.signature() == doc.signature()
        assert back.compatible_with(doc)

    @given(st.lists(
        st.builds(Operation, name=op_names, inputs=params, outputs=params),
        min_size=2, max_size=5, unique_by=lambda op: op.name))
    @settings(max_examples=40, deadline=None)
    def test_signature_order_independent(self, operations):
        a = build_wsdl("Svc", operations)
        b = build_wsdl("Svc", list(reversed(operations)))
        assert a.signature() == b.signature()

    @given(st.builds(Operation, name=op_names, inputs=params,
                     outputs=params))
    @settings(max_examples=40, deadline=None)
    def test_adding_an_operation_changes_signature(self, extra):
        base = build_wsdl("Svc", [Operation("ping")])
        if extra.name == "ping":
            return
        extended = build_wsdl("Svc", [Operation("ping"), extra])
        assert base.signature() != extended.signature()
