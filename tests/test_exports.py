"""Public-API integrity: every exported name exists and imports cleanly."""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.scenegraph",
    "repro.render",
    "repro.services",
    "repro.network",
    "repro.data",
    "repro.compression",
    "repro.obs",
    "repro.hardware",
    "repro.collab",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_names_resolve(package):
    mod = importlib.import_module(package)
    assert hasattr(mod, "__all__"), f"{package} lacks __all__"
    for name in mod.__all__:
        assert hasattr(mod, name), f"{package}.{name} missing"


@pytest.mark.parametrize("package", PACKAGES)
def test_package_docstring(package):
    mod = importlib.import_module(package)
    assert mod.__doc__ and len(mod.__doc__.strip()) > 30, \
        f"{package} needs a real docstring"


def test_every_module_has_docstring():
    import pkgutil

    import repro

    missing = []
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        mod = importlib.import_module(info.name)
        if not (mod.__doc__ and mod.__doc__.strip()):
            missing.append(info.name)
    assert not missing, f"modules without docstrings: {missing}"


def test_public_classes_documented():
    """Spot-check: classes reachable from the package roots carry docs."""
    import inspect

    for package in PACKAGES:
        mod = importlib.import_module(package)
        for name in getattr(mod, "__all__", []):
            obj = getattr(mod, name)
            if inspect.isclass(obj):
                assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2
