"""Every registered ``rave_*`` family is observable where it should be.

``ravelint``'s metric-registry rule cross-checks that each
``MetricsRegistry`` registration in ``src/repro`` has a consumer in
``obs/rules.py``, ``obs/dashboard.py``, the tests or the benchmarks.
These tests are the honest half of that contract: instead of
grandfathering "registered but never read back" findings into the
baseline, they drive each subsystem and assert its families actually
appear with sane values — so a renamed or never-incremented metric fails
here, and an unconsumed registration fails the lint clean-tree test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.data.generators import galleon
from repro.render.compositor import FrameSynchronizer
from repro.render.framebuffer import FrameBuffer, split_tiles
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SetCamera
from repro.testbed import build_testbed


@pytest.fixture
def loaded_testbed():
    """A testbed that has rendered a frame and distributed an update."""
    tb = build_testbed()
    tree = SceneTree("demo")
    tree.add(MeshNode(galleon().normalized(), name="ship"))
    tree.add(CameraNode(name="shared-cam"))
    session = tb.publish_tree("demo", tree)
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "demo")
    with obs.observed(clock=tb.clock) as bundle:
        client = tb.thin_client("coverage-user")
        client.attach(rs, rsession.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))
        client.request_frame(100, 100)
        cam = session.tree.cameras()[0]
        tb.data_service.subscribe("demo", "coverage-sub", host="athlon")
        tb.data_service.publish_update("demo", SetCamera(
            node_id=cam.node_id, position=np.array([3.0, 0.0, 0.0]),
            target=np.zeros(3)))
        yield tb, rs, bundle


def scraped(telemetry) -> dict:
    return telemetry.scrape(now=0.0)["metrics"]


class TestRenderServiceFamilies:
    def test_frame_counters_and_gauges(self, loaded_testbed):
        _, rs, _ = loaded_testbed
        metrics = scraped(rs.telemetry)
        assert metrics["rave_rs_frames_total"]["series"][0]["value"] == 1.0
        assert metrics["rave_rs_frame_seconds"]["series"][0]["count"] == 1
        assert metrics["rave_rs_sessions"]["series"][0]["value"] == 1.0
        assert metrics["rave_rs_committed_polygons"]["series"][0][
            "value"] > 0.0
        assert "rave_rs_fps" in metrics
        assert "rave_rs_utilisation" in metrics


class TestDataServiceFamilies:
    def test_session_and_update_families(self, loaded_testbed):
        tb, _, _ = loaded_testbed
        metrics = scraped(tb.data_service.telemetry)
        assert metrics["rave_ds_sessions"]["series"][0]["value"] == 1.0
        # the render session and the explicit test subscriber
        assert metrics["rave_ds_subscribers"]["series"][0]["value"] >= 1.0
        assert metrics["rave_ds_mirrors"]["series"][0]["value"] == 0.0
        assert metrics["rave_ds_subscriptions_total"]["series"][0][
            "value"] >= 1.0
        assert metrics["rave_ds_updates_total"]["series"][0]["value"] >= 1.0
        assert metrics["rave_ds_update_bytes_total"]["series"][0][
            "value"] > 0.0
        assert metrics["rave_ds_deliveries_total"]["series"][0][
            "value"] >= 1.0


class TestUddiRegistryFamilies:
    def test_directory_gauges(self, loaded_testbed):
        tb, _, _ = loaded_testbed
        metrics = scraped(tb.registry.telemetry)
        assert metrics["rave_uddi_businesses"]["series"][0]["value"] >= 1.0
        assert metrics["rave_uddi_tmodels"]["series"][0]["value"] >= 1.0
        assert metrics["rave_uddi_services"]["series"][0]["value"] >= 1.0
        assert "rave_uddi_queries_total" in metrics


class TestThinClientFamilies:
    def test_frame_latency_histogram(self, loaded_testbed):
        _, _, bundle = loaded_testbed
        assert bundle.metrics.value("rave_client_frames_total",
                                    client="coverage-user") == 1.0
        assert bundle.metrics.value(
            "rave_client_frame_latency_seconds") == 1


class TestFrameSynchronizerFamilies:
    def test_release_drop_and_late_counters(self):
        tiles = split_tiles(8, 8, 2, 1)

        def part(tile, value):
            fb = FrameBuffer(tile.width, tile.height)
            fb.color[:] = value
            return fb

        with obs.observed() as bundle:
            sync = FrameSynchronizer(tiles)
            sync.submit(0, 0, part(tiles[0], 1))   # frame 0 never completes
            sync.submit(1, 0, part(tiles[0], 2))
            sync.submit(1, 1, part(tiles[1], 3))
            assert sync.take_frame(FrameBuffer(8, 8)) == 1
            sync.submit(0, 1, part(tiles[1], 4))   # late tile, watermarked
            assert bundle.metrics.value(
                "rave_sync_frames_released_total") == 1.0
            assert bundle.metrics.value(
                "rave_sync_frames_dropped_total") == 1.0
            assert bundle.metrics.value(
                "rave_sync_late_tiles_total") == 1.0


class TestAutoscalerFamilies:
    def test_scale_decisions_counted(self):
        from repro.core.autoscale import RecruitmentAutoscaler
        from repro.core.session import CollaborativeSession
        from repro.obs.rules import GRID_OVERLOAD_KIND, Alert

        tb = build_testbed(monitor_host="registry-host")
        tree = SceneTree("scaled")
        tree.add(MeshNode(galleon(5_000).normalized(), name="ship"))
        tb.publish_tree("scaled", tree)
        cs = CollaborativeSession(tb.data_service, "scaled",
                                  recruiter=tb.recruiter())
        cs.connect(tb.render_service("centrino"))
        cs.place_dataset()
        scaler = RecruitmentAutoscaler(cs, tb.monitor,
                                       drive_migration=False)
        alert = Alert(rule="grid-overload", kind=GRID_OVERLOAD_KIND,
                      service="_grid", since=5.0, last_time=10.0,
                      value=2.0, severity="critical")
        with obs.observed(clock=tb.clock) as bundle:
            events = scaler.evaluate([alert], now=10.0)
            assert events and events[0].kind == "grow"
            assert bundle.metrics.value("rave_autoscale_events_total",
                                        kind="grow") >= 1.0
