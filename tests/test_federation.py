"""Data-service federation: sharding, parallel bootstrap, routed updates."""

import numpy as np
import pytest

from repro.data.generators import galleon, skeleton
from repro.errors import SessionError
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SetProperty
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService
from repro.services.federation import DataFederation


@pytest.fixture
def fed(testbed):
    members = [testbed.data_service]
    for i, host in enumerate(("athlon", "onyx")):
        container = ServiceContainer(host, testbed.network,
                                     http_port=9400 + i)
        members.append(DataService(f"rave-data-{host}", container))
    return testbed, DataFederation("rave-fed", members)


def sharded_scene(n_pieces=6, size=4000):
    tree = SceneTree("sharded")
    for i in range(n_pieces):
        tree.add(MeshNode(skeleton(size).normalized(), name=f"part{i}"))
    return tree


class TestSharding:
    def test_create_session_spreads_geometry(self, fed):
        tb, federation = fed
        tree = sharded_scene()
        session = federation.create_session("big", tree)
        assert len(session.shards) == 3
        all_ids = set()
        for shard in session.shards:
            assert shard.node_ids
            assert not (shard.node_ids & all_ids)  # disjoint
            all_ids |= shard.node_ids
        geo_ids = {n.node_id for n in tree.geometry_nodes()}
        assert all_ids == geo_ids

    def test_shards_balanced_by_payload(self, fed):
        tb, federation = fed
        session = federation.create_session("bal", sharded_scene(9))
        loads = []
        for shard in session.shards:
            member_tree = shard.member.session(
                shard.shard_session_id).tree
            loads.append(member_tree.total_payload_bytes())
        assert max(loads) < 2.0 * min(loads)

    def test_empty_scene_rejected(self, fed):
        _, federation = fed
        with pytest.raises(SessionError):
            federation.create_session("empty", SceneTree())

    def test_duplicate_session_rejected(self, fed):
        _, federation = fed
        federation.create_session("dup", sharded_scene(3))
        with pytest.raises(SessionError):
            federation.create_session("dup", sharded_scene(3))

    def test_single_member_federation(self, testbed):
        federation = DataFederation("solo", [testbed.data_service])
        session = federation.create_session("solo-session",
                                            sharded_scene(3))
        assert len(session.shards) == 1

    def test_duplicate_members_rejected(self, testbed):
        with pytest.raises(SessionError):
            DataFederation("bad", [testbed.data_service,
                                   testbed.data_service])


class TestParallelBootstrap:
    def test_merged_tree_complete(self, fed):
        tb, federation = fed
        tree = sharded_scene()
        federation.create_session("boot", tree)
        merged, timing = federation.subscribe("boot", "sub", "centrino")
        assert merged.total_polygons() == tree.total_polygons()
        assert timing.nbytes > 0

    def test_merged_world_transforms_preserved(self, fed):
        from repro.scenegraph.nodes import TransformNode

        tb, federation = fed
        tree = SceneTree("xf")
        xf = tree.add(TransformNode.from_translation((3.0, 0, 0)))
        tree.add(MeshNode(galleon().normalized(), name="moved"), parent=xf)
        tree.add(MeshNode(galleon().normalized(), name="still"))
        federation.create_session("xf", tree)
        merged, _ = federation.subscribe("xf", "sub", "centrino")
        moved = merged.find_by_name("moved")[0]
        w = merged.world_transform(moved)
        assert np.allclose(w[:3, 3], [3, 0, 0])

    def test_parallel_faster_than_serial(self, fed, testbed):
        """The federation's purpose: bootstrap time = slowest shard, not
        the sum — sharding alleviates the marshalling bottleneck."""
        tb, federation = fed
        tree = sharded_scene(6, size=8000)
        federation.create_session("par", tree)

        # single-service baseline for the whole scene
        clone = SceneTree.from_wire(tree.to_wire())
        tb.data_service.create_session("serial", clone, charge_time=False)
        t0 = tb.clock.now
        tb.data_service.subscribe("serial", "serial-sub", "centrino")
        serial_seconds = tb.clock.now - t0

        t0 = tb.clock.now
        federation.subscribe("par", "par-sub", "centrino")
        parallel_seconds = tb.clock.now - t0
        assert parallel_seconds < 0.6 * serial_seconds

    def test_clock_restored_on_error(self, fed):
        tb, federation = fed
        federation.create_session("err", sharded_scene(3))
        real_clock = tb.network.sim.clock
        federation.subscribe("err", "ok", "centrino")
        with pytest.raises(SessionError):
            federation.subscribe("err", "ok", "centrino")  # duplicate name
        assert tb.network.sim.clock is real_clock


class TestRoutedUpdates:
    def test_update_reaches_owning_shard(self, fed):
        tb, federation = fed
        tree = sharded_scene(4)
        session = federation.create_session("route", tree)
        target = tree.geometry_nodes()[0]
        shard = session.shard_for(target.node_id)
        federation.publish_update("route", SetProperty(
            node_id=target.node_id, field_name="name", value="renamed"))
        shard_tree = shard.member.session(shard.shard_session_id).tree
        assert shard_tree.node(target.node_id).name == "renamed"

    def test_update_to_unknown_node_rejected(self, fed):
        _, federation = fed
        federation.create_session("route2", sharded_scene(2))
        with pytest.raises(SessionError):
            federation.publish_update("route2", SetProperty(
                node_id=999_999, field_name="name", value="x"))

    def test_subscribers_of_shard_notified(self, fed):
        tb, federation = fed
        tree = sharded_scene(4)
        session = federation.create_session("notify", tree)
        got = []
        federation.subscribe("notify", "watcher", "centrino",
                             on_update=got.append)
        target = tree.geometry_nodes()[0]
        federation.publish_update("notify", SetProperty(
            node_id=target.node_id, field_name="name", value="seen"))
        assert len(got) == 1
