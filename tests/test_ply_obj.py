"""PLY and OBJ readers/writers, and the paper's PLY→OBJ ingest pipeline."""

import numpy as np
import pytest

from repro.data.convert import ply_to_obj
from repro.data.meshes import Mesh
from repro.data.obj import read_obj, write_obj
from repro.data.ply import read_ply, write_ply
from repro.errors import DataFormatError


@pytest.fixture
def colored_quad(quad) -> Mesh:
    colors = np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 1]],
                      dtype=np.float32)
    return Mesh(quad.vertices, quad.faces, colors, name="cquad")


class TestPly:
    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip(self, tmp_path, small_galleon, binary):
        p = tmp_path / "m.ply"
        write_ply(small_galleon, p, binary=binary)
        back = read_ply(p)
        assert back.n_triangles == small_galleon.n_triangles
        assert np.allclose(back.vertices, small_galleon.vertices, atol=1e-4)
        assert np.array_equal(back.faces, small_galleon.faces)

    @pytest.mark.parametrize("binary", [True, False])
    def test_roundtrip_colors(self, tmp_path, colored_quad, binary):
        p = tmp_path / "c.ply"
        write_ply(colored_quad, p, binary=binary)
        back = read_ply(p)
        assert back.colors is not None
        assert np.allclose(back.colors, colored_quad.colors, atol=1 / 255)

    def test_binary_smaller_than_ascii(self, tmp_path, small_galleon):
        nb = write_ply(small_galleon, tmp_path / "b.ply", binary=True)
        na = write_ply(small_galleon, tmp_path / "a.ply", binary=False)
        assert nb < na

    def test_rejects_non_ply(self, tmp_path):
        p = tmp_path / "x.ply"
        p.write_bytes(b"not a ply file\n")
        with pytest.raises(DataFormatError):
            read_ply(p)

    def test_rejects_truncated_binary(self, tmp_path, quad):
        p = tmp_path / "t.ply"
        write_ply(quad, p, binary=True)
        data = p.read_bytes()
        p.write_bytes(data[:-10])
        with pytest.raises(DataFormatError):
            read_ply(p)

    def test_rejects_quad_faces(self, tmp_path):
        p = tmp_path / "q.ply"
        p.write_text(
            "ply\nformat ascii 1.0\nelement vertex 4\n"
            "property float x\nproperty float y\nproperty float z\n"
            "element face 1\nproperty list uchar int vertex_indices\n"
            "end_header\n0 0 0\n1 0 0\n1 1 0\n0 1 0\n4 0 1 2 3\n")
        with pytest.raises(DataFormatError):
            read_ply(p)

    def test_rejects_missing_end_header(self, tmp_path):
        p = tmp_path / "h.ply"
        p.write_bytes(b"ply\nformat ascii 1.0\nelement vertex 1\n")
        with pytest.raises(DataFormatError):
            read_ply(p)


class TestObj:
    def test_roundtrip(self, tmp_path, small_galleon):
        p = tmp_path / "m.obj"
        write_obj(small_galleon, p)
        back = read_obj(p)
        assert back.n_triangles == small_galleon.n_triangles
        assert np.allclose(back.vertices, small_galleon.vertices,
                           rtol=1e-4, atol=1e-5)
        assert np.array_equal(back.faces, small_galleon.faces)

    def test_roundtrip_colors(self, tmp_path, colored_quad):
        p = tmp_path / "c.obj"
        write_obj(colored_quad, p)
        back = read_obj(p)
        assert back.colors is not None
        assert np.allclose(back.colors, colored_quad.colors, atol=1e-4)

    def test_fan_triangulation(self, tmp_path):
        p = tmp_path / "poly.obj"
        p.write_text("v 0 0 0\nv 1 0 0\nv 1 1 0\nv 0 1 0\nf 1 2 3 4\n")
        m = read_obj(p)
        assert m.n_triangles == 2

    def test_slash_indices(self, tmp_path):
        p = tmp_path / "s.obj"
        p.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nvn 0 0 1\nvt 0 0\n"
                     "f 1/1/1 2/1/1 3/1/1\n")
        m = read_obj(p)
        assert m.n_triangles == 1

    def test_negative_indices(self, tmp_path):
        p = tmp_path / "n.obj"
        p.write_text("v 0 0 0\nv 1 0 0\nv 0 1 0\nf -3 -2 -1\n")
        m = read_obj(p)
        assert np.array_equal(m.faces, [[0, 1, 2]])

    def test_comments_and_groups_ignored(self, tmp_path):
        p = tmp_path / "g.obj"
        p.write_text("# header\no thing\ng grp\ns off\nusemtl m\n"
                     "v 0 0 0\nv 1 0 0\nv 0 1 0\nf 1 2 3\n")
        assert read_obj(p).n_triangles == 1

    def test_out_of_range_face(self, tmp_path):
        p = tmp_path / "bad.obj"
        p.write_text("v 0 0 0\nf 1 2 3\n")
        with pytest.raises(DataFormatError):
            read_obj(p)

    def test_unknown_directive(self, tmp_path):
        p = tmp_path / "u.obj"
        p.write_text("frobnicate 1 2 3\n")
        with pytest.raises(DataFormatError):
            read_obj(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.obj"
        p.write_text("# nothing\n")
        with pytest.raises(DataFormatError):
            read_obj(p)


class TestConversion:
    def test_ply_to_obj_pipeline(self, tmp_path, small_galleon):
        src = tmp_path / "g.ply"
        write_ply(small_galleon, src, binary=True)
        report = ply_to_obj(src)
        assert report.n_triangles == small_galleon.n_triangles
        assert (tmp_path / "g.obj").exists()
        assert report.output_bytes > 0
        assert report.expansion > 0.5  # text vs binary

    def test_explicit_destination(self, tmp_path, quad):
        src = tmp_path / "q.ply"
        dst = tmp_path / "out" "q2.obj"
        write_ply(quad, src)
        report = ply_to_obj(src, dst)
        assert report.destination.endswith("q2.obj")

    def test_verification_catches_topology_change(self, tmp_path, quad,
                                                  monkeypatch):
        import repro.data.convert as convert

        src = tmp_path / "q.ply"
        write_ply(quad, src)

        def bad_read(path):
            return Mesh(quad.vertices[:3], np.array([[0, 1, 2]], np.int32))

        monkeypatch.setattr(convert, "read_obj", bad_read)
        with pytest.raises(AssertionError):
            ply_to_obj(src)
