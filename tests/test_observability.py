"""The observability layer: metrics, tracing, exporters, instrumentation.

Unit coverage for the primitives in ``repro.obs`` plus end-to-end
assertions that the instrumented hot paths (scheduler, migrator, network,
streaming, compression, session recovery) actually populate an installed
registry — and cost nothing when none is installed.
"""

from __future__ import annotations

import json
import math

import pytest

from repro import obs
from repro.obs import (
    NULL_OBS,
    NULL_REGISTRY,
    NULL_TRACER,
    MetricsRegistry,
    Observability,
    Tracer,
    prometheus_text,
    snapshot,
    write_snapshot,
)


@pytest.fixture
def bundle():
    """A fresh registry + tracer installed for the duration of the test."""
    with obs.observed() as b:
        yield b


# -- metrics primitives --------------------------------------------------------------


class TestInstruments:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        c = reg.counter("c_total")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self):
        g = MetricsRegistry().gauge("g")
        g.set(5)
        g.inc(2)
        g.dec(4)
        assert g.value == 3.0

    def test_histogram_buckets_and_moments(self):
        h = MetricsRegistry().histogram("h", buckets=(1.0, 10.0))
        for v in (0.5, 2.0, 3.0, 100.0):
            h.observe(v)
        assert h.count == 4
        assert h.sum == pytest.approx(105.5)
        assert h.mean == pytest.approx(105.5 / 4)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[1.0] == 1
        assert cumulative[10.0] == 3
        assert cumulative[float("inf")] == 4

    def test_histogram_requires_sorted_buckets(self):
        with pytest.raises(ValueError):
            MetricsRegistry().histogram("h", buckets=(2.0, 1.0))

    def test_histogram_boundary_is_le(self):
        """Prometheus semantics: an observation equal to a bound lands in
        that bucket (le = less-or-equal)."""
        h = MetricsRegistry().histogram("h", buckets=(1.0,))
        h.observe(1.0)
        assert dict(h.cumulative_buckets())[1.0] == 1


class TestMetricsRegistry:
    def test_same_labels_same_child(self):
        reg = MetricsRegistry()
        a = reg.counter("req_total", method="get")
        b = reg.counter("req_total", method="get")
        c = reg.counter("req_total", method="put")
        assert a is b and a is not c
        a.inc()
        assert reg.value("req_total", method="get") == 1
        assert reg.value("req_total", method="put") == 0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.counter("x_total", a="1", b="2").inc()
        assert reg.value("x_total", b="2", a="1") == 1

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("bad name")
        with pytest.raises(ValueError):
            MetricsRegistry().counter("9starts_with_digit")

    def test_value_on_histogram_is_count(self):
        reg = MetricsRegistry()
        reg.histogram("h").observe(0.2)
        assert reg.value("h") == 1

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("a_total", "help a", mode="x").inc(2)
        reg.histogram("b_seconds").observe(0.01)
        snap = reg.snapshot()
        assert snap["a_total"]["kind"] == "counter"
        assert snap["a_total"]["help"] == "help a"
        assert snap["a_total"]["series"][0] == {
            "labels": {"mode": "x"}, "value": 2.0}
        hist = snap["b_seconds"]["series"][0]
        assert hist["count"] == 1
        assert "+Inf" in hist["buckets"]


# -- tracing -------------------------------------------------------------------------


class TestTracer:
    def test_record_and_select(self):
        t = Tracer()
        t.record("render", 0.0, 1.0, frame=0)
        t.record("transfer", 1.0, 2.0, frame=0)
        t.record("render", 2.0, 3.0, frame=1)
        assert len(t.select("render")) == 2
        assert len(t.select(frame=0)) == 2
        assert t.select("render", frame=1)[0].duration == pytest.approx(1.0)

    def test_rejects_negative_duration(self):
        with pytest.raises(ValueError):
            Tracer().record("x", 2.0, 1.0)

    def test_chains_group_and_order(self):
        t = Tracer()
        t.record("transfer", 1.0, 2.0, frame=0)
        t.record("render", 0.0, 1.0, frame=0)
        t.record("blit", 2.0, 2.1, frame=0)
        t.record("render", 1.0, 2.0, frame=1)
        t.record("other", 0.0, 9.0)            # no frame attr: excluded
        chains = t.chains()
        assert sorted(chains) == [0, 1]
        assert [s.name for s in chains[0]] == ["render", "transfer", "blit"]

    def test_span_context_uses_clock(self):
        from repro.network.clock import Simulator

        sim = Simulator()
        t = Tracer(clock=sim.clock)
        with t.span("work", job="j"):
            sim.clock.advance(0.5)
        (span,) = t.spans
        assert span.duration == pytest.approx(0.5)
        assert span.attrs == {"job": "j"}

    def test_span_without_clock_rejected(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("x"):
                pass

    def test_capacity_bound_drops(self):
        t = Tracer(capacity=2)
        for i in range(5):
            t.record("s", i, i + 1)
        assert len(t.spans) == 2
        assert t.dropped == 3
        t.clear()
        assert t.spans == [] and t.dropped == 0


# -- the no-op fast path -------------------------------------------------------------


class TestNoopPath:
    def test_default_active_is_null(self):
        assert obs.active() is NULL_OBS
        assert not NULL_OBS.enabled

    def test_null_registry_shares_instruments(self):
        a = NULL_REGISTRY.counter("x_total", mode="a")
        b = NULL_REGISTRY.counter("y_total", mode="b")
        assert a is b                       # one shared no-op per kind
        a.inc(5)
        assert a.value == 0.0
        NULL_REGISTRY.gauge("g").set(9)
        NULL_REGISTRY.histogram("h").observe(1.0)
        assert NULL_REGISTRY.families() == []

    def test_null_tracer_stores_nothing(self):
        NULL_TRACER.record("render", 0.0, 1.0, frame=0)
        assert NULL_TRACER.spans == []
        with NULL_TRACER.span("x"):
            pass
        assert NULL_TRACER.spans == []

    def test_install_uninstall(self):
        bundle = obs.install()
        try:
            assert obs.active() is bundle and bundle.enabled
        finally:
            obs.uninstall()
        assert obs.active() is NULL_OBS

    def test_observed_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.observed():
                raise RuntimeError("boom")
        assert obs.active() is NULL_OBS

    def test_instrumented_path_off_by_default(self, small_testbed):
        """With nothing installed, running traffic must register nothing."""
        tb = small_testbed
        tb.network.send("centrino", "athlon", 10_000)
        tb.network.sim.run()
        assert not NULL_OBS.metrics.families()
        assert NULL_OBS.tracer.spans == []


# -- exporters -----------------------------------------------------------------------


class TestExporters:
    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("rave_demo_total", "a demo counter", mode="x").inc(3)
        reg.gauge("rave_level").set(0.5)
        reg.histogram("rave_lat_seconds", "latency",
                      buckets=(0.1, 1.0)).observe(0.05)
        return reg

    def test_prometheus_text_format(self):
        text = prometheus_text(self.make_registry())
        assert "# HELP rave_demo_total a demo counter" in text
        assert "# TYPE rave_demo_total counter" in text
        assert 'rave_demo_total{mode="x"} 3' in text
        assert "rave_level 0.5" in text
        assert 'rave_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'rave_lat_seconds_bucket{le="+Inf"} 1' in text
        assert "rave_lat_seconds_sum 0.05" in text
        assert "rave_lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_contents(self):
        from repro.network.clock import Simulator

        sim = Simulator()
        sim.clock.advance(2.5)
        tracer = Tracer(clock=sim.clock)
        tracer.record("render", 0.0, 1.0, frame=0)
        tracer.record("blit", 1.0, 1.1, frame=0)
        snap = snapshot(self.make_registry(), tracer, clock=sim.clock,
                        meta={"scenario": "unit"})
        assert snap["format"] == "rave-observability-snapshot/1"
        assert snap["simulated_seconds"] == pytest.approx(2.5)
        assert snap["meta"] == {"scenario": "unit"}
        assert snap["metrics"]["rave_demo_total"]["kind"] == "counter"
        assert snap["frames"] == {"0": ["render", "blit"]}
        assert snap["spans_dropped"] == 0

    def test_write_snapshot_roundtrips(self, tmp_path):
        path = tmp_path / "nested" / "snap.json"
        write_snapshot(path, self.make_registry())
        data = json.loads(path.read_text())
        assert data["format"] == "rave-observability-snapshot/1"
        assert data["simulated_seconds"] is None
        assert "spans" not in data

    def test_json_serialisable_with_inf_free_payload(self):
        """Histogram +Inf bounds must not leak as non-JSON floats."""
        text = json.dumps(snapshot(self.make_registry()))
        assert not math.isinf(max(
            (v for v in _walk_numbers(json.loads(text))), default=0.0))


def _walk_numbers(value):
    if isinstance(value, dict):
        for v in value.values():
            yield from _walk_numbers(v)
    elif isinstance(value, list):
        for v in value:
            yield from _walk_numbers(v)
    elif isinstance(value, (int, float)):
        yield float(value)


class TestExpositionEdgeCases:
    """Prometheus text-format conformance on hostile inputs."""

    def test_label_values_escape_backslash_quote_and_newline(self):
        reg = MetricsRegistry()
        reg.counter("rave_paths_total",
                    path='C:\\render\\"cache"\nline2').inc()
        text = prometheus_text(reg)
        assert ('rave_paths_total{path='
                '"C:\\\\render\\\\\\"cache\\"\\nline2"} 1') in text
        # the escaped line must stay a single exposition line
        line = next(ln for ln in text.splitlines()
                    if ln.startswith("rave_paths_total{"))
        assert line.endswith("} 1")

    def test_gauge_renders_minus_inf_and_nan(self):
        reg = MetricsRegistry()
        reg.gauge("rave_floor", kind="neg").set(float("-inf"))
        reg.gauge("rave_floor", kind="nan").set(float("nan"))
        text = prometheus_text(reg)
        assert 'rave_floor{kind="neg"} -Inf' in text
        assert 'rave_floor{kind="nan"} NaN' in text

    def test_histogram_infinite_bucket_bound_label(self):
        reg = MetricsRegistry()
        reg.histogram("rave_t_seconds", buckets=(0.5,)).observe(2.0)
        text = prometheus_text(reg)
        assert 'rave_t_seconds_bucket{le="0.5"} 0' in text
        assert 'rave_t_seconds_bucket{le="+Inf"} 1' in text

    def test_escaped_exposition_still_one_series_per_line(self):
        reg = MetricsRegistry()
        reg.counter("rave_x_total", a='v"1"', b="w\n2").inc(4)
        text = prometheus_text(reg)
        lines = [ln for ln in text.splitlines()
                 if ln.startswith("rave_x_total")]
        assert lines == ['rave_x_total{a="v\\"1\\"",b="w\\n2"} 4']


class TestSnapshotMetadata:
    """Registry metadata + the ``wall_meta`` federation slot."""

    def make_registry(self):
        reg = MetricsRegistry()
        reg.counter("rave_a_total").inc(2)
        reg.gauge("rave_b", mode="x").set(1.0)
        reg.gauge("rave_b", mode="y").set(2.0)
        reg.histogram("rave_c_seconds", buckets=(1.0,)).observe(0.5)
        reg.histogram("rave_c_seconds", buckets=(1.0,)).observe(0.7)
        return reg

    def test_registry_stats_counts(self):
        stats = self.make_registry().stats()
        assert stats == {"families": 3, "series": 4, "samples": 5}

    def test_snapshot_carries_registry_metadata(self):
        from repro.network.clock import Simulator

        sim = Simulator()
        sim.clock.advance(4.0)
        snap = snapshot(self.make_registry(), clock=sim.clock,
                        source="bench")
        assert snap["registry"]["families"] == 3
        assert snap["wall_meta"]["bench"]["simulated_seconds"] \
            == pytest.approx(4.0)
        assert snap["wall_meta"]["bench"]["series"] == 4

    def test_wall_meta_slots_federate_without_collision(self):
        a = snapshot(self.make_registry(), source="svc-a")
        b = snapshot(MetricsRegistry(), source="svc-b")
        merged = {**a["wall_meta"], **b["wall_meta"]}
        assert set(merged) == {"svc-a", "svc-b"}
        assert merged["svc-a"]["families"] == 3
        assert merged["svc-b"]["families"] == 0

    def test_snapshot_flight_recorder_section(self):
        from repro.obs.recorder import FlightRecorder

        recorder = FlightRecorder(capacity=8)
        recorder.note("placement", time=1.0, detail="rs-a")
        recorder.dump("unit-test", time=2.0)
        snap = snapshot(MetricsRegistry(), recorder=recorder)
        section = snap["flight_recorder"]
        assert section["events_seen"] == 1
        assert section["capacity"] == 8
        assert section["dumps"][0]["reason"] == "unit-test"

    def test_snapshot_extra_sections_merge_top_level(self):
        snap = snapshot(MetricsRegistry(),
                        extra={"monitor": {"format": "x"}})
        assert snap["monitor"] == {"format": "x"}


# -- instrumented paths, end to end --------------------------------------------------


class TestNetworkMetrics:
    def test_send_populates_counters(self, small_testbed, bundle):
        tb = small_testbed
        tb.network.send("centrino", "athlon", 50_000)
        tb.network.sim.run()
        m = bundle.metrics
        assert m.value("rave_net_transfers_total") == 1
        assert m.value("rave_net_bytes_total") == 50_000
        assert m.value("rave_net_transfer_seconds") == 1   # histogram count
        # every link on the path carried exactly that payload
        link_family = next(f for f in m.families()
                           if f.name == "rave_net_link_bytes_total")
        assert link_family.children
        assert all(child.value == 50_000
                   for child in link_family.children.values())


class TestSchedulerMetrics:
    def test_placement_counts(self, testbed, bundle):
        from repro.core.cost import NodeCost
        from repro.core.scheduler import RenderServiceScheduler

        tb = testbed
        scheduler = RenderServiceScheduler(tb.data_service, target_fps=10)
        pool = list(tb.render_services.values())
        placement = scheduler.place(NodeCost(polygons=100_000), pool)
        m = bundle.metrics
        assert m.value("rave_scheduler_placements_total",
                       mode=placement.mode) == 1
        assert m.value("rave_scheduler_interrogations_total") >= len(pool)
        assert m.value("rave_scheduler_interrogation_seconds") >= len(pool)
        assert m.value("rave_scheduler_placement_interrogation_seconds") == 1

    def test_refusal_counts(self, small_testbed, bundle):
        from repro.core.cost import NodeCost
        from repro.core.scheduler import RenderServiceScheduler
        from repro.errors import InsufficientResources

        tb = small_testbed
        scheduler = RenderServiceScheduler(tb.data_service)
        with pytest.raises(InsufficientResources):
            scheduler.place(NodeCost(polygons=10**12),
                            list(tb.render_services.values()))
        assert bundle.metrics.value("rave_scheduler_refusals_total") == 1
        assert not bundle.metrics.has("rave_scheduler_placements_total")


class _FakeService:
    def __init__(self, name, rate, committed=0.0):
        self.name = name
        self._rate = rate
        self._committed = committed

    def capacity(self):
        from repro.core.capacity import RenderCapacity

        return RenderCapacity(
            polygons_per_second=self._rate, points_per_second=self._rate,
            voxels_per_second=0, texture_memory_bytes=2**30,
            volume_support=False)

    def committed_polygons(self):
        return self._committed

    def utilisation(self, target_fps=10.0):
        return self._committed / (self._rate / target_fps)


class _FakeSession:
    def __init__(self, tree, services, shares):
        self.master_tree = tree
        self.render_services = services
        self._shares = shares
        self.recruiter = None

    def share_of(self, service):
        return self._shares[service.name]

    def reassign_nodes(self, src, dst, node_ids):
        self._shares[src.name] -= set(node_ids)
        self._shares[dst.name] |= set(node_ids)
        moved = sum(self.master_tree.node(n).n_polygons for n in node_ids)
        src._committed -= moved
        dst._committed += moved

    def recruit_more(self):
        return []


class TestMigrationMetrics:
    def build(self):
        from repro.data.generators import skeleton
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        tree = SceneTree()
        ids = []
        for i in range(6):
            node = tree.add(MeshNode(skeleton(2000).normalized(),
                                     name=f"part{i}"))
            ids.append(node.node_id)
        per_node = tree.node(ids[0]).n_polygons
        slow = _FakeService("slow", rate=3e4, committed=per_node * 6)
        fast = _FakeService("fast", rate=1e7, committed=0.0)
        session = _FakeSession(tree, [slow, fast],
                               {"slow": set(ids), "fast": set()})
        return session, slow, fast

    def test_overload_migration_counted(self, bundle):
        from repro.core.migration import WorkloadMigrator

        session, slow, fast = self.build()
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        for i in range(8):
            migrator.record_frame(slow, time=float(i), fps=2.0)
        actions = migrator.plan(session)
        assert actions
        m = bundle.metrics
        assert m.value("rave_migration_triggers_total",
                       kind="overload") >= 1
        assert m.value("rave_migration_actions_total",
                       reason="overload") == len(actions)
        assert m.value("rave_migration_polygons_moved_total") == sum(
            a.polygons for a in actions)
        assert m.value("rave_service_fps", service="slow") == 2.0
        assert m.value("rave_service_utilisation", service="slow") > 1.0


class TestHealthMetrics:
    def test_transitions_counted(self, bundle):
        from repro.core.health import HeartbeatMonitor
        from repro.network.clock import Simulator

        sim = Simulator()
        mon = HeartbeatMonitor(sim, suspect_after=1.0, dead_after=3.0)
        mon.watch("rs-a")
        sim.clock.advance(1.5)
        mon.poll()                       # alive -> suspected
        sim.clock.advance(2.0)
        mon.poll()                       # suspected -> dead
        mon.beat("rs-a")                 # dead -> recovered
        m = bundle.metrics
        assert m.value("rave_health_transitions_total",
                       state="suspected") == 1
        assert m.value("rave_health_transitions_total", state="dead") == 1
        assert m.value("rave_health_transitions_total",
                       state="recovered") == 1


class TestCodecMetrics:
    def test_adaptive_choice_counted(self, bundle):
        from repro.compression import AdaptiveCodec, BandwidthEstimator
        from repro.render.framebuffer import FrameBuffer
        import numpy as np

        est = BandwidthEstimator(initial_bps=100e6)
        codec = AdaptiveCodec(estimator=est, latency_budget=0.05)
        fb = FrameBuffer(64, 64)
        rng = np.random.default_rng(3)
        fb.color[:] = rng.integers(0, 256, fb.color.shape, dtype=np.uint8)
        first = codec.encode(fb)                 # fast link: raw
        est.observe(nbytes=1_000, seconds=1.0)   # collapse to 8 kbit/s
        fb2 = FrameBuffer(64, 64)
        fb2.color[:] = rng.integers(0, 256, fb2.color.shape, dtype=np.uint8)
        second = codec.encode(fb2)               # nothing fits: budget miss
        m = bundle.metrics
        assert m.value("rave_codec_frames_total",
                       codec=first.meta["inner"]) >= 1
        assert m.value("rave_codec_encoded_bytes_total",
                       codec=first.meta["inner"]) > 0
        assert m.value("rave_codec_budget_misses_total") >= 1
        assert m.value("rave_bandwidth_estimate_bps") == pytest.approx(
            8_000.0)
        assert second.nbytes <= first.nbytes


class TestStreamingTrace:
    @pytest.fixture
    def streamer(self, testbed):
        from repro.data.generators import make_model
        from repro.services.streaming import FrameStreamer

        testbed.publish_model(
            "stream", make_model("skeleton", 400_000).normalized())
        rs = testbed.render_service("centrino")
        rsession, _ = rs.create_render_session(testbed.data_service,
                                               "stream")
        return testbed, FrameStreamer(rs, rsession.render_session_id,
                                      "zaurus", 100, 100,
                                      blit_seconds=0.002)

    def test_pipelined_span_chain_complete(self, streamer, bundle):
        """The e2e assertion: every streamed frame leaves one complete
        render → transfer → blit chain with contiguous timestamps."""
        tb, s = streamer
        stats = s.stream_pipelined(5)
        chains = bundle.tracer.chains(mode="pipelined")
        assert sorted(chains) == [0, 1, 2, 3, 4]
        for _frame, spans in chains.items():
            names = [sp.name for sp in spans]
            assert names == ["render", "transfer", "blit"]
            render, transfer, blit = spans
            # pipelined: the send may wait for the previous transfer, but
            # never starts before its own render is done
            assert transfer.start >= render.end - 1e-12
            assert blit.start == pytest.approx(transfer.end)
            assert blit.duration == pytest.approx(0.002)
        # arrivals observed by the stats match the traced transfer ends
        ends = sorted(sp[1].end for sp in chains.values())
        assert ends == pytest.approx(stats.arrivals)
        assert bundle.metrics.value("rave_stream_frames_total",
                                    mode="pipelined", session=s.rsid) == 5
        assert bundle.metrics.value("rave_stream_frame_latency_seconds",
                                    mode="pipelined") == 5

    def test_lockstep_spans_serialised(self, streamer, bundle):
        _, s = streamer
        s.stream_lockstep(3)
        chains = bundle.tracer.chains(mode="lockstep")
        assert len(chains) == 3
        for spans in chains.values():
            render, transfer, blit = spans
            assert transfer.start == pytest.approx(render.end)


class TestThinClientTrace:
    def test_frame_request_spans(self, small_testbed, bundle):
        from repro.compression import Rgb565Codec
        from repro.data.generators import make_model

        tb = small_testbed
        tb.publish_model("pda", make_model("galleon", 20_000).normalized())
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service, "pda")
        client = tb.thin_client("pda-1")
        client.attach(rs, rsession.render_session_id)
        client.request_frame(64, 64, codec=Rgb565Codec())
        chain = bundle.tracer.chains(client="pda-1")[0]
        names = [sp.name for sp in chain]
        assert names == ["request", "render", "encode", "transfer",
                         "decode", "blit"]
        for prev, nxt in zip(chain, chain[1:]):
            assert nxt.start >= prev.end - 1e-12
        transfer = chain[3]
        assert transfer.attrs["nbytes"] > 0
        assert bundle.metrics.value("rave_client_frames_total",
                                    client="pda-1") == 1


class TestSessionMetrics:
    def build(self, testbed):
        from repro.core.session import CollaborativeSession
        from repro.data.generators import skeleton
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        tree = SceneTree("big")
        for i in range(6):
            tree.add(MeshNode(skeleton(4000).normalized(), name=f"m{i}"))
        testbed.publish_tree("big", tree)
        cs = CollaborativeSession(testbed.data_service, "big",
                                  recruiter=testbed.recruiter())
        for host in ("onyx", "v880z", "centrino"):
            cs.connect(testbed.render_service(host))
        cs.place_dataset()
        return cs

    def test_composite_frames_counted_and_timelined(self, testbed, bundle):
        from repro.render.camera import Camera

        cs = self.build(testbed)
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        cs.render_composite(cam, 48, 48)
        cs.render_composite(cam, 48, 48)
        m = bundle.metrics
        assert m.value("rave_session_frames_total",
                       session=cs.session_id, mode="composite") == 2
        timeline = cs.frame_timeline()
        assert sorted(timeline) == [0, 1]
        for spans in timeline.values():
            names = [sp.name for sp in spans]
            assert names[0] == "render"
            assert names[-1] == "composite"

    def test_recovery_counted(self, testbed, bundle):
        cs = self.build(testbed)
        victim = next(s for s in cs.render_services if cs.share_of(s))
        report = cs.handle_service_failure(victim)
        m = bundle.metrics
        assert m.value("rave_session_recoveries_total",
                       session=cs.session_id) == 1
        assert m.value("rave_session_nodes_recovered_total",
                       session=cs.session_id) == report.nodes_recovered

    def test_snapshot_covers_the_board(self, testbed, bundle):
        """A scenario touching scheduler, network, session and codec
        leaves all four metric groups in one exported snapshot."""
        from repro.compression import AdaptiveCodec
        from repro.render.camera import Camera
        from repro.render.framebuffer import FrameBuffer

        cs = self.build(testbed)
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        cs.render_composite(cam, 48, 48)
        testbed.network.send("onyx", "xeon", 10_000)
        testbed.network.sim.run()
        AdaptiveCodec().encode(FrameBuffer(16, 16))
        snap = bundle.snapshot(clock=testbed.clock)
        names = set(snap["metrics"])
        assert any(n.startswith("rave_scheduler_") for n in names)
        assert any(n.startswith("rave_net_") for n in names)
        assert any(n.startswith("rave_session_") for n in names)
        assert any(n.startswith("rave_codec_") for n in names)
        assert snap["frames"]                 # at least one span chain
