"""The render farm under fire: a node dies mid-frame, seeded and replayed.

Satellite regression for the farm's fault story.  One scripted
scenario: a two-worker farm starts a job, the seeded
:class:`FaultInjector` kills the worker holding the first frame while
it renders, and the invariants must hold:

- the lost frame is re-queued **once** and re-rendered by the survivor
  — exactly one completion lands, no duplicates;
- the end-of-job ``checkframes`` audit is empty: the crash cost time,
  never frames;
- the flight recorder tells the whole story (lease → crash → requeue →
  complete), and the same seed replays it byte for byte.
"""

import pytest

from repro import obs
from repro.data.generators import galleon
from repro.farm import FRAME_DONE, RenderJob
from repro.network.faults import FaultInjector
from repro.sanitizer import RaveSanitizer
from repro.testbed import build_testbed

JOB = "anim-chaos"
SCENE = "scene"
FRAMES = 6
VICTIM_HOST = "onyx"            # rs-onyx sorts first: it leases frame 1


def run_scenario(seed):
    """Start the job, kill the first frame's worker mid-render."""
    tb = build_testbed(farm=True)
    tb.publish_model(SCENE, galleon(2000))
    queue = tb.farm_queue
    sim = tb.network.sim

    with obs.observed(clock=tb.clock) as bundle:
        san = RaveSanitizer(sim).attach()
        san.watch_farm_queue(queue)
        inj = FaultInjector(tb.network, seed=seed)
        farm = tb.render_farm(worker_hosts=(VICTIM_HOST, "v880z"),
                              dead_after=2.0)
        queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                               start_frame=1, end_frame=FRAMES))
        farm.start()
        # no prewarm: the first pull pays the multi-second session
        # bootstrap, so t0+1s lands squarely mid-frame
        inj.schedule_crash(1.0, VICTIM_HOST)
        deadline = sim.now + 300.0
        while not queue.job(JOB).finished and sim.now < deadline:
            sim.run_until(sim.now + 1.0)
        story = [(e.kind, e.detail) for e in bundle.recorder.events()]
    # the sanitizer rode along for the whole crash-and-recover story:
    # clock stayed monotonic (scratch clocks restored), the frame
    # ledger conserved pending + leased + done every event
    assert san.ok, san.violations
    assert san.events_checked > 0
    return tb, farm, queue, story


class TestFarmChaos:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_scenario(seed=11)

    def test_the_crash_really_interrupted_a_lease(self, scenario):
        _, farm, queue, _ = scenario
        assert "rs-onyx" in farm.failed_workers
        assert farm.frames_lost == 1

    def test_lost_frame_rerendered_exactly_once(self, scenario):
        _, farm, queue, _ = scenario
        frame = queue.job(JOB).frame(1)
        assert frame.state == FRAME_DONE
        assert frame.worker == "rs-v880z"       # the survivor took it
        assert frame.requeues == 1              # one re-queue per failure
        assert frame.attempts == 2              # not a third lease
        # every frame landed exactly once, nobody double-completed
        assert queue.frames_completed == FRAMES
        assert queue.duplicates_dropped == 0
        assert queue.requeues == 1
        others = [queue.job(JOB).frame(i) for i in range(2, FRAMES + 1)]
        assert all(f.attempts == 1 and f.requeues == 0 for f in others)

    def test_the_audit_ends_empty(self, scenario):
        _, _, queue, _ = scenario
        job = queue.job(JOB)
        assert job.finished and job.finished_at is not None
        assert queue.audit(JOB) == []

    def test_the_recorder_tells_the_recovery_story(self, scenario):
        _, _, _, story = scenario
        kinds = [k for k, _ in story]
        for kind in ("farm:submit", "farm:lease", "fault:crash",
                     "farm:requeue", "farm:complete", "farm:job-done"):
            assert kind in kinds, f"missing {kind} in the story"
        # causality: the crash precedes the requeue precedes the lost
        # frame's completion
        crash = kinds.index("fault:crash")
        requeue = next(i for i, (k, d) in enumerate(story)
                       if k == "farm:requeue" and f"{JOB}#1" in d)
        done = next(i for i, (k, d) in enumerate(story)
                    if k == "farm:complete" and f"{JOB}#1" in d)
        assert crash < requeue < done
        # and the requeue names the lost worker
        assert "rs-onyx" in story[requeue][1]

    def test_same_seed_same_story(self):
        _, _, first_queue, first_story = run_scenario(seed=29)
        _, _, replay_queue, replay_story = run_scenario(seed=29)
        assert first_story == replay_story
        assert first_queue.describe() == replay_queue.describe()
