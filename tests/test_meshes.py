"""Mesh container: validation, geometry, splitting."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.meshes import Mesh, merge_meshes
from repro.errors import DataFormatError


class TestValidation:
    def test_bad_vertex_shape(self):
        with pytest.raises(DataFormatError):
            Mesh(np.zeros((3, 2)), np.zeros((1, 3), np.int32))

    def test_bad_face_shape(self):
        with pytest.raises(DataFormatError):
            Mesh(np.zeros((3, 3)), np.zeros((1, 4), np.int32))

    def test_face_index_out_of_range(self):
        with pytest.raises(DataFormatError):
            Mesh(np.zeros((3, 3)), np.array([[0, 1, 3]], np.int32))

    def test_negative_face_index(self):
        with pytest.raises(DataFormatError):
            Mesh(np.zeros((3, 3)), np.array([[0, 1, -1]], np.int32))

    def test_color_shape_mismatch(self):
        with pytest.raises(DataFormatError):
            Mesh(np.zeros((3, 3)), np.array([[0, 1, 2]], np.int32),
                 colors=np.zeros((2, 3)))

    def test_empty_mesh_allowed(self):
        m = Mesh(np.zeros((0, 3)), np.zeros((0, 3), np.int32))
        assert m.n_vertices == 0
        assert m.n_triangles == 0
        assert m.byte_size == 0

    def test_dtype_coercion(self, triangle):
        assert triangle.vertices.dtype == np.float32
        assert triangle.faces.dtype == np.int32


class TestGeometry:
    def test_bounds(self, quad):
        lo, hi = quad.bounds()
        assert np.allclose(lo, [-1, -1, 0])
        assert np.allclose(hi, [1, 1, 0])

    def test_centroid(self, quad):
        assert np.allclose(quad.centroid(), [0, 0, 0])

    def test_face_normals_unit(self, quad):
        n = quad.face_normals()
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)
        assert np.allclose(np.abs(n[:, 2]), 1.0)  # planar quad

    def test_degenerate_face_zero_normal(self):
        m = Mesh(np.zeros((3, 3), np.float32),
                 np.array([[0, 1, 2]], np.int32))
        assert np.allclose(m.face_normals(), 0.0)

    def test_face_areas(self, quad):
        assert quad.face_areas().sum() == pytest.approx(4.0)

    def test_vertex_normals_unit(self, quad):
        vn = quad.vertex_normals()
        assert np.allclose(np.linalg.norm(vn, axis=1), 1.0)

    def test_stats(self, quad):
        s = quad.stats()
        assert s.n_vertices == 4
        assert s.n_triangles == 2
        assert s.surface_area == pytest.approx(4.0)
        assert s.byte_size == quad.byte_size
        assert s.extent == pytest.approx((2.0, 2.0, 0.0))


class TestTransforms:
    def test_translated(self, quad):
        t = quad.translated((1.0, 2.0, 3.0))
        assert np.allclose(t.centroid(), [1, 2, 3])

    def test_scaled(self, quad):
        assert quad.scaled(2.0).face_areas().sum() == pytest.approx(16.0)

    def test_transformed_matches_translate(self, quad):
        m = np.eye(4)
        m[:3, 3] = [5, 0, 0]
        assert np.allclose(quad.transformed(m).vertices,
                           quad.translated((5, 0, 0)).vertices)

    def test_transformed_requires_4x4(self, quad):
        with pytest.raises(ValueError):
            quad.transformed(np.eye(3))

    def test_normalized(self, quad):
        big = quad.scaled(37.0).translated((100, 0, 0))
        n = big.normalized()
        lo, hi = n.bounds()
        assert float((hi - lo).max()) == pytest.approx(2.0)
        assert np.allclose((lo + hi) / 2, 0.0, atol=1e-5)


class TestSplitting:
    def test_submesh_reindexes(self, quad):
        sub = quad.submesh(np.array([True, False]))
        assert sub.n_triangles == 1
        assert sub.n_vertices == 3                       # unused vertex gone
        assert sub.faces.max() < sub.n_vertices

    def test_submesh_mask_shape_checked(self, quad):
        with pytest.raises(ValueError):
            quad.submesh(np.array([True]))

    def test_split_preserves_triangle_count(self, small_galleon):
        pieces = small_galleon.split_spatially(4)
        assert sum(p.n_triangles for p in pieces) == small_galleon.n_triangles

    def test_split_balanced(self, small_galleon):
        pieces = small_galleon.split_spatially(4)
        counts = [p.n_triangles for p in pieces]
        assert max(counts) - min(counts) <= 1

    def test_split_spatial_coherence(self, small_galleon):
        """Pieces along the split axis should come out in sorted order."""
        lo, hi = small_galleon.bounds()
        axis = int(np.argmax(hi - lo))
        pieces = small_galleon.split_spatially(3, axis=axis)
        centers = [p.centroid()[axis] for p in pieces]
        assert centers == sorted(centers)

    def test_split_one_part_is_identity(self, quad):
        assert quad.split_spatially(1)[0] is quad

    def test_split_invalid(self, quad):
        with pytest.raises(ValueError):
            quad.split_spatially(0)

    def test_merge_roundtrip(self, quad, triangle):
        merged = merge_meshes([quad, triangle])
        assert merged.n_triangles == 3
        assert merged.n_vertices == 7
        assert merged.faces.max() < merged.n_vertices

    def test_merge_empty(self):
        m = merge_meshes([])
        assert m.n_triangles == 0

    def test_merge_mixed_colors(self, quad):
        colored = Mesh(quad.vertices, quad.faces,
                       colors=np.ones_like(quad.vertices))
        merged = merge_meshes([quad, colored])
        assert merged.colors is not None
        assert len(merged.colors) == merged.n_vertices


@st.composite
def random_meshes(draw):
    n_verts = draw(st.integers(min_value=3, max_value=30))
    n_faces = draw(st.integers(min_value=1, max_value=40))
    verts = draw(st.lists(
        st.tuples(*[st.floats(-100, 100, allow_nan=False)] * 3),
        min_size=n_verts, max_size=n_verts))
    faces = draw(st.lists(
        st.tuples(*[st.integers(0, n_verts - 1)] * 3),
        min_size=n_faces, max_size=n_faces))
    return Mesh(np.asarray(verts, np.float32), np.asarray(faces, np.int32))


class TestProperties:
    @given(random_meshes())
    @settings(max_examples=40, deadline=None)
    def test_split_partitions_faces(self, mesh):
        pieces = mesh.split_spatially(3)
        assert sum(p.n_triangles for p in pieces) == mesh.n_triangles
        for p in pieces:
            if p.n_triangles:
                assert p.faces.max() < p.n_vertices

    @given(random_meshes())
    @settings(max_examples=40, deadline=None)
    def test_normals_never_nan(self, mesh):
        assert np.isfinite(mesh.face_normals()).all()
        assert np.isfinite(mesh.vertex_normals()).all()

    @given(random_meshes(), st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_area_scales_quadratically(self, mesh, factor):
        a0 = mesh.face_areas().sum()
        a1 = mesh.scaled(factor).face_areas().sum()
        assert a1 == pytest.approx(a0 * factor * factor, rel=1e-3)
