"""The SC2004 demo-day soak test.

"We will demonstrate RAVE at SC2004, utilising available heterogeneous
resources."  One long scripted scenario exercising everything together,
in the order a live demo would: discovery → import → collaboration →
interaction → distribution → degradation → migration → failover →
recording → next-day replay.  Every stage asserts its observable outcome.
"""

import pytest

from repro.collab.avatar import AvatarManager
from repro.collab.interaction import InteractionController
from repro.compression import AdaptiveCodec, BandwidthEstimator
from repro.core.migration import LoadSample
from repro.core.session import CollaborativeSession
from repro.data.generators import skeletal_hand
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def demo_day():
    """Run the whole scripted demo once; stages assert against the log."""
    tb = build_testbed()
    log: dict = {"tb": tb}

    # --- stage 1: UDDI discovery --------------------------------------------
    uddi = tb.uddi_client("centrino")
    scan = uddi.full_bootstrap("RAVE project", "RaveRenderService")
    log["discovered"] = len(scan.access_points)

    # --- stage 2: import the hand dataset ------------------------------------
    tree = SceneTree("sc2004")
    tree.add(MeshNode(skeletal_hand(40_000).normalized(), name="hand"))
    tb.publish_tree("sc2004", tree)
    tb.data_service.enable_autosave(
        "sc2004", "/tmp/rave-demo-checkpoint.rave", every_n_updates=5)

    # --- stage 3: three users join -------------------------------------------
    avatars = AvatarManager(tb.data_service, "sc2004")
    wall = tb.active_client("wall-presenter", "onyx")
    desk = tb.active_client("desk-user", "athlon")
    wall.join(tb.data_service, "sc2004")
    desk.join(tb.data_service, "sc2004")
    avatars.join("wall-presenter", "onyx", wall.camera)
    avatars.join("desk-user", "athlon", desk.camera)

    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "sc2004")
    pda = tb.thin_client("pda-visitor")
    pda.attach(rs, rsession.render_session_id)
    pda.move_camera(position=(0.4, 2.2, 1.0))
    log["collaborators"] = avatars.collaborators()

    # --- stage 4: the presenter interacts --------------------------------------
    ctl = InteractionController(
        wall.tree, user="wall-presenter",
        publish=lambda u: tb.data_service.publish_update("sc2004", u))
    wall.camera.look(position=(0.0, 2.6, 0.8))
    hit = ctl.click(wall.camera, 100, 100, 200, 200)
    log["clicked"] = hit.name if hit else None
    log["hand_id"] = hit.node_id if hit else None
    if hit is not None:
        ctl.rename("hand-annotated")
        ctl.recolor((0.9, 0.8, 0.3))
    log["desk_sees_rename"] = bool(
        desk.tree.find_by_name("hand-annotated"))

    # --- stage 5: the PDA visitor walks away, codec adapts ----------------------
    estimator = BandwidthEstimator(initial_bps=4.8e6)
    codec = AdaptiveCodec(estimator, latency_budget=0.3)
    latencies = []
    for quality in (1.0, 0.4, 0.12):
        tb.wireless.set_signal_quality("zaurus", quality)
        estimator.bps = 4.8e6 * quality
        frame, timing = pda.request_frame(200, 200, codec=codec)
        latencies.append(timing.total_latency)
    tb.wireless.set_signal_quality("zaurus", 1.0)
    log["walkaway_latencies"] = latencies
    log["codecs_used"] = [c.codec_name for c in codec.choices]

    # --- stage 6: distribution + migration ---------------------------------------
    cs = CollaborativeSession(tb.data_service, "sc2004",
                              target_fps=1200,
                              recruiter=tb.recruiter())
    cs.migrator.smoothing_seconds = 0.5
    placement = cs.place_dataset()
    log["placement_mode"] = placement.mode
    cam = CameraNode(position=(0.4, 2.2, 1.0))
    fb, latency = cs.render_composite(cam, 96, 96)
    log["composite_coverage"] = fb.coverage()

    victim = max((s for s in cs.render_services if cs.share_of(s)),
                 key=lambda s: s.committed_polygons())
    t0 = tb.clock.now
    for i in range(8):
        cs.migrator.tracker(victim.name).record(LoadSample(
            time=t0 + i * 0.2, fps=1.0,
            utilisation=victim.utilisation(cs.target_fps)))
    before = victim.committed_polygons()
    actions = cs.rebalance()
    log["migrated"] = bool(actions)
    log["victim_relieved"] = victim.committed_polygons() < before
    fb2, _ = cs.render_composite(cam, 96, 96)
    log["post_migration_coverage"] = fb2.coverage()

    # --- stage 7: failover ----------------------------------------------------------
    from repro.scenegraph.updates import SetProperty

    mirror_container = ServiceContainer("athlon", tb.network,
                                        http_port=9700)
    mirror = DataService("demo-mirror", mirror_container)
    tb.data_service.add_mirror(mirror)
    # stage 6's distribution exploded the hand into a group of pieces; the
    # replacement group keeps the original node id, so address it by id
    tb.data_service.publish_update(
        "sc2004", SetProperty(node_id=log["hand_id"],
                              field_name="name", value="hand-final"))
    backup = tb.data_service.failover_to("sc2004")
    log["failover_ok"] = bool(
        backup.session("sc2004").tree.find_by_name("hand-final"))

    # --- stage 8: record + replay tomorrow --------------------------------------------
    import tempfile
    from pathlib import Path

    with tempfile.TemporaryDirectory() as d:
        path = Path(d) / "demo.rave"
        tb.data_service.save_session("sc2004", path)
        tomorrow = tb.data_service.load_session("sc2004-replay", path)
        log["replay_updates"] = len(tomorrow.trail)
        log["replay_has_final_name"] = bool(
            tomorrow.tree.find_by_name("hand-final"))
    return log


class TestDemoDay:
    def test_discovery_found_all_services(self, demo_day):
        assert demo_day["discovered"] == 5

    def test_collaborators_visible(self, demo_day):
        users = {c.user for c in demo_day["collaborators"]}
        assert users == {"wall-presenter", "desk-user"}

    def test_interaction_propagated(self, demo_day):
        assert demo_day["clicked"] == "hand"
        assert demo_day["desk_sees_rename"]

    def test_codec_adapted_during_walkaway(self, demo_day):
        assert demo_day["codecs_used"][0] == "raw"
        assert demo_day["codecs_used"][-1] != "raw"
        # worst-case latency stays within ~2x of the budget
        assert max(demo_day["walkaway_latencies"]) < 0.7

    def test_dataset_distributed(self, demo_day):
        assert demo_day["placement_mode"] == "dataset-distributed"
        assert demo_day["composite_coverage"] > 0.02

    def test_migration_relieved_the_overload(self, demo_day):
        assert demo_day["migrated"]
        assert demo_day["victim_relieved"]
        assert demo_day["post_migration_coverage"] == pytest.approx(
            demo_day["composite_coverage"], abs=0.02)

    def test_failover_preserved_state(self, demo_day):
        assert demo_day["failover_ok"]

    def test_replay_tomorrow(self, demo_day):
        assert demo_day["replay_updates"] >= 3
        assert demo_day["replay_has_final_name"]
