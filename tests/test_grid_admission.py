"""The multi-tenant session grid: admission, quotas, queueing, shedding.

The admission contract has exactly three outcomes — admit, queue,
reject — and each is exercised here in isolation before
``test_multitenant_chaos.py`` runs them under fire.  The capacity unit
throughout is polygons·per·second: a session admitted for ``D``
polygons at ``F`` fps holds ``D × F`` pps of the pool until it parks
or releases.
"""

import pytest

from repro import obs
from repro.core.grid import (
    REASON_DUPLICATE,
    REASON_QUEUE_TIMEOUT,
    REASON_SATURATED,
    SessionGridManager,
    TenantQuota,
)
from repro.data.generators import uv_sphere
from repro.errors import (
    CallTimeout,
    SessionError,
    TooManyRequestsError,
)
from repro.network.faults import FaultInjector
from repro.network.simnet import Network
from repro.obs.vocab import (
    EVENT_ADMIT,
    EVENT_QUEUE,
    EVENT_REJECT,
)
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.protocol import frame_reject, unframe_reject
from repro.services.retry import (
    BACKPRESSURE_ERRORS,
    CircuitBreaker,
    RetryPolicy,
    call_with_retry,
    reliable_request,
)
from repro.testbed import build_testbed

# at 3000 fps one ~1100-polygon sphere costs ~3.3 Mpps, so the
# centrino's 8.4 Mpps pool holds two sessions and the third must wait —
# a saturating workload without megabyte meshes
FPS = 3000.0


def scene(label, nu=24):
    tree = SceneTree(name=f"scene-{label}")
    tree.add(MeshNode(uv_sphere(nu=nu, nv=nu)))
    return tree


def small_grid(tb, **kwargs):
    kwargs.setdefault("member_hosts", ("centrino",))
    kwargs.setdefault("queue_capacity", 2)
    kwargs.setdefault("queue_timeout", 60.0)
    kwargs.setdefault("target_fps", FPS)
    return tb.session_grid(**kwargs)


def open_tenants(grid, *names, **overrides):
    for i, name in enumerate(names):
        params = dict(priority=i, max_sessions=8, max_share=1.0,
                      guaranteed_share=0.0)
        params.update(overrides)
        grid.register_tenant(TenantQuota(tenant=name, **params))


class TestAdmissionOutcomes:
    def test_admit_while_the_pool_has_spare(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme")
        decision = grid.request_session("acme", "s0", scene(0))
        assert decision.outcome == EVENT_ADMIT
        assert decision.grid_session is not None
        assert grid.session("s0").session.render_services
        assert grid.utilisation() > 0

    def test_full_pool_queues_with_position_feedback(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme", "beta")
        assert grid.request_session("acme", "s0", scene(0)).outcome \
            == EVENT_ADMIT
        assert grid.request_session("beta", "s1", scene(1)).outcome \
            == EVENT_ADMIT
        d2 = grid.request_session("acme", "s2", scene(2))
        d3 = grid.request_session("beta", "s3", scene(3))
        assert (d2.outcome, d2.queue_position) == (EVENT_QUEUE, 1)
        assert (d3.outcome, d3.queue_position) == (EVENT_QUEUE, 2)
        assert grid.queue_depth() == 2
        assert grid.queue_position("s3") == 2
        assert grid.queue_position("nope") is None

    def test_full_queue_rejects_with_retry_after(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=1)
        open_tenants(grid, "acme", "beta")
        for i, tenant in enumerate(["acme", "beta", "acme"]):
            grid.request_session(tenant, f"s{i}", scene(i))
        d = grid.request_session("beta", "s3", scene(3))
        assert d.outcome == EVENT_REJECT
        assert d.reason == REASON_SATURATED
        assert d.retry_after == grid.queue_timeout
        assert d.reject_frame is not None
        assert grid.rejections == 1

    def test_duplicate_session_id_is_a_caller_error(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme")
        grid.request_session("acme", "s0", scene(0))
        with pytest.raises(SessionError):
            grid.request_session("acme", "s0", scene(1))

    def test_zero_capacity_queue_goes_straight_to_reject(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0)
        open_tenants(grid, "acme", "beta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        d = grid.request_session("acme", "s2", scene(2))
        assert d.outcome == EVENT_REJECT


class TestTenantQuotas:
    def test_max_sessions_rejects_immediately(self):
        tb = build_testbed()
        grid = small_grid(tb, member_hosts=("onyx", "centrino"))
        grid.register_tenant(TenantQuota(tenant="acme", max_sessions=1,
                                         max_share=1.0))
        grid.request_session("acme", "s0", scene(0))
        d = grid.request_session("acme", "s1", scene(1))
        assert d.outcome == EVENT_REJECT
        assert "1/1 sessions" in d.reason
        assert d.retry_after == 0.0     # not a capacity problem: no point waiting

    def test_max_share_caps_a_greedy_tenant(self):
        tb = build_testbed()
        grid = small_grid(tb)
        grid.register_tenant(TenantQuota(tenant="greedy", max_sessions=8,
                                         max_share=0.5))
        grid.request_session("greedy", "s0", scene(0))
        d = grid.request_session("greedy", "s1", scene(1))
        assert d.outcome == EVENT_REJECT
        assert "pool share" in d.reason

    def test_unknown_tenant_gets_the_default_quota(self):
        tb = build_testbed()
        grid = small_grid(
            tb, default_quota=TenantQuota(tenant="*", max_sessions=1))
        grid.request_session("walkin", "s0", scene(0))
        assert grid.quota("walkin").max_sessions == 1
        assert "walkin" in grid.tenants()

    def test_quota_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(tenant="t", max_sessions=0)
        with pytest.raises(ValueError):
            TenantQuota(tenant="t", max_share=1.5)
        with pytest.raises(ValueError):
            TenantQuota(tenant="t", max_share=0.5, guaranteed_share=0.6)
        with pytest.raises(ValueError):
            TenantQuota(tenant="t", fps_floor_fraction=0.0)


class TestQueueLifecycle:
    def test_release_pumps_the_queue_in_fifo_order(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme", "beta")
        admitted = []
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2),
                             on_admit=lambda d: admitted.append(d))
        resolved = grid.release_session("s0")
        assert [d.session_id for d in resolved] == ["s2"]
        assert resolved[0].outcome == EVENT_ADMIT
        assert admitted and admitted[0].session_id == "s2"
        assert grid.queue_depth() == 0
        with pytest.raises(SessionError):
            grid.session("s0")

    def test_deadline_expiry_becomes_an_explicit_reject(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_timeout=5.0)
        open_tenants(grid, "acme", "beta")
        rejected = []
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2),
                             on_reject=lambda d: rejected.append(d))
        # the deadline tick fires the reject during run_until — no
        # manual pump needed any more
        tb.network.sim.run_until(tb.clock.now + 6.0)
        assert rejected and rejected[0].session_id == "s2"
        assert rejected[0].outcome == EVENT_REJECT
        assert rejected[0].reason == REASON_QUEUE_TIMEOUT
        assert grid.queue_timeouts == 1
        # and a later explicit pump has nothing left to resolve
        assert grid.pump() == []

    def test_head_of_line_blocks_fifo_strictly(self):
        """A small request never skips past a big head-of-line request."""
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=4)
        open_tenants(grid, "acme", "beta", "gamma", "delta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("gamma", "big", scene("big", nu=32))
        grid.request_session("delta", "tiny", scene("tiny", nu=8))
        # freeing one slot covers "tiny" but not "big": nobody admits
        grid.release_session("s1")
        assert grid.queue_position("big") == 1
        # the tiny request is still waiting behind the big one
        assert grid.queue_position("tiny") == 2

    def test_pump_rechecks_quota_at_the_head(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=4)
        grid.register_tenant(TenantQuota(tenant="acme", max_sessions=2,
                                         max_share=1.0))
        grid.register_tenant(TenantQuota(tenant="beta", max_sessions=8,
                                         max_share=1.0,
                                         guaranteed_share=0.0))
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2))
        grid.request_session("acme", "s3", scene(3))
        resolved = grid.release_session("s1")
        # s2 admits (acme back at 2/2), s3 now violates max_sessions
        outcomes = {d.session_id: d.outcome for d in resolved}
        assert outcomes["s2"] == EVENT_ADMIT
        assert outcomes["s3"] == EVENT_REJECT


class TestRejectWireContract:
    def test_reject_frame_round_trips_the_429(self):
        frame = frame_reject("grid full", 12.5, tenant="acme",
                             session_id="s9", queue_depth=3)
        info = unframe_reject(frame)
        assert info.status == 429
        assert info.reason == "grid full"
        assert info.retry_after == 12.5
        assert info.tenant == "acme"
        assert info.session_id == "s9"
        assert info.queue_depth == 3

    def test_grid_rejects_carry_a_ready_frame(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0)
        open_tenants(grid, "acme", "beta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        d = grid.request_session("acme", "s2", scene(2))
        info = unframe_reject(d.reject_frame)
        assert info.status == 429
        assert info.tenant == "acme"
        assert info.session_id == "s2"

    def test_thin_client_surfaces_the_429(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0)
        open_tenants(grid, "acme", "beta")
        client = tb.thin_client("pda")
        d = client.open_grid_session(grid, "acme", "s0", scene(0))
        assert d.outcome == EVENT_ADMIT
        assert client.attached
        client.open_grid_session(grid, "beta", "s1", scene(1))
        with pytest.raises(TooManyRequestsError) as err:
            client.open_grid_session(grid, "acme", "s2", scene(2))
        assert err.value.status == 429
        assert err.value.tenant == "acme"
        assert err.value.retry_after == grid.queue_timeout


class TestBackpressureBypassesTheBreaker:
    """Satellite regression: a 429 is the service *working*, not failing.

    Before the fix, ``TooManyRequestsError`` fell through the generic
    retryable/terminal split in ``call_with_retry``: the breaker counted
    it as a failure and repeated backpressure opened the circuit to a
    healthy-but-full service.
    """

    def test_429_does_not_count_toward_the_breaker(self):
        sim = Network().sim

        def full():
            raise TooManyRequestsError("at capacity", retry_after=3.0)

        breaker = CircuitBreaker(sim, failure_threshold=1,
                                 reset_timeout_s=60.0, name="rs")
        for _ in range(5):
            with pytest.raises(TooManyRequestsError):
                call_with_retry(full, RetryPolicy(max_attempts=4), sim,
                                breaker=breaker)
        # threshold 1: a single *counted* failure would have opened it
        assert breaker.state == CircuitBreaker.CLOSED

    def test_429_does_not_burn_the_retry_budget(self):
        sim = Network().sim
        calls = []

        def full():
            calls.append(1)
            raise TooManyRequestsError("at capacity")

        t0 = sim.now
        with pytest.raises(TooManyRequestsError):
            call_with_retry(full, RetryPolicy(max_attempts=6), sim)
        assert len(calls) == 1          # no blind retries against a full grid
        assert sim.now == t0            # and no backoff waits charged

    def test_soap_fault_decodes_to_too_many_requests(self):
        net = Network()
        for name in ("a", "c"):
            net.add_host(name)
        net.add_ethernet_segment(["a", "c"], "hub", bandwidth_bps=100e6)
        FaultInjector(net)
        breaker = CircuitBreaker(net.sim, failure_threshold=1,
                                 reset_timeout_s=60.0, name="c")
        fault = ("Fault", {"code": "TooManyRequests",
                           "reason": "admission queue full",
                           "retry_after": 7.5})
        with pytest.raises(TooManyRequestsError) as err:
            reliable_request(net, "a", "c", ("Open", {}), fault,
                             policy=RetryPolicy(max_attempts=3, jitter=0.0),
                             breaker=breaker)
        assert err.value.retry_after == 7.5
        assert "admission queue full" in str(err.value)
        assert breaker.state == CircuitBreaker.CLOSED

    def test_retryable_faults_still_retry_and_feed_the_breaker(self):
        """The contrast case: the generic path is untouched."""
        net = Network()
        for name in ("a", "c"):
            net.add_host(name)
        net.add_ethernet_segment(["a", "c"], "hub", bandwidth_bps=100e6)
        FaultInjector(net)
        breaker = CircuitBreaker(net.sim, failure_threshold=2,
                                 reset_timeout_s=60.0, name="c")
        fault = ("Fault", {"code": "ServiceBusy", "reason": "busy"})
        with pytest.raises(CallTimeout):
            reliable_request(net, "a", "c", ("Open", {}), fault,
                             policy=RetryPolicy(max_attempts=2, jitter=0.0,
                                                timeout_s=0.1),
                             breaker=breaker)
        assert breaker.state == CircuitBreaker.OPEN

    def test_backpressure_errors_is_the_shared_vocabulary(self):
        assert TooManyRequestsError in BACKPRESSURE_ERRORS


class TestShedAndRestore:
    def saturated_grid(self, tb):
        grid = small_grid(tb)
        grid.register_tenant(TenantQuota(
            tenant="gold", priority=2, max_sessions=8, max_share=1.0,
            guaranteed_share=0.1))
        grid.register_tenant(TenantQuota(
            tenant="bronze", priority=0, max_sessions=8, max_share=1.0,
            guaranteed_share=0.0))
        grid.request_session("gold", "g0", scene("g0"))
        grid.request_session("bronze", "b0", scene("b0"))
        return grid

    def test_shed_degrades_the_lowest_priority_tenant_first(self):
        grid = self.saturated_grid(build_testbed())
        action = grid.shed()
        assert action.action == "degrade"
        assert action.tenant == "bronze"
        bronze = grid.session("b0")
        assert bronze.fps_budget < bronze.requested_fps
        assert bronze.degraded
        gold = grid.session("g0")
        assert gold.fps_budget == gold.requested_fps

    def test_degrade_clamps_at_the_session_fps_floor(self):
        grid = self.saturated_grid(build_testbed())
        for _ in range(10):
            grid.shed()
        bronze = grid.session("b0")
        if not bronze.parked:
            assert bronze.fps_budget >= bronze.fps_floor
        # the floor is a quarter of the requested rate by default
        assert bronze.fps_floor == pytest.approx(bronze.requested_fps * 0.25)

    def test_parking_releases_capacity_back_to_the_pool(self):
        grid = self.saturated_grid(build_testbed())
        before = grid.spare_pps()
        actions = []
        for _ in range(10):
            a = grid.shed()
            if a is None:
                break
            actions.append(a)
        assert "park" in [a.action for a in actions]
        bronze = grid.session("b0")
        assert bronze.parked
        assert bronze.pps == 0.0
        assert grid.spare_pps() > before
        # the parked session's shares really left the members
        assert all(bronze.session.share_polygons(s.name) == 0
                   for s in bronze.session.render_services)

    def test_shed_never_breaches_the_guaranteed_floor(self):
        tb = build_testbed()
        grid = small_grid(tb)
        # gold's guaranteed share covers its whole session: unparkable
        grid.register_tenant(TenantQuota(
            tenant="gold", priority=2, max_sessions=8, max_share=1.0,
            guaranteed_share=0.5))
        grid.request_session("gold", "g0", scene("g0"))
        before = grid.tenant_pps("gold")
        assert before <= grid._tenant_floor_pps("gold")
        for _ in range(10):
            if grid.shed() is None:
                break
        # already at/below its guaranteed floor: shed must not touch it
        gold = grid.session("g0")
        assert not gold.parked
        assert not gold.degraded
        assert grid.tenant_pps("gold") == before

    def test_park_then_pump_admits_the_waiting_request(self):
        tb = build_testbed()
        grid = self.saturated_grid(tb)
        d = grid.request_session("gold", "g1", scene("g1"))
        assert d.outcome == EVENT_QUEUE
        for _ in range(10):
            if grid.shed() is None:
                break
        resolved = grid.pump()
        assert [(r.session_id, r.outcome) for r in resolved] \
            == [("g1", EVENT_ADMIT)]

    def test_restore_unparks_and_raises_budgets_once_pressure_clears(self):
        tb = build_testbed()
        grid = self.saturated_grid(tb)
        for _ in range(10):
            if grid.shed() is None:
                break
        assert grid.session("b0").parked
        grid.grow()                     # capacity arrives
        for _ in range(10):
            if grid.restore() is None:
                break
        bronze = grid.session("b0")
        assert not bronze.parked
        assert bronze.fps_budget == bronze.requested_fps
        assert not bronze.degraded

    def test_shed_to_fit_reacts_to_a_shrunken_pool(self):
        tb = build_testbed()
        grid = small_grid(tb, member_hosts=("centrino", "athlon"))
        open_tenants(grid, "gold", "bronze")
        grid.request_session("gold", "g0", scene("g0"))
        grid.request_session("bronze", "b0", scene("b0"))
        grid.request_session("gold", "g1", scene("g1"))
        grid.handle_member_failure("rs-athlon")
        assert grid.committed_pps() > grid.pool_pps()
        actions = grid.shed_to_fit()
        assert actions
        assert grid.committed_pps() <= grid.pool_pps()


class TestPoolScaling:
    def test_grow_recruits_via_uddi_and_pump_drains(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=4)
        open_tenants(grid, "acme", "beta")
        queued = []
        for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
            d = grid.request_session(tenant, f"s{i}", scene(i))
            if d.outcome == EVENT_QUEUE:
                queued.append(f"s{i}")
        assert queued
        grown = grid.grow()
        assert grown and grown[0].name not in ("rs-centrino",)
        resolved = grid.pump()
        assert {d.session_id for d in resolved} == set(queued)
        assert all(d.outcome == EVENT_ADMIT for d in resolved)
        assert grid.queue_depth() == 0

    def test_max_pool_size_caps_growth(self):
        tb = build_testbed()
        grid = small_grid(tb, max_pool_size=1)
        assert grid.grow() == []
        assert len(grid.members) == 1

    def test_release_idle_keeps_members_carrying_shares(self):
        tb = build_testbed()
        grid = small_grid(tb, member_hosts=("centrino", "onyx"))
        open_tenants(grid, "acme")
        grid.request_session("acme", "s0", scene(0))
        released = grid.release_idle(min_members=1)
        assert len(grid.members) >= 1
        for name in released:
            assert all(gs.session.share_polygons(name) == 0
                       for gs in grid.sessions())

    def test_rejection_rate_decays_with_the_window(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0, rejection_window=10.0)
        open_tenants(grid, "acme", "beta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2))
        assert grid.rejection_rate() > 0
        tb.network.sim.run_until(tb.clock.now + 30.0)
        assert grid.rejection_rate() == 0.0


class TestGridObservability:
    def test_every_decision_reaches_the_flight_recorder(self):
        tb = build_testbed()
        with obs.observed(clock=tb.clock) as bundle:
            grid = small_grid(tb, queue_capacity=1)
            open_tenants(grid, "acme", "beta")
            for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
                grid.request_session(tenant, f"s{i}", scene(i))
            for _ in range(10):
                if grid.shed() is None:
                    break
            grid.pump()
            kinds = [e.kind for e in bundle.recorder.events()]
        assert EVENT_ADMIT in kinds
        assert EVENT_QUEUE in kinds
        assert EVENT_REJECT in kinds
        assert "shed" in kinds

    def test_grid_telemetry_exports_admission_gauges(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=1)
        open_tenants(grid, "acme", "beta")
        for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
            grid.request_session(tenant, f"s{i}", scene(i))
        from repro.obs.telemetry import flatten_metrics

        payload = grid.telemetry.scrape(now=grid.now)
        assert payload["kind"] == "grid"
        flat = flatten_metrics(payload["metrics"])
        assert flat["rave_queue_depth"] == 1
        assert flat["rave_admission_rejection_rate"] > 0
        assert flat["rave_admission_sessions"] == 2
        assert 0 < flat["rave_admission_pool_utilisation"] <= 1.0
        assert flat["rave_queue_wait_seconds_count"] >= 2
        tenants = {s["labels"]["tenant"]: s["value"] for s in
                   payload["metrics"]["rave_tenant_sessions"]["series"]}
        assert tenants == {"acme": 1.0, "beta": 1.0}

    def test_monitor_scrapes_the_grid_like_any_service(self):
        tb = build_testbed(monitor_host="registry-host")
        grid = small_grid(tb, queue_capacity=1)
        open_tenants(grid, "acme", "beta")
        for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
            grid.request_session(tenant, f"s{i}", scene(i))
        tb.network.sim.run_until(tb.clock.now + 3.0)
        values = tb.monitor.grid_values()
        assert values["rave_grid_queue_depth"] == 1.0
        assert values["rave_grid_rejection_rate"] > 0

    def test_sustained_saturation_fires_the_grid_saturated_alert(self):
        tb = build_testbed(monitor_host="registry-host")
        grid = small_grid(tb, queue_capacity=1, queue_timeout=600.0)
        open_tenants(grid, "acme", "beta")
        for i, tenant in enumerate(["acme", "beta", "acme"]):
            grid.request_session(tenant, f"s{i}", scene(i))
        tb.network.sim.run_until(tb.clock.now + 30.0)
        names = {a.rule for a in tb.monitor.firing_alerts()}
        assert "grid-saturated" in names

    def test_dashboard_renders_the_admission_section(self):
        from repro.obs.dashboard import render_dashboard

        tb = build_testbed(monitor_host="registry-host")
        grid = small_grid(tb, queue_capacity=1)
        open_tenants(grid, "acme", "beta")
        for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
            grid.request_session(tenant, f"s{i}", scene(i))
        tb.network.sim.run_until(tb.clock.now + 3.0)
        text = render_dashboard(tb.monitor.snapshot())
        assert "admission (rave-grid)" in text
        assert "queue depth" in text
        assert "acme" in text and "beta" in text


class TestAutoscalerGridMode:
    def test_sustained_rejections_grow_the_pool_and_drain_the_queue(self):
        tb = build_testbed(monitor_host="registry-host", autoscale=True)
        grid = small_grid(tb, queue_capacity=4, queue_timeout=600.0)
        open_tenants(grid, "acme", "beta")
        auto = tb.autoscale_grid(grid, cooldown_seconds=5.0, period=1.0)
        queued = []
        for i, tenant in enumerate(["acme", "beta", "acme", "beta"]):
            d = grid.request_session(tenant, f"s{i}", scene(i))
            if d.outcome == EVENT_QUEUE:
                queued.append(f"s{i}")
        assert queued
        sim = tb.network.sim
        for _ in range(60):
            sim.run_until(sim.now + 1.0)
            if grid.queue_depth() == 0 and len(grid.members) > 1:
                break
        assert len(grid.members) > 1
        assert grid.queue_depth() == 0
        assert len(grid.sessions()) == 4
        assert any(e.kind == "grow" for e in auto.events)

    def test_quiet_grid_releases_idle_members(self):
        tb = build_testbed(monitor_host="registry-host", autoscale=True)
        grid = small_grid(tb, member_hosts=("centrino", "onyx"))
        open_tenants(grid, "acme")
        tb.autoscale_grid(grid, cooldown_seconds=5.0, period=1.0,
                          min_services=1)
        sim = tb.network.sim
        for _ in range(120):
            sim.run_until(sim.now + 1.0)
            if len(grid.members) == 1:
                break
        assert len(grid.members) == 1


class TestPumpReentrancy:
    """Satellite regression: a callback pumping mid-pump is safe.

    ``pump()`` snapshots the expired entries before resolving them; an
    ``on_reject`` callback that synchronously pumps again (a thin client
    retrying on 429) used to drain the remaining expired entries inside
    the recursive call, so the outer pass's ``remove()`` hit an entry
    that was already gone and raised ``ValueError`` out of admission.
    """

    def test_on_reject_pumping_again_does_not_corrupt_the_pass(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_timeout=5.0)
        open_tenants(grid, "acme", "beta")
        rejected = []

        def retry_now(decision):
            rejected.append(decision.session_id)
            grid.pump()             # reentrant: must be a quiet no-op

        grid.request_session("acme", "s0", scene(0))    # these two fill
        grid.request_session("beta", "s1", scene(1))    # the grid
        grid.request_session("acme", "s2", scene(2), on_reject=retry_now)
        grid.request_session("beta", "s3", scene(3), on_reject=retry_now)
        assert grid.queue_depth() == 2
        tb.network.sim.clock.advance(6.0)   # both deadlines pass together
        resolved = grid.pump()
        assert rejected == ["s2", "s3"]
        assert {d.session_id for d in resolved} == {"s2", "s3"}
        assert grid.queue_timeouts == 2
        assert grid.queue_depth() == 0


class TestDeadlineDrivenByTheClock:
    """Satellite regression: queue deadlines fire from the simulated clock.

    Before the fix, ``pump()`` ran only from ``release_session()`` and
    the autoscaler tick — a queued request whose deadline passed on a
    quiet grid sat in limbo forever and its ``on_reject`` never fired.
    """

    def test_expiry_fires_without_any_pump_or_release(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_timeout=5.0)
        open_tenants(grid, "acme", "beta")
        rejected = []
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2),
                             on_reject=lambda d: rejected.append(d))
        deadline = grid._queue[0].deadline
        # nobody releases, nobody pumps: only the clock advances
        tb.network.sim.run_until(deadline + 30.0)
        assert [d.session_id for d in rejected] == ["s2"]
        assert rejected[0].reason == REASON_QUEUE_TIMEOUT
        # and the 429 happened *at* the deadline, not half a minute late
        assert rejected[0].time == pytest.approx(deadline)
        assert grid.queue_timeouts == 1
        assert grid.queue_depth() == 0

    def test_resolved_entries_make_the_tick_a_no_op(self):
        """An admitted entry's stale deadline tick must not re-reject it."""
        tb = build_testbed()
        grid = small_grid(tb, queue_timeout=5.0)
        open_tenants(grid, "acme", "beta")
        admitted, rejected = [], []
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("beta", "s2", scene(2),
                             on_admit=lambda d: admitted.append(d),
                             on_reject=lambda d: rejected.append(d))
        grid.release_session("s0")      # admits s2 well before its deadline
        assert [d.session_id for d in admitted] == ["s2"]
        tb.network.sim.run_until(tb.clock.now + 60.0)
        assert rejected == []
        assert grid.queue_timeouts == 0


class TestDuplicateAdmission:
    """Satellite regression: double-submitting a session id is refused.

    Before the fix, re-requesting an id that was already *queued* charged
    the queue twice and could admit the same session id twice, the second
    admit silently overwriting the first ``GridSession`` and leaking its
    capacity shares.
    """

    def test_duplicate_of_a_queued_id_is_rejected_not_requeued(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme", "beta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        first = grid.request_session("acme", "s2", scene(2))
        assert first.outcome == EVENT_QUEUE
        dup = grid.request_session("acme", "s2", scene(2))
        assert dup.outcome == EVENT_REJECT
        assert dup.reason == REASON_DUPLICATE
        # the dup carries a decodable 429 like every other reject
        info = unframe_reject(dup.reject_frame)
        assert info.status == 429
        assert info.reason == REASON_DUPLICATE
        # the original request is untouched: one entry, same position
        assert grid.queue_depth() == 1
        assert grid.queue_position("s2") == 1

    def test_duplicate_never_admits_the_same_id_twice(self):
        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme", "beta")
        grid.request_session("acme", "s0", scene(0))
        grid.request_session("beta", "s1", scene(1))
        grid.request_session("acme", "s2", scene(2))
        grid.request_session("acme", "s2", scene(2))     # the double-submit
        resolved = grid.release_session("s0")
        admits = [d for d in resolved if d.outcome == EVENT_ADMIT]
        assert [d.session_id for d in admits] == ["s2"]
        assert grid.queue_depth() == 0
        assert len(grid.tenant_sessions("acme")) == 1

    def test_pump_never_readmits_an_already_admitted_head(self):
        """Defence in depth at the head of the line.

        Even if a queued entry's id somehow becomes admitted while it
        waits (the pre-fix double-submit window), pump resolves it as an
        explicit duplicate reject instead of overwriting the live
        session.
        """
        from repro.core.grid import QueuedRequest

        tb = build_testbed()
        grid = small_grid(tb)
        open_tenants(grid, "acme")
        grid.request_session("acme", "s0", scene(0))
        live = grid.session("s0")
        rejected = []
        grid._queue.append(QueuedRequest(
            tenant="acme", session_id="s0", tree=scene(0),
            target_fps=FPS, demand_polygons=1, enqueued_at=grid.now,
            deadline=grid.now + 60.0,
            on_reject=lambda d: rejected.append(d)))
        resolved = grid.pump()
        assert [d.outcome for d in resolved] == [EVENT_REJECT]
        assert resolved[0].reason == REASON_DUPLICATE
        assert rejected and rejected[0].session_id == "s0"
        assert grid.session("s0") is live


class TestClientHonoursRetryAfter:
    """Satellite regression: the 429's retry_after is an actionable hint.

    Before the fix, ``ThinClient.open_grid_session`` could only raise on
    a reject; callers wanting to come back later had to hand-roll the
    sleep.  Now ``retries=`` waits out the server-supplied
    ``retry_after`` on the simulated clock — during which queued events
    (like a release freeing capacity) actually run.
    """

    def test_retry_after_round_trips_the_wire(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0, queue_timeout=12.5)
        open_tenants(grid, "acme", "beta")
        client = tb.thin_client("pda")
        client.open_grid_session(grid, "acme", "s0", scene(0))
        client.open_grid_session(grid, "beta", "s1", scene(1))
        with pytest.raises(TooManyRequestsError) as err:
            client.open_grid_session(grid, "acme", "s2", scene(2))
        # the value the client raises is the one the frame carried
        assert err.value.retry_after == 12.5

    def test_client_sleeps_retry_after_then_succeeds(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0, queue_timeout=10.0)
        open_tenants(grid, "acme", "beta")
        client = tb.thin_client("pda")
        client.open_grid_session(grid, "acme", "s0", scene(0))
        client.open_grid_session(grid, "beta", "s1", scene(1))
        sim = tb.network.sim
        # capacity frees while the client sleeps off the retry_after
        sim.schedule(4.0, lambda: grid.release_session("s0"))
        t0 = sim.now
        decision = client.open_grid_session(grid, "acme", "s2", scene(2),
                                            retries=1)
        assert decision.outcome == EVENT_ADMIT
        assert client.admission_retries == 1
        # the wait really ran on the simulated clock
        assert sim.now - t0 >= 10.0
        assert client.attached

    def test_exhausted_retries_still_raise_the_429(self):
        tb = build_testbed()
        grid = small_grid(tb, queue_capacity=0, queue_timeout=3.0)
        open_tenants(grid, "acme", "beta")
        client = tb.thin_client("pda")
        client.open_grid_session(grid, "acme", "s0", scene(0))
        client.open_grid_session(grid, "beta", "s1", scene(1))
        with pytest.raises(TooManyRequestsError) as err:
            client.open_grid_session(grid, "acme", "s2", scene(2),
                                     retries=2)
        assert err.value.retry_after == 3.0
        assert client.admission_retries == 2
