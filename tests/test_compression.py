"""Framebuffer codecs and the adaptive controller."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compression import (
    AdaptiveCodec,
    BandwidthEstimator,
    DeltaCodec,
    RawCodec,
    Rgb565Codec,
    RleCodec,
)
from repro.errors import DataFormatError
from repro.render.framebuffer import FrameBuffer


def noisy_frame(w=32, h=32, seed=0):
    fb = FrameBuffer(w, h)
    rng = np.random.default_rng(seed)
    fb.color[:] = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
    return fb


def flat_frame(w=32, h=32, value=(10, 20, 30)):
    return FrameBuffer(w, h, background=value)


class TestRoundTrips:
    @pytest.mark.parametrize("codec_cls", [RawCodec, RleCodec, DeltaCodec])
    def test_lossless_on_noise(self, codec_cls):
        codec = codec_cls()
        fb = noisy_frame()
        enc = codec.encode(fb)
        dec, _ = codec.decode(enc, 32, 32)
        assert np.array_equal(dec.color, fb.color)

    def test_rgb565_bounded_error(self):
        codec = Rgb565Codec()
        fb = noisy_frame()
        enc = codec.encode(fb)
        dec, _ = codec.decode(enc, 32, 32)
        err = np.abs(dec.color.astype(int) - fb.color.astype(int))
        assert err.max() <= 8
        assert enc.nbytes == 32 * 32 * 2

    def test_rle_compresses_flat_regions(self):
        enc = RleCodec().encode(flat_frame())
        assert enc.ratio > 50

    def test_rle_expands_noise_gracefully(self):
        enc = RleCodec().encode(noisy_frame())
        dec, _ = RleCodec().decode(enc, 32, 32)
        assert np.array_equal(dec.color, noisy_frame().color)

    def test_rle_long_run_split(self):
        fb = flat_frame(400, 400)          # 160k pixels > u16 run limit
        enc = RleCodec().encode(fb)
        dec, _ = RleCodec().decode(enc, 400, 400)
        assert np.array_equal(dec.color, fb.color)

    def test_wrong_codec_rejected(self):
        enc = RawCodec().encode(flat_frame())
        with pytest.raises(DataFormatError):
            RleCodec().decode(enc, 32, 32)

    def test_wrong_size_rejected(self):
        enc = RawCodec().encode(flat_frame())
        with pytest.raises(DataFormatError):
            RawCodec().decode(enc, 16, 16)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_rle_roundtrip_property(self, seed):
        fb = noisy_frame(16, 16, seed)
        # make some runs
        fb.color[::3] = 99
        enc = RleCodec().encode(fb)
        dec, _ = RleCodec().decode(enc, 16, 16)
        assert np.array_equal(dec.color, fb.color)


class TestDelta:
    def test_first_frame_is_key(self):
        codec = DeltaCodec()
        enc = codec.encode(flat_frame())
        assert enc.meta["changed"] == 32 * 32

    def test_small_change_small_delta(self):
        codec = DeltaCodec()
        fb = flat_frame()
        codec.encode(fb)
        fb2 = fb.copy()
        fb2.color[0, 0] = 255
        enc = codec.encode(fb2)
        assert enc.meta["changed"] == 1
        assert enc.nbytes < 50

    def test_stream_decode_order(self):
        enc_codec = DeltaCodec()
        dec_codec = DeltaCodec()
        frames = [flat_frame(), flat_frame(value=(1, 1, 1)), noisy_frame()]
        for fb in frames:
            enc = enc_codec.encode(fb)
            dec, _ = dec_codec.decode(enc, 32, 32)
            assert np.array_equal(dec.color, fb.color)

    def test_delta_before_key_rejected(self):
        enc_codec = DeltaCodec()
        enc_codec.encode(flat_frame())
        fb2 = flat_frame()
        fb2.color[0, 0] = 9
        delta = enc_codec.encode(fb2)
        fresh = DeltaCodec()
        with pytest.raises(DataFormatError):
            fresh.decode(delta, 32, 32)

    def test_reset_forces_key_frame(self):
        codec = DeltaCodec()
        codec.encode(flat_frame())
        codec.reset()
        enc = codec.encode(flat_frame())
        assert enc.meta["changed"] == 32 * 32

    def test_tolerant_delta_is_lossy_and_named(self):
        codec = DeltaCodec(tolerance=10)
        assert codec.NAME == "delta~10"
        assert not codec.LOSSLESS
        codec.encode(flat_frame())
        fb2 = flat_frame()
        fb2.color[:] = 15  # small change within tolerance of (10,20,30)? no
        fb3 = flat_frame()
        fb3.color[0, 0, 0] = 15  # within 10 of value 10
        enc = codec.encode(fb3)
        assert enc.meta["changed"] == 0

    def test_lossy_stream_error_stays_bounded(self):
        """Regression: the lossy encoder used to reference the *true*
        frame rather than the receiver's post-apply state, so per-frame
        sub-tolerance drift compounded — a slow fade accumulated error
        well beyond the tolerance.  With the fix, the decoded stream
        never deviates from the source by more than the tolerance."""
        tol = 10
        enc_codec = DeltaCodec(tolerance=tol)
        dec_codec = DeltaCodec(tolerance=tol)
        fb = flat_frame(value=(100, 100, 100))
        # drift by +4/channel per frame: always under tolerance vs the
        # receiver's state only if the encoder tracks that state
        for step in range(12):
            fb = fb.copy()
            fb.color[:] = np.minimum(fb.color + 4, 255)
            enc = enc_codec.encode(fb)
            dec, _ = dec_codec.decode(enc, 32, 32)
            error = np.abs(dec.color.astype(int) - fb.color.astype(int))
            assert error.max() <= tol, f"frame {step}: drift {error.max()}"

    def test_lossy_encoder_reference_mirrors_decoder(self):
        """After a delta frame, both sides must hold identical state."""
        tol = 8
        enc_codec = DeltaCodec(tolerance=tol)
        dec_codec = DeltaCodec(tolerance=tol)
        frames = [flat_frame(value=(50, 50, 50)), flat_frame(value=(54, 50, 50)),
                  noisy_frame(seed=7)]
        for fb in frames:
            enc = enc_codec.encode(fb)
            dec_codec.decode(enc, 32, 32)
            assert np.array_equal(enc_codec._reference_enc,
                                  dec_codec._reference_dec)


class TestBandwidthEstimator:
    def test_ewma_tracks_observations(self):
        est = BandwidthEstimator(initial_bps=1e6, alpha=0.5)
        est.observe(nbytes=125_000, seconds=1.0)  # 1 Mbit/s sample
        assert est.bps == pytest.approx(1e6)
        est.observe(nbytes=250_000, seconds=1.0)  # 2 Mbit/s sample
        assert 1e6 < est.bps < 2e6

    def test_expected_seconds(self):
        est = BandwidthEstimator(initial_bps=8e6)
        assert est.expected_seconds(1_000_000) == pytest.approx(1.0)

    def test_bad_observations_ignored(self):
        est = BandwidthEstimator()
        before = est.bps
        est.observe(0, 1.0)
        est.observe(100, 0.0)
        assert est.bps == before

    def test_validation(self):
        with pytest.raises(ValueError):
            BandwidthEstimator(initial_bps=0)
        with pytest.raises(ValueError):
            BandwidthEstimator(alpha=0)

    def test_first_observation_replaces_prior(self):
        """Regression: the first sample used to be EWMA-blended with the
        arbitrary prior, so on a link 100× slower than the default the
        estimate stayed wrong for many frames and the adaptive codec kept
        over-sending.  The first observation must snap the estimate."""
        est = BandwidthEstimator(initial_bps=4.8e6, alpha=0.3)
        est.observe(nbytes=6_000, seconds=1.0)    # 48 kbit/s link
        assert est.bps == pytest.approx(48_000.0)
        # subsequent samples blend as usual
        est.observe(nbytes=12_000, seconds=1.0)   # 96 kbit/s sample
        assert est.bps == pytest.approx(0.3 * 96_000 + 0.7 * 48_000)

    def test_observation_count_tracked(self):
        est = BandwidthEstimator()
        est.observe(0, 1.0)                       # ignored, not counted
        assert est.observations == 0
        est.observe(1_000, 1.0)
        est.observe(1_000, 1.0)
        assert est.observations == 2


class TestAdaptive:
    def test_raw_on_fast_link(self):
        ac = AdaptiveCodec(BandwidthEstimator(initial_bps=100e6),
                           latency_budget=0.25)
        enc = ac.encode(noisy_frame())
        assert enc.meta["inner"] == "raw"

    def test_degrades_under_pressure(self):
        est = BandwidthEstimator(initial_bps=100e6)
        ac = AdaptiveCodec(est, latency_budget=0.05)
        fb = noisy_frame()  # RLE useless on noise
        est.bps = 0.2e6
        enc = ac.encode(fb)
        assert enc.meta["inner"] != "raw"

    def test_decode_routes_to_inner(self):
        est = BandwidthEstimator(initial_bps=100e6)
        ac = AdaptiveCodec(est)
        fb = noisy_frame()
        enc = ac.encode(fb)
        dec, _ = ac.decode(enc, 32, 32)
        assert np.array_equal(dec.color, fb.color)

    def test_delta_state_consistent_across_choices(self):
        """Encoder must not advance delta state for codecs it rejected."""
        est = BandwidthEstimator(initial_bps=100e6)
        enc_side = AdaptiveCodec(est, latency_budget=0.25)
        dec_side = AdaptiveCodec(BandwidthEstimator(initial_bps=100e6),
                                 latency_budget=0.25)
        frames = []
        fb = flat_frame()
        for i in range(6):
            fb = fb.copy()
            fb.color[i, i] = 200 + i
            frames.append(fb)
        # alternate bandwidth so the chosen codec flips between raw/delta
        for i, frame in enumerate(frames):
            est.bps = 100e6 if i % 2 == 0 else 1e5
            enc = enc_side.encode(frame)
            dec, _ = dec_side.decode(enc, 32, 32)
            if enc.lossless:
                assert np.array_equal(dec.color, frame.color), \
                    f"frame {i} via {enc.meta['inner']}"

    def test_choices_recorded(self):
        ac = AdaptiveCodec(BandwidthEstimator(initial_bps=100e6))
        ac.encode(flat_frame())
        assert len(ac.choices) == 1
        assert ac.choices[0].codec_name == "raw"

    def test_unknown_inner_rejected(self):
        ac = AdaptiveCodec(BandwidthEstimator())
        from repro.compression.base import EncodedFrame

        fake = EncodedFrame(codec="adaptive", data=b"", width=4, height=4,
                            encode_seconds=0, lossless=True,
                            meta={"inner": "jpeg2000"})
        with pytest.raises(DataFormatError):
            ac.decode(fake, 4, 4)

    def test_wireless_walkaway_scenario(self):
        """A user walking away from the AP: quality drops, codec adapts,
        frames keep decoding."""
        est = BandwidthEstimator(initial_bps=4.8e6)
        enc_side = AdaptiveCodec(est, latency_budget=0.2)
        dec_side = AdaptiveCodec(BandwidthEstimator(), latency_budget=0.2)
        rng = np.random.default_rng(7)
        inner_used = []
        fb = flat_frame(64, 64)
        for quality in (1.0, 0.6, 0.3, 0.1, 0.05):
            est.bps = 4.8e6 * quality
            fb = fb.copy()
            y, x = rng.integers(0, 64, 2)
            fb.color[y, x] = rng.integers(0, 255, 3)
            enc = enc_side.encode(fb)
            dec, _ = dec_side.decode(enc, 64, 64)
            inner_used.append(enc.meta["inner"])
            if enc.lossless:
                assert np.array_equal(dec.color, fb.color)
        assert inner_used[0] == "raw"
        assert inner_used[-1] != "raw"
