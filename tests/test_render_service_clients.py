"""Render services, thin clients and active render clients."""

import numpy as np
import pytest

from repro.data.generators import galleon
from repro.errors import ServiceError, SessionError
from repro.render.framebuffer import Tile
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SetProperty


@pytest.fixture
def demo(small_testbed):
    tree = SceneTree("demo")
    tree.add(MeshNode(galleon().normalized(), name="ship"))
    small_testbed.publish_tree("demo", tree)
    return small_testbed


class TestRenderServiceBootstrap:
    def test_bootstrap_timing_components(self, demo):
        rs = demo.render_service("centrino")
        before = demo.clock.now
        session, timing = rs.create_render_session(demo.data_service,
                                                   "demo")
        assert timing.instance_seconds > 5      # Axis/Java3D startup
        assert timing.marshal_seconds > 0
        assert timing.transfer_seconds > 0
        assert demo.clock.now - before == pytest.approx(
            timing.total_seconds, abs=1e-6)

    def test_shared_scene_copy(self, demo):
        """Second user of the same session: no second transfer."""
        rs = demo.render_service("centrino")
        s1, t1 = rs.create_render_session(demo.data_service, "demo")
        s2, t2 = rs.create_render_session(demo.data_service, "demo")
        assert s1.tree is s2.tree               # single stored copy
        assert t2.nbytes == 0
        assert t2.marshal_seconds == 0.0

    def test_scene_copy_released_with_last_session(self, demo):
        rs = demo.render_service("centrino")
        s1, _ = rs.create_render_session(demo.data_service, "demo")
        s2, _ = rs.create_render_session(demo.data_service, "demo")
        rs.close_render_session(s1.render_session_id)
        assert rs._scene_cache                  # still one user
        rs.close_render_session(s2.render_session_id)
        assert not rs._scene_cache

    def test_updates_keep_copy_in_sync(self, demo):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        ship_id = session.tree.find_by_name("ship")[0].node_id
        demo.data_service.publish_update("demo", SetProperty(
            node_id=ship_id, field_name="name", value="renamed"))
        assert session.tree.node(ship_id).name == "renamed"

    def test_unknown_render_session(self, demo):
        rs = demo.render_service("centrino")
        with pytest.raises(SessionError):
            rs.render_session("nope")

    def test_thin_host_cannot_host_service(self, demo):
        from repro.services.container import ServiceContainer
        from repro.services.render_service import RenderService

        container = ServiceContainer("zaurus", demo.network,
                                     profile="zaurus", http_port=9191)
        with pytest.raises(ServiceError):
            RenderService("rs-pda", container)


class TestRendering:
    def test_render_view(self, demo):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        cam = demo.thin_client("viewer").camera
        cam.look(position=(2.2, 1.4, 1.2))
        fb, timing = rs.render_view(session.render_session_id, cam, 96, 96)
        assert fb.coverage() > 0.02
        assert timing.mode == "offscreen"

    def test_render_advances_clock(self, demo):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        cam = demo.thin_client("v").camera
        before = demo.clock.now
        _, timing = rs.render_view(session.render_session_id, cam, 64, 64)
        assert demo.clock.now == pytest.approx(
            before + timing.total_seconds)

    def test_render_tile_matches_full_view(self, demo):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        cam = demo.thin_client("v").camera
        cam.look(position=(2.2, 1.4, 1.2))
        full, _ = rs.render_view(session.render_session_id, cam, 96, 96)
        tile = Tile(x0=48, y0=0, width=48, height=96)
        part, _ = rs.render_tile(session.render_session_id, cam, tile,
                                 96, 96)
        assert np.array_equal(part.color, full.color[:, 48:])

    def test_subset_rendering_draws_only_share(self, demo):
        rs = demo.render_service("centrino")
        full_session, _ = rs.create_render_session(demo.data_service,
                                                   "demo")
        ship_id = full_session.tree.find_by_name("ship")[0].node_id
        # a second session restricted to an empty share
        session2, _ = rs.create_render_session(demo.data_service, "demo")
        session2.assigned_ids = set()
        assert session2.assigned_polygons() == 0
        assert full_session.assigned_polygons() > 0

    def test_fps_reporting(self, demo):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        cam = demo.thin_client("v").camera
        assert rs.reported_fps == float("inf")
        rs.render_view(session.render_session_id, cam, 64, 64)
        assert np.isfinite(rs.reported_fps)

    def test_utilisation_tracks_commitment(self, demo):
        rs = demo.render_service("centrino")
        assert rs.utilisation() == 0.0
        rs.create_render_session(demo.data_service, "demo")
        assert rs.utilisation() > 0.0


class TestThinClient:
    def attach(self, demo, blit="cpp"):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        client = demo.thin_client("pda-user", blit_path=blit)
        client.attach(rs, session.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))
        return client

    def test_frame_timing_decomposes(self, demo):
        client = self.attach(demo)
        fb, t = client.request_frame(200, 200)
        assert t.total_latency == pytest.approx(
            t.render_seconds + t.image_receipt_seconds
            + t.overhead_seconds)
        assert t.fps == pytest.approx(1 / t.total_latency)
        assert t.nbytes == 120_000

    def test_receipt_dominated_by_wireless(self, demo):
        """Paper: ~0.2 s for a 120 kB frame on 11 Mbit wireless."""
        client = self.attach(demo)
        _, t = client.request_frame(200, 200)
        assert 0.17 < t.image_receipt_seconds < 0.27

    def test_j2me_blit_catastrophic(self, demo):
        """'Over two minutes to send a single frame' with J2ME."""
        fast = self.attach(demo)
        _, t_cpp = fast.request_frame(200, 200)
        slow = self.attach_second(demo, "j2me")
        _, t_j2me = slow.request_frame(200, 200)
        assert t_j2me.overhead_seconds > 100.0       # minutes, not ms
        assert t_cpp.overhead_seconds < 0.1

    def attach_second(self, demo, blit):
        rs = demo.render_service("centrino")
        session, _ = rs.create_render_session(demo.data_service, "demo")
        client = demo.thin_client("pda2", blit_path=blit)
        client.attach(rs, session.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))
        return client

    def test_unattached_request_rejected(self, demo):
        client = demo.thin_client("lonely")
        with pytest.raises(ServiceError):
            client.request_frame()

    def test_degraded_signal_slows_receipt(self, demo):
        client = self.attach(demo)
        _, good = client.request_frame(200, 200)
        demo.wireless.set_signal_quality("zaurus", 0.4)
        _, bad = client.request_frame(200, 200)
        assert bad.image_receipt_seconds > 2 * good.image_receipt_seconds

    def test_compressed_frames_cheaper_on_bad_link(self, demo):
        from repro.compression import RleCodec

        client = self.attach(demo)
        demo.wireless.set_signal_quality("zaurus", 0.3)
        _, raw = client.request_frame(200, 200)
        _, packed = client.request_frame(200, 200, codec=RleCodec())
        assert packed.nbytes < raw.nbytes
        assert packed.image_receipt_seconds < raw.image_receipt_seconds

    def test_camera_publication(self, demo):
        from repro.scenegraph.nodes import CameraNode
        from repro.scenegraph.updates import AddNode

        client = self.attach(demo)
        master = demo.data_service.session("demo").tree
        cam_id = max(n.node_id for n in master) + 1
        # camera joins through the update protocol so every subscriber's
        # copy gains it too
        demo.data_service.publish_update("demo", AddNode.of(
            CameraNode(name="client-cam"), parent_id=0, node_id=cam_id))
        client.move_camera(position=(1.0, 2.0, 3.0))
        client.publish_camera(demo.data_service, "demo", cam_id)
        assert np.allclose(master.node(cam_id).position, [1, 2, 3])


class TestActiveRenderClient:
    def test_join_and_render(self, demo):
        client = demo.active_client("desktop-user", "athlon")
        timing = client.join(demo.data_service, "demo")
        assert timing.total_seconds > 0
        assert timing.instance_seconds == 0.0    # no container!
        client.camera.look(position=(2.2, 1.4, 1.2))
        fb, seconds = client.render(96, 96)
        assert fb.coverage() > 0.02
        assert seconds > 0

    def test_avatar_announcement_propagates(self, demo):
        a = demo.active_client("alice", "athlon")
        b = demo.active_client("bob", "centrino")
        a.join(demo.data_service, "demo")
        b.join(demo.data_service, "demo")
        avatar_id = a.announce_avatar()
        # bob's local copy sees alice's avatar
        assert avatar_id in b.tree
        assert b.tree.node(avatar_id).user == "alice"

    def test_move_updates_collaborators(self, demo):
        a = demo.active_client("alice", "athlon")
        b = demo.active_client("bob", "centrino")
        a.join(demo.data_service, "demo")
        b.join(demo.data_service, "demo")
        aid = a.announce_avatar()
        a.move(position=(5.0, 5.0, 5.0))
        assert np.allclose(b.tree.node(aid).position, [5, 5, 5])

    def test_render_before_join_rejected(self, demo):
        client = demo.active_client("early", "athlon")
        with pytest.raises(ServiceError):
            client.render(32, 32)

    def test_thin_host_rejected(self, demo):
        with pytest.raises(ServiceError):
            demo.active_client("pda-render", "zaurus")
