"""The CLI entry point and data-service autosave checkpointing."""

import pytest

from repro.__main__ import main
from repro.data.generators import galleon
from repro.errors import SessionError
from repro.scenegraph.updates import SetProperty


class TestCli:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "testbed machines" in out
        assert "centrino" in out
        assert "skeletal_hand" in out

    def test_quickstart(self, tmp_path, capsys):
        out_file = tmp_path / "frame.ppm"
        assert main(["quickstart", "--output", str(out_file)]) == 0
        assert out_file.exists()
        out = capsys.readouterr().out
        assert "fps" in out

    def test_tables34(self, capsys):
        assert main(["tables34"]) == 0
        out = capsys.readouterr().out
        assert "Table 3" in out and "Table 4" in out
        assert "35%" in out        # the calibrated Elle/Centrino cell

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestAutosave:
    @pytest.fixture
    def session(self, small_testbed):
        tb = small_testbed
        tb.publish_model("auto", galleon().normalized())
        return tb

    def ship_id(self, tb):
        return tb.data_service.session("auto").tree.find_by_name(
            "galleon")[0].node_id

    def test_checkpoint_written_on_cadence(self, session, tmp_path):
        tb = session
        path = tmp_path / "auto.rave"
        tb.data_service.enable_autosave("auto", path, every_n_updates=3)
        nid = self.ship_id(tb)
        for i in range(2):
            tb.data_service.publish_update("auto", SetProperty(
                node_id=nid, field_name="name", value=f"v{i}"))
        assert not path.exists()       # cadence not reached
        tb.data_service.publish_update("auto", SetProperty(
            node_id=nid, field_name="name", value="v2"))
        assert path.exists()
        assert tb.data_service.session("auto").autosaves_written == 1

    def test_checkpoint_resumes_correctly(self, session, tmp_path):
        tb = session
        path = tmp_path / "auto.rave"
        tb.data_service.enable_autosave("auto", path, every_n_updates=1)
        nid = self.ship_id(tb)
        tb.data_service.publish_update("auto", SetProperty(
            node_id=nid, field_name="name", value="checkpointed"))
        resumed = tb.data_service.load_session("auto-resumed", path)
        assert resumed.tree.node(nid).name == "checkpointed"
        assert len(resumed.trail) == 1

    def test_cadence_validated(self, session, tmp_path):
        with pytest.raises(SessionError):
            session.data_service.enable_autosave("auto", tmp_path / "x",
                                                 every_n_updates=0)

    def test_autosave_unknown_session(self, session, tmp_path):
        with pytest.raises(SessionError):
            session.data_service.enable_autosave("ghost", tmp_path / "x")
