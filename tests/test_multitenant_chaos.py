"""Multi-tenant grid under fire: overload + member crashes, seeded.

Eight tenants fight over a two-member pool while the fault injector
kills a member mid-run.  One scripted scenario, one seed, and three
invariants that must hold at *every* step:

- admitted, unparked sessions never starve — their fps budget stays at
  or above the per-session floor, and tenants at their guaranteed
  quota floor are never shed further;
- every reject carries an explicit, decodable 429 frame (nobody is
  silently dropped);
- the flight recorder tells the whole story — every admission decision
  and every shed action lands in it, and the same seed replays the
  same story byte for byte.
"""

import pytest

from repro import obs
from repro.core.grid import TenantQuota
from repro.data.generators import uv_sphere
from repro.network.faults import FaultInjector
from repro.obs.vocab import (
    EVENT_ADMIT,
    EVENT_QUEUE,
    EVENT_REJECT,
    EVENT_SHED,
)
from repro.sanitizer import RaveSanitizer
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.protocol import unframe_reject
from repro.testbed import build_testbed

FPS = 3000.0
POOL = ("centrino", "athlon")
TENANTS = tuple(f"t{i}" for i in range(8))


def scene(label, nu=24):
    tree = SceneTree(name=f"scene-{label}")
    tree.add(MeshNode(uv_sphere(nu=nu, nv=nu)))
    return tree


def run_scenario(seed):
    """The scripted overload-plus-crash story; returns the evidence."""
    tb = build_testbed()
    floors_held = []

    with obs.observed(clock=tb.clock) as bundle:
        inj = FaultInjector(tb.network, seed=seed)
        grid = tb.session_grid(member_hosts=POOL, queue_capacity=3,
                               queue_timeout=20.0, target_fps=FPS)
        san = RaveSanitizer(tb.network.sim).attach()
        san.watch_grid(grid)
        # t0/t1 are gold (shed last, 10% guaranteed); the rest best-effort
        for i, tenant in enumerate(TENANTS):
            grid.register_tenant(TenantQuota(
                tenant=tenant, priority=(2 if i < 2 else 0),
                max_sessions=2, max_share=0.9,
                guaranteed_share=(0.10 if i < 2 else 0.0)))

        def check_floors():
            ok = all(gs.parked or gs.fps_budget >= gs.fps_floor
                     for gs in grid.sessions())
            floors_held.append(ok)

        sim = tb.network.sim
        # phase 1: every tenant asks at once — ~2.4x oversubscription
        for i, tenant in enumerate(TENANTS):
            grid.request_session(tenant, f"{tenant}-a", scene(i))
            check_floors()
        # phase 2: sustained pressure — shed the best-effort tenants
        for _ in range(6):
            sim.run_until(sim.now + 1.0)
            if grid.shed(sim.now) is None:
                break
            grid.pump(sim.now)
            check_floors()
        # phase 3: a member dies under full load
        inj.crash_host("athlon")
        grid.handle_member_failure("rs-athlon")
        for gs in grid.sessions():
            if any(s.name == "rs-athlon"
                   for s in gs.session.render_services):
                gs.session.handle_service_failure("rs-athlon")
        grid.shed_to_fit(sim.now)
        check_floors()
        # phase 4: the deadline passes for anyone still queued — the
        # deadline tick rejects them during run_until, no pump needed
        sim.run_until(sim.now + 25.0)
        grid.pump(sim.now)
        check_floors()
        # phase 5: the member comes back; restore walks the ladder up
        inj.restart_host("athlon")
        grid.failed_members.discard("rs-athlon")
        for _ in range(12):
            if grid.restore(sim.now) is None:
                break
            check_floors()
        grid.pump(sim.now)

        story = [(e.kind, e.detail) for e in bundle.recorder.events()]
    # the sanitizer rode along: no session double-charged, no share
    # node rendered by two members, the clock never jumped backwards
    assert san.ok, san.violations
    assert san.events_checked > 0
    # the grid's own log is the complete decision record — deadline
    # rejects resolve inside run_until, not in a pump() return value
    return grid, list(grid.decisions), floors_held, story


class TestMultiTenantChaos:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_scenario(seed=7)

    def test_the_pool_is_genuinely_oversubscribed(self, scenario):
        grid, decisions, _, _ = scenario
        outcomes = [d.outcome for d in decisions]
        assert outcomes.count(EVENT_ADMIT) >= 2
        assert EVENT_QUEUE in outcomes
        assert EVENT_REJECT in outcomes

    def test_admitted_sessions_never_starve(self, scenario):
        grid, _, floors_held, _ = scenario
        assert floors_held and all(floors_held)
        # and the gold tenants survived the crash un-shed
        for tenant in ("t0", "t1"):
            for gs in grid.tenant_sessions(tenant):
                assert not gs.parked

    def test_every_reject_carries_a_decodable_429(self, scenario):
        _, decisions, _, _ = scenario
        rejects = [d for d in decisions if d.outcome == EVENT_REJECT]
        assert rejects
        for d in rejects:
            info = unframe_reject(d.reject_frame)
            assert info.status == 429
            assert info.session_id == d.session_id
            assert info.reason == d.reason

    def test_flight_recorder_captured_every_decision(self, scenario):
        grid, decisions, _, story = scenario
        kinds = [k for k, _ in story]
        for outcome in (EVENT_ADMIT, EVENT_QUEUE, EVENT_REJECT):
            assert kinds.count(outcome) \
                == len([d for d in decisions if d.outcome == outcome])
        assert kinds.count(EVENT_SHED) == len(
            [a for a in grid.shed_actions
             if a.action in ("degrade", "park")])
        assert "fault:crash" in kinds
        # each decision's tenant/session pair is named in the story
        details = " | ".join(detail for _, detail in story)
        for d in decisions:
            assert f"{d.tenant}/{d.session_id}" in details

    def test_quota_floors_survive_the_crash(self, scenario):
        grid, _, _, _ = scenario
        for tenant in ("t0", "t1"):
            if grid.tenant_pps(tenant) > 0:
                assert grid.tenant_pps(tenant) \
                    >= grid._tenant_floor_pps(tenant) \
                    or not any(gs.degraded
                               for gs in grid.tenant_sessions(tenant))

    def test_same_seed_same_story(self):
        _, first_decisions, _, first_story = run_scenario(seed=23)
        _, replay_decisions, _, replay_story = run_scenario(seed=23)
        assert first_story == replay_story
        assert [(d.outcome, d.session_id, d.time)
                for d in first_decisions] \
            == [(d.outcome, d.session_id, d.time)
                for d in replay_decisions]
