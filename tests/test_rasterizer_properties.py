"""Property-based robustness tests for the rendering pipeline."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.data.meshes import Mesh
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.points import rasterize_points
from repro.render.rasterizer import rasterize_mesh


@st.composite
def scenes(draw):
    """Random mesh + camera, including degenerate geometry."""
    n_verts = draw(st.integers(3, 40))
    n_faces = draw(st.integers(1, 60))
    rng = np.random.default_rng(draw(st.integers(0, 2**32 - 1)))
    scale = draw(st.floats(0.01, 100.0))
    verts = (rng.normal(0, 1, (n_verts, 3)) * scale).astype(np.float32)
    faces = rng.integers(0, n_verts, (n_faces, 3)).astype(np.int32)
    cam_pos = rng.normal(0, 3, 3) * draw(st.floats(0.1, 10.0))
    if np.linalg.norm(cam_pos) < 0.2:
        cam_pos = np.array([0.0, 0.0, 5.0])
    camera = Camera.looking_at(tuple(cam_pos), target=(0, 0, 0))
    return Mesh(verts, faces), camera


class TestRasterizerRobustness:
    @given(scenes(), st.integers(8, 64))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_and_stats_consistent(self, scene, size):
        mesh, camera = scene
        fb = FrameBuffer(size, size)
        stats = rasterize_mesh(mesh, camera, fb)
        assert (stats.faces_rasterized + stats.faces_culled_near
                + stats.faces_culled_backface
                + stats.faces_culled_offscreen) == stats.faces_in
        # depth buffer only ever holds finite positive distances or inf
        finite = np.isfinite(fb.depth)
        if finite.any():
            assert (fb.depth[finite] > 0).all()

    @given(scenes())
    @settings(max_examples=40, deadline=None)
    def test_color_written_iff_depth_written(self, scene):
        mesh, camera = scene
        fb = FrameBuffer(32, 32, background=(7, 7, 7))
        rasterize_mesh(mesh, camera, fb)
        untouched = ~np.isfinite(fb.depth)
        assert (fb.color[untouched] == 7).all()

    @given(scenes())
    @settings(max_examples=30, deadline=None)
    def test_deterministic(self, scene):
        mesh, camera = scene
        a = FrameBuffer(32, 32)
        b = FrameBuffer(32, 32)
        rasterize_mesh(mesh, camera, a)
        rasterize_mesh(mesh, camera, b)
        assert np.array_equal(a.color, b.color)
        assert np.array_equal(a.depth, b.depth)

    @given(st.integers(0, 2**32 - 1), st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_points_never_crash(self, seed, size):
        rng = np.random.default_rng(seed)
        pts = (rng.normal(0, 2, (50, 3)) * rng.uniform(0.1, 50)).astype(
            np.float32)
        camera = Camera.looking_at((0, 0, 5))
        fb = FrameBuffer(32, 32)
        stats = rasterize_points(pts, camera, fb, point_size=size)
        assert 0 <= stats.points_drawn <= stats.points_in

    @given(scenes())
    @settings(max_examples=30, deadline=None)
    def test_depth_independent_of_shading(self, scene):
        mesh, camera = scene
        flat = FrameBuffer(32, 32)
        smooth = FrameBuffer(32, 32)
        rasterize_mesh(mesh, camera, flat, shading="flat")
        rasterize_mesh(mesh, camera, smooth, shading="gouraud")
        assert np.array_equal(flat.depth, smooth.depth)
