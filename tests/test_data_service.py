"""The data service: sessions, subscription, update distribution, mirroring."""

import numpy as np
import pytest

from repro.data.generators import galleon
from repro.errors import SessionError
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import AddNode, SetCamera, SetProperty
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService


@pytest.fixture
def ds(small_testbed):
    return small_testbed.data_service


@pytest.fixture
def session(small_testbed):
    tree = SceneTree("demo")
    tree.add(MeshNode(galleon().normalized(), name="ship"))
    tree.add(CameraNode(name="shared-cam"))
    return small_testbed.publish_tree("demo", tree)


class TestSessions:
    def test_create_and_lookup(self, ds, session):
        assert ds.session("demo") is session
        assert session in ds.sessions()

    def test_duplicate_session_rejected(self, ds, session, small_testbed):
        with pytest.raises(SessionError):
            small_testbed.publish_tree("demo", SceneTree())

    def test_unknown_session(self, ds):
        with pytest.raises(SessionError):
            ds.session("ghost")

    def test_multiple_sessions_one_service(self, ds, session,
                                           small_testbed):
        small_testbed.publish_tree("second", SceneTree("x"))
        assert len(ds.sessions()) == 2


class TestSubscription:
    def test_bootstrap_returns_equivalent_tree(self, ds, session):
        tree, timing = ds.subscribe("demo", "sub1", host="athlon")
        assert tree.total_polygons() == session.tree.total_polygons()
        assert timing.nbytes > 0
        assert timing.total_seconds > 0

    def test_bootstrap_is_a_deep_copy(self, ds, session):
        tree, _ = ds.subscribe("demo", "sub1", host="athlon")
        tree.find_by_name("ship")[0].name = "mutated"
        assert session.tree.find_by_name("ship")

    def test_duplicate_subscription_rejected(self, ds, session):
        ds.subscribe("demo", "sub1", host="athlon")
        with pytest.raises(SessionError):
            ds.subscribe("demo", "sub1", host="athlon")

    def test_introspective_slower_than_binary(self, ds, session,
                                              small_testbed):
        _, slow = ds.subscribe("demo", "s1", host="athlon",
                               introspective=True)
        _, fast = ds.subscribe("demo", "s2", host="athlon",
                               introspective=False)
        assert slow.marshal_seconds > 10 * fast.marshal_seconds

    def test_interest_filtered_bootstrap_smaller(self, ds, session):
        cam_id = session.tree.cameras()[0].node_id
        _, full = ds.subscribe("demo", "all", host="athlon")
        _, partial = ds.subscribe("demo", "partial", host="athlon",
                                  interests={cam_id})
        assert partial.nbytes < full.nbytes / 10

    def test_unsubscribe(self, ds, session):
        ds.subscribe("demo", "sub1", host="athlon")
        ds.unsubscribe("demo", "sub1")
        with pytest.raises(SessionError):
            ds.unsubscribe("demo", "sub1")


class TestUpdateDistribution:
    def test_update_applies_to_master(self, ds, session):
        cam = session.tree.cameras()[0]
        ds.publish_update("demo", SetCamera(
            node_id=cam.node_id, position=np.array([7.0, 0, 0]),
            target=np.zeros(3)))
        assert cam.position[0] == 7.0
        assert session.sequence == 1
        assert len(session.trail) == 1

    def test_subscribers_receive_updates(self, ds, session):
        received = []
        ds.subscribe("demo", "sub1", host="athlon",
                     on_update=received.append)
        cam = session.tree.cameras()[0]
        times = ds.publish_update("demo", SetCamera(
            node_id=cam.node_id, position=np.ones(3), target=np.zeros(3)))
        assert len(received) == 1
        assert times["sub1"] > 0

    def test_origin_not_echoed(self, ds, session):
        received = []
        ds.subscribe("demo", "me", host="athlon",
                     on_update=received.append)
        cam = session.tree.cameras()[0]
        times = ds.publish_update("demo", SetCamera(
            node_id=cam.node_id, origin="me",
            position=np.ones(3), target=np.zeros(3)))
        assert received == []
        assert "me" not in times

    def test_interest_management_filters(self, ds, session):
        """'This render service must be updated if the data service
        receives any changes to this subset of the data.'"""
        ship_id = session.tree.find_by_name("ship")[0].node_id
        cam_id = session.tree.cameras()[0].node_id
        got = []
        ds.subscribe("demo", "shipwatcher", host="athlon",
                     interests={ship_id}, on_update=got.append)
        ds.publish_update("demo", SetCamera(
            node_id=cam_id, position=np.ones(3), target=np.zeros(3)))
        assert got == []                             # camera not of interest
        ds.publish_update("demo", SetProperty(
            node_id=ship_id, field_name="name", value="renamed"))
        assert len(got) == 1

    def test_set_interests_rewires(self, ds, session):
        ship_id = session.tree.find_by_name("ship")[0].node_id
        got = []
        ds.subscribe("demo", "sub", host="athlon",
                     interests={ship_id}, on_update=got.append)
        cam_id = session.tree.cameras()[0].node_id
        ds.set_interests("demo", "sub", {cam_id})
        ds.publish_update("demo", SetCamera(
            node_id=cam_id, position=np.ones(3), target=np.zeros(3)))
        assert len(got) == 1

    def test_multicast_shares_uplink(self, ds, session):
        """Two subscribers on different hosts: the second should be
        cheaper than a second unicast (multicast saving)."""
        ds.subscribe("demo", "a", host="athlon")
        ds.subscribe("demo", "b", host="centrino")
        ship_id = session.tree.find_by_name("ship")[0].node_id
        big = SetProperty(node_id=ship_id, field_name="name",
                          value="x" * 100_000)
        times = ds.publish_update("demo", big)
        assert len(times) == 2
        assert min(times.values()) < 0.9 * max(times.values())


class TestPersistence:
    def test_save_and_reload_session(self, ds, session, tmp_path):
        cam = session.tree.cameras()[0]
        # audit-only reconstruction: record every mutation from scratch
        fresh = SceneTree("recorded")
        ds2_container = ds.container
        recorded = ds.create_session("recorded", fresh, charge_time=False)
        ds.publish_update("recorded", AddNode.of(
            CameraNode(name="c"), parent_id=0, node_id=5))
        ds.publish_update("recorded", SetCamera(
            node_id=5, position=np.array([1.0, 2, 3]), target=np.zeros(3)))
        path = tmp_path / "rec.rave"
        ds.save_session("recorded", path)

        replayed = ds.load_session("replayed", path)
        assert 5 in replayed.tree
        assert np.allclose(replayed.tree.node(5).position, [1, 2, 3])


class TestMirroring:
    def build_mirror(self, small_testbed):
        container = ServiceContainer("athlon", small_testbed.network,
                                     http_port=9090)
        return DataService("mirror", container)

    def test_mirror_replicates_sessions_and_updates(self, ds, session,
                                                    small_testbed):
        mirror = self.build_mirror(small_testbed)
        ds.add_mirror(mirror)
        assert "demo" in [s.session_id for s in mirror.sessions()]
        cam = session.tree.cameras()[0]
        ds.publish_update("demo", SetCamera(
            node_id=cam.node_id, position=np.array([9.0, 0, 0]),
            target=np.zeros(3)))
        mirrored_cam = mirror.session("demo").tree.node(cam.node_id)
        assert mirrored_cam.position[0] == 9.0

    def test_failover(self, ds, session, small_testbed):
        mirror = self.build_mirror(small_testbed)
        ds.add_mirror(mirror)
        assert ds.failover_to("demo") is mirror
        with pytest.raises(SessionError):
            ds.failover_to("ghost-session")

    def test_self_mirror_rejected(self, ds):
        with pytest.raises(SessionError):
            ds.add_mirror(ds)
