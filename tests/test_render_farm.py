"""The batch render farm: jobs, the frame queue, and the controller.

The farm contract under test, layer by layer:

- a :class:`RenderJob` tracks every frame pending → leased → done and
  its ``checkframes`` audit reports exactly the not-done indexes;
- the :class:`FrameQueueService` leases **exactly one** frame per pull,
  accepts a completion only from the lease holder (exactly-once), and
  re-queues lost leases at the front of the FIFO;
- the farm wire frames round-trip through ``services/protocol.py`` and
  refuse foreign or mangled bytes;
- the :class:`RenderFarmController` renders a whole job across a pool
  of render services with an empty audit at the end, and throughput
  scales with the pool;
- ``build_testbed(farm=True)`` registers the queue in UDDI beside the
  other four service roles, and the autoscaler's farm mode grows the
  pool on a sustained backlog alert.
"""

import pytest

from repro.errors import MarshallingError, ServiceError
from repro.data.generators import galleon
from repro.farm import (
    FRAME_DONE,
    FRAME_LEASED,
    FRAME_PENDING,
    FrameQueueService,
    RenderFarmController,
    RenderJob,
)
from repro.services.protocol import (
    FarmLease,
    FarmResult,
    frame_farm_lease,
    frame_farm_result,
    frame_message,
    unframe_farm_lease,
    unframe_farm_result,
)
from repro.testbed import build_testbed

JOB = "anim-001"
SCENE = "scene"


def farm_testbed(**kwargs):
    tb = build_testbed(farm=True, **kwargs)
    tb.publish_model(SCENE, galleon(2000))
    return tb


def job(start=1, end=8, **kwargs):
    return RenderJob(job_id=JOB, session_id=SCENE,
                     start_frame=start, end_frame=end, **kwargs)


def result_for(lease, worker=None):
    return frame_farm_result(FarmResult(
        job_id=lease.job_id, frame=lease.frame,
        worker=worker if worker is not None else "w0",
        render_seconds=0.01, nbytes=160 * 120 * 3))


class TestRenderJob:
    def test_frame_range_is_inclusive_and_validated(self):
        j = job(start=3, end=5)
        assert sorted(j.frames) == [3, 4, 5]
        assert j.total_frames == 3
        with pytest.raises(ServiceError):
            RenderJob(job_id="bad", session_id=SCENE,
                      start_frame=5, end_frame=3)

    def test_audit_reports_exactly_the_not_done_frames(self):
        j = job(start=1, end=4)
        j.frames[2].state = FRAME_DONE
        j.frames[4].state = FRAME_LEASED
        assert j.missing_frames() == [1, 3, 4]
        assert not j.finished
        for f in j.frames.values():
            f.state = FRAME_DONE
        assert j.missing_frames() == []
        assert j.finished and j.progress == 1.0

    def test_cameras_are_deterministic_per_frame(self):
        import numpy as np

        a, b = job(), job()
        for i in (1, 5, 8):
            ca, cb = a.camera_for(i), b.camera_for(i)
            assert ca.name == cb.name
            assert np.allclose(ca.position, cb.position)
        # and different frames genuinely look from somewhere else
        assert not np.allclose(a.camera_for(1).position,
                               a.camera_for(8).position)


class TestFarmProtocol:
    def test_lease_round_trips(self):
        lease = FarmLease(job_id=JOB, frame=7, session_id=SCENE,
                          attempt=2, deadline=42.5)
        assert unframe_farm_lease(frame_farm_lease(lease)) == lease

    def test_result_round_trips(self):
        result = FarmResult(job_id=JOB, frame=7, worker="rs-onyx",
                            render_seconds=0.125, nbytes=57600)
        assert unframe_farm_result(frame_farm_result(result)) == result

    def test_type_discriminator_is_enforced(self):
        lease_bytes = frame_farm_lease(FarmLease(
            job_id=JOB, frame=1, session_id=SCENE, attempt=1,
            deadline=1.0))
        with pytest.raises(MarshallingError):
            unframe_farm_result(lease_bytes)
        result_bytes = frame_farm_result(FarmResult(
            job_id=JOB, frame=1, worker="w", render_seconds=0.0,
            nbytes=0))
        with pytest.raises(MarshallingError):
            unframe_farm_lease(result_bytes)

    def test_foreign_flags_are_refused(self):
        plain = frame_message(b'{"frame": 1, "type": "lease"}')
        with pytest.raises(MarshallingError):
            unframe_farm_lease(plain)
        with pytest.raises(MarshallingError):
            unframe_farm_result(plain)


class TestFrameQueue:
    def queue(self):
        tb = farm_testbed()
        return tb, tb.farm_queue

    def test_submit_queues_the_whole_range_once(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=8))
        assert queue.queue_depth() == 8
        assert queue.progress(JOB) == (0, 8)
        with pytest.raises(ServiceError):
            queue.submit(job())
        with pytest.raises(ServiceError):
            queue.job("nope")

    def test_lease_hands_out_exactly_one_frame(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=2))
        first = unframe_farm_lease(queue.lease("w0"))
        assert (first.job_id, first.frame, first.session_id) \
            == (JOB, 1, SCENE)
        assert first.deadline == pytest.approx(
            tb.network.sim.now + queue.lease_timeout)
        second = unframe_farm_lease(queue.lease("w1"))
        assert second.frame == 2
        assert queue.lease("w2") is None        # nothing left to hand out
        assert queue.active_leases() == 2
        assert queue.backlog() == 2

    def test_complete_is_exactly_once(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=1))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert queue.complete(result_for(lease, "w0")) is True
        assert queue.progress(JOB) == (1, 1)
        # the straggler's second copy is dropped, not double-counted
        assert queue.complete(result_for(lease, "w0")) is False
        assert queue.frames_completed == 1
        assert queue.duplicates_dropped == 1

    def test_only_the_lease_holder_may_complete(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=1))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert queue.complete(result_for(lease, "imposter")) is False
        assert queue.job(JOB).frame(1).state == FRAME_LEASED
        assert queue.complete(result_for(lease, "w0")) is True

    def test_expired_lease_requeues_at_the_front(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=3))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert lease.frame == 1
        tb.network.sim.clock.advance(queue.lease_timeout + 1.0)
        assert queue.requeue_expired() == [(JOB, 1)]
        record = queue.job(JOB).frame(1)
        assert record.state == FRAME_PENDING
        assert record.requeues == 1
        # the lost frame goes out next, ahead of frames 2 and 3
        release = unframe_farm_lease(queue.lease("w1"))
        assert release.frame == 1
        assert release.attempt == 2
        # and the straggler's late result is now a dropped duplicate
        assert queue.complete(result_for(lease, "w0")) is False

    def test_dead_worker_requeues_all_its_leases(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=4))
        unframe_farm_lease(queue.lease("w0"))
        unframe_farm_lease(queue.lease("w0"))
        keeper = unframe_farm_lease(queue.lease("w1"))
        assert queue.requeue_worker("w0") == [(JOB, 1), (JOB, 2)]
        assert queue.queue_depth() == 3      # 1, 2 back + 4 never leased
        assert queue.job(JOB).frame(keeper.frame).state == FRAME_LEASED

    def test_finishing_a_job_runs_the_audit(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=2))
        for _ in range(2):
            lease = unframe_farm_lease(queue.lease("w0"))
            queue.complete(result_for(lease, "w0"))
        j = queue.job(JOB)
        assert j.finished and j.finished_at is not None
        assert queue.audit(JOB) == []

    def test_telemetry_exports_the_farm_gauges(self):
        tb, queue = self.queue()
        from repro.obs.telemetry import flatten_metrics
        from repro.services.protocol import unframe_telemetry

        queue.submit(job(start=1, end=5))
        unframe_farm_lease(queue.lease("w0"))
        payload = unframe_telemetry(
            queue.telemetry.scrape_frame(tb.network.sim.now))
        assert payload["kind"] == "farm"
        flat = flatten_metrics(payload["metrics"])
        assert flat["rave_farm_queue_depth"] == 4
        assert flat["rave_farm_active_leases"] == 1
        assert flat["rave_farm_frames_per_second"] == 0.0
        progress = payload["metrics"]["rave_farm_job_progress"]["series"]
        assert progress and progress[0]["labels"]["job"] == JOB


class TestTestbedFarm:
    def test_farm_true_registers_the_fifth_service_role(self):
        from repro.core.recruitment import FARM_TMODEL, RAVE_BUSINESS

        tb = farm_testbed()
        assert isinstance(tb.farm_queue, FrameQueueService)
        business = tb.registry.find_business(RAVE_BUSINESS)
        tm = tb.registry.find_tmodel(FARM_TMODEL)
        entries = tb.registry.find_services(business.business_key, tm.key)
        assert [s.name for s in entries] \
            == [f"RaveFrameQueueService@{tb.farm_queue.host}"]

    def test_plain_testbed_has_no_farm(self):
        tb = build_testbed()
        assert tb.farm_queue is None
        with pytest.raises(ServiceError):
            tb.render_farm()

    def test_monitor_watches_the_queue_and_derives_backlog(self):
        tb = farm_testbed(monitor_host="registry-host")
        tb.farm_queue.submit(job(start=1, end=6))
        sim = tb.network.sim
        sim.run_until(sim.now + 5.0)
        snapshot = tb.monitor.snapshot()
        farm_entries = {n: e for n, e in snapshot["services"].items()
                        if e.get("kind") == "farm"}
        assert "rave-farm-queue" in farm_entries
        values = tb.monitor.grid_values()
        assert values["rave_grid_farm_backlog"] == 6.0
        assert values["rave_grid_farm_throughput"] == 0.0

    def test_dashboard_renders_the_farm_panel(self):
        from repro.obs.dashboard import render_dashboard

        tb = farm_testbed(monitor_host="registry-host")
        tb.farm_queue.submit(job(start=1, end=6))
        sim = tb.network.sim
        sim.run_until(sim.now + 5.0)
        text = render_dashboard(tb.monitor.snapshot())
        assert "render farm (rave-farm-queue)" in text
        assert "queue depth: 6" in text
        assert JOB in text


class TestFarmController:
    def test_a_job_renders_to_completion_with_an_empty_audit(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"))
        queue.submit(job(start=1, end=10))
        farm.start()
        sim = tb.network.sim
        sim.run_until(sim.now + 120.0)
        assert queue.progress(JOB) == (10, 10)
        assert queue.audit(JOB) == []
        assert farm.frames_rendered == 10
        assert queue.duplicates_dropped == 0
        j = queue.job(JOB)
        assert j.finished_at is not None
        # both workers genuinely shared the range
        assert {f.worker for f in j.frames.values()} \
            == {"rs-onyx", "rs-v880z"}

    def test_each_worker_holds_at_most_one_lease(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx",))
        queue.submit(job(start=1, end=6))
        farm.start()
        sim = tb.network.sim
        deadline = sim.now + 120.0
        while sim.now < deadline and not queue.job(JOB).finished:
            assert queue.active_leases() <= 1
            sim.run_until(sim.now + 0.25)
        assert queue.job(JOB).finished

    def test_prewarm_bootstraps_once_and_throughput_scales(self):
        rates = {}
        for n, hosts in ((1, ("onyx",)), (2, ("onyx", "v880z"))):
            tb = farm_testbed()
            queue = tb.farm_queue
            farm = tb.render_farm(worker_hosts=hosts)
            sim = tb.network.sim
            assert farm.prewarm(SCENE) == n
            assert farm.prewarm(SCENE) == 0     # cached, not re-paid
            sim.run_until(sim.now + 30.0)
            queue.submit(job(start=1, end=24))
            farm.start()
            t0 = sim.now
            while not queue.job(JOB).finished and sim.now < t0 + 300.0:
                sim.run_until(sim.now + 0.25)
            rates[n] = 24.0 / (queue.job(JOB).finished_at - t0)
        assert rates[2] > rates[1]

    def test_release_idle_respects_backlog_and_floor(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx", "v880z", "centrino"))
        queue.submit(job(start=1, end=2))
        assert farm.release_idle(min_workers=1) == []    # backlog > 0
        # drain the backlog by hand, then the idle pool may shrink
        for _ in range(2):
            lease = unframe_farm_lease(queue.lease("rs-onyx"))
            queue.complete(result_for(lease, "rs-onyx"))
        released = farm.release_idle(min_workers=1)
        assert len(released) == 2
        assert farm.pool_size() == 1


class TestAutoscalerFarmMode:
    def test_sustained_backlog_grows_the_pool_and_drains_the_queue(self):
        tb = farm_testbed(monitor_host="registry-host", autoscale=True)
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("centrino",))
        auto = tb.autoscale_farm(farm, cooldown_seconds=5.0, period=1.0,
                                 max_services=3)
        queue.submit(job(start=1, end=8))
        # the controller is deliberately not started: only the
        # autoscaler's grow path may put workers on the job
        sim = tb.network.sim
        for _ in range(90):
            sim.run_until(sim.now + 1.0)
            if queue.job(JOB).finished:
                break
        grows = [e for e in auto.events if e.kind == "grow"]
        assert grows and grows[0].pool_after > grows[0].pool_before
        assert grows[0].reason == "farm-backlog"
        assert queue.job(JOB).finished
        assert queue.audit(JOB) == []

    def test_clear_backlog_releases_down_to_the_floor(self):
        tb = farm_testbed(monitor_host="registry-host", autoscale=True)
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"))
        auto = tb.autoscale_farm(farm, cooldown_seconds=3.0, period=1.0,
                                 min_services=1)
        sim = tb.network.sim
        for _ in range(60):
            sim.run_until(sim.now + 1.0)
            if farm.pool_size() == 1:
                break
        assert farm.pool_size() == 1
        assert any(e.kind == "release" for e in auto.events)
