"""The batch render farm: jobs, the frame queue, and the controller.

The farm contract under test, layer by layer:

- a :class:`RenderJob` tracks every frame pending → leased → done and
  its ``checkframes`` audit reports exactly the not-done indexes;
- the :class:`FrameQueueService` leases **exactly one** frame per pull,
  accepts a completion only from the lease holder (exactly-once), and
  re-queues lost leases at the front of the FIFO;
- the farm wire frames round-trip through ``services/protocol.py`` and
  refuse foreign or mangled bytes;
- the :class:`RenderFarmController` renders a whole job across a pool
  of render services with an empty audit at the end, and throughput
  scales with the pool;
- ``build_testbed(farm=True)`` registers the queue in UDDI beside the
  other four service roles, and the autoscaler's farm mode grows the
  pool on a sustained backlog alert.
"""

import pytest

from repro.errors import MarshallingError, ServiceError
from repro.data.generators import galleon
from repro.farm import (
    FRAME_DONE,
    FRAME_LEASED,
    FRAME_PENDING,
    FrameQueueService,
    RenderFarmController,
    RenderJob,
)
from repro.services.protocol import (
    FarmLease,
    FarmResult,
    frame_farm_lease,
    frame_farm_result,
    frame_message,
    unframe_farm_lease,
    unframe_farm_result,
)
from repro.testbed import build_testbed

JOB = "anim-001"
SCENE = "scene"


def farm_testbed(**kwargs):
    tb = build_testbed(farm=True, **kwargs)
    tb.publish_model(SCENE, galleon(2000))
    return tb


def job(start=1, end=8, **kwargs):
    return RenderJob(job_id=JOB, session_id=SCENE,
                     start_frame=start, end_frame=end, **kwargs)


def result_for(lease, worker=None, attempt=0):
    return frame_farm_result(FarmResult(
        job_id=lease.job_id, frame=lease.frame,
        worker=worker if worker is not None else "w0",
        render_seconds=0.01, nbytes=160 * 120 * 3, attempt=attempt))


class TestRenderJob:
    def test_frame_range_is_inclusive_and_validated(self):
        j = job(start=3, end=5)
        assert sorted(j.frames) == [3, 4, 5]
        assert j.total_frames == 3
        with pytest.raises(ServiceError):
            RenderJob(job_id="bad", session_id=SCENE,
                      start_frame=5, end_frame=3)

    def test_audit_reports_exactly_the_not_done_frames(self):
        j = job(start=1, end=4)
        j.frames[2].state = FRAME_DONE
        j.frames[4].state = FRAME_LEASED
        assert j.missing_frames() == [1, 3, 4]
        assert not j.finished
        for f in j.frames.values():
            f.state = FRAME_DONE
        assert j.missing_frames() == []
        assert j.finished and j.progress == 1.0

    def test_cameras_are_deterministic_per_frame(self):
        import numpy as np

        a, b = job(), job()
        for i in (1, 5, 8):
            ca, cb = a.camera_for(i), b.camera_for(i)
            assert ca.name == cb.name
            assert np.allclose(ca.position, cb.position)
        # and different frames genuinely look from somewhere else
        assert not np.allclose(a.camera_for(1).position,
                               a.camera_for(8).position)


class TestFarmProtocol:
    def test_lease_round_trips(self):
        lease = FarmLease(job_id=JOB, frame=7, session_id=SCENE,
                          attempt=2, deadline=42.5)
        assert unframe_farm_lease(frame_farm_lease(lease)) == lease

    def test_result_round_trips(self):
        result = FarmResult(job_id=JOB, frame=7, worker="rs-onyx",
                            render_seconds=0.125, nbytes=57600)
        assert unframe_farm_result(frame_farm_result(result)) == result

    def test_type_discriminator_is_enforced(self):
        lease_bytes = frame_farm_lease(FarmLease(
            job_id=JOB, frame=1, session_id=SCENE, attempt=1,
            deadline=1.0))
        with pytest.raises(MarshallingError):
            unframe_farm_result(lease_bytes)
        result_bytes = frame_farm_result(FarmResult(
            job_id=JOB, frame=1, worker="w", render_seconds=0.0,
            nbytes=0))
        with pytest.raises(MarshallingError):
            unframe_farm_lease(result_bytes)

    def test_foreign_flags_are_refused(self):
        plain = frame_message(b'{"frame": 1, "type": "lease"}')
        with pytest.raises(MarshallingError):
            unframe_farm_lease(plain)
        with pytest.raises(MarshallingError):
            unframe_farm_result(plain)


class TestFrameQueue:
    def queue(self):
        tb = farm_testbed()
        return tb, tb.farm_queue

    def test_submit_queues_the_whole_range_once(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=8))
        assert queue.queue_depth() == 8
        assert queue.progress(JOB) == (0, 8)
        with pytest.raises(ServiceError):
            queue.submit(job())
        with pytest.raises(ServiceError):
            queue.job("nope")

    def test_lease_hands_out_exactly_one_frame(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=2))
        first = unframe_farm_lease(queue.lease("w0"))
        assert (first.job_id, first.frame, first.session_id) \
            == (JOB, 1, SCENE)
        assert first.deadline == pytest.approx(
            tb.network.sim.now + queue.lease_timeout)
        second = unframe_farm_lease(queue.lease("w1"))
        assert second.frame == 2
        assert queue.lease("w2") is None        # nothing left to hand out
        assert queue.active_leases() == 2
        assert queue.backlog() == 2

    def test_complete_is_exactly_once(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=1))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert queue.complete(result_for(lease, "w0")) is True
        assert queue.progress(JOB) == (1, 1)
        # the straggler's second copy is dropped, not double-counted
        assert queue.complete(result_for(lease, "w0")) is False
        assert queue.frames_completed == 1
        assert queue.duplicates_dropped == 1

    def test_only_the_lease_holder_may_complete(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=1))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert queue.complete(result_for(lease, "imposter")) is False
        assert queue.job(JOB).frame(1).state == FRAME_LEASED
        assert queue.complete(result_for(lease, "w0")) is True

    def test_expired_lease_requeues_at_the_front(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=3))
        lease = unframe_farm_lease(queue.lease("w0"))
        assert lease.frame == 1
        tb.network.sim.clock.advance(queue.lease_timeout + 1.0)
        assert queue.requeue_expired() == [(JOB, 1)]
        record = queue.job(JOB).frame(1)
        assert record.state == FRAME_PENDING
        assert record.requeues == 1
        # the lost frame goes out next, ahead of frames 2 and 3
        release = unframe_farm_lease(queue.lease("w1"))
        assert release.frame == 1
        assert release.attempt == 2
        # and the straggler's late result is now a dropped duplicate
        assert queue.complete(result_for(lease, "w0")) is False

    def test_stale_attempt_from_the_same_worker_is_dropped(self):
        """Satellite regression: results carry their lease attempt.

        The exactly-once check used to compare only state + worker, so
        when the *same* worker lost a lease and won the re-issued one,
        its straggling first-attempt result passed both checks and
        completed the frame with stale data.  Results now carry the
        attempt that produced them (0 = pre-attempt wire compat).
        """
        tb, queue = self.queue()
        queue.submit(job(start=1, end=1))
        first = unframe_farm_lease(queue.lease("w0"))
        assert first.attempt == 1
        tb.network.sim.clock.advance(queue.lease_timeout + 1.0)
        assert queue.requeue_expired() == [(JOB, 1)]
        # the same worker wins the re-issued lease
        second = unframe_farm_lease(queue.lease("w0"))
        assert second.attempt == 2
        # the straggler from attempt 1: same state, same worker — stale
        assert queue.complete(result_for(first, "w0",
                                         attempt=first.attempt)) is False
        assert queue.duplicates_dropped == 1
        assert queue.frames_completed == 0
        # the live attempt still completes exactly once
        assert queue.complete(result_for(second, "w0",
                                         attempt=second.attempt)) is True
        assert queue.progress(JOB) == (1, 1)

    def test_dead_worker_requeues_all_its_leases(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=4))
        unframe_farm_lease(queue.lease("w0"))
        unframe_farm_lease(queue.lease("w0"))
        keeper = unframe_farm_lease(queue.lease("w1"))
        assert queue.requeue_worker("w0") == [(JOB, 1), (JOB, 2)]
        assert queue.queue_depth() == 3      # 1, 2 back + 4 never leased
        assert queue.job(JOB).frame(keeper.frame).state == FRAME_LEASED

    def test_finishing_a_job_runs_the_audit(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=2))
        for _ in range(2):
            lease = unframe_farm_lease(queue.lease("w0"))
            queue.complete(result_for(lease, "w0"))
        j = queue.job(JOB)
        assert j.finished and j.finished_at is not None
        assert queue.audit(JOB) == []

    def test_telemetry_exports_the_farm_gauges(self):
        tb, queue = self.queue()
        from repro.obs.telemetry import flatten_metrics
        from repro.services.protocol import unframe_telemetry

        queue.submit(job(start=1, end=5))
        unframe_farm_lease(queue.lease("w0"))
        payload = unframe_telemetry(
            queue.telemetry.scrape_frame(tb.network.sim.now))
        assert payload["kind"] == "farm"
        flat = flatten_metrics(payload["metrics"])
        assert flat["rave_farm_queue_depth"] == 4
        assert flat["rave_farm_active_leases"] == 1
        assert flat["rave_farm_frames_per_second"] == 0.0
        progress = payload["metrics"]["rave_farm_job_progress"]["series"]
        assert progress and progress[0]["labels"]["job"] == JOB


class TestFairScheduler:
    """Priorities, weighted fair share, tenant caps, starvation."""

    def queue(self, **farm_kwargs):
        tb = build_testbed(farm=farm_kwargs or True)
        tb.publish_model(SCENE, galleon(2000))
        return tb, tb.farm_queue

    @staticmethod
    def named_job(job_id, start=1, end=8, **kwargs):
        return RenderJob(job_id=job_id, session_id=SCENE,
                         start_frame=start, end_frame=end, **kwargs)

    def test_batch_requeue_preserves_frame_order(self):
        # regression: one appendleft per frame reversed the batch, so a
        # dead worker's frames 1,2,3 re-leased as 3,2,1
        tb, queue = self.queue()
        queue.submit(job(start=1, end=5))
        for _ in range(3):
            unframe_farm_lease(queue.lease("w0"))
        assert queue.requeue_worker("w0") \
            == [(JOB, 1), (JOB, 2), (JOB, 3)]
        release = [unframe_farm_lease(queue.lease("w1")).frame
                   for _ in range(3)]
        assert release == [1, 2, 3]
        # and the re-queued batch still beats never-leased frame 4
        assert unframe_farm_lease(queue.lease("w1")).frame == 4

    def test_higher_priority_preempts_at_lease_time(self):
        tb, queue = self.queue()
        queue.submit(self.named_job("long", end=8, priority=0))
        first = unframe_farm_lease(queue.lease("w0"))
        assert (first.job_id, first.priority) == ("long", 0)
        queue.submit(self.named_job("urgent", end=3, priority=1))
        # the running lease is never revoked, but every new pull serves
        # the higher class until it drains
        served = [unframe_farm_lease(queue.lease("w0")) for _ in range(4)]
        assert [(l.job_id, l.frame) for l in served] \
            == [("urgent", 1), ("urgent", 2), ("urgent", 3), ("long", 2)]
        assert served[0].priority == 1

    def test_weight_sets_the_deficit_round_robin_quantum(self):
        tb, queue = self.queue()
        queue.submit(self.named_job("heavy", end=8, weight=2.0))
        queue.submit(self.named_job("light", end=8, weight=1.0))
        order = [unframe_farm_lease(queue.lease("w0")).job_id
                 for _ in range(6)]
        # weight 2 bursts two consecutive frames per ring visit
        assert order == ["heavy", "heavy", "light",
                         "heavy", "heavy", "light"]

    def test_equal_jobs_interleave_instead_of_fifo(self):
        tb, queue = self.queue()
        queue.submit(self.named_job("first", end=6))
        queue.submit(self.named_job("second", end=6))
        order = [unframe_farm_lease(queue.lease("w0")).job_id
                 for _ in range(4)]
        assert order == ["first", "second", "first", "second"]

    def test_tenant_cap_limits_concurrent_leases(self):
        from repro.core.grid import TenantQuota

        tb, queue = self.queue()
        queue.register_tenant(TenantQuota(tenant="batch", max_share=0.5))
        for w in ("w0", "w1", "w2", "w3"):
            queue.register_worker(w)        # cap = 0.5 * 4 slots = 2
        queue.submit(self.named_job("bulk", end=8,
                                    tenant="batch", weight=4.0))
        queue.submit(self.named_job("inter", end=8, tenant="viz"))
        order = [unframe_farm_lease(queue.lease(w)).job_id
                 for w in ("w0", "w1", "w2", "w3")]
        # weight 4 would let "bulk" burst the whole pool; the cap stops
        # it at two leases and hands the rest to the other tenant
        assert order == ["bulk", "bulk", "inter", "inter"]
        assert queue.describe()["tenant_leases"] \
            == {"batch": 2, "viz": 2}

    def test_tenant_cap_is_waived_when_nobody_else_waits(self):
        from repro.core.grid import TenantQuota

        tb, queue = self.queue()
        queue.register_tenant(TenantQuota(tenant="batch", max_share=0.5))
        queue.register_worker("w0")
        queue.register_worker("w1")         # cap = 1
        queue.submit(self.named_job("bulk", end=4, tenant="batch"))
        assert unframe_farm_lease(queue.lease("w0")).frame == 1
        # work-conserving: the idle second worker is not refused while
        # only the capped tenant has pending frames
        assert unframe_farm_lease(queue.lease("w1")).frame == 2

    def test_starvation_is_observable_then_clears(self):
        from repro.obs.telemetry import flatten_metrics
        from repro.services.protocol import unframe_telemetry

        tb, queue = self.queue(starvation_after=5.0)
        queue.submit(job(start=1, end=4))
        tb.network.sim.clock.advance(6.0)
        assert queue.starved_jobs() == [JOB]
        payload = unframe_telemetry(
            queue.telemetry.scrape_frame(tb.network.sim.now))
        flat = flatten_metrics(payload["metrics"])
        assert flat["rave_farm_starved_jobs"] == 1
        unframe_farm_lease(queue.lease("w0"))
        assert queue.starved_jobs() == []

    def test_lease_wait_lands_in_the_histogram(self):
        tb, queue = self.queue()
        queue.submit(job(start=1, end=2, tenant="batch"))
        tb.network.sim.clock.advance(3.0)
        unframe_farm_lease(queue.lease("w0"))
        payload = queue.telemetry.registry.snapshot()
        series = payload["rave_farm_job_wait_seconds"]["series"]
        entry = next(e for e in series
                     if e["labels"] == {"job": JOB, "tenant": "batch"})
        assert entry["count"] == 1
        assert entry["sum"] == pytest.approx(3.0)

    def test_no_job_waits_unboundedly_under_any_mix(self):
        # property: whatever the mix of weights in one priority class,
        # every job is served at least once within (sum of weights)
        # consecutive leases — the DRR bound
        tb, queue = self.queue()
        weights = [1.0, 2.0, 1.0, 4.0, 2.0]
        for i, w in enumerate(weights):
            queue.submit(self.named_job(f"job-{i}", end=40, weight=w))
        window = int(sum(weights))
        order = [unframe_farm_lease(queue.lease("w0")).job_id
                 for _ in range(120)]
        for i in range(len(weights)):
            gaps = [k for k, j in enumerate(order) if j == f"job-{i}"]
            assert gaps, f"job-{i} never served"
            worst = max(b - a for a, b in zip(gaps, gaps[1:]))
            assert worst <= window, (
                f"job-{i} waited {worst} leases (> {window})")


class TestTestbedFarm:
    def test_farm_true_registers_the_fifth_service_role(self):
        from repro.core.recruitment import FARM_TMODEL, RAVE_BUSINESS

        tb = farm_testbed()
        assert isinstance(tb.farm_queue, FrameQueueService)
        business = tb.registry.find_business(RAVE_BUSINESS)
        tm = tb.registry.find_tmodel(FARM_TMODEL)
        entries = tb.registry.find_services(business.business_key, tm.key)
        assert [s.name for s in entries] \
            == [f"RaveFrameQueueService@{tb.farm_queue.host}"]

    def test_plain_testbed_has_no_farm(self):
        tb = build_testbed()
        assert tb.farm_queue is None
        with pytest.raises(ServiceError):
            tb.render_farm()

    def test_monitor_watches_the_queue_and_derives_backlog(self):
        tb = farm_testbed(monitor_host="registry-host")
        tb.farm_queue.submit(job(start=1, end=6))
        sim = tb.network.sim
        sim.run_until(sim.now + 5.0)
        snapshot = tb.monitor.snapshot()
        farm_entries = {n: e for n, e in snapshot["services"].items()
                        if e.get("kind") == "farm"}
        assert "rave-farm-queue" in farm_entries
        values = tb.monitor.grid_values()
        assert values["rave_grid_farm_backlog"] == 6.0
        assert values["rave_grid_farm_throughput"] == 0.0

    def test_dashboard_renders_the_farm_panel(self):
        from repro.obs.dashboard import render_dashboard

        tb = farm_testbed(monitor_host="registry-host")
        tb.farm_queue.submit(job(start=1, end=6))
        sim = tb.network.sim
        sim.run_until(sim.now + 5.0)
        text = render_dashboard(tb.monitor.snapshot())
        assert "render farm (rave-farm-queue)" in text
        assert "queue depth: 6" in text
        assert JOB in text


class TestFarmController:
    def test_a_job_renders_to_completion_with_an_empty_audit(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"))
        queue.submit(job(start=1, end=10))
        farm.start()
        sim = tb.network.sim
        sim.run_until(sim.now + 120.0)
        assert queue.progress(JOB) == (10, 10)
        assert queue.audit(JOB) == []
        assert farm.frames_rendered == 10
        assert queue.duplicates_dropped == 0
        j = queue.job(JOB)
        assert j.finished_at is not None
        # both workers genuinely shared the range
        assert {f.worker for f in j.frames.values()} \
            == {"rs-onyx", "rs-v880z"}

    def test_each_worker_holds_at_most_one_lease(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx",))
        queue.submit(job(start=1, end=6))
        farm.start()
        sim = tb.network.sim
        deadline = sim.now + 120.0
        while sim.now < deadline and not queue.job(JOB).finished:
            assert queue.active_leases() <= 1
            sim.run_until(sim.now + 0.25)
        assert queue.job(JOB).finished

    def test_prewarm_bootstraps_once_and_throughput_scales(self):
        rates = {}
        for n, hosts in ((1, ("onyx",)), (2, ("onyx", "v880z"))):
            tb = farm_testbed()
            queue = tb.farm_queue
            farm = tb.render_farm(worker_hosts=hosts)
            sim = tb.network.sim
            assert farm.prewarm(SCENE) == n
            assert farm.prewarm(SCENE) == 0     # cached, not re-paid
            sim.run_until(sim.now + 30.0)
            queue.submit(job(start=1, end=24))
            farm.start()
            t0 = sim.now
            while not queue.job(JOB).finished and sim.now < t0 + 300.0:
                sim.run_until(sim.now + 0.25)
            rates[n] = 24.0 / (queue.job(JOB).finished_at - t0)
        assert rates[2] > rates[1]

    def test_release_idle_respects_backlog_and_floor(self):
        tb = farm_testbed()
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("onyx", "v880z", "centrino"))
        queue.submit(job(start=1, end=2))
        assert farm.release_idle(min_workers=1) == []    # backlog > 0
        # drain the backlog by hand, then the idle pool may shrink
        for _ in range(2):
            lease = unframe_farm_lease(queue.lease("rs-onyx"))
            queue.complete(result_for(lease, "rs-onyx"))
        released = farm.release_idle(min_workers=1)
        assert len(released) == 2
        assert farm.pool_size() == 1


class TestAutoscalerFarmMode:
    def test_sustained_backlog_grows_the_pool_and_drains_the_queue(self):
        tb = farm_testbed(monitor_host="registry-host", autoscale=True)
        queue = tb.farm_queue
        farm = tb.render_farm(worker_hosts=("centrino",))
        auto = tb.autoscale_farm(farm, cooldown_seconds=5.0, period=1.0,
                                 max_services=3)
        queue.submit(job(start=1, end=8))
        # the controller is deliberately not started: only the
        # autoscaler's grow path may put workers on the job
        sim = tb.network.sim
        for _ in range(90):
            sim.run_until(sim.now + 1.0)
            if queue.job(JOB).finished:
                break
        grows = [e for e in auto.events if e.kind == "grow"]
        assert grows and grows[0].pool_after > grows[0].pool_before
        assert grows[0].reason == "farm-backlog"
        assert queue.job(JOB).finished
        assert queue.audit(JOB) == []

    def test_clear_backlog_releases_down_to_the_floor(self):
        tb = farm_testbed(monitor_host="registry-host", autoscale=True)
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"))
        auto = tb.autoscale_farm(farm, cooldown_seconds=3.0, period=1.0,
                                 min_services=1)
        sim = tb.network.sim
        for _ in range(60):
            sim.run_until(sim.now + 1.0)
            if farm.pool_size() == 1:
                break
        assert farm.pool_size() == 1
        assert any(e.kind == "release" for e in auto.events)
