"""Camera projection and framebuffer/tiling invariants."""

import numpy as np
import pytest

from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer, Tile, split_tiles
from repro.scenegraph.nodes import CameraNode


class TestCamera:
    def make(self):
        return Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))

    def test_target_projects_to_center(self):
        cam = self.make()
        screen, w = cam.project_vertices(np.zeros((1, 3)), 200, 200)
        assert screen[0, 0] == pytest.approx(100.0)
        assert screen[0, 1] == pytest.approx(100.0)
        assert w[0] == pytest.approx(5.0)

    def test_depth_is_view_distance(self):
        cam = self.make()
        pts = np.array([[0, 0, 0], [0, 0, 2], [0, 0, -3]], dtype=float)
        screen, w = cam.project_vertices(pts, 100, 100)
        assert np.allclose(w, [5.0, 3.0, 8.0])
        assert np.allclose(screen[:, 2], w)

    def test_right_is_positive_x(self):
        cam = self.make()
        screen, _ = cam.project_vertices(np.array([[1.0, 0, 0]]), 200, 200)
        assert screen[0, 0] > 100

    def test_up_is_negative_y_pixels(self):
        cam = self.make()
        screen, _ = cam.project_vertices(np.array([[0, 1.0, 0]]), 200, 200)
        assert screen[0, 1] < 100

    def test_fov_controls_spread(self):
        narrow = Camera.looking_at((0, 0, 5), fov_degrees=20)
        wide = Camera.looking_at((0, 0, 5), fov_degrees=90)
        pt = np.array([[1.0, 0, 0]])
        sn, _ = narrow.project_vertices(pt, 200, 200)
        sw, _ = wide.project_vertices(pt, 200, 200)
        center = np.array([100.0, 100.0])
        assert (np.linalg.norm(sn[0, :2] - center)
                > np.linalg.norm(sw[0, :2] - center))

    def test_from_node(self):
        node = CameraNode(position=(1, 2, 3), fov_degrees=33.0)
        cam = Camera.from_node(node)
        assert cam.fov_degrees == 33.0
        assert np.allclose(cam.position, [1, 2, 3])

    def test_degenerate_camera_rejected(self):
        cam = Camera.looking_at((0, 0, 0), target=(0, 0, 0))
        with pytest.raises(RenderError):
            cam.view_matrix()

    def test_bad_clip_planes(self):
        cam = Camera.looking_at((0, 0, 5), near=1.0, far=0.5)
        with pytest.raises(RenderError):
            cam.projection_matrix(1.0)

    def test_parallel_up_vector_recovered(self):
        cam = Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 0, 1))
        m = cam.view_matrix()           # must not blow up
        assert np.isfinite(m).all()

    def test_bad_vertex_shape(self):
        with pytest.raises(RenderError):
            self.make().project_vertices(np.zeros((3, 2)), 10, 10)


class TestFrameBuffer:
    def test_initial_state(self):
        fb = FrameBuffer(10, 8, background=(1, 2, 3))
        assert fb.width == 10 and fb.height == 8
        assert (fb.color[0, 0] == [1, 2, 3]).all()
        assert np.isinf(fb.depth).all()
        assert fb.coverage() == 0.0

    def test_byte_sizes(self):
        fb = FrameBuffer(200, 200)
        assert fb.nbytes_color == 120_000        # the paper's 120 kB frame
        assert fb.nbytes_with_depth == 120_000 + 160_000

    def test_invalid_size(self):
        with pytest.raises(RenderError):
            FrameBuffer(0, 10)

    def test_copy_independent(self):
        fb = FrameBuffer(4, 4)
        cp = fb.copy()
        cp.color[0, 0] = 255
        assert (fb.color[0, 0] == 0).all()

    def test_extract_paste_roundtrip(self):
        fb = FrameBuffer(10, 10)
        fb.color[2:5, 3:7] = 200
        fb.depth[2:5, 3:7] = 1.0
        tile = Tile(x0=3, y0=2, width=4, height=3)
        sub = fb.extract(tile)
        assert (sub.color == 200).all()
        target = FrameBuffer(10, 10)
        target.paste(tile, sub)
        assert (target.color[2:5, 3:7] == 200).all()
        assert (target.color[0, 0] == 0).all()

    def test_extract_out_of_bounds(self):
        with pytest.raises(RenderError):
            FrameBuffer(10, 10).extract(Tile(8, 8, 5, 5))

    def test_paste_size_mismatch(self):
        with pytest.raises(RenderError):
            FrameBuffer(10, 10).paste(Tile(0, 0, 4, 4), FrameBuffer(3, 3))

    def test_mean_abs_diff(self):
        a = FrameBuffer(4, 4)
        b = FrameBuffer(4, 4)
        b.color[:] = 10
        assert a.mean_abs_diff(b) == pytest.approx(10.0)
        with pytest.raises(RenderError):
            a.mean_abs_diff(FrameBuffer(5, 5))

    def test_ppm_export(self, tmp_path):
        fb = FrameBuffer(3, 2, background=(255, 0, 0))
        data = fb.to_ppm()
        assert data.startswith(b"P6\n3 2\n255\n")
        assert len(data) == len(b"P6\n3 2\n255\n") + 18
        n = fb.save_ppm(tmp_path / "x.ppm")
        assert (tmp_path / "x.ppm").stat().st_size == n


class TestTiles:
    def test_tile_validation(self):
        with pytest.raises(RenderError):
            Tile(0, 0, 0, 5)
        with pytest.raises(RenderError):
            Tile(-1, 0, 5, 5)

    def test_tile_contains(self):
        t = Tile(2, 3, 4, 5)
        assert t.contains(2, 3) and t.contains(5, 7)
        assert not t.contains(6, 3) and not t.contains(2, 8)

    def test_split_exact_cover(self):
        tiles = split_tiles(100, 60, 3, 2)
        assert len(tiles) == 6
        from repro.render.compositor import check_tiling

        check_tiling(100, 60, tiles)      # raises on gap/overlap

    def test_split_uneven_remainder(self):
        tiles = split_tiles(10, 10, 3, 3)
        from repro.render.compositor import check_tiling

        check_tiling(10, 10, tiles)

    def test_split_bounds(self):
        with pytest.raises(RenderError):
            split_tiles(4, 4, 5, 1)
        with pytest.raises(RenderError):
            split_tiles(10, 10, 0, 1)
