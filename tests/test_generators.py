"""Procedural model generators: the paper's four benchmark models."""

import numpy as np
import pytest

from repro.data.generators import (
    MODEL_REGISTRY,
    PAPER_TRIANGLES,
    box,
    elle,
    galleon,
    grid_faces,
    lathe,
    make_model,
    skeletal_hand,
    skeleton,
    tube,
    uv_sphere,
)


class TestBuildingBlocks:
    def test_grid_faces_count(self):
        f = grid_faces(4, 5)
        assert len(f) == 2 * 3 * 4

    def test_grid_faces_wrapped(self):
        f = grid_faces(4, 5, wrap_u=True)
        assert len(f) == 2 * 4 * 4

    def test_grid_faces_indices_valid(self):
        f = grid_faces(6, 7)
        assert f.min() >= 0 and f.max() < 42

    def test_sphere_radius(self):
        s = uv_sphere(radius=2.0, nu=24, nv=24)
        r = np.linalg.norm(s.vertices, axis=1)
        assert r.max() == pytest.approx(2.0, rel=1e-5)
        assert r.min() > 1.8  # polygonal sphere is slightly inside

    def test_sphere_squash(self):
        s = uv_sphere(radius=1.0, squash=(1.0, 1.0, 0.5))
        lo, hi = s.bounds()
        assert hi[2] == pytest.approx(0.5, rel=1e-5)

    def test_box_dimensions(self):
        b = box(size=(2.0, 4.0, 6.0))
        lo, hi = b.bounds()
        assert np.allclose(hi - lo, [2, 4, 6])

    def test_box_subdivision(self):
        assert box(n=3).n_triangles == 6 * 2 * 9

    def test_tube_follows_path(self):
        path = np.array([[0, 0, 0], [0, 0, 1], [0, 0, 2]], dtype=float)
        t = tube(path, radii=0.1, n_around=8)
        lo, hi = t.bounds()
        assert hi[2] >= 2.0 and lo[2] <= 0.0
        assert max(hi[0], hi[1]) == pytest.approx(0.1, abs=0.02)

    def test_tube_tapering(self):
        path = np.array([[0, 0, 0], [0, 0, 1]], dtype=float)
        t = tube(path, radii=[0.5, 0.1], n_around=16, cap=False)
        bottom = t.vertices[np.abs(t.vertices[:, 2]) < 0.01]
        top = t.vertices[np.abs(t.vertices[:, 2] - 1.0) < 0.01]
        assert np.linalg.norm(bottom[:, :2], axis=1).mean() > \
            np.linalg.norm(top[:, :2], axis=1).mean()

    def test_tube_requires_path(self):
        with pytest.raises(ValueError):
            tube(np.zeros((1, 3)), radii=0.1)

    def test_lathe_revolution(self):
        profile = np.array([[1.0, 0.0], [1.0, 1.0]])
        cyl = lathe(profile, n_around=32)
        r = np.linalg.norm(cyl.vertices[:, :2], axis=1)
        assert np.allclose(r, 1.0, atol=1e-5)


class TestNamedModels:
    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_model_valid(self, name):
        m = make_model(name)
        assert m.n_triangles > 500
        assert m.faces.max() < m.n_vertices
        assert np.isfinite(m.vertices).all()

    @pytest.mark.parametrize("name", sorted(MODEL_REGISTRY))
    def test_deterministic(self, name):
        a = make_model(name)
        b = make_model(name)
        assert a.n_triangles == b.n_triangles
        assert np.array_equal(a.vertices, b.vertices)

    @pytest.mark.parametrize("name,target", [
        ("galleon", 5_500),
        ("elle", 50_000),
        ("skeletal_hand", 40_000),
        ("skeleton", 80_000),
    ])
    def test_scaling_hits_target(self, name, target):
        m = make_model(name, target_triangles=target)
        assert abs(m.n_triangles - target) / target < 0.08

    def test_paper_scale_flag(self):
        m = make_model("galleon", paper_scale=True)
        assert abs(m.n_triangles - PAPER_TRIANGLES["galleon"]) / \
            PAPER_TRIANGLES["galleon"] < 0.08

    def test_paper_scale_conflicts_with_target(self):
        with pytest.raises(ValueError):
            make_model("galleon", target_triangles=100, paper_scale=True)

    def test_unknown_model(self):
        with pytest.raises(KeyError):
            make_model("teapot")

    def test_bad_target(self):
        with pytest.raises(ValueError):
            make_model("galleon", target_triangles=0)

    def test_convenience_wrappers(self):
        assert skeletal_hand(5000).name == "skeletal_hand"
        assert skeleton(5000).name == "skeleton"
        assert galleon().name == "galleon"
        assert elle().name == "elle"

    def test_models_have_distinct_shapes(self):
        """Sanity: the four models are genuinely different geometry."""
        extents = {}
        for name in MODEL_REGISTRY:
            m = make_model(name).normalized()
            lo, hi = m.bounds()
            extents[name] = tuple(np.round(hi - lo, 2))
        assert len(set(extents.values())) == len(extents)
