"""The scene-update protocol and the persistent audit trail."""

import numpy as np
import pytest

from repro.errors import SceneGraphError
from repro.scenegraph.audit import AuditTrail
from repro.scenegraph.nodes import (
    AvatarNode,
    CameraNode,
    MeshNode,
)
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import (
    AddNode,
    ModifyGeometry,
    MoveAvatar,
    RemoveNode,
    SetCamera,
    SetProperty,
    SetTransform,
    update_from_wire,
)


class TestUpdateSemantics:
    def test_add_node(self, simple_tree):
        update = AddNode.of(AvatarNode("u", "h"), parent_id=0, node_id=50)
        update.apply(simple_tree)
        assert 50 in simple_tree
        assert simple_tree.node(50).user == "u"

    def test_add_duplicate_id_rejected(self, simple_tree):
        update = AddNode.of(AvatarNode("u"), parent_id=0, node_id=50)
        update.apply(simple_tree)
        with pytest.raises(SceneGraphError):
            update.apply(simple_tree)

    def test_remove_node(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        RemoveNode(node_id=mesh.node_id).apply(simple_tree)
        assert mesh.node_id not in simple_tree

    def test_set_transform(self, simple_tree):
        xf = simple_tree.find_by_name("xf")[0]
        m = np.eye(4)
        m[1, 3] = 7.0
        SetTransform(node_id=xf.node_id, matrix=m).apply(simple_tree)
        assert xf.matrix[1, 3] == 7.0

    def test_set_transform_on_mesh_rejected(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        with pytest.raises(SceneGraphError):
            SetTransform(node_id=mesh.node_id).apply(simple_tree)

    def test_set_camera(self, simple_tree):
        cam = simple_tree.cameras()[0]
        SetCamera(node_id=cam.node_id, position=np.array([9.0, 0, 0]),
                  target=np.zeros(3), fov_degrees=30.0).apply(simple_tree)
        assert cam.position[0] == 9.0
        assert cam.fov_degrees == 30.0

    def test_set_camera_on_non_camera(self, simple_tree):
        xf = simple_tree.find_by_name("xf")[0]
        with pytest.raises(SceneGraphError):
            SetCamera(node_id=xf.node_id).apply(simple_tree)

    def test_set_property_via_introspection(self, simple_tree):
        cam = simple_tree.cameras()[0]
        SetProperty(node_id=cam.node_id, field_name="fov_degrees",
                    value=70.0).apply(simple_tree)
        assert cam.fov_degrees == 70.0

    def test_set_unknown_property(self, simple_tree):
        cam = simple_tree.cameras()[0]
        with pytest.raises(SceneGraphError):
            SetProperty(node_id=cam.node_id, field_name="warp",
                        value=1).apply(simple_tree)

    def test_modify_geometry(self, simple_tree, triangle):
        mesh = simple_tree.find_by_name("quad")[0]
        ModifyGeometry(node_id=mesh.node_id, fields={
            "vertices": triangle.vertices,
            "faces": triangle.faces}).apply(simple_tree)
        assert simple_tree.total_polygons() == 1

    def test_move_avatar(self, simple_tree):
        AddNode.of(AvatarNode("u"), parent_id=0, node_id=60).apply(
            simple_tree)
        MoveAvatar(node_id=60, position=np.array([1.0, 2.0, 3.0]),
                   view_direction=np.array([0.0, 1.0, 0.0])).apply(
                       simple_tree)
        assert np.allclose(simple_tree.node(60).position, [1, 2, 3])

    def test_move_avatar_wrong_type(self, simple_tree):
        cam = simple_tree.cameras()[0]
        with pytest.raises(SceneGraphError):
            MoveAvatar(node_id=cam.node_id).apply(simple_tree)


class TestWireRoundTrips:
    @pytest.mark.parametrize("update", [
        RemoveNode(node_id=3, origin="ian"),
        SetTransform(node_id=2, matrix=np.diag([2.0, 2.0, 2.0, 1.0])),
        SetCamera(node_id=1, position=np.ones(3), target=np.zeros(3),
                  fov_degrees=50.0),
        MoveAvatar(node_id=4, position=np.ones(3),
                   view_direction=np.array([1.0, 0, 0])),
        SetProperty(node_id=5, field_name="name", value="x"),
    ])
    def test_roundtrip(self, update):
        back = update_from_wire(update.to_wire())
        assert type(back) is type(update)
        assert back.node_id == update.node_id
        assert back.origin == update.origin

    def test_addnode_roundtrip_carries_payload(self, quad):
        update = AddNode.of(MeshNode(quad), parent_id=0, node_id=9)
        back = update_from_wire(update.to_wire())
        tree = SceneTree()
        back.apply(tree)
        assert tree.total_polygons() == 2

    def test_unknown_kind(self):
        with pytest.raises(SceneGraphError):
            update_from_wire({"kind": "teleport"})

    def test_payload_bytes_scale_with_content(self, quad):
        small = SetCamera(node_id=1)
        big = AddNode.of(MeshNode(quad), parent_id=0, node_id=9)
        assert big.payload_bytes > small.payload_bytes

    def test_touched_ids(self):
        assert SetCamera(node_id=7).touched_ids() == {7}


class TestAuditTrail:
    def build_trail(self):
        trail = AuditTrail()
        trail.record(0.0, AddNode.of(CameraNode(name="cam"), parent_id=0,
                                     node_id=1))
        trail.record(1.0, AddNode.of(AvatarNode("u"), parent_id=0,
                                     node_id=2))
        trail.record(2.0, SetCamera(node_id=1,
                                    position=np.array([5.0, 0, 0]),
                                    target=np.zeros(3)))
        return trail

    def test_monotonic_timestamps_enforced(self):
        trail = self.build_trail()
        with pytest.raises(ValueError):
            trail.record(1.0, RemoveNode(node_id=2))

    def test_duration(self):
        assert self.build_trail().duration == 2.0

    def test_playback_full(self):
        tree = self.build_trail().playback()
        assert 1 in tree and 2 in tree
        assert np.allclose(tree.node(1).position, [5, 0, 0])

    def test_playback_until_cutoff(self):
        tree = self.build_trail().playback(until=1.5)
        assert 2 in tree
        assert np.allclose(tree.node(1).position, [0, 0, 5])  # default

    def test_playback_onto_existing_tree(self):
        trail = AuditTrail()
        trail.record(0.0, AddNode.of(AvatarNode("late"), parent_id=0,
                                     node_id=30))
        base = SceneTree()
        base.add(CameraNode(), node_id=1)
        merged = trail.playback(tree=base)
        assert 30 in merged and 1 in merged

    def test_save_load_roundtrip(self, tmp_path):
        trail = self.build_trail()
        path = tmp_path / "session.rave"
        n = trail.save(path)
        assert n > 0
        back = AuditTrail.load(path)
        assert len(back) == 3
        tree = back.playback()
        assert np.allclose(tree.node(1).position, [5, 0, 0])

    def test_append_asynchronous_collaboration(self, tmp_path):
        """A later user appends to a recorded session (paper §3.1.1)."""
        path = tmp_path / "session.rave"
        self.build_trail().save(path)
        later = AuditTrail()
        later.record(10.0, MoveAvatar(node_id=2,
                                      position=np.array([1.0, 1, 1]),
                                      view_direction=np.array([0.0, 0, 1])))
        later.append_to(path)
        combined = AuditTrail.load(path)
        assert len(combined) == 4
        tree = combined.playback()
        assert np.allclose(tree.node(2).position, [1, 1, 1])

    def test_append_out_of_order_rejected(self, tmp_path):
        path = tmp_path / "session.rave"
        self.build_trail().save(path)
        early = AuditTrail()
        early.record(0.5, RemoveNode(node_id=2))
        with pytest.raises(ValueError):
            early.append_to(path)

    def test_load_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.rave"
        path.write_bytes(b"definitely not an audit trail")
        from repro.errors import DataFormatError

        with pytest.raises(DataFormatError):
            AuditTrail.load(path)

    def test_updates_between(self):
        trail = self.build_trail()
        assert len(trail.updates_between(0.5, 2.0)) == 2
