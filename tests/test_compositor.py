"""Compositing: the correctness heart of workload distribution.

The key invariant: rendering scene subsets on different services and
depth-compositing the framebuffers must equal rendering the whole scene on
one service.  Same for tile assembly.
"""

import numpy as np
import pytest

from repro.data.generators import galleon
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.compositor import (
    FrameSynchronizer,
    assemble_tiles,
    blend_slabs,
    check_tiling,
    depth_composite,
    seam_discontinuity,
)
from repro.render.framebuffer import FrameBuffer, Tile, split_tiles
from repro.render.rasterizer import rasterize_mesh
from repro.render.volume import VolumeImage, raymarch_volume


@pytest.fixture
def cam():
    return Camera.looking_at((2.2, 1.4, 1.2), target=(0, 0, 0))


@pytest.fixture
def ship():
    return galleon().normalized()


class TestDepthComposite:
    def test_equals_monolithic_render(self, cam, ship):
        """THE dataset-distribution invariant."""
        mono = FrameBuffer(96, 96)
        rasterize_mesh(ship, cam, mono)

        buffers = []
        for piece in ship.split_spatially(3):
            fb = FrameBuffer(96, 96)
            rasterize_mesh(piece, cam, fb)
            buffers.append(fb)
        merged = depth_composite(buffers)

        assert np.array_equal(np.isfinite(merged.depth),
                              np.isfinite(mono.depth))
        # depth identical; color may differ on a handful of tie pixels
        finite = np.isfinite(mono.depth)
        assert np.allclose(merged.depth[finite], mono.depth[finite],
                           atol=1e-5)
        assert merged.mean_abs_diff(mono) < 2.0

    def test_composite_order_independent(self, cam, ship):
        pieces = ship.split_spatially(3)
        bufs = []
        for piece in pieces:
            fb = FrameBuffer(64, 64)
            rasterize_mesh(piece, cam, fb)
            bufs.append(fb)
        a = depth_composite(bufs)
        b = depth_composite(list(reversed(bufs)))
        assert np.array_equal(a.depth, b.depth)

    def test_empty_list_rejected(self):
        with pytest.raises(RenderError):
            depth_composite([])

    def test_size_mismatch_rejected(self):
        with pytest.raises(RenderError):
            depth_composite([FrameBuffer(8, 8), FrameBuffer(9, 9)])

    def test_single_buffer_passthrough(self):
        fb = FrameBuffer(8, 8, background=(5, 5, 5))
        out = depth_composite([fb])
        assert out.mean_abs_diff(fb) == 0.0


class TestTileAssembly:
    def test_tiles_reassemble_to_monolithic(self, cam, ship):
        """THE framebuffer-distribution invariant."""
        mono = FrameBuffer(96, 96)
        rasterize_mesh(ship, cam, mono)
        tiles = split_tiles(96, 96, 2, 2)
        parts = [(t, mono.extract(t)) for t in tiles]
        target = FrameBuffer(96, 96)
        assemble_tiles(target, parts)
        assert target.mean_abs_diff(mono) == 0.0
        assert np.array_equal(target.depth, mono.depth)

    def test_check_tiling_detects_gap(self):
        tiles = [Tile(0, 0, 4, 8), Tile(5, 0, 3, 8)]  # column 4 uncovered
        with pytest.raises(RenderError):
            check_tiling(8, 8, tiles)

    def test_check_tiling_detects_overlap(self):
        tiles = [Tile(0, 0, 5, 8), Tile(4, 0, 4, 8)]
        with pytest.raises(RenderError):
            check_tiling(8, 8, tiles)

    def test_check_tiling_detects_overflow(self):
        with pytest.raises(RenderError):
            check_tiling(8, 8, [Tile(0, 0, 9, 8)])


class TestTearing:
    def test_consistent_frame_scores_near_one(self, cam, ship):
        mono = FrameBuffer(96, 96)
        rasterize_mesh(ship, cam, mono)
        tiles = split_tiles(96, 96, 2, 1)
        score = seam_discontinuity(mono, tiles)
        assert 0.0 <= score < 2.0

    def test_stale_tile_scores_high(self):
        """Reproduce Figure 5: paste a stale remote tile, measure the tear.

        Uses a screen-filling Gouraud-shaded quad so the seam crosses real
        geometry; the stale tile comes from a slightly rotated camera, as
        when the remote render service lags a camera drag.
        """
        from repro.data.meshes import Mesh

        quad = Mesh(
            np.array([[-4, -4, 0], [4, -4, 0], [4, 4, 0], [-4, 4, 0]],
                     np.float32),
            np.array([[0, 1, 2], [0, 2, 3]], np.int32),
            colors=np.array([[1, 0, 0], [0, 1, 0], [0, 0, 1], [1, 1, 0]],
                            np.float32))
        cam = Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))
        fresh = FrameBuffer(96, 96)
        rasterize_mesh(quad, cam, fresh, shading="none")
        # the stale tile shows the scene before the object moved
        stale = FrameBuffer(96, 96)
        rasterize_mesh(quad.translated((2.5, 0, 0)), cam, stale,
                       shading="none")

        tiles = split_tiles(96, 96, 2, 1)
        torn = fresh.copy()
        torn.paste(tiles[1], stale.extract(tiles[1]))

        torn_score = seam_discontinuity(torn, tiles)
        clean_score = seam_discontinuity(fresh, tiles)
        assert torn_score > 2.0 * max(clean_score, 0.1)

    def test_no_seams_scores_one(self):
        fb = FrameBuffer(8, 8)
        assert seam_discontinuity(fb, [Tile(0, 0, 8, 8)]) == 1.0


class TestFrameSynchronizer:
    def make(self):
        tiles = split_tiles(8, 8, 2, 1)
        return FrameSynchronizer(tiles), tiles

    def part(self, tile, value):
        fb = FrameBuffer(tile.width, tile.height)
        fb.color[:] = value
        return fb

    def test_incomplete_frame_held(self):
        sync, tiles = self.make()
        sync.submit(0, 0, self.part(tiles[0], 1))
        assert sync.take_frame(FrameBuffer(8, 8)) is None

    def test_complete_frame_released(self):
        sync, tiles = self.make()
        sync.submit(0, 0, self.part(tiles[0], 1))
        sync.submit(0, 1, self.part(tiles[1], 2))
        target = FrameBuffer(8, 8)
        assert sync.take_frame(target) == 0
        assert (target.color[:, :4] == 1).all()
        assert (target.color[:, 4:] == 2).all()

    def test_older_incomplete_frames_dropped(self):
        sync, tiles = self.make()
        sync.submit(0, 0, self.part(tiles[0], 1))   # frame 0 never completes
        sync.submit(1, 0, self.part(tiles[0], 3))
        sync.submit(1, 1, self.part(tiles[1], 4))
        assert sync.take_frame(FrameBuffer(8, 8)) == 1
        assert sync.frames_dropped == 1
        assert sync.take_frame(FrameBuffer(8, 8)) is None

    def test_frames_released_in_order(self):
        sync, tiles = self.make()
        for seq in (1, 0):
            sync.submit(seq, 0, self.part(tiles[0], seq))
            sync.submit(seq, 1, self.part(tiles[1], seq))
        assert sync.take_frame(FrameBuffer(8, 8)) == 0
        assert sync.take_frame(FrameBuffer(8, 8)) == 1

    def test_validation(self):
        sync, tiles = self.make()
        with pytest.raises(RenderError):
            sync.submit(0, 5, FrameBuffer(4, 8))
        with pytest.raises(RenderError):
            sync.submit(0, 0, FrameBuffer(3, 3))
        with pytest.raises(RenderError):
            FrameSynchronizer([])

    def test_late_tile_cannot_resurrect_released_frame(self):
        """Regression: a tile arriving for an already-released sequence
        used to re-enter the pending map, and a straggling second tile
        could then complete that old frame and release it *after* a newer
        one — the display stepping backwards.  The watermark discards it."""
        sync, tiles = self.make()
        sync.submit(1, 0, self.part(tiles[0], 5))
        sync.submit(1, 1, self.part(tiles[1], 6))
        assert sync.take_frame(FrameBuffer(8, 8)) == 1
        # both tiles of frame 0 straggle in after frame 1 was shown
        sync.submit(0, 0, self.part(tiles[0], 1))
        sync.submit(0, 1, self.part(tiles[1], 2))
        assert sync.take_frame(FrameBuffer(8, 8)) is None
        assert sync.late_tiles == 2
        assert sync.last_released == 1

    def test_late_tile_for_dropped_frame_discarded(self):
        """A frame dropped in favour of a newer one is also below the
        watermark; its stragglers must not re-pend either."""
        sync, tiles = self.make()
        sync.submit(0, 0, self.part(tiles[0], 1))   # frame 0: half only
        sync.submit(2, 0, self.part(tiles[0], 3))
        sync.submit(2, 1, self.part(tiles[1], 4))
        assert sync.take_frame(FrameBuffer(8, 8)) == 2
        assert sync.frames_dropped == 1
        sync.submit(0, 1, self.part(tiles[1], 2))   # frame 0's straggler
        assert sync.take_frame(FrameBuffer(8, 8)) is None
        assert sync.late_tiles == 1

    def test_watermark_does_not_block_future_frames(self):
        sync, tiles = self.make()
        for seq in (0, 1, 2):
            sync.submit(seq, 0, self.part(tiles[0], seq))
            sync.submit(seq, 1, self.part(tiles[1], seq))
            assert sync.take_frame(FrameBuffer(8, 8)) == seq
        assert sync.frames_released == 3
        assert sync.late_tiles == 0


class TestSlabBlending:
    def test_slabs_match_monolithic_volume(self):
        """Distributed volume rendering (Visapult scheme): slab blending
        approximates the single-pass ray-march."""
        from repro.data.volumes import visible_human_phantom

        cam = Camera.looking_at((0, 0, 4), target=(0, 0, 0))
        vol = visible_human_phantom(32)
        mono = raymarch_volume(vol, cam, 48, 48, opacity_scale=0.2)
        slabs = [raymarch_volume(s, cam, 48, 48, opacity_scale=0.2)
                 for s in vol.split_slabs(3, axis=2)]
        blended = blend_slabs(slabs)
        mono_rgb = np.clip(mono.rgba[..., :3], 0, 1)
        diff = np.abs(blended - mono_rgb).mean()
        assert diff < 0.06

    def test_order_enforced_by_distance(self):
        near = VolumeImage(
            rgba=np.full((4, 4, 4), 0.5, np.float32), depth=np.ones((4, 4),
            np.float32), view_distance=1.0)
        far = VolumeImage(
            rgba=np.concatenate([np.full((4, 4, 3), 0.9, np.float32),
                                 np.full((4, 4, 1), 0.9, np.float32)],
                                axis=2),
            depth=np.ones((4, 4), np.float32), view_distance=5.0)
        # regardless of list order, near slab blends over far
        a = blend_slabs([near, far])
        b = blend_slabs([far, near])
        assert np.allclose(a, b)

    def test_empty_rejected(self):
        with pytest.raises(RenderError):
            blend_slabs([])

    def test_size_mismatch(self):
        a = VolumeImage(np.zeros((4, 4, 4), np.float32),
                        np.zeros((4, 4), np.float32), 1.0)
        b = VolumeImage(np.zeros((5, 5, 4), np.float32),
                        np.zeros((5, 5), np.float32), 1.0)
        with pytest.raises(RenderError):
            blend_slabs([a, b])
