"""RaveSanitizer: the dynamic half of the correctness tooling.

Unit tests drive each detector through a hand-built violation — a
scratch clock left installed, a nested event-loop entry mutating a
registered ledger, a hand-corrupted farm frame ledger — and the chaos
ride-along (already asserted inside the chaos suites' ``run_scenario``)
is repeated here on its own seed so ``pytest tests/test_sanitizer.py``
alone proves the tree runs clean under the sanitizer.
"""

import pytest

from repro import obs
from repro.errors import ServiceError
from repro.farm import RenderJob
from repro.network.clock import SimClock, Simulator
from repro.obs.recorder import FlightRecorder
from repro.sanitizer import RaveSanitizer
from repro.testbed import build_testbed

from tests.test_farm_chaos import run_scenario as run_farm_chaos
from tests.test_multitenant_chaos import run_scenario as run_grid_chaos


class TestAttachDetach:
    def test_attach_shadows_step_and_detach_restores(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()
        assert sim.step.__func__ is RaveSanitizer._step
        ran = []
        sim.schedule(1.0, lambda: ran.append(sim.now))
        sim.run()
        assert ran == [1.0]
        assert san.events_checked == 1
        san.detach()
        assert sim.step.__func__ is Simulator.step
        with pytest.raises(ServiceError):
            RaveSanitizer(sim).attach().attach()

    def test_run_until_paths_are_also_instrumented(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()
        sim.schedule(1.0, lambda: None, daemon=True)
        sim.run_until(2.0)
        assert san.events_checked == 1


class TestClockChecks:
    def test_forgotten_scratch_clock_is_a_violation(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()

        def forgets_to_restore():
            sim.clock = SimClock(sim.clock.now)     # scratch, never undone

        sim.schedule(1.0, forgets_to_restore)
        sim.run()
        assert not san.ok
        assert san.violations[0].kind == "clock-swap"

    def test_restored_scratch_clock_is_clean(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()

        def restores():
            real = sim.clock
            sim.clock = SimClock(real.now)
            try:
                sim.clock.advance(99.0)             # bootstrap on scratch
            finally:
                sim.clock = real

        sim.schedule(1.0, restores)
        sim.run()
        assert san.ok

    def test_strict_mode_raises_at_the_violation(self):
        sim = Simulator()
        RaveSanitizer(sim, strict=True).attach()
        sim.schedule(1.0, lambda: setattr(sim, "clock", SimClock()))
        with pytest.raises(ServiceError, match="clock-swap"):
            sim.run()


class TestReentrantMutation:
    def queue_and_sanitizer(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()
        ledger = {"spent": 0}
        san.register_shared("ledger", ledger)
        return sim, san, ledger

    def test_nested_run_mutating_shared_state_is_a_violation(self):
        sim, san, ledger = self.queue_and_sanitizer()

        def outer():
            # re-enter the event loop with a mutation pending: exactly
            # the interleaving the daemon-race lint rule forbids
            sim.schedule(0.5, lambda: ledger.update(spent=1))
            sim.run_until(sim.now + 1.0)

        sim.schedule(1.0, outer)
        sim.run()
        assert not san.ok
        assert san.violations[0].kind == "reentrant"
        assert "ledger" in san.violations[0].detail

    def test_nested_run_leaving_shared_state_alone_is_clean(self):
        sim, san, ledger = self.queue_and_sanitizer()
        passed = []

        def outer():
            sim.schedule(0.5, lambda: passed.append(True))
            sim.run_until(sim.now + 1.0)

        sim.schedule(1.0, outer)
        sim.run()
        assert passed == [True]
        assert san.ok

    def test_top_level_mutation_is_not_reentrant(self):
        sim, san, ledger = self.queue_and_sanitizer()
        sim.schedule(1.0, lambda: ledger.update(spent=1))
        sim.run()
        assert san.ok


class TestConservation:
    def farm(self):
        tb = build_testbed(farm=True)
        queue = tb.farm_queue
        queue.submit(RenderJob(job_id="j", session_id="s",
                               start_frame=1, end_frame=3))
        san = RaveSanitizer(tb.network.sim).attach()
        san.watch_farm_queue(queue)
        return tb, queue, san

    def test_intact_ledger_checks_clean(self):
        tb, queue, san = self.farm()
        queue.lease("w0")
        tb.network.sim.schedule(1.0, lambda: None)
        tb.network.sim.run()
        assert san.ok and san.events_checked == 1

    def test_corrupted_pending_deque_is_caught(self):
        tb, queue, san = self.farm()
        # simulate the double-requeue bug the lifecycle guards now
        # prevent: the same frame queued as pending twice
        queue._job_pending["j"].appendleft(queue._job_pending["j"][0])
        tb.network.sim.schedule(1.0, lambda: None)
        tb.network.sim.run()
        assert not san.ok
        assert san.violations[0].kind == "conservation"
        assert "duplicate frame indexes" in san.violations[0].detail

    def test_exactly_once_drift_is_caught(self):
        tb, queue, san = self.farm()
        queue.frames_completed += 1         # a completion nobody rendered
        tb.network.sim.schedule(1.0, lambda: None)
        tb.network.sim.run()
        assert not san.ok
        assert "exactly-once" in san.violations[0].detail

    def test_violations_land_in_the_flight_recorder(self):
        recorder = FlightRecorder()
        sim = Simulator()
        san = RaveSanitizer(sim, recorder=recorder).attach()
        san.register_invariant("broken", lambda: "the books don't balance")
        sim.schedule(1.0, lambda: None)
        sim.run()
        kinds = [e.kind for e in recorder.events()]
        assert kinds == ["sanitizer:conservation"]
        assert "the books don't balance" in recorder.events()[0].detail

    def test_active_obs_recorder_is_the_default_sink(self):
        sim = Simulator()
        san = RaveSanitizer(sim).attach()
        san.register_invariant("broken", lambda: "off by one")
        with obs.observed() as bundle:
            sim.schedule(1.0, lambda: None)
            sim.run()
        kinds = [e.kind for e in bundle.recorder.events()]
        assert "sanitizer:conservation" in kinds
        assert not san.ok


class TestChaosRideAlong:
    """The whole tree runs sanitized with zero violations.

    ``run_scenario`` in each chaos suite asserts ``san.ok`` internally,
    so simply driving both scenarios here (fresh seeds, not the class
    fixtures' seeds) proves the invariants hold tree-wide.
    """

    def test_farm_chaos_is_sanitizer_clean(self):
        _, _, queue, story = run_farm_chaos(seed=101)
        assert queue.job("anim-chaos").finished
        assert not [k for k, _ in story if k.startswith("sanitizer:")]

    def test_grid_chaos_is_sanitizer_clean(self):
        grid, decisions, _, story = run_grid_chaos(seed=43)
        assert decisions
        assert not [k for k, _ in story if k.startswith("sanitizer:")]
