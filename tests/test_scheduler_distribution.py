"""The scheduler (placement + refusal) and the two distributors."""

import pytest

from repro.core.cost import NodeCost, tree_cost
from repro.core.distribution import (
    DatasetDistributor,
    FramebufferDistributor,
    explode_mesh_node,
)
from repro.core.scheduler import RenderServiceScheduler
from repro.data.generators import galleon, skeleton
from repro.errors import InsufficientResources, SceneGraphError
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree


@pytest.fixture
def pool(testbed):
    return [testbed.render_service(h)
            for h in ("centrino", "athlon", "onyx", "xeon", "v880z")]


class TestScheduler:
    def test_single_placement_when_it_fits(self, testbed, pool):
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        placement = sched.place(NodeCost(polygons=100_000), pool)
        assert placement.mode == "single"
        assert len(placement.assignments) == 1

    def test_best_fit_prefers_smallest_sufficient(self, testbed, pool):
        """Small datasets must not hog the Onyx/Xeon."""
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        placement = sched.place(NodeCost(polygons=100_000), pool)
        chosen = placement.assignments[0].service.name
        assert chosen == "rs-centrino"      # smallest polygon budget

    def test_distributed_when_too_big_for_one(self, testbed, pool):
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        # 5M polygons: largest single budget is xeon's 4M
        placement = sched.place(NodeCost(polygons=5_000_000), pool)
        assert placement.mode == "dataset-distributed"
        assert placement.total_polygons == 5_000_000
        assert len(placement.assignments) >= 2

    def test_distribution_respects_headroom(self, testbed, pool):
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        placement = sched.place(NodeCost(polygons=5_000_000), pool)
        for a in placement.assignments:
            assert a.polygons <= a.report.headroom(10) + 1

    def test_refusal_with_explanation(self, testbed, pool):
        """The paper's refusal path: explanatory error message."""
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        with pytest.raises(InsufficientResources) as info:
            sched.place(NodeCost(polygons=10**9), pool)
        err = info.value
        assert err.required == 10**9
        assert err.available > 0
        assert "polygons" in str(err)

    def test_recruitment_rescues_placement(self, testbed):
        """With only the PDA-adjacent laptop connected, a big dataset
        forces a UDDI recruitment pass."""
        recruiter = testbed.recruiter()
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10,
                                       recruiter=recruiter)
        only = [testbed.render_service("centrino")]
        placement = sched.place(NodeCost(polygons=3_000_000), only)
        assert placement.recruited
        assert placement.total_polygons == 3_000_000

    def test_volume_dataset_needs_volume_service(self, testbed, pool):
        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        cost = NodeCost(polygons=1000, voxels=50_000)
        placement = sched.place(cost, pool)
        for a in placement.assignments:
            assert a.report.capacity.volume_support

    def test_zero_cost_rejected(self, testbed, pool):
        sched = RenderServiceScheduler(testbed.data_service)
        with pytest.raises(ValueError):
            sched.place(NodeCost(), pool)


class TestDatasetDistributor:
    def big_tree(self, n=60_000):
        tree = SceneTree("big")
        tree.add(MeshNode(skeleton(n).normalized(), name="skel"))
        return tree

    def test_plan_respects_budgets(self):
        tree = self.big_tree()
        total = tree_cost(tree).polygons
        budgets = {"a": total * 0.6, "b": total * 0.6}
        plan = DatasetDistributor(max_grain_polygons=5_000).plan(tree,
                                                                 budgets)
        for name, cost in plan.costs.items():
            assert cost.polygons <= budgets[name] + 1

    def test_plan_covers_everything(self):
        tree = self.big_tree()
        total = tree_cost(tree).polygons
        plan = DatasetDistributor(max_grain_polygons=5_000).plan(
            tree, {"a": total, "b": total})
        assert sum(c.polygons for c in plan.costs.values()) == \
            tree_cost(tree).polygons  # tree re-measured after explosion

    def test_oversized_mesh_exploded(self):
        tree = self.big_tree()
        plan = DatasetDistributor(max_grain_polygons=5_000).plan(
            tree, {"a": 1e9, "b": 1e9})
        assert plan.exploded           # the 60k mesh had to be split
        # exploded leaves exist in the tree
        for nid in plan.exploded:
            assert nid in tree

    def test_impossible_budgets_rejected(self):
        tree = self.big_tree()
        with pytest.raises(SceneGraphError):
            DatasetDistributor().plan(tree, {"a": 10.0})

    def test_no_services_rejected(self):
        with pytest.raises(ValueError):
            DatasetDistributor().plan(SceneTree(), {})

    def test_subtree_for_renders_assigned_share(self):
        """Extracted subtrees contain exactly the assigned polygons."""
        tree = self.big_tree(20_000)
        total = tree_cost(tree).polygons
        dist = DatasetDistributor(max_grain_polygons=2_000)
        plan = dist.plan(tree, {"a": total * 0.55, "b": total * 0.55})
        got = 0
        for name in ("a", "b"):
            sub = dist.subtree_for(tree, plan, name)
            assert sub.total_polygons() == plan.costs[name].polygons
            got += sub.total_polygons()
        assert got == tree_cost(tree).polygons

    def test_explode_preserves_geometry(self, quad):
        tree = SceneTree()
        big = tree.add(MeshNode(galleon().normalized(), name="ship"))
        original_id = big.node_id
        before = tree.total_polygons()
        new_ids = explode_mesh_node(tree, original_id, 4)
        assert len(new_ids) == 4
        assert tree.total_polygons() == before
        # the replacement group keeps the original id
        assert original_id in tree
        assert tree.node(original_id).TYPE == "group"

    def test_explode_non_mesh_rejected(self, simple_tree):
        cam = simple_tree.cameras()[0]
        with pytest.raises(SceneGraphError):
            explode_mesh_node(simple_tree, cam.node_id, 2)

    def test_explode_one_part_noop(self):
        tree = SceneTree()
        m = tree.add(MeshNode(galleon()))
        assert explode_mesh_node(tree, m.node_id, 1) == [m.node_id]


class TestFramebufferDistributor:
    def test_tiles_cover_target(self):
        from repro.render.compositor import check_tiling

        plan = FramebufferDistributor().plan(
            200, 200, "local", {"a": 1.0, "b": 2.0})
        check_tiling(200, 200, [a.tile for a in plan.assignments])

    def test_local_tile_first(self):
        plan = FramebufferDistributor().plan(200, 200, "local", {"a": 1.0})
        assert plan.assignments[0].local
        assert plan.assignments[0].service_name == "local"
        assert plan.assignments[0].tile.x0 == 0

    def test_capacity_proportional_widths(self):
        plan = FramebufferDistributor().plan(
            300, 100, "local", {"fast": 3.0, "slow": 1.0},
            local_share=1.0)
        widths = {a.service_name: a.tile.width for a in plan.assignments}
        assert widths["fast"] > widths["slow"]
        assert widths["fast"] == pytest.approx(3 * widths["slow"],
                                               rel=0.2)

    def test_no_assistants_single_tile(self):
        plan = FramebufferDistributor().plan(100, 100, "local", {})
        assert len(plan.assignments) == 1
        assert plan.assignments[0].tile.width == 100

    def test_too_many_assistants_rejected(self):
        with pytest.raises(ValueError):
            FramebufferDistributor().plan(
                4, 4, "local", {f"s{i}": 1.0 for i in range(10)})

    def test_invalid_weights(self):
        with pytest.raises(ValueError):
            FramebufferDistributor().plan(100, 100, "l", {"a": 0.0})

    def test_tiles_of(self):
        plan = FramebufferDistributor().plan(
            200, 100, "local", {"a": 1.0}, local_share=1.0)
        assert len(plan.tiles_of("a")) == 1
        assert plan.tiles_of("ghost") == []
