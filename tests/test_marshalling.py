"""The binary value codec and the two marshaller cost models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MarshallingError
from repro.network.marshalling import (
    BinaryMarshaller,
    IntrospectionMarshaller,
    count_fields,
    decode_value,
    encode_value,
    payload_nbytes,
)


class TestCodec:
    @pytest.mark.parametrize("value", [
        None, True, False, 0, -1, 2**40, 3.14, "", "héllo", b"bytes",
        [], [1, "two", None], {}, {"k": [1, {"n": 2.5}]},
    ])
    def test_roundtrip_primitives(self, value):
        assert decode_value(encode_value(value)) == value

    def test_roundtrip_arrays(self):
        for arr in (np.arange(12, dtype=np.float32).reshape(3, 4),
                    np.zeros((0, 3), np.int32),
                    np.array(5.0),
                    np.ones((2, 2, 2), np.uint8)):
            back = decode_value(encode_value(arr))
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape
            assert np.array_equal(back, arr)

    def test_decoded_array_is_writable_copy(self):
        back = decode_value(encode_value(np.arange(3)))
        back[0] = 99  # must not raise (frombuffer alone would be read-only)

    def test_nested_structures(self):
        value = {"tree": {"nodes": [{"id": 1, "m": np.eye(4)}]}}
        back = decode_value(encode_value(value))
        assert np.allclose(back["tree"]["nodes"][0]["m"], np.eye(4))

    def test_unsupported_type(self):
        with pytest.raises(MarshallingError):
            encode_value(object())

    def test_non_string_dict_key(self):
        with pytest.raises(MarshallingError):
            encode_value({1: "x"})

    def test_depth_limit(self):
        value = "leaf"
        for _ in range(40):
            value = [value]
        with pytest.raises(MarshallingError):
            encode_value(value)

    def test_truncated_data(self):
        data = encode_value({"a": np.arange(100)})
        with pytest.raises(MarshallingError):
            decode_value(data[:-5])

    def test_trailing_garbage(self):
        with pytest.raises(MarshallingError):
            decode_value(encode_value(1) + b"xx")

    def test_unknown_tag(self):
        with pytest.raises(MarshallingError):
            decode_value(b"Z")

    def test_corrupt_array_length(self):
        data = bytearray(encode_value(np.arange(4, dtype=np.int64)))
        # ndarray layout: 'a' + dtlen + dtype + ndim + shape(q) + nbytes(Q)
        # flip a shape byte so byte count mismatches
        idx = data.index(4, 2)  # first occurrence of shape value 4
        data[idx] = 9
        with pytest.raises(MarshallingError):
            decode_value(bytes(data))

    wire_values = st.recursive(
        st.one_of(st.none(), st.booleans(),
                  st.integers(-2**60, 2**60),
                  st.floats(allow_nan=False, allow_infinity=False),
                  st.text(max_size=20), st.binary(max_size=20)),
        lambda children: st.one_of(
            st.lists(children, max_size=4),
            st.dictionaries(st.text(min_size=1, max_size=8), children,
                            max_size=4)),
        max_leaves=20)

    @given(wire_values)
    @settings(max_examples=80, deadline=None)
    def test_roundtrip_property(self, value):
        assert decode_value(encode_value(value)) == value


class TestCounting:
    def test_count_fields(self):
        assert count_fields({"a": 1, "b": [2, 3]}) == 3
        assert count_fields([]) == 1
        assert count_fields(5) == 1

    def test_payload_nbytes_arrays_dominate(self):
        value = {"meta": "x", "data": np.zeros(1000, np.float64)}
        assert payload_nbytes(value) >= 8000


class TestCostModels:
    def test_introspection_much_slower(self):
        value = {"vertices": np.zeros((10000, 3), np.float32)}
        fast = BinaryMarshaller().marshal(value)
        slow = IntrospectionMarshaller().marshal(value)
        assert slow.cpu_seconds > 50 * fast.cpu_seconds
        assert fast.data == slow.data        # identical bytes!

    def test_introspection_slope_matches_table5(self):
        """~4.8 s/MB of CPU (marshal+demarshal) at reference speed — the
        Table 5 slope once the testbed's per-host CPU factors apply."""
        mb = 2**20
        value = {"data": np.zeros(mb, np.uint8)}
        m = IntrospectionMarshaller()
        enc = m.marshal(value)
        _, dec_cpu = m.demarshal(enc.data)
        per_mb = enc.cpu_seconds + dec_cpu
        assert 4.0 < per_mb < 5.6

    def test_cpu_factor_scales(self):
        value = {"data": np.zeros(1000)}
        slow_cpu = IntrospectionMarshaller(cpu_factor=0.5).marshal(value)
        fast_cpu = IntrospectionMarshaller(cpu_factor=2.0).marshal(value)
        assert slow_cpu.cpu_seconds == pytest.approx(
            4 * fast_cpu.cpu_seconds)

    def test_invalid_cpu_factor(self):
        with pytest.raises(ValueError):
            BinaryMarshaller(cpu_factor=0)
        with pytest.raises(ValueError):
            IntrospectionMarshaller(cpu_factor=-1)

    def test_demarshal_returns_value(self):
        value = {"k": [1, 2, 3]}
        m = BinaryMarshaller()
        out, cpu = m.demarshal(m.marshal(value).data)
        assert out == value
        assert cpu > 0

    def test_field_count_affects_introspection(self):
        flat = {"a": np.zeros(1000)}
        chopped = {f"k{i}": np.zeros(10) for i in range(100)}
        m = IntrospectionMarshaller()
        assert (m.marshal(chopped).cpu_seconds
                > m.marshal(flat).cpu_seconds * 0.9)
