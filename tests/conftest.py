"""Shared fixtures: small deterministic meshes, trees and testbeds."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.meshes import Mesh
from repro.scenegraph.nodes import CameraNode, MeshNode, TransformNode
from repro.scenegraph.tree import SceneTree


@pytest.fixture
def triangle() -> Mesh:
    """One triangle in the z=0 plane."""
    return Mesh(
        np.array([[-1.0, -1.0, 0.0], [1.0, -1.0, 0.0], [0.0, 1.0, 0.0]],
                 dtype=np.float32),
        np.array([[0, 1, 2]], dtype=np.int32),
        name="tri",
    )


@pytest.fixture
def quad() -> Mesh:
    """A unit quad (two triangles) in the z=0 plane."""
    return Mesh(
        np.array([[-1, -1, 0], [1, -1, 0], [1, 1, 0], [-1, 1, 0]],
                 dtype=np.float32),
        np.array([[0, 1, 2], [0, 2, 3]], dtype=np.int32),
        name="quad",
    )


@pytest.fixture
def small_galleon() -> Mesh:
    from repro.data.generators import galleon

    return galleon().normalized()


@pytest.fixture
def simple_tree(quad) -> SceneTree:
    """root -> transform -> mesh, plus a camera."""
    tree = SceneTree("fixture")
    xf = tree.add(TransformNode.from_translation((1.0, 0.0, 0.0), name="xf"))
    tree.add(MeshNode(quad, name="quad"), parent=xf)
    tree.add(CameraNode(position=(0, 0, 5), target=(0, 0, 0), name="cam"))
    return tree


@pytest.fixture
def testbed():
    from repro.testbed import build_testbed

    return build_testbed()


@pytest.fixture
def small_testbed():
    """Two render hosts only — faster for service-level tests."""
    from repro.testbed import build_testbed

    return build_testbed(render_hosts=("centrino", "athlon"))
