"""Error paths of the binary wire framing in ``services/protocol.py``.

The happy path is exercised everywhere the monitor scrapes; these tests
pin down the defensive half of the contract: every way a frame can be
corrupt — short, misbranded, stale-versioned, truncated, bit-flipped,
misflagged or carrying garbage JSON — raises :class:`MarshallingError`
with a diagnosable message instead of propagating a struct/JSON error.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import MarshallingError
from repro.services.protocol import (
    FLAG_TELEMETRY,
    FrameHeader,
    frame_message,
    frame_telemetry,
    unframe_message,
    unframe_telemetry,
)

HEADER = struct.Struct("<IHHIQ")
MAGIC = 0x52415645
VERSION = 1


def rebuild(payload: bytes, *, magic: int = MAGIC, version: int = VERSION,
            flags: int = 0, crc: int | None = None,
            length: int | None = None) -> bytes:
    """A frame with any single header field forced to a bad value."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF if crc is None else crc
    length = len(payload) if length is None else length
    return HEADER.pack(magic, version, flags, crc, length) + payload


class TestUnframeMessage:
    def test_round_trip(self):
        header, body = unframe_message(frame_message(b"hello", flags=7))
        assert body == b"hello"
        assert header == FrameHeader(version=VERSION, flags=7,
                                     crc32=zlib.crc32(b"hello"), length=5)

    def test_truncated_header(self):
        frame = frame_message(b"payload")
        with pytest.raises(MarshallingError,
                           match="shorter than header"):
            unframe_message(frame[:HEADER.size - 1])

    def test_empty_input(self):
        with pytest.raises(MarshallingError, match="shorter than header"):
            unframe_message(b"")

    def test_bad_magic(self):
        with pytest.raises(MarshallingError, match="bad frame magic"):
            unframe_message(rebuild(b"x", magic=0xDEADBEEF))

    def test_wrong_version(self):
        with pytest.raises(MarshallingError,
                           match="unsupported frame version 2"):
            unframe_message(rebuild(b"x", version=2))

    def test_truncated_payload(self):
        frame = frame_message(b"twelve bytes")
        with pytest.raises(MarshallingError, match="length mismatch"):
            unframe_message(frame[:-3])

    def test_inflated_payload(self):
        with pytest.raises(MarshallingError, match="length mismatch"):
            unframe_message(frame_message(b"short") + b"trailing junk")

    def test_crc_mismatch(self):
        corrupt = rebuild(b"payload", crc=zlib.crc32(b"payload") ^ 0x1)
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_message(corrupt)

    def test_flipped_payload_bit_fails_checksum(self):
        frame = bytearray(frame_message(b"payload"))
        frame[-1] ^= 0x40
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_message(bytes(frame))


class TestUnframeTelemetry:
    def test_round_trip(self):
        payload = {"kind": "render", "metrics": {"a": 1}}
        assert unframe_telemetry(frame_telemetry(payload)) == payload

    def test_missing_telemetry_flag(self):
        body = json.dumps({"ok": True}).encode()
        with pytest.raises(MarshallingError, match="carry no telemetry"):
            unframe_telemetry(frame_message(body, flags=0))

    def test_corrupt_frame_detected_before_json(self):
        frame = bytearray(frame_telemetry({"kind": "render"}))
        frame[-1] ^= 0x01
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_telemetry(bytes(frame))

    def test_malformed_json_body(self):
        frame = frame_message(b"{not json", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError, match="malformed telemetry"):
            unframe_telemetry(frame)

    def test_non_utf8_body(self):
        frame = frame_message(b"\xff\xfe\xfd", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError, match="malformed telemetry"):
            unframe_telemetry(frame)

    def test_non_object_json_payload(self):
        frame = frame_message(b"[1, 2, 3]", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError,
                           match="must be a JSON object"):
            unframe_telemetry(frame)
