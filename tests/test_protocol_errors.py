"""Error paths of the binary wire framing in ``services/protocol.py``.

The happy path is exercised everywhere the monitor scrapes; these tests
pin down the defensive half of the contract: every way a frame can be
corrupt — short, misbranded, stale-versioned, truncated, bit-flipped,
misflagged or carrying garbage JSON — raises :class:`MarshallingError`
with a diagnosable message instead of propagating a struct/JSON error.
"""

from __future__ import annotations

import json
import struct
import zlib

import pytest

from repro.errors import MarshallingError
from repro.farm import RenderJob
from repro.services.protocol import (
    FLAG_FARM,
    FLAG_TELEMETRY,
    FarmLease,
    FarmResult,
    FrameHeader,
    frame_farm_lease,
    frame_farm_result,
    frame_message,
    frame_telemetry,
    unframe_farm_lease,
    unframe_farm_result,
    unframe_message,
    unframe_telemetry,
)

HEADER = struct.Struct("<IHHIQ")
MAGIC = 0x52415645
VERSION = 1


def rebuild(payload: bytes, *, magic: int = MAGIC, version: int = VERSION,
            flags: int = 0, crc: int | None = None,
            length: int | None = None) -> bytes:
    """A frame with any single header field forced to a bad value."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF if crc is None else crc
    length = len(payload) if length is None else length
    return HEADER.pack(magic, version, flags, crc, length) + payload


class TestUnframeMessage:
    def test_round_trip(self):
        header, body = unframe_message(frame_message(b"hello", flags=7))
        assert body == b"hello"
        assert header == FrameHeader(version=VERSION, flags=7,
                                     crc32=zlib.crc32(b"hello"), length=5)

    def test_truncated_header(self):
        frame = frame_message(b"payload")
        with pytest.raises(MarshallingError,
                           match="shorter than header"):
            unframe_message(frame[:HEADER.size - 1])

    def test_empty_input(self):
        with pytest.raises(MarshallingError, match="shorter than header"):
            unframe_message(b"")

    def test_bad_magic(self):
        with pytest.raises(MarshallingError, match="bad frame magic"):
            unframe_message(rebuild(b"x", magic=0xDEADBEEF))

    def test_wrong_version(self):
        with pytest.raises(MarshallingError,
                           match="unsupported frame version 2"):
            unframe_message(rebuild(b"x", version=2))

    def test_truncated_payload(self):
        frame = frame_message(b"twelve bytes")
        with pytest.raises(MarshallingError, match="length mismatch"):
            unframe_message(frame[:-3])

    def test_inflated_payload(self):
        with pytest.raises(MarshallingError, match="length mismatch"):
            unframe_message(frame_message(b"short") + b"trailing junk")

    def test_crc_mismatch(self):
        corrupt = rebuild(b"payload", crc=zlib.crc32(b"payload") ^ 0x1)
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_message(corrupt)

    def test_flipped_payload_bit_fails_checksum(self):
        frame = bytearray(frame_message(b"payload"))
        frame[-1] ^= 0x40
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_message(bytes(frame))


class TestHostileFarmResults:
    """Corrupt/hostile farm results must be dropped, never raised.

    The wire layer already rejects mangled bytes; these tests cover the
    next layer up — a structurally valid :class:`FarmResult` whose
    *content* is hostile (a frame index outside the job's range, or a
    job id the queue never saw) reaching
    :meth:`FrameQueueService.complete`.
    """

    def queue(self):
        from repro.data.generators import galleon
        from repro.testbed import build_testbed

        tb = build_testbed(farm=True)
        tb.publish_model("scene", galleon(2000))
        tb.farm_queue.submit(RenderJob(
            job_id="anim", session_id="scene",
            start_frame=1, end_frame=4))
        return tb.farm_queue

    @staticmethod
    def result(job_id="anim", frame=1, worker="w0"):
        return frame_farm_result(FarmResult(
            job_id=job_id, frame=frame, worker=worker,
            render_seconds=0.01, nbytes=64))

    def test_out_of_range_frame_is_counted_and_dropped(self):
        # regression: a result naming frame 99 of a 4-frame job used to
        # crash complete() with a KeyError out of the ledger lookup
        queue = self.queue()
        unframe_farm_lease(queue.lease("w0"))
        assert queue.complete(self.result(frame=99)) is False
        assert queue.invalid_results == 1
        assert queue.frames_completed == 0
        # the honest result for the leased frame still lands
        assert queue.complete(self.result(frame=1)) is True

    def test_unknown_job_is_counted_and_dropped(self):
        queue = self.queue()
        assert queue.complete(self.result(job_id="ghost")) is False
        assert queue.invalid_results == 1
        assert queue.duplicates_dropped == 0

    def test_invalid_results_export_a_counter(self):
        queue = self.queue()
        queue.complete(self.result(frame=-7))
        snapshot = queue.telemetry.registry.snapshot()
        family = snapshot["rave_farm_invalid_results_total"]
        assert family["series"][0]["value"] == 1


class TestFarmLeasePriorityOnTheWire:
    def test_priority_round_trips(self):
        lease = FarmLease(job_id="anim", frame=3, session_id="scene",
                          attempt=1, deadline=42.0, priority=5)
        assert unframe_farm_lease(frame_farm_lease(lease)).priority == 5

    def test_legacy_lease_body_defaults_to_priority_zero(self):
        # frames emitted before the scheduler carried no priority field
        body = json.dumps({
            "type": "lease", "job_id": "anim", "frame": 3,
            "session_id": "scene", "attempt": 1, "deadline": 42.0,
        }).encode()
        lease = unframe_farm_lease(frame_message(body, flags=FLAG_FARM))
        assert lease.priority == 0


class TestFarmResultAttemptOnTheWire:
    def test_attempt_round_trips(self):
        result = FarmResult(job_id="anim", frame=3, worker="w0",
                            render_seconds=0.01, nbytes=64, attempt=2)
        assert unframe_farm_result(frame_farm_result(result)).attempt == 2

    def test_legacy_result_body_defaults_to_wildcard_attempt(self):
        # results emitted before lease fencing carried no attempt field;
        # 0 is the wildcard that matches any live lease
        body = json.dumps({
            "type": "result", "job_id": "anim", "frame": 3,
            "worker": "w0", "render_seconds": 0.01, "nbytes": 64,
        }).encode()
        result = unframe_farm_result(frame_message(body, flags=FLAG_FARM))
        assert result.attempt == 0


class TestUnframeTelemetry:
    def test_round_trip(self):
        payload = {"kind": "render", "metrics": {"a": 1}}
        assert unframe_telemetry(frame_telemetry(payload)) == payload

    def test_missing_telemetry_flag(self):
        body = json.dumps({"ok": True}).encode()
        with pytest.raises(MarshallingError, match="carry no telemetry"):
            unframe_telemetry(frame_message(body, flags=0))

    def test_corrupt_frame_detected_before_json(self):
        frame = bytearray(frame_telemetry({"kind": "render"}))
        frame[-1] ^= 0x01
        with pytest.raises(MarshallingError, match="checksum mismatch"):
            unframe_telemetry(bytes(frame))

    def test_malformed_json_body(self):
        frame = frame_message(b"{not json", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError, match="malformed telemetry"):
            unframe_telemetry(frame)

    def test_non_utf8_body(self):
        frame = frame_message(b"\xff\xfe\xfd", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError, match="malformed telemetry"):
            unframe_telemetry(frame)

    def test_non_object_json_payload(self):
        frame = frame_message(b"[1, 2, 3]", flags=FLAG_TELEMETRY)
        with pytest.raises(MarshallingError,
                           match="must be a JSON object"):
            unframe_telemetry(frame)
