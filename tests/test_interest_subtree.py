"""Interest management must respect subtree semantics.

An update to an ancestor node (a transform, a group being removed)
changes what every descendant looks like, so subscribers interested in
any descendant must receive it.
"""

import numpy as np
import pytest

from repro.data.generators import galleon
from repro.scenegraph.nodes import GroupNode, MeshNode, TransformNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import RemoveNode, SetProperty, SetTransform


@pytest.fixture
def layered(small_testbed):
    """root -> transform -> group -> two meshes."""
    tb = small_testbed
    tree = SceneTree("layers")
    xf = tree.add(TransformNode(name="xf"))
    grp = tree.add(GroupNode("grp"), parent=xf)
    a = tree.add(MeshNode(galleon().normalized(), name="a"), parent=grp)
    b = tree.add(MeshNode(galleon().normalized(), name="b"), parent=grp)
    tb.publish_tree("layers", tree)
    return tb, tree, xf, grp, a, b


class TestSubtreeInterest:
    def test_ancestor_transform_reaches_descendant_watcher(self, layered):
        tb, tree, xf, grp, a, b = layered
        got = []
        tb.data_service.subscribe("layers", "watcher", host="athlon",
                                  interests={a.node_id},
                                  on_update=got.append)
        # note: the watcher's local copy includes the ancestor chain, so
        # the transform applies cleanly there too
        tb.data_service.publish_update("layers", SetTransform(
            node_id=xf.node_id,
            matrix=np.diag([2.0, 2.0, 2.0, 1.0])))
        assert len(got) == 1

    def test_group_removal_reaches_descendant_watcher(self, layered):
        tb, tree, xf, grp, a, b = layered
        got = []
        tb.data_service.subscribe("layers", "watcher", host="athlon",
                                  interests={b.node_id},
                                  on_update=got.append)
        tb.data_service.publish_update("layers",
                                       RemoveNode(node_id=grp.node_id))
        assert len(got) == 1

    def test_sibling_update_still_filtered(self, layered):
        tb, tree, xf, grp, a, b = layered
        got = []
        tb.data_service.subscribe("layers", "watcher", host="athlon",
                                  interests={a.node_id},
                                  on_update=got.append)
        tb.data_service.publish_update("layers", SetProperty(
            node_id=b.node_id, field_name="name", value="b2"))
        assert got == []

    def test_direct_hit_still_works(self, layered):
        tb, tree, xf, grp, a, b = layered
        got = []
        tb.data_service.subscribe("layers", "watcher", host="athlon",
                                  interests={a.node_id},
                                  on_update=got.append)
        tb.data_service.publish_update("layers", SetProperty(
            node_id=a.node_id, field_name="name", value="a2"))
        assert len(got) == 1
