"""Unit tests for ravelint: each rule on seeded fixture trees.

Every rule gets at least one fixture that *must* flag and one that must
pass, plus framework-level tests for suppression comments, the baseline
round-trip, reporters and the CLI.  Fixture sources live inside
triple-quoted strings so their deliberately-broken metric names and
kinds stay invisible to the real tree's own lint run.
"""

from __future__ import annotations

import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_NAME,
    load_baseline,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

# referenced by assertions below; the fixture trees, not this repo,
# register them (hence the suppressions)
GHOST_METRIC = "rave_fx_ghost_total"    # ravelint: ignore[metric-registry]
ORPHAN_METRIC = "rave_fx_orphan"        # ravelint: ignore[metric-registry]


VOCAB_FIXTURE = """
EVENT_PING = "ping"
EVENT_FAULT_PREFIX = "fault:"
EVENT_KINDS = frozenset({EVENT_PING})
EVENT_PREFIXES = frozenset({EVENT_FAULT_PREFIX})
ALERT_HOT = "hot"
ALERT_KINDS = frozenset({ALERT_HOT})
TELEMETRY_TICK = "tick"
TELEMETRY_EVENT_KINDS = frozenset({TELEMETRY_TICK})
KNOWN_KINDS = EVENT_KINDS | ALERT_KINDS | TELEMETRY_EVENT_KINDS
DERIVED_METRICS = frozenset({"rave_fx_derived"})
"""


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(text), encoding="utf-8")
    return tmp_path


def lint(root: Path, *rules: str, baseline: Path | None = None):
    return run_lint(root=root, rules=list(rules) or None,
                    baseline_path=baseline)


def symbols(result) -> set[str]:
    return {f.symbol for f in result.findings}


# -- determinism ----------------------------------------------------------------------


class TestDeterminismRule:
    def test_flags_wall_clocks_and_unseeded_rngs(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/sim.py": """
            import os
            import random
            import time
            import uuid
            import numpy as np
            from time import monotonic as mono

            STAMP = time.time()
            TICK = mono()
            TOKEN = uuid.uuid4()
            NOISE = os.urandom(8)
            rng = random.Random()
            gen = np.random.default_rng()

            def jitter(items):
                random.shuffle(items)
                return np.random.random()
            """})
        result = lint(root, "determinism")
        assert symbols(result) == {
            "time.time", "time.monotonic", "uuid.uuid4", "os.urandom",
            "random.Random", "numpy.random.default_rng",
            "random.shuffle", "numpy.random.random",
        }
        assert all(f.severity == "error" for f in result.findings)

    def test_passes_seeded_rngs_and_local_generators(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/sim.py": """
            import random
            import numpy as np

            rng = random.Random(42)
            gen = np.random.default_rng(7)

            def draw(local_rng):
                return local_rng.random() + gen.normal()
            """})
        assert not lint(root, "determinism").findings

    def test_tests_and_benchmarks_are_exempt(self, tmp_path):
        root = make_tree(tmp_path, {"tests/test_wall.py": """
            import time

            def test_elapsed():
                assert time.time() > 0
            """})
        assert not lint(root, "determinism").findings


# -- metric-registry ------------------------------------------------------------------


class TestMetricRegistryRule:
    FILES = {
        "src/repro/obs/vocab.py": VOCAB_FIXTURE,
        "src/repro/svc.py": """
            class Service:
                def tick(self, metrics):
                    metrics.counter("rave_fx_good_total", "frames").inc()
                    metrics.gauge("rave_fx_orphan", "never read").set(1)
                    metrics.histogram("rave_fx_hist", "latency").observe(2)
            """,
        "tests/test_svc.py": """
            def test_scrape(snap):
                assert snap["rave_fx_good_total"] == 1
                assert snap["rave_fx_hist_count"] == 1
                assert snap["rave_fx_derived"] > 0
                assert snap["rave_fx_ghost_total"] == 0
            """,
    }

    def test_consumed_never_registered_is_an_error(self, tmp_path):
        result = lint(make_tree(tmp_path, self.FILES), "metric-registry")
        ghosts = [f for f in result.findings if f.symbol == GHOST_METRIC]
        assert len(ghosts) == 1
        assert ghosts[0].severity == "error"
        assert ghosts[0].path == "tests/test_svc.py"

    def test_registered_never_consumed_is_a_warning(self, tmp_path):
        result = lint(make_tree(tmp_path, self.FILES), "metric-registry")
        orphans = [f for f in result.findings if f.symbol == ORPHAN_METRIC]
        assert len(orphans) == 1
        assert orphans[0].severity == "warning"
        assert orphans[0].path == "src/repro/svc.py"

    def test_flattened_and_derived_names_resolve(self, tmp_path):
        result = lint(make_tree(tmp_path, self.FILES), "metric-registry")
        # the _count lookup maps back to the histogram family; the
        # derived name is declared by the vocabulary
        assert symbols(result) == {GHOST_METRIC, ORPHAN_METRIC}

    def test_prefix_probe_consumes_matching_families(self, tmp_path):
        files = dict(self.FILES)
        files["tests/test_svc.py"] = """
            def test_scrape(snap):
                families = [k for k in snap if k.startswith("rave_fx_")]
                assert families
            """
        result = lint(make_tree(tmp_path, files), "metric-registry")
        assert symbols(result) == set()


# -- event-kind -----------------------------------------------------------------------


class TestEventKindRule:
    def test_flags_unknown_kinds_everywhere(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/obs/vocab.py": VOCAB_FIXTURE,
            "src/repro/emit.py": """
            from repro.obs.rules import Alert

            def run(obs, alert, home_grown_kind):
                obs.recorder.note("bogus", time=0.0)
                obs.recorder.note(home_grown_kind, time=0.0)
                Alert(rule="r", kind="cold", service="s", since=0,
                      last_time=0, value=0, severity="warning")
                if alert.kind == "chilly":
                    return True
            """})
        result = lint(root, "event-kind")
        assert symbols(result) == {"bogus", "home_grown_kind", "cold",
                                   "chilly"}
        assert all(f.severity == "error" for f in result.findings)

    def test_passes_vocabulary_members_and_prefixes(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/obs/vocab.py": VOCAB_FIXTURE,
            "src/repro/emit.py": """
            from repro.obs.rules import Alert
            from repro.obs.vocab import EVENT_FAULT_PREFIX, EVENT_PING

            def run(obs, alert, kind):
                obs.recorder.note("ping", time=0.0)
                obs.recorder.note(EVENT_PING, time=0.0)
                obs.recorder.note("fault:crash", time=0.0)
                obs.recorder.note(EVENT_FAULT_PREFIX + kind, time=0.0)
                obs.recorder.note(f"fault:{kind}", time=0.0)
                obs.telemetry.event("tick", 0.0, "detail")
                Alert(rule="r", kind="hot", service="s", since=0,
                      last_time=0, value=0, severity="warning")
                return alert.kind == "hot"
            """})
        assert not lint(root, "event-kind").findings

    def test_missing_vocabulary_module_is_itself_a_finding(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/emit.py": """
            def run(obs):
                obs.recorder.note("anything", time=0.0)
            """})
        result = lint(root, "event-kind")
        assert symbols(result) == {"missing-vocab"}


# -- protocol-symmetry ----------------------------------------------------------------


class TestProtocolSymmetryRule:
    def test_flags_orphan_framers_and_lonely_flags(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/services/protocol.py": """
            FLAG_A = 0x0001
            FLAG_LONELY = 0x0002

            def frame_ping(payload):
                return bytes([FLAG_A])

            def unframe_ping(data):
                return data[0] & FLAG_A

            def frame_orphan(payload):
                return payload

            def unframe_widow(data):
                return data
            """})
        result = lint(root, "protocol-symmetry")
        assert symbols(result) == {"frame_orphan", "unframe_widow",
                                   "FLAG_LONELY"}

    def test_passes_symmetric_modules(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/services/protocol.py": """
            FLAG_A = 0x0001

            def frame_ping(payload):
                return bytes([FLAG_A])

            def unframe_ping(data):
                return data[0] & FLAG_A
            """})
        assert not lint(root, "protocol-symmetry").findings

    def test_flag_used_on_one_side_only(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/services/protocol.py": """
            FLAG_ONLY_SET = 0x0001

            def frame_ping(payload):
                return bytes([FLAG_ONLY_SET])

            def unframe_ping(data):
                return data
            """})
        result = lint(root, "protocol-symmetry")
        assert symbols(result) == {"FLAG_ONLY_SET"}
        assert "never produced" not in result.findings[0].message
        assert "never checked" in result.findings[0].message


# -- api-surface ----------------------------------------------------------------------


class TestApiSurfaceRule:
    def test_stale_export_is_an_error(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/mod.py": """
            __all__ = ["real", "ghost"]

            def real():
                return 1
            """})
        result = lint(root, "api-surface")
        assert symbols(result) == {"ghost"}
        assert result.findings[0].severity == "error"

    def test_init_reexport_missing_from_all_is_a_warning(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/pkg/__init__.py": """
            from repro.mod import forgotten, listed

            __all__ = ["listed"]
            """})
        result = lint(root, "api-surface")
        assert symbols(result) == {"forgotten"}
        assert result.findings[0].severity == "warning"

    def test_clean_module_passes(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/mod.py": """
            import os

            __all__ = ["real", "os"]

            def real():
                return 1
            """})
        assert not lint(root, "api-surface").findings


# -- lifecycle ------------------------------------------------------------------------


class TestLifecycleRule:
    def test_unguarded_state_assignment_is_an_error(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/farm.py": """
            FRAME_PENDING = "pending"
            FRAME_LEASED = "leased"
            FRAME_DONE = "done"

            class Queue:
                def complete(self, record):
                    record.state = FRAME_DONE
            """})
        result = lint(root, "lifecycle")
        assert "frame-lease:unguarded:done" in symbols(result)
        unguarded = [f for f in result.findings
                     if f.symbol == "frame-lease:unguarded:done"]
        assert unguarded[0].severity == "error"
        assert "record.state" in unguarded[0].message

    def test_illegal_transition_is_an_error(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/farm.py": """
            FRAME_PENDING = "pending"
            FRAME_LEASED = "leased"
            FRAME_DONE = "done"

            class Queue:
                def zombie(self, record):
                    if record.state == FRAME_DONE:
                        record.state = FRAME_LEASED
            """})
        result = lint(root, "lifecycle")
        assert "frame-lease:illegal:done->leased" in symbols(result)

    def test_guarded_legal_transitions_pass(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/farm.py": """
            FRAME_PENDING = "pending"
            FRAME_LEASED = "leased"
            FRAME_DONE = "done"

            class Queue:
                def lease(self, record):
                    if record.state == FRAME_PENDING:
                        record.state = FRAME_LEASED

                def complete(self, record):
                    if record.state != FRAME_LEASED:
                        return
                    record.state = FRAME_DONE

                def requeue(self, record):
                    if record.state == FRAME_LEASED:
                        record.state = FRAME_PENDING

                def finished(self, record):
                    return record.state == FRAME_DONE
            """})
        assert not lint(root, "lifecycle").findings

    def test_raw_literal_at_a_state_site_is_flagged(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/farm.py": """
            FRAME_PENDING = "pending"
            FRAME_LEASED = "leased"
            FRAME_DONE = "done"

            class Queue:
                def complete(self, record):
                    if record.state == "leased":
                        record.state = FRAME_DONE
            """})
        result = lint(root, "lifecycle")
        assert "frame-lease:literal:leased" in symbols(result)

    def test_unreachable_and_unhandled_states_warn(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/farm.py": """
            FRAME_PENDING = "pending"

            def poke(record):
                return record.queued and FRAME_PENDING
            """})
        result = lint(root, "lifecycle")
        syms = symbols(result)
        assert "frame-lease:unreachable:leased" in syms
        assert "frame-lease:unreachable:done" in syms
        assert "frame-lease:unhandled:pending" in syms
        assert all(f.severity == "warning" for f in result.findings)

    def test_inactive_chart_stays_silent(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/other.py": """
            def helper(x):
                return x + 1
            """})
        assert not lint(root, "lifecycle").findings

    def test_write_once_chart_forbids_reassignment(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/grid.py": """
            EVENT_ADMIT = "admit"
            EVENT_QUEUE = "queue"
            EVENT_REJECT = "reject"
            EVENT_SHED = "shed"
            EVENT_RESTORE = "restore"

            class Grid:
                def flip(self, decision):
                    decision.outcome = EVENT_ADMIT

                def make(self):
                    return dict(outcome="admit")
            """})
        result = lint(root, "lifecycle")
        assert "admission:reassigned" in symbols(result)
        assert "admission:literal:admit" in symbols(result)


# -- daemon-race ----------------------------------------------------------------------


class TestDaemonRaceRule:
    CONTRACT_FILE = "src/repro/farm/queue_service.py"

    def test_mutation_outside_transition_methods_is_an_error(self, tmp_path):
        root = make_tree(tmp_path, {self.CONTRACT_FILE: """
            class FrameQueueService:
                def __init__(self):
                    self._job_pending = {}

                def submit(self, job):
                    self._job_pending[job] = []

                def rogue(self, job):
                    self._job_pending.pop(job)
            """})
        result = lint(root, "daemon-race")
        assert symbols(result) == {"FrameQueueService.rogue:_job_pending"}
        assert "not a declared transition method" \
            in result.findings[0].message

    def test_inline_callback_mutation_is_an_error(self, tmp_path):
        root = make_tree(tmp_path, {self.CONTRACT_FILE: """
            class FrameQueueService:
                def __init__(self, sim):
                    self._job_pending = {}
                    self.sim = sim

                def submit(self, job):
                    self._job_pending[job] = []

                def start(self):
                    self.sim.schedule(1.0,
                                      lambda: self._job_pending.clear())
            """})
        result = lint(root, "daemon-race")
        assert symbols(result) == {"FrameQueueService.start:_job_pending"}
        assert "schedule callback" in result.findings[0].message

    def test_callbacks_routing_through_transitions_pass(self, tmp_path):
        root = make_tree(tmp_path, {self.CONTRACT_FILE: """
            class FrameQueueService:
                def __init__(self, sim):
                    self._job_pending = {}
                    self.sim = sim

                def submit(self, job):
                    self._job_pending[job] = []

                def start(self):
                    self.sim.schedule(1.0, lambda: self.submit("tick"))
            """})
        assert not lint(root, "daemon-race").findings

    def test_undeclared_shared_state_needs_two_callbacks(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/collect.py": """
            class Collector:
                def start(self, sim):
                    sim.schedule(1.0, lambda: self._events.append(1))

                def drain(self, sim):
                    sim.schedule_at(2.0, lambda: self._events.pop())

            class Lonely:
                def start(self, sim):
                    sim.schedule(1.0, lambda: self._ticks.append(1))
            """})
        result = lint(root, "daemon-race")
        assert symbols(result) == {"Collector:_events"}
        assert "SharedStateContract" in result.findings[0].message

    def test_self_rescheduling_tick_counts_once(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/collect.py": """
            class Ticker:
                def start(self, sim):
                    def tick():
                        self._handle = sim.schedule(1.0, tick)

                    self._handle = sim.schedule(1.0, tick)
            """})
        assert not lint(root, "daemon-race").findings


# -- label-cardinality ----------------------------------------------------------------


class TestLabelCardinalityRule:
    def test_interpolated_and_named_unbounded_labels_flag(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/svc.py": """
            class S:
                def tick(self, metrics, frame, host):
                    metrics.counter("rave_fx_frames_total", "per frame",
                                    frame=f"frame-{frame}").inc()
                    metrics.gauge("rave_fx_load", "load", host=host).set(1)
            """})
        result = lint(root, "label-cardinality")
        assert symbols(result) == {"rave_fx_frames_total:frame",
                                   "rave_fx_load:host"}
        assert all(f.severity == "error" for f in result.findings)

    def test_local_variable_propagation_catches_fstrings(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/svc.py": """
            class S:
                def tick(self, metrics, key):
                    label = f"{key[0]}-{key[1]}"
                    metrics.counter("rave_fx_bytes_total", "bytes",
                                    path=label).inc()
            """})
        result = lint(root, "label-cardinality")
        assert symbols(result) == {"rave_fx_bytes_total:path"}
        assert "f-string" in result.findings[0].message

    def test_declared_bounded_keys_are_exempt(self, tmp_path):
        root = make_tree(tmp_path, {
            "src/repro/obs/vocab.py": VOCAB_FIXTURE
            + 'BOUNDED_LABEL_KEYS = frozenset({"link"})\n',
            "src/repro/svc.py": """
            class S:
                def tick(self, metrics, key):
                    label = f"{key[0]}-{key[1]}"
                    metrics.counter("rave_fx_bytes_total", "bytes",
                                    link=label).inc()
            """})
        assert not lint(root, "label-cardinality").findings

    def test_closed_set_labels_and_metadata_kwargs_pass(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/svc.py": """
            class S:
                def tick(self, metrics, tenant, reason):
                    metrics.counter("rave_fx_sheds_total",
                                    help="why sessions shed",
                                    tenant=tenant, reason=reason).inc()
                    metrics.histogram("rave_fx_wait_seconds", "waits",
                                      buckets=(0.1, 1.0),
                                      tenant="acme").observe(1.0)
            """})
        assert not lint(root, "label-cardinality").findings

    def test_suppression_and_baseline_round_trip(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/svc.py": """
            class S:
                def tick(self, metrics, frame, host):
                    metrics.counter("rave_fx_a_total", "a",
                                    frame=str(frame)).inc()  # ravelint: ignore[label-cardinality]
                    metrics.counter("rave_fx_b_total", "b",
                                    host=host).inc()
            """})
        baseline = root / BASELINE_NAME
        first = lint(root, "label-cardinality", baseline=baseline)
        assert len(first.suppressed) == 1
        assert symbols(first) == {"rave_fx_b_total:host"}

        write_baseline(baseline, first.findings)
        second = lint(root, "label-cardinality", baseline=baseline)
        assert not second.findings
        assert len(second.baselined) == 1
        assert len(second.suppressed) == 1


# -- framework: suppression, baseline, parse errors -----------------------------------


class TestSuppression:
    SOURCE = """
        import time

        NOW = time.time()  # ravelint: ignore[determinism]
        THEN = time.time()  # ravelint: ignore
        AGAIN = time.time()  # ravelint: ignore[some-other-rule]
        """

    def test_ignore_comments_partition_findings(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/sim.py": self.SOURCE})
        result = lint(root, "determinism")
        assert len(result.suppressed) == 2     # targeted + bare ignore
        assert len(result.findings) == 1       # wrong rule id still fires
        assert result.findings[0].line == 6


class TestBaseline:
    def test_round_trip_grandfathers_existing_findings(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/sim.py": """
            import time

            NOW = time.time()
            """})
        baseline = root / BASELINE_NAME
        first = lint(root, "determinism", baseline=baseline)
        assert len(first.findings) == 1

        payload = write_baseline(baseline, first.findings)
        assert payload["version"] == 1
        assert load_baseline(baseline) == {first.findings[0].fingerprint}

        second = lint(root, "determinism", baseline=baseline)
        assert not second.findings
        assert len(second.baselined) == 1

    def test_fingerprints_survive_line_churn(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/sim.py": """
            import time

            NOW = time.time()
            """})
        baseline = root / BASELINE_NAME
        write_baseline(baseline, lint(root, "determinism").findings)
        # push the violation down ten lines; the baseline must still match
        shifted = "\n" * 10 + (root / "src/repro/sim.py").read_text()
        (root / "src/repro/sim.py").write_text(shifted)
        result = lint(root, "determinism", baseline=baseline)
        assert not result.findings
        assert len(result.baselined) == 1


class TestParseErrors:
    def test_unparseable_module_is_reported_not_fatal(self, tmp_path):
        root = make_tree(tmp_path, {"src/repro/broken.py": """
            def half(:
            """})
        result = lint(root)
        parse = [f for f in result.findings if f.rule == "parse"]
        assert len(parse) == 1
        assert parse[0].severity == "error"

    def test_unknown_rule_id_raises(self, tmp_path):
        with pytest.raises(ValueError, match="no-such-rule"):
            lint(make_tree(tmp_path, {}), "no-such-rule")


# -- reporters and CLI ----------------------------------------------------------------


@pytest.fixture
def dirty_root(tmp_path):
    return make_tree(tmp_path, {"src/repro/sim.py": """
        import time

        NOW = time.time()
        """})


class TestReporters:
    def test_text_report_lines_and_summary(self, dirty_root):
        text = render_text(lint(dirty_root, "determinism"))
        assert "src/repro/sim.py:4: error [determinism]" in text
        assert "ravelint: 1 finding(s) (1 error)" in text

    def test_json_report_shape(self, dirty_root):
        payload = json.loads(render_json(lint(dirty_root, "determinism")))
        assert payload["format"] == "ravelint-report/1"
        assert payload["summary"]["error"] == 1
        assert payload["summary"]["findings"] == 1
        (finding,) = payload["findings"]
        assert finding["rule"] == "determinism"
        assert finding["path"] == "src/repro/sim.py"


class TestCli:
    def run(self, *argv):
        from repro.__main__ import main

        return main(["lint", *argv])

    def test_exit_one_on_findings(self, dirty_root, capsys):
        assert self.run("--root", str(dirty_root)) == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out

    def test_exit_zero_below_fail_floor(self, dirty_root, capsys):
        # errors present, but the floor is above every severity we emit
        assert self.run("--root", str(dirty_root),
                        "--rules", "api-surface") == 0

    def test_json_format(self, dirty_root, capsys):
        assert self.run("--root", str(dirty_root), "--format", "json") == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["format"] == "ravelint-report/1"

    def test_write_baseline_then_clean(self, dirty_root, capsys):
        assert self.run("--root", str(dirty_root), "--write-baseline") == 0
        assert (dirty_root / BASELINE_NAME).is_file()
        assert self.run("--root", str(dirty_root)) == 0

    def test_list_rules(self, dirty_root, capsys):
        assert self.run("--list-rules") == 0
        out = capsys.readouterr().out
        for rule in ("determinism", "metric-registry", "event-kind",
                     "protocol-symmetry", "api-surface", "daemon-race",
                     "lifecycle", "label-cardinality"):
            assert rule in out

    def test_explain_prints_contract_and_example(self, capsys):
        assert self.run("--explain", "lifecycle") == 0
        out = capsys.readouterr().out
        assert out.startswith("lifecycle (error):")
        assert "statecharts" in out
        assert "Minimal violating example:" in out

    def test_explain_unknown_rule_fails(self, capsys):
        assert self.run("--explain", "no-such-rule") == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_select_is_an_alias_for_rules(self, dirty_root, capsys):
        assert self.run("--root", str(dirty_root),
                        "--select", "determinism") == 1
        out = capsys.readouterr().out
        assert "[determinism]" in out
        assert "[metric-registry]" not in out

    def test_ignore_drops_a_selected_rule(self, dirty_root, capsys):
        assert self.run("--root", str(dirty_root),
                        "--select", "determinism,api-surface",
                        "--ignore", "determinism") == 0
        assert "[determinism]" not in capsys.readouterr().out
