"""The repository's own tree must pass ravelint with nothing to fix.

This is the enforcement half of the invariants ``src/repro/analysis``
checks: determinism, metric producer/consumer agreement, shared kind
vocabularies, protocol symmetry and ``__all__`` hygiene.  A finding
here means either fix the code or — for a deliberate exception — add a
``# ravelint: ignore[rule-id]`` comment at the site, with a reason.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import registered_rules, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]


def test_all_eight_rules_are_registered():
    assert set(registered_rules()) >= {
        "determinism", "metric-registry", "event-kind",
        "protocol-symmetry", "api-surface",
        "daemon-race", "lifecycle", "label-cardinality",
    }


def test_repository_tree_is_clean():
    result = run_lint(root=REPO_ROOT)
    report = "\n".join(
        f"{f.path}:{f.line}: {f.severity} [{f.rule}] {f.message}"
        for f in result.findings)
    assert not result.findings, f"unsuppressed ravelint findings:\n{report}"


def test_no_baseline_debt():
    """The committed baseline stays empty: new findings get fixed, not
    grandfathered."""
    result = run_lint(root=REPO_ROOT)
    assert not result.baselined
