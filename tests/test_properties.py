"""Cross-module property-based tests (hypothesis).

Invariants that must hold for *any* input, not just the fixtures:
tiling exactness, codec round trips, wire-protocol round trips, audit
replay determinism, cost arithmetic, distribution conservation.
"""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.compression import DeltaCodec, Rgb565Codec, RleCodec
from repro.core.cost import NodeCost
from repro.network.marshalling import decode_value, encode_value
from repro.render.compositor import check_tiling, depth_composite
from repro.render.framebuffer import FrameBuffer, split_tiles
from repro.scenegraph.audit import AuditTrail
from repro.scenegraph.updates import (
    MoveAvatar,
    RemoveNode,
    SetCamera,
    SetProperty,
    update_from_wire,
)


class TestTilingProperties:
    @given(st.integers(2, 300), st.integers(2, 300),
           st.integers(1, 6), st.integers(1, 6))
    @settings(max_examples=120, deadline=None)
    def test_split_tiles_exactly_cover(self, w, h, nx, ny):
        assume(nx <= w and ny <= h)
        tiles = split_tiles(w, h, nx, ny)
        assert len(tiles) == nx * ny
        check_tiling(w, h, tiles)   # raises on gap/overlap

    @given(st.integers(4, 64), st.integers(4, 64), st.integers(1, 4),
           st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_extract_paste_identity(self, w, h, nx, seed):
        assume(nx <= w)
        rng = np.random.default_rng(seed)
        fb = FrameBuffer(w, h)
        fb.color[:] = rng.integers(0, 256, (h, w, 3), dtype=np.uint8)
        fb.depth[:] = rng.random((h, w), dtype=np.float32)
        target = FrameBuffer(w, h)
        for tile in split_tiles(w, h, nx, 1):
            target.paste(tile, fb.extract(tile))
        assert np.array_equal(target.color, fb.color)
        assert np.array_equal(target.depth, fb.depth)


class TestCompositeProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(2, 5))
    @settings(max_examples=30, deadline=None)
    def test_depth_composite_is_pixelwise_min(self, seed, n_buffers):
        rng = np.random.default_rng(seed)
        buffers = []
        for _ in range(n_buffers):
            fb = FrameBuffer(16, 16)
            mask = rng.random((16, 16)) < 0.5
            depth = rng.random((16, 16), dtype=np.float32) * 10
            fb.depth[mask] = depth[mask]
            fb.color[mask] = rng.integers(0, 256, (int(mask.sum()), 3),
                                          dtype=np.uint8)
            buffers.append(fb)
        merged = depth_composite(buffers)
        stack = np.stack([b.depth for b in buffers])
        assert np.array_equal(merged.depth, stack.min(axis=0))

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=30, deadline=None)
    def test_composite_commutative_in_depth(self, seed):
        rng = np.random.default_rng(seed)
        buffers = []
        for _ in range(3):
            fb = FrameBuffer(8, 8)
            fb.depth[:] = rng.random((8, 8), dtype=np.float32)
            buffers.append(fb)
        a = depth_composite(buffers)
        b = depth_composite(buffers[::-1])
        assert np.array_equal(a.depth, b.depth)


class TestCodecProperties:
    images = st.integers(0, 2**32 - 1)

    def random_frame(self, seed, w=24, h=24):
        rng = np.random.default_rng(seed)
        fb = FrameBuffer(w, h)
        # blocky content: realistic runs for RLE + deltas
        blocks = rng.integers(0, 256, (4, 4, 3), dtype=np.uint8)
        fb.color[:] = np.kron(blocks,
                              np.ones((6, 6, 1), dtype=np.uint8))
        noise = rng.random((h, w)) < 0.05
        fb.color[noise] = rng.integers(0, 256, (int(noise.sum()), 3),
                                       dtype=np.uint8)
        return fb

    @given(images)
    @settings(max_examples=40, deadline=None)
    def test_rle_lossless(self, seed):
        fb = self.random_frame(seed)
        codec = RleCodec()
        dec, _ = codec.decode(codec.encode(fb), 24, 24)
        assert np.array_equal(dec.color, fb.color)

    @given(images)
    @settings(max_examples=40, deadline=None)
    def test_rgb565_error_bounded(self, seed):
        fb = self.random_frame(seed)
        codec = Rgb565Codec()
        dec, _ = codec.decode(codec.encode(fb), 24, 24)
        err = np.abs(dec.color.astype(int) - fb.color.astype(int))
        assert err.max() <= 8

    @given(images, images)
    @settings(max_examples=30, deadline=None)
    def test_delta_stream_lossless(self, seed_a, seed_b):
        enc = DeltaCodec()
        dec = DeltaCodec()
        for seed in (seed_a, seed_b, seed_a):
            fb = self.random_frame(seed)
            out, _ = dec.decode(enc.encode(fb), 24, 24)
            assert np.array_equal(out.color, fb.color)


class TestWireProperties:
    vectors = st.tuples(*[st.floats(-1e6, 1e6, allow_nan=False)] * 3)

    @given(st.integers(0, 10**6), vectors, vectors,
           st.floats(1.0, 179.0))
    @settings(max_examples=60, deadline=None)
    def test_setcamera_roundtrip(self, node_id, pos, target, fov):
        update = SetCamera(node_id=node_id,
                           position=np.array(pos), target=np.array(target),
                           fov_degrees=fov)
        back = update_from_wire(update.to_wire())
        assert back.node_id == node_id
        assert np.allclose(back.position, pos)
        assert back.fov_degrees == pytest.approx(fov)

    @given(st.integers(0, 10**6), vectors, vectors)
    @settings(max_examples=60, deadline=None)
    def test_moveavatar_roundtrip(self, node_id, pos, view):
        update = MoveAvatar(node_id=node_id, position=np.array(pos),
                            view_direction=np.array(view))
        back = update_from_wire(update.to_wire())
        assert np.allclose(back.view_direction, view)

    @given(st.text(min_size=1, max_size=30),
           st.one_of(st.integers(-10**9, 10**9), st.text(max_size=50),
                     st.booleans(), st.none()))
    @settings(max_examples=60, deadline=None)
    def test_setproperty_roundtrip(self, name, value):
        update = SetProperty(node_id=1, field_name=name, value=value)
        back = update_from_wire(
            decode_value(encode_value(update.to_wire())))
        assert back.field_name == name
        assert back.value == value


class TestAuditProperties:
    @given(st.lists(st.tuples(st.floats(0, 100, allow_nan=False),
                              st.integers(0, 100)),
                    min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_save_load_identity(self, raw):
        import tempfile
        from pathlib import Path

        times = sorted(t for t, _ in raw)
        trail = AuditTrail()
        for t, nid in zip(times, (n for _, n in raw)):
            trail.record(t, RemoveNode(node_id=nid))
        with tempfile.TemporaryDirectory() as d:
            path = Path(d) / "t.rave"
            trail.save(path)
            back = AuditTrail.load(path)
        assert len(back) == len(trail)
        for (t1, u1), (t2, u2) in zip(trail, back):
            assert t1 == t2
            assert u1.node_id == u2.node_id


class TestCostProperties:
    costs = st.builds(NodeCost,
                      polygons=st.integers(0, 10**7),
                      points=st.integers(0, 10**7),
                      voxels=st.integers(0, 10**7),
                      texture_bytes=st.integers(0, 2**40),
                      payload_bytes=st.integers(0, 2**40))

    @given(costs, costs, costs)
    @settings(max_examples=60, deadline=None)
    def test_addition_associative(self, a, b, c):
        assert (a + b) + c == a + (b + c)

    @given(costs, costs)
    @settings(max_examples=60, deadline=None)
    def test_addition_commutative(self, a, b):
        assert a + b == b + a

    @given(costs)
    @settings(max_examples=60, deadline=None)
    def test_zero_identity(self, a):
        assert a + NodeCost() == a


class TestDistributionProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(2, 5),
           st.integers(2, 8))
    @settings(max_examples=15, deadline=None)
    def test_plan_conserves_polygons(self, seed, n_services, n_nodes):
        from repro.core.distribution import DatasetDistributor
        from repro.data.generators import uv_sphere
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        rng = np.random.default_rng(seed)
        tree = SceneTree("prop")
        for i in range(n_nodes):
            res = int(rng.integers(6, 14))
            tree.add(MeshNode(uv_sphere(1.0, res, res,
                                        center=rng.normal(0, 2, 3)),
                              name=f"n{i}"))
        total = tree.total_polygons()
        budgets = {f"s{k}": total * 1.2 / n_services + 50
                   for k in range(n_services)}
        assume(sum(budgets.values()) >= total)
        plan = DatasetDistributor(max_grain_polygons=200).plan(tree,
                                                               budgets)
        assigned = sum(c.polygons for c in plan.costs.values())
        assert assigned == tree.total_polygons()
        for name, cost in plan.costs.items():
            assert cost.polygons <= budgets[name] + 1e-9
