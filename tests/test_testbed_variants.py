"""Testbed construction variants and partition behaviour."""

import pytest

from repro.data.generators import galleon
from repro.errors import NetworkError, ServiceError
from repro.testbed import build_testbed


class TestVariants:
    def test_subset_of_render_hosts(self):
        tb = build_testbed(render_hosts=("centrino",))
        assert set(tb.render_services) == {"centrino"}
        # the data host still exists even when it hosts no render service
        assert tb.data_service.host == "xeon"

    def test_custom_data_host(self):
        tb = build_testbed(render_hosts=("centrino", "athlon"),
                           data_host="athlon")
        assert tb.data_service.host == "athlon"

    def test_degraded_pda_signal_at_build(self):
        good = build_testbed(render_hosts=("centrino",))
        bad = build_testbed(render_hosts=("centrino",),
                            pda_signal_quality=0.25)
        t_good = good.network.transfer_time("centrino", "zaurus", 120_000)
        t_bad = bad.network.transfer_time("centrino", "zaurus", 120_000)
        assert t_bad > 3 * t_good

    def test_without_uddi_registration(self):
        tb = build_testbed(render_hosts=("centrino",),
                           register_uddi=False)
        from repro.errors import DiscoveryError

        with pytest.raises(DiscoveryError):
            tb.registry.find_business("RAVE project")

    def test_unknown_render_host(self):
        with pytest.raises(ServiceError):
            build_testbed(render_hosts=("deepblue",))

    def test_render_service_lookup_error(self, small_testbed):
        with pytest.raises(ServiceError):
            small_testbed.render_service("onyx")   # not in the small pool

    def test_recruiter_excludes_hosts(self, testbed):
        recruiter = testbed.recruiter(exclude_hosts=("onyx", "v880z"))
        result = recruiter.recruit()
        names = {s.name for s in result.services}
        assert "rs-onyx" not in names
        assert "rs-centrino" in names

    def test_workwall_host_available(self):
        tb = build_testbed(render_hosts=("workwall",))
        wall = tb.render_service("workwall")
        assert wall.capacity().graphics_pipes == 2


class TestPartitions:
    def test_partitioned_host_unreachable(self, small_testbed):
        tb = small_testbed
        tb.network.set_link_up("centrino", "switch", False)
        with pytest.raises(NetworkError):
            tb.network.transfer_time("centrino", "athlon", 100)

    def test_bootstrap_fails_cleanly_when_partitioned(self, small_testbed):
        tb = small_testbed
        tb.publish_model("part", galleon().normalized())
        tb.network.set_link_up("centrino", "switch", False)
        rs = tb.render_service("centrino")
        with pytest.raises(NetworkError):
            rs.create_render_session(tb.data_service, "part",
                                     charge_instance=False)
        # no half-registered subscription left behind
        assert not tb.data_service.session("part").subscribers

    def test_recovery_after_partition(self, small_testbed):
        tb = small_testbed
        tb.publish_model("rec", galleon().normalized())
        tb.network.set_link_up("centrino", "switch", False)
        rs = tb.render_service("centrino")
        with pytest.raises(NetworkError):
            rs.create_render_session(tb.data_service, "rec",
                                     charge_instance=False)
        tb.network.set_link_up("centrino", "switch", True)
        session, timing = rs.create_render_session(tb.data_service, "rec")
        assert session.tree.total_polygons() > 0

    def test_failover_when_primary_host_partitioned(self, small_testbed):
        """Mirror + partition: clients bootstrap from the surviving copy."""
        from repro.services.container import ServiceContainer
        from repro.services.data_service import DataService

        tb = small_testbed
        tb.publish_model("ha", galleon().normalized())
        mirror = DataService(
            "mirror", ServiceContainer("athlon", tb.network,
                                       http_port=9800))
        tb.data_service.add_mirror(mirror)
        # the primary's host (xeon) drops off the network
        tb.network.set_link_up("xeon", "switch", False)
        backup = tb.data_service.failover_to("ha")
        rs = tb.render_service("centrino")
        session, _ = rs.create_render_session(backup, "ha")
        assert session.tree.total_polygons() > 0
