"""Ray picking: pixel rays, Möller–Trumbore, occlusion ordering."""

import numpy as np
import pytest

from repro.data.meshes import Mesh
from repro.scenegraph.nodes import CameraNode, MeshNode, TransformNode
from repro.scenegraph.picking import (
    Ray,
    intersect_mesh,
    pick_mesh,
    pick_tree,
)
from repro.scenegraph.tree import SceneTree


def facing_quad(z: float, name="q") -> Mesh:
    """Quad at depth z facing the +z axis."""
    return Mesh(
        np.array([[-1, -1, z], [1, -1, z], [1, 1, z], [-1, 1, z]],
                 dtype=np.float32),
        np.array([[0, 1, 2], [0, 2, 3]], dtype=np.int32),
        name=name,
    )


class TestPixelRays:
    def test_center_pixel_looks_forward(self):
        cam = CameraNode(position=(0, 0, 5), target=(0, 0, 0),
                         up=(0, 1, 0))
        ray = Ray.through_pixel(cam, 99.5, 99.5, 200, 200)
        assert np.allclose(ray.direction, [0, 0, -1], atol=1e-2)

    def test_corner_rays_diverge(self):
        cam = CameraNode(position=(0, 0, 5), target=(0, 0, 0),
                         up=(0, 1, 0))
        tl = Ray.through_pixel(cam, 0, 0, 200, 200)
        br = Ray.through_pixel(cam, 199, 199, 200, 200)
        assert tl.direction[0] < 0 < br.direction[0]
        assert tl.direction[1] > 0 > br.direction[1]  # y down in image

    def test_direction_unit(self):
        cam = CameraNode(position=(3, 2, 5))
        ray = Ray.through_pixel(cam, 10, 190, 200, 200)
        assert np.linalg.norm(ray.direction) == pytest.approx(1.0)


class TestIntersection:
    def test_hit_distance(self):
        ray = Ray(origin=np.array([0.0, 0, 5]),
                  direction=np.array([0.0, 0, -1]))
        res = intersect_mesh(ray, facing_quad(0.0))
        assert res is not None
        _, dist = res
        assert dist == pytest.approx(5.0)

    def test_miss(self):
        ray = Ray(origin=np.array([10.0, 10, 5]),
                  direction=np.array([0.0, 0, -1]))
        assert intersect_mesh(ray, facing_quad(0.0)) is None

    def test_behind_origin_not_hit(self):
        ray = Ray(origin=np.array([0.0, 0, -5]),
                  direction=np.array([0.0, 0, -1]))
        assert intersect_mesh(ray, facing_quad(0.0)) is None

    def test_parallel_ray(self):
        ray = Ray(origin=np.array([0.0, 0, 1]),
                  direction=np.array([1.0, 0, 0]))
        assert intersect_mesh(ray, facing_quad(0.0)) is None

    def test_empty_mesh(self):
        ray = Ray(origin=np.zeros(3), direction=np.array([0.0, 0, -1]))
        empty = Mesh(np.zeros((0, 3)), np.zeros((0, 3), np.int32))
        assert intersect_mesh(ray, empty) is None

    def test_nearest_of_two_quads(self):
        from repro.data.meshes import merge_meshes

        both = merge_meshes([facing_quad(0.0), facing_quad(2.0)])
        ray = Ray(origin=np.array([0.0, 0, 5]),
                  direction=np.array([0.0, 0, -1]))
        res = intersect_mesh(ray, both)
        assert res is not None
        _, dist = res
        assert dist == pytest.approx(3.0)  # hits the closer quad at z=2

    def test_pick_mesh_point(self):
        ray = Ray(origin=np.array([0.2, 0.3, 5.0]),
                  direction=np.array([0.0, 0, -1]))
        hit = pick_mesh(ray, facing_quad(0.0))
        assert hit is not None
        assert np.allclose(hit.point, [0.2, 0.3, 0.0], atol=1e-6)


class TestTreePicking:
    def test_selects_nearest_node(self):
        tree = SceneTree()
        tree.add(MeshNode(facing_quad(0.0), name="far"))
        tree.add(MeshNode(facing_quad(2.0), name="near"))
        ray = Ray(origin=np.array([0.0, 0, 5]),
                  direction=np.array([0.0, 0, -1]))
        hit = pick_tree(ray, tree)
        assert hit is not None and hit.node.name == "near"

    def test_honours_world_transforms(self):
        tree = SceneTree()
        xf = tree.add(TransformNode.from_translation((10.0, 0, 0)))
        tree.add(MeshNode(facing_quad(0.0), name="moved"), parent=xf)
        miss = Ray(origin=np.array([0.0, 0, 5]),
                   direction=np.array([0.0, 0, -1]))
        assert pick_tree(miss, tree) is None
        hit_ray = Ray(origin=np.array([10.0, 0, 5]),
                      direction=np.array([0.0, 0, -1]))
        hit = pick_tree(hit_ray, tree)
        assert hit is not None and hit.node.name == "moved"

    def test_click_through_camera_hits_target(self):
        tree = SceneTree()
        tree.add(MeshNode(facing_quad(0.0), name="target"))
        cam = CameraNode(position=(0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))
        ray = Ray.through_pixel(cam, 100, 100, 200, 200)
        hit = pick_tree(ray, tree)
        assert hit is not None and hit.node.name == "target"
