"""The grid monitoring plane, end to end.

Coverage for the monitor service (``services/monitor.py``) and the
scrapeable telemetry it federates (``obs/telemetry.py``):

- per-service telemetry payloads, their binary framing, and the
  flatten/federate views the rule engines evaluate;
- the monitor's scrape loop paying real simulated transfer cost;
- the closed loop the issue demands: a slowdown observed only through
  scraped telemetry raises a sustained alert, the alert drives
  ``WorkloadMigrator.plan(session, alerts=...)``, the SLO report records
  the violation and its recovery — and the whole story is deterministic;
- the no-monitor testbed stays monitoring-free (no scrape traffic).
"""

import json

import pytest

from repro import obs
from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.errors import ServiceError
from repro.network.faults import FaultInjector
from repro.obs.dashboard import render_dashboard
from repro.obs.telemetry import (
    TELEMETRY_FORMAT,
    ServiceTelemetry,
    federate,
    flatten_metrics,
)
from repro.render.camera import Camera
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.monitor import MONITOR_SNAPSHOT_FORMAT, MonitorService
from repro.services.protocol import frame_telemetry, unframe_telemetry
from repro.testbed import build_testbed

MONITOR_HOST = "registry-host"


def monitored_testbed(**kwargs):
    return build_testbed(monitor_host=MONITOR_HOST, **kwargs)


def pump(tb, seconds: float, step: float = 1.0) -> None:
    """Advance the simulation so the monitor's daemon tick fires."""
    deadline = tb.clock.now + seconds
    while tb.clock.now < deadline:
        tb.network.sim.run_until(min(deadline, tb.clock.now + step))


# -- telemetry payloads -------------------------------------------------------------


class TestServiceTelemetry:
    def make(self) -> ServiceTelemetry:
        t = ServiceTelemetry("rs-demo", "onyx", "render")
        t.registry.gauge("rave_rs_fps").set(12.5)
        t.registry.counter("rave_rs_frames_total").inc(3)
        t.event("render-session-created", time=1.0, detail="sess-1")
        return t

    def test_scrape_payload_contents(self):
        payload = self.make().scrape(now=2.0)
        assert payload["format"] == TELEMETRY_FORMAT
        assert payload["service"] == "rs-demo"
        assert payload["host"] == "onyx"
        assert payload["kind"] == "render"
        assert payload["time"] == 2.0
        assert payload["metrics"]["rave_rs_fps"]["series"][0]["value"] == 12.5
        assert payload["events"] == [{"time": 1.0,
                                      "kind": "render-session-created",
                                      "detail": "sess-1"}]
        assert payload["events_seen"] == 1
        assert payload["registry"]["families"] == 2

    def test_scrape_frame_roundtrips_and_has_wire_size(self):
        telemetry = self.make()
        frame = telemetry.scrape_frame(now=3.0)
        assert isinstance(frame, bytes) and len(frame) > 0
        payload = unframe_telemetry(frame)
        assert payload["service"] == "rs-demo"
        assert payload["time"] == 3.0
        # the framing is stable: same dict frames to the same bytes
        assert frame_telemetry(payload) == frame_telemetry(payload)

    def test_collectors_refresh_at_scrape_time(self):
        telemetry = ServiceTelemetry("rs-x", "onyx", "render")
        state = {"fps": 5.0}
        telemetry.add_collector(
            lambda reg: reg.gauge("rave_rs_fps").set(state["fps"]))
        assert flatten_metrics(
            telemetry.scrape()["metrics"])["rave_rs_fps"] == 5.0
        state["fps"] = 9.0
        assert flatten_metrics(
            telemetry.scrape()["metrics"])["rave_rs_fps"] == 9.0

    def test_event_ring_bounded_but_counts_everything(self):
        telemetry = ServiceTelemetry("rs-x", "onyx", "render",
                                     event_capacity=4)
        for i in range(10):
            telemetry.event("e", time=float(i))
        assert len(telemetry.events()) == 4
        assert telemetry.events_seen == 10
        payload = telemetry.scrape()
        assert len(payload["events"]) == 4
        assert payload["events_seen"] == 10

    def test_flatten_skips_labelled_series_and_expands_histograms(self):
        telemetry = ServiceTelemetry("rs-x", "onyx", "render")
        reg = telemetry.registry
        reg.gauge("rave_rs_fps").set(7.0)
        reg.counter("rave_uddi_queries_total", op="find").inc()
        reg.counter("rave_uddi_queries_total", op="scan").inc(2)
        reg.histogram("rave_rs_frame_seconds",
                      buckets=(0.1, 1.0)).observe(0.5)
        flat = flatten_metrics(telemetry.scrape()["metrics"])
        assert flat["rave_rs_fps"] == 7.0
        assert "rave_uddi_queries_total" not in flat   # multi-series
        assert flat["rave_rs_frame_seconds_count"] == 1.0
        assert flat["rave_rs_frame_seconds_sum"] == 0.5

    def test_federate_adds_origin_labels(self):
        a = ServiceTelemetry("rs-a", "onyx", "render")
        b = ServiceTelemetry("rs-b", "v880z", "render")
        a.registry.gauge("rave_rs_fps").set(10.0)
        b.registry.gauge("rave_rs_fps").set(20.0)
        merged = federate([a.scrape(), b.scrape()])
        series = merged["rave_rs_fps"]["series"]
        assert len(series) == 2
        labels = {tuple(sorted(s["labels"].items())) for s in series}
        assert (("host", "onyx"), ("service", "rs-a")) in labels
        assert (("host", "v880z"), ("service", "rs-b")) in labels


# -- the monitor service ------------------------------------------------------------


class TestMonitorService:
    def test_rejects_nonpositive_period(self):
        tb = monitored_testbed()
        with pytest.raises(ServiceError):
            MonitorService("m2", tb.containers[MONITOR_HOST], period=0.0)

    def test_watch_requires_telemetry(self):
        tb = monitored_testbed()
        with pytest.raises(ServiceError):
            tb.monitor.watch(object())

    def test_testbed_monitor_watches_every_service(self):
        tb = monitored_testbed()
        targets = tb.monitor.targets()
        assert "rave-data" in targets
        assert "wesc-uddi" in targets
        for host in ("onyx", "v880z", "centrino", "xeon", "athlon"):
            assert f"rs-{host}" in targets

    def test_unwatch_removes_target(self):
        tb = monitored_testbed()
        tb.monitor.unwatch("rs-onyx")
        assert "rs-onyx" not in tb.monitor.targets()

    def test_scrapes_pay_simulated_transfer_cost(self):
        tb = monitored_testbed()
        pump(tb, 3.0)
        monitor = tb.monitor
        assert monitor.scrapes > 0
        assert monitor.scrape_bytes > 0
        scrape_transfers = [t for t in tb.network.transfers
                            if t.dst == MONITOR_HOST]
        assert scrape_transfers, "scrapes put no transfers on the wire"
        # every watched host ships payloads to the monitor host
        assert {t.src for t in scrape_transfers} >= {"onyx", "xeon"}
        assert all(t.nbytes > 0 for t in scrape_transfers)

    def test_downed_host_counts_as_scrape_failure(self):
        tb = monitored_testbed()
        FaultInjector(tb.network, seed=3).crash_host("onyx")
        pump(tb, 3.0)
        assert tb.monitor.scrape_failures > 0
        assert "rs-onyx" not in tb.monitor.snapshot()["services"]

    def test_stop_halts_the_scrape_loop(self):
        tb = monitored_testbed()
        pump(tb, 2.0)
        tb.monitor.stop()
        pump(tb, 1.0)            # drain scrapes already in flight
        before = tb.monitor.scrapes
        pump(tb, 3.0)
        assert tb.monitor.scrapes == before

    def test_discover_finds_targets_through_uddi(self):
        from repro.services.container import ServiceContainer

        tb = monitored_testbed()
        fresh = MonitorService(
            "m2", ServiceContainer(MONITOR_HOST, tb.network))
        directory = {s.endpoint: s for s in tb.render_services.values()}
        directory[tb.data_service.endpoint] = tb.data_service
        added = fresh.discover(tb.uddi_client(MONITOR_HOST), directory)
        assert "rave-data" in added
        assert "rs-onyx" in added
        assert set(added) <= set(fresh.targets())

    def test_no_monitor_testbed_has_no_monitoring_plane(self):
        tb = build_testbed()
        assert tb.monitor is None
        pump(tb, 5.0)
        assert tb.network.transfers == []   # zero scrape traffic
        assert not hasattr(tb.data_service, "monitor")


# -- the closed loop ----------------------------------------------------------------


def run_closed_loop(tb):
    """The acceptance scenario; returns everything the assertions need."""
    bundle = obs.install(clock=tb.clock)
    try:
        tree = SceneTree("visible-man")
        tree.add(MeshNode(skeleton(60_000).normalized(), name="skeleton"))
        tb.publish_tree("visible-man", tree)
        cs = CollaborativeSession(tb.data_service, "visible-man",
                                  target_fps=600,
                                  recruiter=tb.recruiter())
        cs.place_dataset()
        cam = Camera.looking_at((1.0, 1.6, 0.3), (0, 0, 0))
        for _ in range(4):                       # healthy baseline
            cs.render_composite(cam, 64, 64)
            pump(tb, 1.0)
        baseline_alerts = tb.monitor.firing_alerts()

        victim = max((s for s in cs.render_services if cs.share_of(s)),
                     key=lambda s: s.committed_polygons())
        for _ in range(6):                       # sustained slowdown
            victim.reported_fps = 2.0
            pump(tb, 1.0)
        alerts = tb.monitor.firing_alerts()

        unalerted = cs.rebalance()               # migrator saw no samples
        actions = cs.rebalance(alerts=alerts)    # the monitor drives it

        for _ in range(4):                       # load gone; fps recovers
            cs.render_composite(cam, 64, 64)
            pump(tb, 1.0)
        return {
            "baseline_alerts": baseline_alerts,
            "victim": victim,
            "alerts": alerts,
            "unalerted": unalerted,
            "actions": actions,
            "after_alerts": tb.monitor.firing_alerts(),
            "snapshot": tb.monitor.snapshot(),
            "recorder": bundle.recorder,
        }
    finally:
        obs.uninstall()


class TestClosedLoop:
    @pytest.fixture(scope="class")
    def loop(self):
        return run_closed_loop(monitored_testbed())

    def test_healthy_baseline_raises_no_overload(self, loop):
        # idle pool members legitimately warn about underload; the
        # critical interactivity alert must stay silent while healthy
        assert [a for a in loop["baseline_alerts"]
                if a.kind == "overload"] == []

    def test_sustained_slowdown_fires_overload_alert(self, loop):
        overloads = [a for a in loop["alerts"] if a.kind == "overload"]
        assert overloads, "no overload alert after 6 s below threshold"
        alert = next(a for a in overloads
                     if a.service == loop["victim"].name)
        assert alert.rule == "render-overload"
        assert alert.value == 2.0
        assert alert.last_time - alert.since >= 3.0

    def test_alertless_rebalance_is_a_noop(self, loop):
        # the migrator's own trackers never saw a frame sample, so the
        # slowdown is invisible without the monitor's alerts
        assert loop["unalerted"] == []

    def test_alerts_drive_migration_off_the_victim(self, loop):
        actions = loop["actions"]
        assert actions, "alert did not produce a migration"
        assert any(a.source == loop["victim"].name
                   and a.reason == "overload" for a in actions)
        assert all(a.polygons > 0 for a in actions)

    def test_alert_clears_after_recovery(self, loop):
        assert all(a.service != loop["victim"].name
                   for a in loop["after_alerts"]
                   if a.kind == "overload")

    def test_slo_report_records_violation_and_recovery(self, loop):
        slo = loop["snapshot"]["slo"]
        entry = slo["interactive-fps"]["services"][loop["victim"].name]
        assert entry["attainment"] < 1.0
        windows = entry["violations"]
        assert windows, "violation window missing from the SLO report"
        assert any(w["recovered"] for w in windows), \
            "the recovery never closed the violation window"
        assert min(w["worst"] for w in windows) == 2.0

    def test_scrapes_rode_the_simulated_network(self, loop):
        scrapes = loop["snapshot"]["scrapes"]
        assert scrapes["count"] > 0
        assert scrapes["bytes"] > 0

    def test_migration_and_telemetry_land_in_flight_recorder(self, loop):
        recorder = loop["recorder"]
        assert recorder.events("placement")
        assert recorder.events("migration")
        kinds = {e.kind for e in recorder.events()}
        assert any(k.startswith("telemetry:") for k in kinds), \
            "scraped remote events never reached the recorder"

    def test_whole_story_is_deterministic(self, loop):
        replay = run_closed_loop(monitored_testbed())
        assert json.dumps(replay["snapshot"], sort_keys=True) \
            == json.dumps(loop["snapshot"], sort_keys=True)


# -- snapshot + dashboard -----------------------------------------------------------


class TestSnapshotAndDashboard:
    def make_snapshot(self):
        tb = monitored_testbed(render_hosts=("onyx", "centrino"))
        rs = tb.render_service("onyx")
        rs.reported_fps = 24.0
        pump(tb, 2.0)
        return tb.monitor.snapshot()

    def test_snapshot_shape(self):
        snap = self.make_snapshot()
        assert snap["format"] == MONITOR_SNAPSHOT_FORMAT
        assert snap["period"] == 1.0
        entry = snap["services"]["rs-onyx"]
        assert entry["host"] == "onyx"
        assert entry["kind"] == "render"
        assert entry["metrics"]["rave_rs_fps"] == 24.0
        # the federated view carries origin labels
        series = snap["metrics"]["rave_rs_fps"]["series"]
        assert {"service": "rs-onyx", "host": "onyx"} in \
            [s["labels"] for s in series]
        assert snap["scrapes"]["count"] > 0

    def test_snapshot_is_json_serialisable(self):
        json.dumps(self.make_snapshot())

    def test_dashboard_renders_every_section(self):
        text = render_dashboard(self.make_snapshot())
        assert "RAVE grid monitor" in text
        assert "rs-onyx" in text
        assert "alerts" in text
        assert "SLOs" in text

    def test_dashboard_accepts_embedded_monitor_section(self):
        snap = self.make_snapshot()
        assert render_dashboard({"monitor": snap}) \
            == render_dashboard(snap)

    def test_dashboard_rejects_foreign_payloads(self):
        with pytest.raises(ValueError):
            render_dashboard({"format": "something-else"})

    def test_cli_dashboard_renders_a_snapshot_file(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "snap.json"
        path.write_text(json.dumps(self.make_snapshot()))
        assert main(["dashboard", "--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RAVE grid monitor" in out
        assert "rs-onyx" in out
