"""Distribution of mixed primitives: meshes + point clouds + volumes."""

import numpy as np
import pytest

from repro.core.distribution import DatasetDistributor
from repro.core.session import CollaborativeSession
from repro.data.generators import galleon
from repro.data.volumes import visible_human_phantom
from repro.errors import SceneGraphError
from repro.scenegraph.nodes import (
    CameraNode,
    MeshNode,
    PointCloudNode,
    VolumeNode,
)
from repro.scenegraph.tree import SceneTree


def mixed_tree():
    tree = SceneTree("mixed")
    tree.add(MeshNode(galleon().normalized(), name="ship"))
    rng = np.random.default_rng(3)
    tree.add(PointCloudNode(rng.normal(0, 0.5, (9_000, 3)).astype(
        np.float32), name="cloud"))
    tree.add(VolumeNode(visible_human_phantom(16), opacity_scale=0.3,
                        name="ct"))
    return tree


class TestDistributorMixed:
    def test_points_weigh_a_third(self):
        tree = SceneTree()
        cloud = tree.add(PointCloudNode(
            np.zeros((9_000, 3), np.float32), name="cloud"))
        weight = DatasetDistributor._polygon_equivalent(cloud)
        assert weight == 3_000

    def test_volumes_require_volume_host(self):
        tree = mixed_tree()
        with pytest.raises(SceneGraphError):
            DatasetDistributor().plan(tree, {"a": 1e9, "b": 1e9},
                                      volume_hosts=set())

    def test_volume_lands_on_capable_host(self):
        tree = mixed_tree()
        plan = DatasetDistributor().plan(
            tree, {"plain": 1e9, "vol": 1e9}, volume_hosts={"vol"})
        volume_id = tree.find_by_name("ct")[0].node_id
        assert volume_id in plan.shares["vol"]
        assert volume_id not in plan.shares["plain"]

    def test_unknown_volume_host_rejected(self):
        tree = mixed_tree()
        with pytest.raises(ValueError):
            DatasetDistributor().plan(tree, {"a": 1e9},
                                      volume_hosts={"ghost"})

    def test_points_counted_against_budget(self):
        tree = SceneTree()
        for i in range(4):
            tree.add(PointCloudNode(
                np.zeros((3_000, 3), np.float32), name=f"c{i}"))
        # total weight = 4 * 1000; budgets force a split
        plan = DatasetDistributor().plan(tree, {"a": 2_000, "b": 2_000})
        assert len(plan.shares["a"]) == 2
        assert len(plan.shares["b"]) == 2

    def test_all_primitives_covered(self):
        tree = mixed_tree()
        plan = DatasetDistributor(max_grain_polygons=1_000).plan(
            tree, {"a": 1e9, "v": 1e9}, volume_hosts={"v"})
        assigned = set().union(*plan.shares.values())
        for node in tree.geometry_nodes():
            assert node.node_id in assigned


class TestSessionMixed:
    def test_place_dataset_respects_volume_support(self, testbed):
        tree = mixed_tree()
        testbed.publish_tree("mixed", tree)
        cs = CollaborativeSession(testbed.data_service, "mixed",
                                  recruiter=testbed.recruiter())
        cs.recruit_more()
        placement = cs.place_dataset()
        master = cs.master_tree
        volume_id = master.find_by_name("ct")[0].node_id
        holder = next(s for s in cs.render_services
                      if volume_id in cs.share_of(s))
        assert holder.capacity().volume_support

    def test_composite_renders_all_primitives(self, testbed):
        tree = mixed_tree()
        testbed.publish_tree("mixed2", tree)
        cs = CollaborativeSession(testbed.data_service, "mixed2",
                                  recruiter=testbed.recruiter())
        cs.recruit_more()
        cs.place_dataset()
        cam = CameraNode(position=(2.2, 1.5, 1.2))
        fb, _ = cs.render_composite(cam, 96, 96)
        assert fb.coverage() > 0.05
