"""Avatars, interrogation-based interaction, and the registry browser GUI."""

import numpy as np
import pytest

from repro.collab.avatar import AvatarManager
from repro.collab.gui import RegistryBrowser
from repro.collab.interaction import InteractionController, discover_menu
from repro.data.generators import galleon
from repro.errors import SceneGraphError, SessionError
from repro.scenegraph.nodes import CameraNode, MeshNode, TransformNode
from repro.scenegraph.tree import SceneTree


@pytest.fixture
def demo(small_testbed):
    tree = SceneTree("demo")
    tree.add(MeshNode(galleon().normalized(), name="ship"))
    small_testbed.publish_tree("demo", tree)
    return small_testbed


class TestAvatarManager:
    def test_join_adds_avatar_to_master(self, demo):
        mgr = AvatarManager(demo.data_service, "demo")
        cam = CameraNode(position=(3, 0, 0))
        nid = mgr.join("ian", "tower", cam)
        node = mgr.master_tree.node(nid)
        assert node.user == "ian"
        assert np.allclose(node.position, [3, 0, 0])

    def test_duplicate_join_rejected(self, demo):
        mgr = AvatarManager(demo.data_service, "demo")
        mgr.join("ian", "tower", CameraNode())
        with pytest.raises(SessionError):
            mgr.join("ian", "tower", CameraNode())

    def test_follow_tracks_camera(self, demo):
        mgr = AvatarManager(demo.data_service, "demo")
        cam = CameraNode(position=(3, 0, 0))
        nid = mgr.join("ian", "tower", cam)
        cam.look(position=(0, 4, 0))
        mgr.follow("ian", cam)
        assert np.allclose(mgr.master_tree.node(nid).position, [0, 4, 0])

    def test_collaborators_excludes_self(self, demo):
        """Figure 3: the local user sees the remote user's cone, not
        their own."""
        mgr = AvatarManager(demo.data_service, "demo")
        mgr.join("ian", "tower", CameraNode(position=(1, 0, 0)))
        mgr.join("nick", "Desktop", CameraNode(position=(0, 2, 0)))
        views = mgr.collaborators(excluding="ian")
        assert len(views) == 1
        assert views[0].user == "nick"
        assert views[0].host == "Desktop"

    def test_leave_removes_avatar(self, demo):
        mgr = AvatarManager(demo.data_service, "demo")
        nid = mgr.join("ian", "tower", CameraNode())
        mgr.leave("ian")
        assert nid not in mgr.master_tree
        with pytest.raises(SessionError):
            mgr.follow("ian", CameraNode())

    def test_avatars_propagate_to_subscribers(self, demo):
        got = []
        demo.data_service.subscribe("demo", "watcher", host="athlon",
                                    on_update=got.append)
        mgr = AvatarManager(demo.data_service, "demo")
        mgr.join("ian", "tower", CameraNode())
        assert len(got) == 1

    def test_avatar_node_ids(self, demo):
        mgr = AvatarManager(demo.data_service, "demo")
        a = mgr.join("a", "h", CameraNode())
        b = mgr.join("b", "h", CameraNode())
        assert mgr.avatar_node_ids() == {a, b}
        assert mgr.avatar_node_ids(excluding="a") == {b}


class TestInteraction:
    def scene(self):
        from repro.data.generators import uv_sphere

        tree = SceneTree()
        # a solid object so the center pixel always hits (the galleon has
        # empty air between deck and sails)
        tree.add(MeshNode(uv_sphere(radius=1.0, nu=24, nv=24), name="ship"))
        cam = CameraNode(position=(0, -3, 0.5), target=(0, 0, 0),
                         up=(0, 0, 1))
        return tree, cam

    def test_menu_discovery_matches_node(self):
        tree, _ = self.scene()
        ship = tree.find_by_name("ship")[0]
        verbs = {e.verb for e in discover_menu(ship)}
        assert {"select", "translate", "rotate"} <= verbs

    def test_click_selects_and_deselects(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree, user="ian")
        hit = ctl.click(cam, 100, 100, 200, 200)
        assert hit is not None and hit.name == "ship"
        assert ctl.menu()
        again = ctl.click(cam, 100, 100, 200, 200)
        assert again is None                      # toggled off
        assert ctl.menu() == []

    def test_click_miss_clears_selection(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        ctl.click(cam, 100, 100, 200, 200)
        ctl.click(cam, 1, 1, 200, 200)            # background
        assert ctl.selection is None

    def test_orbit_drag_emits_camera_update(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree, user="ian")
        before = cam.position.copy()
        update = ctl.drag("orbit", cam, dx=0.25, dy=0.0)
        assert update is not None
        assert update.origin == "ian"
        assert not np.allclose(cam.position, before)

    def test_zoom_moves_towards_target(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        d0 = np.linalg.norm(cam.position - cam.target)
        ctl.drag("zoom", cam, dx=0, dy=0.4)
        assert np.linalg.norm(cam.position - cam.target) < d0

    def test_pan_shifts_position_and_target(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        t0 = cam.target.copy()
        ctl.drag("pan", cam, dx=0.3, dy=0.0)
        assert not np.allclose(cam.target, t0)

    def test_rotate_around_selection(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        ctl.click(cam, 100, 100, 200, 200)
        update = ctl.drag("rotate-around-selection", cam, 0.2, 0.1)
        assert update is not None
        # without a selection it refuses
        ctl.selection = None
        with pytest.raises(SceneGraphError):
            ctl.drag("rotate-around-selection", cam, 0.1, 0.1)

    def test_translate_wraps_in_transform(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree, user="ian")
        ctl.click(cam, 100, 100, 200, 200)
        assert not isinstance(ctl.selection.parent, TransformNode)
        update = ctl.drag("translate", cam, dx=0.5, dy=0.0)
        assert isinstance(ctl.selection.parent, TransformNode)
        assert update.KIND == "set_transform"
        w = tree.world_transform(ctl.selection)
        assert np.linalg.norm(w[:3, 3]) > 0

    def test_object_verb_requires_selection(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        with pytest.raises(SceneGraphError):
            ctl.drag("translate", cam, 0.1, 0.1)

    def test_unsupported_verb_rejected(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        ctl.click(cam, 100, 100, 200, 200)
        with pytest.raises(SceneGraphError):
            ctl.drag("defenestrate", cam, 0.1, 0.1)

    def test_scale_changes_size(self):
        tree, cam = self.scene()
        ctl = InteractionController(tree)
        ctl.click(cam, 100, 100, 200, 200)
        ctl.drag("scale", cam, dx=0, dy=1.0)
        w = tree.world_transform(ctl.selection)
        assert w[0, 0] == pytest.approx(2.0)


class TestRegistryBrowser:
    def browser(self, testbed):
        return RegistryBrowser(
            testbed.registry, testbed.containers,
            data_services={testbed.data_service.host: testbed.data_service},
            render_services={h: s
                             for h, s in testbed.render_services.items()})

    def test_rows_show_hosts_and_create_entries(self, demo):
        browser = self.browser(demo)
        text = browser.render_text("RAVE project")
        assert "RAVE project" in text
        assert "centrino" in text and "athlon" in text
        assert "*Create new instance*" in text     # the italic action

    def test_instances_listed_after_creation(self, demo):
        rs = demo.render_service("centrino")
        rs.create_render_session(demo.data_service, "demo")
        browser = self.browser(demo)
        text = browser.render_text("RAVE project")
        assert "demo@rs-centrino" in text

    def test_create_data_instance_from_url(self, demo, tmp_path):
        from repro.data.obj import write_obj

        path = tmp_path / "skull.obj"
        write_obj(galleon(), path)
        browser = self.browser(demo)
        session_id = browser.create_data_instance(
            demo.data_service.host, f"file://{path}")
        assert session_id == "skull"
        assert demo.data_service.session("skull")

    def test_create_render_instance_bootstraps(self, demo):
        browser = self.browser(demo)
        session, timing = browser.create_render_instance(
            "athlon", demo.data_service.host, "demo")
        assert timing.total_seconds > 0
        assert session.tree.total_polygons() > 0

    def test_unknown_host_errors(self, demo):
        from repro.errors import DiscoveryError

        browser = self.browser(demo)
        with pytest.raises(DiscoveryError):
            browser.create_data_instance("ghost", "file:///x.obj")
        with pytest.raises(DiscoveryError):
            browser.create_render_instance("ghost",
                                           demo.data_service.host, "demo")
