"""The tail-latency plane end to end: federated quantiles drive alerts.

The acceptance scenario for the observability tentpole: two session
grids are driven into admission-queue waits, the monitor scrapes both
over the simulated network, federates their ``rave_queue_wait_seconds``
bucket counts by summing per-``le``, and the quantile-targeting
``grid-queue-wait-p95`` rule fires from the *merged* distribution — a
value no average of per-service p95 estimates reproduces.  The whole
story is deterministic: a same-seed replay produces a byte-identical
monitor snapshot.
"""

import json

import pytest

from repro import obs
from repro.core.grid import TenantQuota
from repro.data.generators import uv_sphere
from repro.obs.quantiles import estimate_quantile
from repro.obs.rules import TAIL_QUEUE_WAIT_SECONDS
from repro.obs.telemetry import federate
from repro.obs.vocab import (
    EVENT_ALERT_PREFIX,
    EVENT_QUEUE,
    GRID_QUEUE_WAIT,
    TAIL_LATENCY_KIND,
)
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.monitor import GRID_SERVICE
from repro.testbed import build_testbed

MONITOR_HOST = "registry-host"
#: saturating per-session rate (one ~1100-polygon sphere ≈ 3.3 Mpps)
FPS = 3000.0


def scene(label):
    tree = SceneTree(name=f"scene-{label}")
    tree.add(MeshNode(uv_sphere(nu=24, nv=24)))
    return tree


TENANTS = ("acme", "beta")


def open_tenants(grid):
    # two tenants so the per-tenant share cap never fires before the
    # pool fills: saturation reaches the *queue*, not a quota reject
    for i, name in enumerate(TENANTS):
        grid.register_tenant(TenantQuota(tenant=name, priority=i,
                                         max_sessions=8, max_share=1.0,
                                         guaranteed_share=0.0))


def fill_and_queue(grid, prefix, n_queued, limit=16):
    """Admit until full, then queue ``n_queued`` more requests.

    Returns (admitted session ids, queued session ids).
    """
    admitted, queued = [], []
    for i in range(limit):
        sid = f"{prefix}{i}"
        decision = grid.request_session(TENANTS[i % 2], sid, scene(sid))
        if decision.outcome == EVENT_QUEUE:
            queued.append(sid)
            if len(queued) >= n_queued:
                return admitted, queued
        else:
            admitted.append(sid)
    raise AssertionError(f"grid never queued {n_queued} requests")


def run_for(tb, dt):
    # relative, not absolute: synchronous admission work (dataset
    # placement) advances the simulated clock directly, so absolute
    # targets can silently land in the past
    sim = tb.network.sim
    sim.run_until(sim.now + dt)


def breach_scenario():
    """Drive two grids into different queue-wait distributions.

    grid-a's queued request waits ~0.7 s; grid-b's waits ~8 s — so the
    federated p95 (dominated by grid-b's slow tail) is far from the
    average of the two per-grid estimates.  Returns the testbed and both
    grids, with the monitor having watched ≥ 5 s of sustained breach.
    """
    tb = build_testbed(monitor_host=MONITOR_HOST)
    grid_a = tb.session_grid(member_hosts=("centrino",), name="grid-a",
                             recruit=False, target_fps=FPS)
    grid_b = tb.session_grid(member_hosts=("athlon",), name="grid-b",
                             recruit=False, target_fps=FPS)
    open_tenants(grid_a)
    open_tenants(grid_b)
    a_admitted, _ = fill_and_queue(grid_a, "a", 1)
    run_for(tb, 0.7)
    grid_a.release_session(a_admitted[0])        # admits a's head: ~0.7s wait
    b_admitted, _ = fill_and_queue(grid_b, "b", 1)
    run_for(tb, 8.0)
    grid_b.release_session(b_admitted[0])        # admits b's head: ~8s wait
    # cumulative buckets never decay: every scrape from here on sees the
    # breached p95, so the 5 s sustain window fills as the monitor ticks
    run_for(tb, 7.0)
    return tb, grid_a, grid_b


class TestFederatedTailAlert:
    def test_quantile_rule_fires_from_merged_buckets(self):
        tb, grid_a, grid_b = breach_scenario()
        snap = tb.monitor.snapshot()

        federated_p95 = snap["grid"][f"{GRID_QUEUE_WAIT}_p95"]
        assert federated_p95 > TAIL_QUEUE_WAIT_SECONDS

        # the published value is the estimate over the per-le sums of
        # both grids' scraped buckets...
        merged = tb.monitor.federated_buckets("rave_queue_wait_seconds")
        assert federated_p95 == pytest.approx(
            estimate_quantile(merged, 0.95))
        # ...and is NOT the average of per-service estimates: grid-b's
        # slow tail dominates the merged distribution
        per_grid = [
            snap["services"][name]["metrics"]["rave_queue_wait_seconds_p95"]
            for name in ("grid-a", "grid-b")
        ]
        averaged = sum(per_grid) / len(per_grid)
        assert abs(federated_p95 - averaged) > 0.5

        firing = {(a["rule"], a["service"]): a for a in snap["alerts"]}
        grid_alert = firing[("grid-queue-wait-p95", GRID_SERVICE)]
        assert grid_alert["kind"] == TAIL_LATENCY_KIND
        assert grid_alert["value"] == pytest.approx(federated_p95)
        assert grid_alert["last_time"] - grid_alert["since"] >= 5.0
        # the per-service twin fires on each breached grid too
        assert ("queue-wait-p95", "grid-a") in firing
        assert ("queue-wait-p95", "grid-b") in firing

    def test_breach_lands_in_slo_report_and_tail_history(self):
        tb, _, _ = breach_scenario()
        snap = tb.monitor.snapshot()

        section = snap["slo"]["queue-wait-p95"]
        assert section["quantile"] == 0.95
        assert section["metric"] == "rave_queue_wait_seconds_p95"
        for name in ("grid-a", "grid-b"):
            score = section["services"][name]
            assert score["attainment"] < 1.0
            assert any(not w["recovered"] for w in score["violations"])

        # the sparkline feed: per-service and grid-wide p95 histories
        assert snap["tail"]["grid-a"]["rave_queue_wait_seconds_p95"]
        grid_tail = snap["tail"][GRID_SERVICE][f"{GRID_QUEUE_WAIT}_p95"]
        assert grid_tail[-1][1] > TAIL_QUEUE_WAIT_SECONDS

    def test_alert_event_reaches_the_flight_recorder(self):
        with obs.observed() as bundle:
            breach_scenario()
            kinds = {e.kind for e in bundle.recorder.events()}
            assert EVENT_ALERT_PREFIX + TAIL_LATENCY_KIND in kinds
            dump = bundle.recorder.dump("tail-breach", time=11.0)
        tail_events = [e for e in dump["events"]
                       if e["kind"] == EVENT_ALERT_PREFIX + TAIL_LATENCY_KIND]
        notes = [e["detail"] for e in tail_events
                 if "grid-queue-wait-p95" in e["detail"]]
        assert notes
        # each firing (unique since=) is noted once, not re-noted every
        # tick it stays up — the final breach sustains ≥ 5 scrapes but
        # lands in the recorder exactly once
        assert len(notes) == len(set(notes))

    def test_same_seed_replay_is_byte_identical(self):
        first = json.dumps(breach_scenario()[0].monitor.snapshot(),
                           sort_keys=True)
        second = json.dumps(breach_scenario()[0].monitor.snapshot(),
                            sort_keys=True)
        assert first == second


class TestFederateCollisions:
    def test_same_origin_payloads_collide_and_are_counted(self):
        payload = {
            "service": "rs-demo", "host": "onyx",
            "metrics": {"rave_rs_fps": {
                "kind": "gauge", "help": "",
                "series": [{"labels": {}, "value": 5.0}],
            }},
        }
        later = {
            "service": "rs-demo", "host": "onyx",
            "metrics": {"rave_rs_fps": {
                "kind": "gauge", "help": "",
                "series": [{"labels": {}, "value": 9.0}],
            }},
        }
        stats: dict = {}
        merged = federate([payload, later], stats=stats)
        assert stats["federate_collisions"] == 1
        series = merged["rave_rs_fps"]["series"]
        # last writer wins, exactly once — the earlier series is gone
        assert len(series) == 1
        assert series[0]["value"] == 9.0

    def test_distinct_origins_do_not_collide(self):
        payloads = [
            {"service": "rs-a", "host": "onyx", "metrics": {}},
            {"service": "rs-b", "host": "onyx", "metrics": {}},
            {"service": "rs-a", "host": "athlon", "metrics": {}},
        ]
        stats: dict = {}
        federate(payloads, stats=stats)
        assert stats["federate_collisions"] == 0

    def test_monitor_snapshot_exposes_the_stat(self):
        tb, _, _ = breach_scenario()
        snap = tb.monitor.snapshot()
        # healthy fleet: distinct service names, so zero — the point is
        # the stat is published, not buried
        assert snap["scrapes"]["federate_collisions"] == 0
        assert tb.monitor.federate_collisions == 0
