"""Workload migration: load tracking, thresholds, fine-grain node moves."""

import pytest

from repro.core.migration import LoadSample, LoadTracker, WorkloadMigrator
from repro.data.generators import skeleton
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree


class TestLoadTracker:
    def test_smoothing(self):
        t = LoadTracker()
        for i, fps in enumerate([10.0, 20.0, 30.0]):
            t.record(LoadSample(time=float(i), fps=fps, utilisation=0.5))
        assert t.smoothed_fps() == pytest.approx(20.0)
        assert t.smoothed_utilisation() == pytest.approx(0.5)

    def test_window_eviction(self):
        t = LoadTracker(window_seconds=5.0)
        t.record(LoadSample(0.0, fps=1.0, utilisation=0.1))
        t.record(LoadSample(10.0, fps=9.0, utilisation=0.9))
        assert t.n_samples == 1
        assert t.smoothed_fps() == 9.0

    def test_time_ordering_enforced(self):
        t = LoadTracker()
        t.record(LoadSample(5.0, 1.0, 0.5))
        with pytest.raises(ValueError):
            t.record(LoadSample(4.0, 1.0, 0.5))

    def test_empty_tracker_defaults(self):
        t = LoadTracker()
        assert t.smoothed_fps() == float("inf")
        assert t.smoothed_utilisation() == 0.0
        assert not t.sustained_below_fps(100, 1.0)

    def test_sustained_needs_duration(self):
        """A single slow spike must NOT trigger ('smooth out spikes')."""
        t = LoadTracker()
        t.record(LoadSample(0.0, fps=100.0, utilisation=0.1))
        t.record(LoadSample(1.0, fps=2.0, utilisation=0.9))
        assert not t.sustained_below_fps(8.0, duration=3.0)

    def test_sustained_fires_after_duration(self):
        t = LoadTracker()
        for i in range(6):
            t.record(LoadSample(float(i), fps=2.0, utilisation=0.95))
        assert t.sustained_below_fps(8.0, duration=3.0)

    def test_recovery_resets(self):
        t = LoadTracker()
        for i in range(4):
            t.record(LoadSample(float(i), fps=2.0, utilisation=0.9))
        t.record(LoadSample(4.0, fps=50.0, utilisation=0.2))
        assert not t.sustained_below_fps(8.0, duration=3.0)

    def test_sustained_underutilisation(self):
        t = LoadTracker()
        for i in range(6):
            t.record(LoadSample(float(i), fps=60.0, utilisation=0.05))
        assert t.sustained_below_utilisation(0.3, duration=3.0)

    def test_window_spanning_exactly_duration_is_eligible(self):
        """span == duration is enough history — not a spike."""
        t = LoadTracker()
        for i in range(4):                       # t = 0..3, span == 3.0
            t.record(LoadSample(float(i), fps=2.0, utilisation=0.9))
        assert t.sustained_below_fps(8.0, duration=3.0)
        assert t.sustained_below_utilisation(0.95, duration=3.0)

    def test_sample_exactly_at_cutoff_counts(self):
        """A fast sample landing exactly ``duration`` ago must veto."""
        t = LoadTracker()
        t.record(LoadSample(0.0, fps=2.0, utilisation=0.9))
        t.record(LoadSample(2.0, fps=100.0, utilisation=0.9))  # at cutoff
        for time in (3.0, 4.0, 5.0):
            t.record(LoadSample(time, fps=2.0, utilisation=0.9))
        # cutoff = 5.0 - 3.0 = 2.0; the t=2.0 sample is inside the window
        assert not t.sustained_below_fps(8.0, duration=3.0)
        # whereas a strictly older fast sample is outside and ignored
        assert t.sustained_below_fps(8.0, duration=2.5)

    def test_fps_and_utilisation_share_one_rule(self):
        """Both detectors are the same sustained-below rule on
        different keys — identical histories give identical verdicts."""
        t = LoadTracker()
        for i in range(5):
            t.record(LoadSample(float(i), fps=2.0, utilisation=2.0))
        assert (t.sustained_below_fps(8.0, 3.0)
                == t.sustained_below_utilisation(8.0, 3.0))


class TestNodeSelection:
    """The fine-grain knapsack: 'we do not want to add 100k polygons by
    mistake'."""

    def make_tree(self, sizes):
        tree = SceneTree()
        ids = []
        for i, size in enumerate(sizes):
            node = tree.add(MeshNode(skeleton(max(600, size)).normalized(),
                                     name=f"n{i}"))
            ids.append(node.node_id)
        return tree, ids

    def test_moves_enough_work(self):
        tree, ids = self.make_tree([2000, 2000, 2000])
        sizes = {nid: tree.node(nid).n_polygons for nid in ids}
        chosen, moved = WorkloadMigrator.select_nodes(
            tree, set(ids), polygons_needed=3000,
            receiver_headroom=10**6)
        assert moved >= 3000
        assert moved == sum(sizes[nid] for nid in chosen)

    def test_never_overshoots_receiver(self):
        tree, ids = self.make_tree([5000, 5000])
        chosen, moved = WorkloadMigrator.select_nodes(
            tree, set(ids), polygons_needed=100_000,
            receiver_headroom=6000)
        assert moved <= 6000

    def test_fine_grain_rule(self):
        """Needing ~2k with a 100k node available and little headroom must
        NOT move the 100k node (the paper's 5k-vs-100k example)."""
        tree, ids = self.make_tree([100_000, 2000])
        small_polys = min(tree.node(n).n_polygons for n in ids)
        chosen, moved = WorkloadMigrator.select_nodes(
            tree, set(ids), polygons_needed=small_polys,
            receiver_headroom=small_polys * 2)
        big = max(ids, key=lambda n: tree.node(n).n_polygons)
        assert big not in chosen
        assert 0 < moved <= small_polys * 2

    def test_nothing_needed(self):
        tree, ids = self.make_tree([1000])
        chosen, moved = WorkloadMigrator.select_nodes(
            tree, set(ids), polygons_needed=0, receiver_headroom=10**6)
        assert chosen == [] and moved == 0

    def test_missing_nodes_skipped(self):
        tree, ids = self.make_tree([1000])
        chosen, _ = WorkloadMigrator.select_nodes(
            tree, {999_999}, polygons_needed=100, receiver_headroom=10**6)
        assert chosen == []


class FakeService:
    def __init__(self, name, rate, committed=0.0):
        self.name = name
        self._rate = rate
        self._committed = committed

    def capacity(self):
        from repro.core.capacity import RenderCapacity

        return RenderCapacity(
            polygons_per_second=self._rate, points_per_second=self._rate,
            voxels_per_second=0, texture_memory_bytes=2**30,
            volume_support=False)

    def committed_polygons(self):
        return self._committed

    def utilisation(self, target_fps=10.0):
        return self._committed / (self._rate / target_fps)


class FakeSession:
    """Minimal CollaborativeSession facade for migrator policy tests."""

    def __init__(self, tree, services, shares):
        self.master_tree = tree
        self.render_services = services
        self._shares = shares
        self.recruiter = None
        self.moves = []

    def share_of(self, service):
        return self._shares[service.name]

    def reassign_nodes(self, src, dst, node_ids):
        self._shares[src.name] -= set(node_ids)
        self._shares[dst.name] |= set(node_ids)
        moved = sum(self.master_tree.node(n).n_polygons for n in node_ids)
        src._committed -= moved
        dst._committed += moved
        self.moves.append((src.name, dst.name, tuple(node_ids)))

    def recruit_more(self):
        return []


class TestMigrationPolicy:
    def build(self):
        tree = SceneTree()
        ids = []
        for i in range(6):
            node = tree.add(MeshNode(skeleton(2000).normalized(),
                                     name=f"part{i}"))
            ids.append(node.node_id)
        per_node = tree.node(ids[0]).n_polygons
        overloaded = FakeService("slow", rate=3e4,
                                 committed=per_node * 6)   # way over budget
        idle = FakeService("fast", rate=1e7, committed=0.0)
        shares = {"slow": set(ids), "fast": set()}
        session = FakeSession(tree, [overloaded, idle], shares)
        return session, overloaded, idle

    def feed_overload(self, migrator, service):
        for i in range(8):
            migrator.tracker(service.name).record(
                LoadSample(float(i), fps=2.0,
                           utilisation=service.utilisation(10.0)))

    def test_overload_triggers_move(self):
        session, slow, fast = self.build()
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        self.feed_overload(migrator, slow)
        actions = migrator.plan(session)
        assert actions
        action = actions[0]
        assert action.source == "slow" and action.destination == "fast"
        assert action.reason == "overload"
        assert session.moves

    def test_no_move_without_sustained_overload(self):
        session, slow, fast = self.build()
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        migrator.tracker(slow.name).record(LoadSample(0.0, 2.0, 2.0))
        assert migrator.plan(session) == []

    def test_underload_pulls_work(self):
        session, slow, fast = self.build()
        migrator = WorkloadMigrator(target_fps=10,
                                    underload_utilisation=0.3,
                                    smoothing_seconds=3.0)
        for i in range(8):
            migrator.tracker(fast.name).record(
                LoadSample(float(i), fps=200.0, utilisation=0.0))
        actions = migrator.plan(session)
        assert any(a.reason == "underload" and a.destination == "fast"
                   for a in actions)

    def test_actions_logged(self):
        session, slow, fast = self.build()
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        self.feed_overload(migrator, slow)
        migrator.plan(session)
        assert migrator.actions

    def test_overloaded_service_with_empty_share_is_a_noop(self):
        """Overload with nothing assigned: the policy must not plan a
        move (there are no nodes to shed) and must not crash."""
        session, slow, fast = self.build()
        session._shares["slow"] = set()
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        self.feed_overload(migrator, slow)
        assert migrator.plan(session) == []
        assert session.moves == []

    def test_recruitment_returning_nothing_is_a_noop(self):
        """No peer with headroom and a recruiter that finds nobody:
        the pass completes without actions."""
        tree = SceneTree()
        ids = []
        for i in range(3):
            node = tree.add(MeshNode(skeleton(2000).normalized(),
                                     name=f"part{i}"))
            ids.append(node.node_id)
        per_node = tree.node(ids[0]).n_polygons
        slow = FakeService("slow", rate=3e4, committed=per_node * 3)
        # the only peer is itself saturated: zero headroom
        busy = FakeService("busy", rate=3e4, committed=per_node * 3)
        session = FakeSession(tree, [slow, busy],
                              {"slow": set(ids), "busy": set()})
        session.recruiter = object()        # non-None: recruiting allowed
        recruit_calls = []
        session.recruit_more = lambda: recruit_calls.append(1) or []
        migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                    smoothing_seconds=3.0)
        for i in range(8):
            migrator.tracker(slow.name).record(
                LoadSample(float(i), fps=2.0, utilisation=2.0))
        assert migrator.plan(session) == []
        assert recruit_calls            # it did try to recruit
        assert session.moves == []


class TestUnderloadConvergence:
    """Underload pulls must leave the donor above the underload threshold,
    or two lightly loaded peers ping-pong the same nodes forever."""

    def build_lightly_loaded_pair(self):
        tree = SceneTree()
        shares = {"a": set(), "b": set()}
        for i in range(8):
            node = tree.add(MeshNode(skeleton(2000).normalized(),
                                     name=f"part{i}"))
            shares["a" if i < 4 else "b"].add(node.node_id)
        per_node = tree.node(next(iter(shares["a"]))).n_polygons
        # budget at 10 fps is 1e5 each; both sit near 0.08 utilisation —
        # far below the 0.3 underload threshold
        a = FakeService("a", rate=1e6, committed=per_node * 4)
        b = FakeService("b", rate=1e6, committed=per_node * 4)
        session = FakeSession(tree, [a, b], shares)
        migrator = WorkloadMigrator(target_fps=10,
                                    underload_utilisation=0.3,
                                    smoothing_seconds=3.0)
        for service in (a, b):
            for i in range(8):
                migrator.tracker(service.name).record(
                    LoadSample(float(i), fps=200.0,
                               utilisation=service.utilisation(10.0)))
        return session, migrator

    def test_consecutive_passes_converge(self):
        session, migrator = self.build_lightly_loaded_pair()
        passes = [migrator.plan(session) for _ in range(4)]
        # a donor below the threshold has no spare to give: the first
        # pass must already be stable, and nothing may oscillate later
        assert passes == [[], [], [], []]
        assert session.moves == []

    def test_pull_never_drags_donor_below_the_threshold(self):
        tree = SceneTree()
        ids = []
        for i in range(8):
            node = tree.add(MeshNode(skeleton(2000).normalized(),
                                     name=f"part{i}"))
            ids.append(node.node_id)
        per_node = tree.node(ids[0]).n_polygons
        # donor at ~0.45 utilisation, puller idle: a pull is legitimate
        # but must stop at the donor's spare above the 0.3 floor
        donor = FakeService("donor", rate=per_node * 8 / 0.45 * 10,
                            committed=per_node * 8)
        idle = FakeService("idle", rate=1e7, committed=0.0)
        session = FakeSession(tree, [donor, idle],
                              {"donor": set(ids), "idle": set()})
        migrator = WorkloadMigrator(target_fps=10,
                                    underload_utilisation=0.3,
                                    smoothing_seconds=3.0)
        for i in range(8):
            migrator.tracker("idle").record(
                LoadSample(float(i), fps=200.0, utilisation=0.0))
        actions = migrator.plan(session)
        assert any(a.reason == "underload" and a.destination == "idle"
                   for a in actions)
        floor = 0.3 * donor.capacity().polygon_budget(10.0)
        assert donor.committed_polygons() >= floor
        # and the system settles: repeated passes stop moving work
        for _ in range(3):
            migrator.plan(session)
        assert donor.committed_polygons() >= floor
