"""The simulated network: topology, timing, contention, wireless, multicast."""

import pytest

from repro.errors import NetworkError
from repro.network.simnet import Network, WirelessCell


@pytest.fixture
def lan():
    """Three hosts on a 100 Mbit star plus a wireless PDA."""
    net = Network()
    for h in ("a", "b", "c", "pda"):
        net.add_host(h)
    net.add_ethernet_segment(["a", "b", "c"], "switch",
                             bandwidth_bps=100e6, latency_s=0.0002)
    cell = WirelessCell(net, "switch")
    cell.join("pda")
    return net, cell


class TestTopology:
    def test_duplicate_host(self, lan):
        net, _ = lan
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_duplicate_link(self, lan):
        net, _ = lan
        with pytest.raises(NetworkError):
            net.add_link("a", "switch", 1e6, 0.001)

    def test_unknown_host_in_link(self, lan):
        net, _ = lan
        with pytest.raises(NetworkError):
            net.add_link("a", "ghost", 1e6, 0.001)

    def test_zero_bandwidth_rejected(self, lan):
        net, _ = lan
        net.add_host("x")
        with pytest.raises(NetworkError):
            net.add_link("a", "x", 0, 0.001)

    def test_path_through_switch(self, lan):
        net, _ = lan
        assert net.path("a", "b") == ["a", "switch", "b"]

    def test_no_route(self, lan):
        net, _ = lan
        net.add_host("island")
        with pytest.raises(NetworkError):
            net.path("a", "island")


class TestTransferTimes:
    def test_ethernet_100mbit(self, lan):
        net, _ = lan
        # 1 MB over two 100 Mbit hops + 2 latencies
        t = net.transfer_time("a", "b", 10**6)
        assert t == pytest.approx(2 * 0.0002 + 2 * 8e6 / 100e6, rel=1e-6)

    def test_wireless_matches_paper_frame_time(self, lan):
        """120 kB (a 200x200x3 frame) over 11 Mbit 802.11b ≈ 0.2 s."""
        net, _ = lan
        t = net.transfer_time("a", "pda", 120_000)
        assert 0.17 < t < 0.27

    def test_zero_bytes_latency_only(self, lan):
        net, _ = lan
        assert net.transfer_time("a", "b", 0) == pytest.approx(0.0004)

    def test_same_host_free(self, lan):
        net, _ = lan
        assert net.transfer_time("a", "a", 10**9) == 0.0

    def test_negative_bytes(self, lan):
        net, _ = lan
        with pytest.raises(NetworkError):
            net.transfer_time("a", "b", -1)

    def test_round_trip(self, lan):
        net, _ = lan
        rtt = net.round_trip_time("a", "b")
        assert rtt == pytest.approx(2 * net.transfer_time("a", "b", 512))


class TestWireless:
    def test_signal_quality_scales_bandwidth(self, lan):
        net, cell = lan
        t_good = net.transfer_time("a", "pda", 120_000)
        cell.set_signal_quality("pda", 0.5)
        t_bad = net.transfer_time("a", "pda", 120_000)
        assert t_bad > 1.6 * t_good

    def test_invalid_signal_quality(self, lan):
        _, cell = lan
        with pytest.raises(ValueError):
            cell.set_signal_quality("pda", 0.0)
        with pytest.raises(ValueError):
            cell.set_signal_quality("pda", 1.5)

    def test_mac_efficiency_below_nominal(self, lan):
        net, _ = lan
        link = net.link_between("pda", "switch")
        assert link.effective_bandwidth() < 11e6
        assert link.effective_bandwidth() == pytest.approx(11e6 * 0.44)


class TestContention:
    def test_concurrent_transfers_share_link(self, lan):
        net, _ = lan
        t_alone = net.transfer_time("a", "b", 10**6)
        net.send("a", "b", 10**7)          # occupy the links
        t_shared = net.transfer_time("a", "b", 10**6)
        assert t_shared > 1.8 * t_alone
        net.sim.run()                      # drain
        assert net.transfer_time("a", "b", 10**6) == pytest.approx(t_alone)

    def test_send_completion_callback(self, lan):
        net, _ = lan
        done = []
        rec = net.send("a", "b", 10**6, on_complete=lambda r: done.append(r))
        net.sim.run()
        assert done == [rec]
        assert net.sim.now == pytest.approx(rec.duration)

    def test_transfer_record_accounting(self, lan):
        net, _ = lan
        net.send("a", "b", 1000)
        net.send("b", "c", 2000)
        assert net.bytes_moved() == 3000
        rec = net.transfers[0]
        assert rec.goodput_bps > 0
        assert rec.path == ("a", "switch", "b")


class TestLinkFailures:
    def test_downed_link_unroutable(self, lan):
        net, _ = lan
        net.set_link_up("a", "switch", False)
        with pytest.raises(NetworkError):
            net.transfer_time("a", "b", 100)

    def test_reroute_around_down_link(self):
        net = Network()
        for h in ("a", "b", "relay"):
            net.add_host(h)
        net.add_link("a", "b", 100e6, 0.001)
        net.add_link("a", "relay", 10e6, 0.001)
        net.add_link("relay", "b", 10e6, 0.001)
        assert net.path("a", "b") == ["a", "b"]
        net.set_link_up("a", "b", False)
        assert net.path("a", "b") == ["a", "relay", "b"]

    def test_restore_link(self, lan):
        net, _ = lan
        net.set_link_up("a", "switch", False)
        net.set_link_up("a", "switch", True)
        assert net.transfer_time("a", "b", 100) > 0


class TestMulticast:
    def test_shared_link_charged_once(self, lan):
        """The data service's bandwidth-saving distribution: the uplink
        carries the payload once regardless of receiver count."""
        net, _ = lan
        nbytes = 10**6
        times = net.multicast_times("a", ["b", "c"], nbytes)
        unicast = net.transfer_time("a", "b", nbytes)
        # second receiver only pays its own downlink (uplink shared)
        assert times["b"] == pytest.approx(unicast)
        assert times["c"] < unicast
        # receiver c pays the (already-charged) uplink's latency plus its
        # own downlink serialisation
        assert times["c"] == pytest.approx(
            2 * 0.0002 + nbytes * 8 / 100e6, rel=1e-6)

    def test_self_delivery_free(self, lan):
        net, _ = lan
        assert net.multicast_times("a", ["a"], 100)["a"] == 0.0

    def test_empty_receivers(self, lan):
        net, _ = lan
        assert net.multicast_times("a", [], 100) == {}
