"""Point-cloud splatting and volume ray-marching."""

import numpy as np
import pytest

from repro.data.volumes import VoxelVolume, visible_human_phantom
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.points import rasterize_points
from repro.render.volume import raymarch_volume


@pytest.fixture
def cam():
    return Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))


class TestPoints:
    def test_single_point_center(self, cam):
        fb = FrameBuffer(64, 64)
        stats = rasterize_points(np.zeros((1, 3)), cam, fb)
        assert stats.points_drawn == 1
        assert np.isfinite(fb.depth[32, 32])

    def test_point_size_grows_footprint(self, cam):
        fb1 = FrameBuffer(64, 64)
        fb3 = FrameBuffer(64, 64)
        pts = np.zeros((1, 3))
        rasterize_points(pts, cam, fb1, point_size=1)
        rasterize_points(pts, cam, fb3, point_size=3)
        assert np.isfinite(fb3.depth).sum() > np.isfinite(fb1.depth).sum()

    def test_offscreen_points_skipped(self, cam):
        fb = FrameBuffer(64, 64)
        stats = rasterize_points(np.array([[100.0, 0, 0]]), cam, fb)
        assert stats.points_drawn == 0

    def test_behind_camera_skipped(self, cam):
        fb = FrameBuffer(64, 64)
        stats = rasterize_points(np.array([[0.0, 0, 10.0]]), cam, fb)
        assert stats.points_drawn == 0

    def test_depth_test_against_existing(self, cam):
        fb = FrameBuffer(64, 64)
        fb.depth[:] = 1.0     # something very close already drawn
        fb.color[:] = 7
        rasterize_points(np.zeros((1, 3)), cam, fb)  # at distance 5
        assert (fb.color == 7).all()  # point lost the depth test

    def test_per_point_colors(self, cam):
        fb = FrameBuffer(64, 64)
        rasterize_points(np.zeros((1, 3)), cam, fb,
                         colors=np.array([[0.0, 1.0, 0.0]]),
                         depth_fade=False)
        assert fb.color[32, 32, 1] > 200

    def test_color_shape_checked(self, cam):
        with pytest.raises(RenderError):
            rasterize_points(np.zeros((2, 3)), cam, FrameBuffer(8, 8),
                             colors=np.zeros((3, 3)))

    def test_point_size_bounds(self, cam):
        with pytest.raises(RenderError):
            rasterize_points(np.zeros((1, 3)), cam, FrameBuffer(8, 8),
                             point_size=0)

    def test_empty_cloud(self, cam):
        stats = rasterize_points(np.zeros((0, 3)), cam, FrameBuffer(8, 8))
        assert stats.points_in == 0

    def test_depth_fade_dims_far_points(self, cam):
        fb = FrameBuffer(64, 64)
        pts = np.array([[0.0, 0, 1.0], [0.5, 0, -3.0]])
        rasterize_points(pts, cam, fb,
                         colors=np.ones((2, 3)), depth_fade=True)
        near_px = fb.color[32, 32]
        # find the far point's pixel
        far_mask = np.isfinite(fb.depth) & (fb.depth > 5)
        assert far_mask.any()
        far_px = fb.color[far_mask][0]
        assert int(near_px.max()) > int(far_px.max())


def sphere_volume(n=32, radius=0.6):
    lin = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    density = np.clip(radius - np.sqrt(x**2 + y**2 + z**2) + 0.2, 0, 1)
    spacing = 2.0 / (n - 1)
    return VoxelVolume(density.astype(np.float32), spacing=(spacing,) * 3,
                       origin=(-1, -1, -1))


class TestVolume:
    def test_sphere_renders_centered_disc(self, cam):
        img = raymarch_volume(sphere_volume(), cam, 64, 64,
                              opacity_scale=0.5)
        alpha = img.rgba[..., 3]
        assert alpha[32, 32] > 0.3            # dense center
        assert alpha[2, 2] < 0.01             # empty corner
        assert 0.05 < img.coverage < 0.6

    def test_depth_near_front_surface(self, cam):
        img = raymarch_volume(sphere_volume(), cam, 64, 64,
                              opacity_scale=0.8)
        d = img.depth[32, 32]
        # camera at z=5, sphere front surface around z≈0.8 → distance ≈4.2
        assert 3.8 < d < 5.0

    def test_view_distance_is_centroid_distance(self, cam):
        img = raymarch_volume(sphere_volume(), cam, 16, 16)
        assert img.view_distance == pytest.approx(5.0, abs=0.1)

    def test_miss_rays_transparent(self):
        cam = Camera.looking_at((0, 0, 5), target=(0, 0, 0))
        vol = sphere_volume(16)
        img = raymarch_volume(vol, cam, 8, 8)
        assert np.isinf(img.depth[0, 0])

    def test_camera_outside_looking_away(self):
        cam = Camera.looking_at((0, 0, 5), target=(0, 0, 10))
        img = raymarch_volume(sphere_volume(16), cam, 16, 16)
        assert img.rgba[..., 3].max() == 0.0

    def test_opacity_scale_monotone(self, cam):
        thin = raymarch_volume(sphere_volume(), cam, 32, 32,
                               opacity_scale=0.05)
        thick = raymarch_volume(sphere_volume(), cam, 32, 32,
                                opacity_scale=0.5)
        assert thick.rgba[..., 3].sum() > thin.rgba[..., 3].sum()

    def test_step_count_validated(self, cam):
        with pytest.raises(RenderError):
            raymarch_volume(sphere_volume(16), cam, 8, 8, n_steps=1)

    def test_premultiplied_alpha(self, cam):
        img = raymarch_volume(sphere_volume(), cam, 32, 32,
                              opacity_scale=0.5)
        rgb = img.rgba[..., :3]
        a = img.rgba[..., 3:]
        assert (rgb <= a + 1e-5).all()   # premultiplied bound

    def test_phantom_renders(self, cam):
        vol = visible_human_phantom(24)
        img = raymarch_volume(vol, cam, 48, 48, opacity_scale=0.3)
        assert img.coverage > 0.02
