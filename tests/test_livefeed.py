"""Live feeds and computational steering (§3.1.1 live feed, §5.2 bridge)."""

import numpy as np
import pytest

from repro.errors import ServiceError
from repro.scenegraph.tree import SceneTree
from repro.services.livefeed import (
    LiveFeed,
    MoleculeSimulator,
    SteeringBridge,
)


class TestMoleculeSimulator:
    def test_deterministic(self):
        a = MoleculeSimulator(seed=3)
        b = MoleculeSimulator(seed=3)
        for _ in range(10):
            a.step()
            b.step()
        assert np.array_equal(a.positions, b.positions)

    def test_damping_dissipates_energy(self):
        sim = MoleculeSimulator()
        sim.apply_force(0, (50.0, 0, 0))
        sim.step()
        early = sim.kinetic_energy()
        for _ in range(200):
            sim.step()
        assert sim.kinetic_energy() < 0.2 * early

    def test_springs_resist_stretch(self):
        sim = MoleculeSimulator(n_atoms=8)
        # yank one end atom far away
        sim.positions[0] += np.array([5.0, 0, 0])
        d0 = np.linalg.norm(sim.positions[0] - sim.positions[1])
        for _ in range(100):
            sim.step()
        d1 = np.linalg.norm(sim.positions[0] - sim.positions[1])
        assert d1 < d0          # pulled back toward rest length

    def test_force_moves_target_atom(self):
        sim = MoleculeSimulator()
        before = sim.positions[5].copy()
        sim.apply_force(5, (0, 0, 30.0))
        sim.step()
        assert sim.positions[5, 2] > before[2]

    def test_force_transient(self):
        sim = MoleculeSimulator()
        sim.apply_force(0, (100.0, 0, 0))
        sim.step()
        assert np.allclose(sim._pending_force, 0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            MoleculeSimulator(n_atoms=1)
        sim = MoleculeSimulator()
        with pytest.raises(ValueError):
            sim.apply_force(999, (1, 0, 0))


@pytest.fixture
def feed_setup(small_testbed):
    tb = small_testbed
    tb.publish_tree("md", SceneTree("md"))
    sim = MoleculeSimulator(n_atoms=24)
    feed = LiveFeed(tb.data_service, "md", sim)
    return tb, sim, feed


class TestLiveFeed:
    def test_feed_creates_point_cloud_node(self, feed_setup):
        tb, sim, feed = feed_setup
        tree = tb.data_service.session("md").tree
        node = tree.node(feed.node_id)
        assert node.TYPE == "points"
        assert node.n_points == sim.n_atoms

    def test_pump_updates_master_geometry(self, feed_setup):
        tb, sim, feed = feed_setup
        tree = tb.data_service.session("md").tree
        before = tree.node(feed.node_id).points.copy()
        sim.apply_force(0, (40.0, 0, 0))
        feed.pump(n_steps=5)
        after = tree.node(feed.node_id).points
        assert not np.array_equal(before, after)

    def test_subscribers_follow_the_feed(self, feed_setup):
        tb, sim, feed = feed_setup
        client = tb.active_client("watcher", "athlon")
        client.join(tb.data_service, "md")
        sim.apply_force(3, (0, 25.0, 0))
        feed.pump(n_steps=3)
        local = client.tree.node(feed.node_id).points
        master = tb.data_service.session("md").tree.node(feed.node_id).points
        assert np.array_equal(local, master)

    def test_feed_reuses_existing_node(self, feed_setup):
        tb, sim, feed = feed_setup
        feed2 = LiveFeed(tb.data_service, "md", sim)
        assert feed2.node_id == feed.node_id

    def test_stats_accumulate(self, feed_setup):
        tb, sim, feed = feed_setup
        tb.data_service.subscribe("md", "x", host="athlon")
        feed.pump()
        feed.pump()
        assert feed.stats.timesteps_published == 2
        assert feed.stats.bytes_published > 0
        assert feed.stats.subscribers_reached == 2

    def test_pump_validation(self, feed_setup):
        _, _, feed = feed_setup
        with pytest.raises(ServiceError):
            feed.pump(0)

    def test_feed_is_renderable(self, feed_setup):
        tb, sim, feed = feed_setup
        rs = tb.render_service("centrino")
        session, _ = rs.create_render_session(tb.data_service, "md")
        cam = tb.thin_client("view").camera
        cam.look(position=(0, -4, 0.5))
        fb, _ = rs.render_view(session.render_session_id, cam, 96, 96)
        assert fb.coverage() > 0.001


class TestSteeringBridge:
    def test_steer_deforms_the_molecule(self, feed_setup):
        tb, sim, feed = feed_setup
        bridge = SteeringBridge(feed)
        grab = sim.positions[10].copy()
        before = sim.positions[10].copy()
        bridge.steer(grab, drag_vector=(0, 0, 1.0))
        assert sim.positions[10, 2] > before[2]
        assert bridge.steers == 1

    def test_steer_targets_nearest_atom(self, feed_setup):
        _, sim, feed = feed_setup
        bridge = SteeringBridge(feed)
        assert bridge.nearest_atom(sim.positions[7] + 1e-4) == 7

    def test_collaborators_see_the_steer(self, feed_setup):
        tb, sim, feed = feed_setup
        client = tb.active_client("peer", "athlon")
        client.join(tb.data_service, "md")
        bridge = SteeringBridge(feed)
        before = client.tree.node(feed.node_id).points.copy()
        bridge.steer(sim.positions[0], (1.0, 0, 0))
        after = client.tree.node(feed.node_id).points
        assert not np.array_equal(before, after)

    def test_bridged_interactions_discoverable(self, feed_setup):
        _, _, feed = feed_setup
        bridge = SteeringBridge(feed)
        assert "steer-force" in bridge.bridged_interactions()
