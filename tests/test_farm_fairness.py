"""Fair-share scheduling under fire: mixed priorities, crash included.

The scheduler's headline promise, end to end on the simulated grid: a
long priority-0 animation is rendering on a two-worker farm when a
short priority-1 job from another tenant arrives.  The short job must
preempt at lease time and finish before the long job reaches its
midpoint — even though the seeded :class:`FaultInjector` kills the
worker holding one of the short job's frames mid-render.  Invariants:

- the short job finishes first, before the long job's midpoint;
- the killed frame is re-queued once and re-rendered by the survivor;
- both end-of-job ``checkframes`` audits are empty;
- nothing starves (the ``rave_farm_starved_jobs`` signal stays quiet);
- the same seed replays the whole story byte for byte.

A second, direct-drive half pins the bounded-wait property without the
controller in the way: whatever the job mix, no job in the top
priority class waits more than a weight-sum of leases for its turn,
and lower classes drain as soon as the class above them does.
"""

import pytest

from repro import obs
from repro.data.generators import galleon
from repro.farm import FRAME_DONE, FRAME_LEASED, RenderJob
from repro.network.faults import FaultInjector
from repro.services.protocol import unframe_farm_lease
from repro.testbed import build_testbed

SCENE = "scene"
LONG_SCENE, SHORT_SCENE = "scene-long", "scene-short"
LONG, SHORT = "anim-long", "anim-short"
LONG_FRAMES, SHORT_FRAMES = 40, 3


def run_scenario(seed):
    """Long job underway; short high-priority job arrives; crash.

    The short job renders a different scene, so its first lease on each
    worker pays the multi-second render-session bootstrap — a wide,
    deterministic window for the injector to kill the lease holder
    mid-render (the same trick as ``test_farm_chaos``).
    """
    tb = build_testbed(farm=True)
    tb.publish_model(LONG_SCENE, galleon(2000))
    tb.publish_model(SHORT_SCENE, galleon(2000))
    queue = tb.farm_queue
    sim = tb.network.sim

    with obs.observed(clock=tb.clock) as bundle:
        inj = FaultInjector(tb.network, seed=seed)
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"),
                              dead_after=2.0)
        queue.submit(RenderJob(job_id=LONG, session_id=LONG_SCENE,
                               start_frame=1, end_frame=LONG_FRAMES,
                               priority=0, tenant="batch"))
        farm.start()
        # the long job is running (both workers hold its leases and are
        # deep in the session bootstrap) when the short job lands
        sim.run_until(sim.now + 1.0)
        assert queue.active_leases() == 2
        assert queue.job(LONG).done_frames == 0
        queue.submit(RenderJob(job_id=SHORT, session_id=SHORT_SCENE,
                               start_frame=1, end_frame=SHORT_FRAMES,
                               priority=1, tenant="viz"))
        # wait until a worker actually holds one of the short job's
        # frames, then kill that worker mid-render
        deadline = sim.now + 300.0
        victim = None
        while victim is None and sim.now < deadline:
            sim.run_until(sim.now + 0.25)
            for record in queue.job(SHORT).frames.values():
                if record.state == FRAME_LEASED:
                    victim = record.worker          # "rs-<host>"
                    break
        assert victim is not None, "short job never got a lease"
        inj.schedule_crash(sim.now + 0.25, victim.removeprefix("rs-"))
        while not (queue.job(SHORT).finished
                   and queue.job(LONG).finished) and sim.now < deadline:
            sim.run_until(sim.now + 0.5)
        story = [(e.kind, e.detail) for e in bundle.recorder.events()]
    # how far the long job had got when the short one finished — from
    # the ledger's timestamps, not wall sampling (the long job's tail
    # can rip through in well under one polling step)
    short_done_at = queue.job(SHORT).finished_at
    long_done_at_short_finish = sum(
        1 for f in queue.job(LONG).frames.values()
        if f.completed_at and f.completed_at <= short_done_at)
    return tb, farm, queue, long_done_at_short_finish, story


class TestMixedPriorityChaos:
    @pytest.fixture(scope="class")
    def scenario(self):
        return run_scenario(seed=17)

    def test_short_job_finishes_before_the_long_jobs_midpoint(
            self, scenario):
        _, _, queue, long_done, _ = scenario
        assert queue.job(SHORT).finished
        assert long_done < LONG_FRAMES // 2, (
            f"long job was {long_done}/{LONG_FRAMES} done when the "
            f"short job finished — no preemption happened")

    def test_the_crash_cost_time_not_frames(self, scenario):
        _, farm, queue, _, _ = scenario
        assert farm.frames_lost >= 1
        killed = [f for f in queue.job(SHORT).frames.values()
                  if f.requeues == 1]
        assert killed, "no short-job frame was ever re-queued"
        assert all(f.state == FRAME_DONE for f in killed)
        assert queue.duplicates_dropped == 0

    def test_both_audits_end_empty(self, scenario):
        _, _, queue, _, _ = scenario
        assert queue.job(LONG).finished
        assert queue.audit(LONG) == []
        assert queue.audit(SHORT) == []
        assert queue.frames_completed == LONG_FRAMES + SHORT_FRAMES

    def test_nothing_starved(self, scenario):
        _, _, queue, _, story = scenario
        assert queue.starved_jobs() == []
        assert all(kind != "farm:starved" for kind, _ in story)

    def test_the_story_shows_the_preemption(self, scenario):
        _, _, _, _, story = scenario
        # every short-job lease left at priority 1; the long job's
        # completions resumed only after the short job was done
        short_leases = [d for k, d in story
                        if k == "farm:lease" and SHORT in d]
        assert short_leases
        assert all("priority 1" in d for d in short_leases)
        short_done = next(i for i, (k, d) in enumerate(story)
                          if k == "farm:job-done" and SHORT in d)
        long_done = next(i for i, (k, d) in enumerate(story)
                         if k == "farm:job-done" and LONG in d)
        assert short_done < long_done

    def test_same_seed_same_story(self):
        *_, q1, d1, s1 = run_scenario(seed=23)
        *_, q2, d2, s2 = run_scenario(seed=23)
        assert s1 == s2
        assert d1 == d2
        assert q1.describe() == q2.describe()


class TestBoundedWaitProperty:
    """Direct-drive lease/complete loops against the DRR bound."""

    def drive(self, jobs, workers=2, rounds=400):
        """Lease/complete with a fixed pool until every job drains.

        Returns the full lease order (job ids) for gap analysis.
        """
        tb = build_testbed(farm=True)
        tb.publish_model(SCENE, galleon(2000))
        queue = tb.farm_queue
        for job in jobs:
            queue.submit(job)
        from repro.services.protocol import FarmResult, frame_farm_result

        order = []
        held = {}
        for _ in range(rounds):
            for w in [f"w{i}" for i in range(workers)]:
                if w not in held:
                    data = queue.lease(w)
                    if data is not None:
                        held[w] = unframe_farm_lease(data)
                        order.append(held[w].job_id)
            # everyone renders one tick, then completes
            tb.network.sim.clock.advance(0.1)
            for w, lease in list(held.items()):
                queue.complete(frame_farm_result(FarmResult(
                    job_id=lease.job_id, frame=lease.frame, worker=w,
                    render_seconds=0.1, nbytes=64)))
                del held[w]
            if all(j.finished for j in queue.jobs()):
                break
        assert all(j.finished for j in queue.jobs()), "a job never drained"
        return queue, order

    @staticmethod
    def job(job_id, frames, **kwargs):
        return RenderJob(job_id=job_id, session_id=SCENE,
                         start_frame=1, end_frame=frames, **kwargs)

    @pytest.mark.parametrize("weights", [
        (1.0, 1.0, 1.0),
        (2.0, 1.0, 1.0),
        (4.0, 2.0, 1.0),
        (1.0, 3.0, 1.0, 2.0),
    ])
    def test_no_job_waits_more_than_the_weight_sum(self, weights):
        jobs = [self.job(f"job-{i}", 20, weight=w)
                for i, w in enumerate(weights)]
        _, order = self.drive(jobs)
        window = int(sum(weights)) + 1
        for i in range(len(weights)):
            turns = [k for k, j in enumerate(order) if j == f"job-{i}"]
            worst = max(b - a for a, b in zip(turns, turns[1:]))
            assert worst <= window, (
                f"job-{i} (weight {weights[i]}) waited {worst} leases")

    def test_lower_class_drains_once_the_upper_one_does(self):
        jobs = [self.job("bg", 12, priority=0),
                self.job("fg", 6, priority=2)]
        queue, order = self.drive(jobs)
        # strict priority: not a single background lease before the
        # foreground job's last frame went out
        last_fg = max(k for k, j in enumerate(order) if j == "fg")
        assert all(j == "fg" for j in order[:last_fg + 1])
        assert queue.job("bg").finished

    def test_starved_signal_fires_only_past_the_threshold(self):
        tb = build_testbed(farm={"starvation_after": 2.0})
        tb.publish_model(SCENE, galleon(2000))
        queue = tb.farm_queue
        queue.submit(self.job("waiting", 4))
        tb.network.sim.clock.advance(1.0)
        assert queue.starved_jobs() == []
        tb.network.sim.clock.advance(1.5)
        assert queue.starved_jobs() == ["waiting"]
