"""End-to-end scenarios across the whole stack.

Each test walks one of the paper's demonstrated workflows over the full
simulated testbed: discovery → bootstrap → collaboration → distribution →
migration → fail-over.
"""

import numpy as np
import pytest

from repro.compression import AdaptiveCodec, BandwidthEstimator
from repro.core.session import CollaborativeSession
from repro.data.generators import galleon, skeletal_hand
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree


class TestTestbedConstruction:
    def test_default_topology(self, testbed):
        assert set(testbed.render_services) == {
            "onyx", "v880z", "centrino", "xeon", "athlon"}
        assert testbed.data_service.host == "xeon"
        # every wired pair routable, PDA reachable over wireless
        assert testbed.network.transfer_time("onyx", "centrino", 1000) > 0
        assert testbed.network.transfer_time("xeon", "zaurus", 1000) > 0

    def test_registry_prepopulated(self, testbed):
        from repro.core.recruitment import RAVE_BUSINESS, RENDER_TMODEL

        business = testbed.registry.find_business(RAVE_BUSINESS)
        tm = testbed.registry.find_tmodel(RENDER_TMODEL)
        services = testbed.registry.find_services(business.business_key,
                                                  tm.key)
        assert len(services) == 5

    def test_unknown_host_rejected(self):
        from repro.errors import ServiceError
        from repro.testbed import build_testbed

        with pytest.raises(ServiceError):
            build_testbed(render_hosts=("cray",))

    def test_quickstart_path(self, testbed):
        """The README quickstart, verbatim."""
        testbed.publish_model("demo", galleon().normalized())
        rs = testbed.render_service("centrino")
        rsession, boot = rs.create_render_session(testbed.data_service,
                                                  "demo")
        client = testbed.thin_client("viewer")
        client.attach(rs, rsession.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))
        frame, timing = client.request_frame(200, 200)
        assert frame.coverage() > 0.02
        assert 1.0 < timing.fps < 10.0


class TestFigure3Collaboration:
    """Two users, one dataset, avatars visible to each other."""

    def test_two_user_session(self, testbed):
        testbed.publish_model("hand", skeletal_hand(8000).normalized())
        alice = testbed.active_client("alice", "athlon")
        bob = testbed.active_client("bob", "centrino")
        alice.join(testbed.data_service, "hand")
        bob.join(testbed.data_service, "hand")
        a_avatar = alice.announce_avatar()
        b_avatar = bob.announce_avatar()

        # bob navigates; alice's copy tracks him
        bob.move(position=(0.0, 2.5, 1.0))
        assert np.allclose(alice.tree.node(b_avatar).position,
                           [0.0, 2.5, 1.0])

        # alice renders and sees bob's cone (but, excluding herself,
        # only one avatar besides the data)
        alice.camera.look(position=(2.0, -2.0, 1.0))
        fb, _ = alice.render(96, 96)
        assert fb.coverage() > 0.01
        avatars = [n for n in alice.tree
                   if n.TYPE == "avatar"]
        assert {a.user for a in avatars} == {"alice", "bob"}
        assert a_avatar != b_avatar

    def test_thin_client_joins_big_display_session(self, testbed):
        """The paper's PDA-meets-Immersadesk story: a hand-held interacts
        with a user on a large immersive display."""
        testbed.publish_model("hand", skeletal_hand(8000).normalized())
        wall_user = testbed.active_client("wall", "onyx")
        wall_user.join(testbed.data_service, "hand")
        wall_user.announce_avatar()

        rs = testbed.render_service("centrino")
        rsession, _ = rs.create_render_session(testbed.data_service, "hand")
        pda = testbed.thin_client("pda-user")
        pda.attach(rs, rsession.render_session_id)
        pda.move_camera(position=(1.5, 1.5, 1.0))
        frame, timing = pda.request_frame(200, 200)
        # the wall user's avatar is in the render service's scene copy
        users = {n.user for n in rsession.tree if n.TYPE == "avatar"}
        assert "wall" in users
        assert timing.fps > 0.5


class TestAsynchronousCollaboration:
    def test_record_then_append_later(self, testbed, tmp_path):
        """§3.1.1: a user appends to a recorded session."""
        from repro.scenegraph.updates import AddNode, SetProperty
        from repro.scenegraph.nodes import AvatarNode

        testbed.publish_model("rec", galleon().normalized())
        ship_id = testbed.data_service.session("rec").tree.find_by_name(
            "galleon")[0].node_id
        testbed.data_service.publish_update("rec", SetProperty(
            node_id=ship_id, field_name="name", value="renamed-day1"))
        path = tmp_path / "day1.rave"
        testbed.data_service.save_session("rec", path)

        # day 2: a different data service resumes the session
        day2 = testbed.data_service.load_session("rec-day2", path)
        assert day2.tree.node(ship_id).name == "renamed-day1"
        testbed.data_service.publish_update("rec-day2", AddNode.of(
            AvatarNode("late-user"), parent_id=0,
            node_id=max(n.node_id for n in day2.tree) + 1))
        assert any(n.TYPE == "avatar" for n in day2.tree)


class TestWorkloadDistributionEndToEnd:
    def test_overwhelming_dataset_spreads_and_renders(self, testbed):
        tree = SceneTree("big")
        tree.add(MeshNode(skeletal_hand(30_000).normalized(), name="hand"))
        testbed.publish_tree("big", tree)
        cs = CollaborativeSession(testbed.data_service, "big",
                                  target_fps=2000,   # forces distribution
                                  recruiter=testbed.recruiter())
        placement = cs.place_dataset()
        assert placement.mode == "dataset-distributed"
        holders = [s for s in cs.render_services if cs.share_of(s)]
        assert len(holders) >= 2

        from repro.scenegraph.nodes import CameraNode

        fb, latency = cs.render_composite(
            CameraNode(position=(0.4, 2.2, 1.0)), 96, 96)
        assert fb.coverage() > 0.02
        assert latency > 0

    def test_migration_after_console_user_returns(self, testbed):
        """§6: 'we can stop using a machine once it becomes loaded by ...
        a local user logging on'."""
        from repro.core.migration import LoadSample

        tree = SceneTree("mig")
        tree.add(MeshNode(skeletal_hand(20_000).normalized(), name="hand"))
        testbed.publish_tree("mig", tree)
        cs = CollaborativeSession(testbed.data_service, "mig",
                                  target_fps=1500,
                                  recruiter=testbed.recruiter())
        cs.migrator.smoothing_seconds = 0.5
        cs.place_dataset()
        holders = [s for s in cs.render_services if cs.share_of(s)]
        victim = holders[0]
        committed_before = victim.committed_polygons()
        # the console user logs in: the service's frame rate collapses
        t0 = testbed.clock.now
        for i in range(10):
            cs.migrator.tracker(victim.name).record(LoadSample(
                time=t0 + i * 0.2, fps=1.0,
                utilisation=victim.utilisation(cs.target_fps)))
        actions = cs.rebalance()
        moved = [a for a in actions if a.source == victim.name]
        assert moved, "overloaded service should shed work"
        assert victim.committed_polygons() < committed_before
        receiver_names = {a.destination for a in moved}
        assert any(s.name in receiver_names and s.committed_polygons() > 0
                   for s in cs.render_services)


class TestFailover:
    def test_mirrored_data_service_takes_over(self, testbed):
        from repro.services.container import ServiceContainer
        from repro.services.data_service import DataService

        testbed.publish_model("ha", galleon().normalized())
        mirror_container = ServiceContainer("athlon", testbed.network,
                                            http_port=9290)
        mirror = DataService("rave-mirror", mirror_container)
        testbed.data_service.add_mirror(mirror)

        # updates replicate
        from repro.scenegraph.updates import SetProperty

        ship_id = testbed.data_service.session("ha").tree.find_by_name(
            "galleon")[0].node_id
        testbed.data_service.publish_update("ha", SetProperty(
            node_id=ship_id, field_name="name", value="after-update"))

        # primary's host drops off the network; a render service
        # bootstraps from the mirror instead
        backup = testbed.data_service.failover_to("ha")
        rs = testbed.render_service("centrino")
        session, timing = rs.create_render_session(backup, "ha")
        assert session.tree.node(ship_id).name == "after-update"


class TestAdaptiveStreamingEndToEnd:
    def test_quality_degradation_keeps_frames_flowing(self, testbed):
        """Future-work §6 implemented: codec adapts as the PDA user walks
        away from the access point."""
        testbed.publish_model("walk", galleon().normalized())
        rs = testbed.render_service("centrino")
        rsession, _ = rs.create_render_session(testbed.data_service, "walk")
        client = testbed.thin_client("walker")
        client.attach(rs, rsession.render_session_id)
        client.move_camera(position=(2.2, 1.4, 1.2))

        estimator = BandwidthEstimator(initial_bps=4.8e6)
        codec = AdaptiveCodec(estimator, latency_budget=0.25)
        latencies = []
        background = np.array([12, 12, 24], dtype=np.uint8)
        for quality in (1.0, 0.5, 0.2, 0.1):
            testbed.wireless.set_signal_quality("zaurus", quality)
            fb, timing = client.request_frame(200, 200, codec=codec)
            estimator.observe(timing.nbytes, timing.image_receipt_seconds)
            latencies.append(timing.total_latency)
            # decoded thin-client frames carry color only (no depth), so
            # judge coverage by non-background pixels
            drawn = (fb.color != background).any(axis=2).mean()
            assert drawn > 0.02
        # adaptation keeps the worst-case latency bounded far below the
        # raw-transfer cost at 10% signal (~2.2 s)
        assert latencies[-1] < 1.5
        assert codec.choices[-1].codec_name != "raw"
