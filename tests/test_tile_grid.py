"""The 2D tile-grid distribution mode."""

import pytest

from repro.core.distribution import FramebufferDistributor
from repro.render.compositor import check_tiling


@pytest.fixture
def dist():
    return FramebufferDistributor()


class TestPlanGrid:
    def test_grid_covers_target(self, dist):
        plan = dist.plan_grid(120, 80, 3, 2, "local",
                              {"a": 1.0, "b": 1.0})
        check_tiling(120, 80, [a.tile for a in plan.assignments])
        assert len(plan.assignments) == 6

    def test_every_service_gets_a_tile(self, dist):
        plan = dist.plan_grid(100, 100, 2, 2, "local", {"a": 10.0})
        names = {a.service_name for a in plan.assignments}
        assert names == {"local", "a"}

    def test_counts_proportional_to_weight(self, dist):
        plan = dist.plan_grid(160, 160, 4, 4, "local",
                              {"fast": 6.0, "slow": 1.0},
                              local_share=1.0)
        counts = {}
        for a in plan.assignments:
            counts[a.service_name] = counts.get(a.service_name, 0) + 1
        assert sum(counts.values()) == 16
        assert counts["fast"] > 3 * counts["slow"]

    def test_local_takes_first_cells(self, dist):
        plan = dist.plan_grid(100, 100, 2, 2, "local", {"a": 1.0})
        assert plan.assignments[0].local
        assert plan.assignments[0].tile.x0 == 0
        assert plan.assignments[0].tile.y0 == 0

    def test_too_many_services_for_grid(self, dist):
        with pytest.raises(ValueError):
            dist.plan_grid(100, 100, 2, 1, "local",
                           {"a": 1.0, "b": 1.0, "c": 1.0})

    def test_invalid_weight(self, dist):
        with pytest.raises(ValueError):
            dist.plan_grid(100, 100, 2, 2, "local", {"a": 0.0})

    def test_no_assistants(self, dist):
        plan = dist.plan_grid(100, 100, 2, 2, "local", {})
        assert all(a.service_name == "local" for a in plan.assignments)
        assert len(plan.assignments) == 4

    def test_tiles_of_by_service(self, dist):
        plan = dist.plan_grid(100, 100, 3, 3, "local", {"a": 2.0})
        assert len(plan.tiles_of("local")) + len(plan.tiles_of("a")) == 9


class TestGridRendering:
    def test_grid_assembles_to_monolithic(self, dist, small_galleon):
        """Grid tiles reassemble pixel-exactly, like column strips."""
        import numpy as np

        from repro.render.camera import Camera
        from repro.render.compositor import assemble_tiles
        from repro.render.framebuffer import FrameBuffer
        from repro.render.rasterizer import rasterize_mesh

        cam = Camera.looking_at((2.2, 1.4, 1.2))
        mono = FrameBuffer(96, 96)
        rasterize_mesh(small_galleon, cam, mono)

        plan = dist.plan_grid(96, 96, 2, 2, "local", {"a": 1.0})
        target = FrameBuffer(96, 96)
        assemble_tiles(target,
                       [(a.tile, mono.extract(a.tile))
                        for a in plan.assignments])
        assert np.array_equal(target.color, mono.color)
