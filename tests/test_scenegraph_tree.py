"""SceneTree: ids, traversal, transforms, subtree extraction, serialisation."""

import numpy as np
import pytest

from repro.errors import SceneGraphError
from repro.scenegraph.nodes import (
    GroupNode,
    MeshNode,
    TransformNode,
)
from repro.scenegraph.tree import SceneTree


class TestRegistry:
    def test_root_has_id_zero(self):
        tree = SceneTree()
        assert tree.root.node_id == 0
        assert 0 in tree

    def test_ids_unique_and_stable(self, quad):
        tree = SceneTree()
        a = tree.add(GroupNode("a"))
        b = tree.add(MeshNode(quad), parent=a)
        assert a.node_id != b.node_id
        assert tree.node(b.node_id) is b

    def test_add_prebuilt_subtree_registers_all(self, quad):
        tree = SceneTree()
        group = GroupNode("g")
        group.add_child(MeshNode(quad))
        tree.add(group)
        assert len(tree) == 3  # root + group + mesh
        assert all(n.node_id >= 0 for n in tree)

    def test_remove_releases_ids(self, quad):
        tree = SceneTree()
        g = tree.add(GroupNode("g"))
        m = tree.add(MeshNode(quad), parent=g)
        mid = m.node_id
        tree.remove(g)
        assert mid not in tree
        assert m.node_id == -1

    def test_cannot_remove_root(self):
        tree = SceneTree()
        with pytest.raises(SceneGraphError):
            tree.remove(tree.root)

    def test_unknown_id_raises(self):
        with pytest.raises(SceneGraphError):
            SceneTree().node(42)

    def test_explicit_id(self):
        tree = SceneTree()
        n = tree.add(GroupNode(), node_id=77)
        assert n.node_id == 77
        with pytest.raises(SceneGraphError):
            tree.add(GroupNode(), node_id=77)

    def test_detached_parent_rejected(self):
        tree = SceneTree()
        orphan = GroupNode()
        with pytest.raises(SceneGraphError):
            tree.add(GroupNode(), parent=orphan)


class TestQueries:
    def test_find_by_name(self, simple_tree):
        assert len(simple_tree.find_by_name("quad")) == 1

    def test_geometry_nodes(self, simple_tree):
        geo = simple_tree.geometry_nodes()
        assert len(geo) == 1
        assert geo[0].name == "quad"

    def test_cameras(self, simple_tree):
        assert len(simple_tree.cameras()) == 1

    def test_total_polygons(self, simple_tree):
        assert simple_tree.total_polygons() == 2

    def test_path_to_root(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        path = simple_tree.path_to_root(mesh)
        assert path[0] is mesh
        assert path[-1] is simple_tree.root
        assert len(path) == 3


class TestWorldTransforms:
    def test_identity_for_untransformed(self, simple_tree):
        cam = simple_tree.cameras()[0]
        assert np.allclose(simple_tree.world_transform(cam), np.eye(4))

    def test_single_transform(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        w = simple_tree.world_transform(mesh)
        assert np.allclose(w[:3, 3], [1, 0, 0])

    def test_nested_transforms_compose(self, quad):
        tree = SceneTree()
        outer = tree.add(TransformNode.from_translation((1, 0, 0)))
        inner = tree.add(TransformNode.from_scale(2.0), parent=outer)
        mesh = tree.add(MeshNode(quad), parent=inner)
        w = tree.world_transform(mesh)
        # scale applied inside translation
        p = w @ np.array([1.0, 0, 0, 1.0])
        assert np.allclose(p[:3], [3, 0, 0])


class TestSubtreeExtraction:
    def test_parent_chain_preserved(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        sub = simple_tree.extract_subtree([mesh.node_id])
        names = {n.name for n in sub}
        assert "xf" in names                 # the orienting transform
        assert "quad" in names
        assert "cam" not in names            # unrelated sibling omitted

    def test_world_transform_equal_in_subset(self, simple_tree):
        """The extracted subset must orient geometry exactly as the
        original — the workload-distribution correctness contract."""
        mesh = simple_tree.find_by_name("quad")[0]
        sub = simple_tree.extract_subtree([mesh.node_id])
        sub_mesh = sub.find_by_name("quad")[0]
        assert np.allclose(simple_tree.world_transform(mesh),
                           sub.world_transform(sub_mesh))

    def test_ids_preserved(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        sub = simple_tree.extract_subtree([mesh.node_id])
        assert mesh.node_id in sub
        assert sub.node(mesh.node_id).name == "quad"

    def test_camera_rides_along(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        cam = simple_tree.cameras()[0]
        sub = simple_tree.extract_subtree([mesh.node_id], camera=cam)
        assert len(sub.cameras()) == 1

    def test_whole_subtree_included(self, quad):
        tree = SceneTree()
        g = tree.add(GroupNode("g"))
        tree.add(MeshNode(quad, name="m1"), parent=g)
        tree.add(MeshNode(quad, name="m2"), parent=g)
        sub = tree.extract_subtree([g.node_id])
        assert sub.total_polygons() == 4

    def test_extraction_is_a_copy(self, simple_tree):
        mesh = simple_tree.find_by_name("quad")[0]
        sub = simple_tree.extract_subtree([mesh.node_id])
        sub.find_by_name("quad")[0].name = "renamed"
        assert simple_tree.find_by_name("quad")  # original untouched


class TestSerialisation:
    def test_roundtrip_structure(self, simple_tree):
        back = SceneTree.from_wire(simple_tree.to_wire())
        assert len(back) == len(simple_tree)
        assert back.total_polygons() == simple_tree.total_polygons()
        assert {n.name for n in back} == {n.name for n in simple_tree}

    def test_roundtrip_preserves_ids(self, simple_tree):
        back = SceneTree.from_wire(simple_tree.to_wire())
        for node in simple_tree:
            if node is simple_tree.root:
                continue
            assert node.node_id in back
            assert back.node(node.node_id).TYPE == node.TYPE

    def test_roundtrip_transform_values(self, simple_tree):
        back = SceneTree.from_wire(simple_tree.to_wire())
        xf = back.find_by_name("xf")[0]
        assert np.allclose(xf.matrix[:3, 3], [1, 0, 0])

    def test_empty_tree(self):
        back = SceneTree.from_wire(SceneTree("empty").to_wire())
        assert len(back) == 1
        assert back.name == "empty"
