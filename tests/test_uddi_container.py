"""UDDI registry/client and the service container."""

import pytest

from repro.errors import DiscoveryError, ServiceError
from repro.network.simnet import Network
from repro.services.container import (
    INSTANCE_CREATION_SECONDS,
    ServiceContainer,
)
from repro.services.protocol import frame_message, unframe_message
from repro.services.uddi import (
    AccessPoint,
    UddiClient,
    UddiRegistry,
)
from repro.services.wsdl import DATA_SERVICE_WSDL, RENDER_SERVICE_WSDL


@pytest.fixture
def registry():
    reg = UddiRegistry()
    biz = reg.register_business("RAVE project", "testbed")
    render_tm = reg.register_tmodel("RaveRenderService",
                                    RENDER_SERVICE_WSDL)
    data_tm = reg.register_tmodel("RaveDataService", DATA_SERVICE_WSDL)
    reg.register_service(biz.business_key, "render@tower",
                         AccessPoint("http://tower:8080/axis/r", "tower"),
                         [render_tm])
    reg.register_service(biz.business_key, "data@adrenochrome",
                         AccessPoint("http://adreno:8080/axis/d",
                                     "adrenochrome"),
                         [data_tm])
    return reg, biz, render_tm, data_tm


class TestRegistry:
    def test_find_business(self, registry):
        reg, biz, *_ = registry
        assert reg.find_business("RAVE project") is biz
        with pytest.raises(DiscoveryError):
            reg.find_business("ghost corp")

    def test_tmodel_idempotent_per_signature(self, registry):
        reg, *_ = registry
        again = reg.register_tmodel("RenamedButSameApi",
                                    RENDER_SERVICE_WSDL)
        assert again.name == "RaveRenderService"  # the original

    def test_find_services_filtered_by_tmodel(self, registry):
        reg, biz, render_tm, data_tm = registry
        render = reg.find_services(biz.business_key, render_tm.key)
        assert [s.name for s in render] == ["render@tower"]
        everything = reg.find_services(biz.business_key)
        assert len(everything) == 2

    def test_access_points(self, registry):
        reg, biz, render_tm, _ = registry
        points = reg.access_points(
            reg.find_services(biz.business_key, render_tm.key))
        assert points[0].host == "tower"

    def test_services_matching_wsdl(self, registry):
        reg, *_ = registry
        matches = reg.services_matching_wsdl(RENDER_SERVICE_WSDL)
        assert [s.name for s in matches] == ["render@tower"]

    def test_unregister(self, registry):
        reg, biz, render_tm, _ = registry
        svc = reg.find_services(biz.business_key, render_tm.key)[0]
        reg.unregister_service(biz.business_key, svc.service_key)
        assert not reg.find_services(biz.business_key, render_tm.key)
        with pytest.raises(DiscoveryError):
            reg.unregister_service(biz.business_key, svc.service_key)

    def test_find_tmodel_missing(self, registry):
        reg, *_ = registry
        with pytest.raises(DiscoveryError):
            reg.find_tmodel("nope")


@pytest.fixture
def uddi_net(registry):
    reg, *_ = registry
    net = Network()
    net.add_host("client")
    net.add_host("registry-host")
    net.add_link("client", "registry-host", 100e6, 0.0002)
    client = UddiClient(reg, net, "client", "registry-host")
    return reg, net, client


class TestUddiClient:
    def test_full_bootstrap_timing(self, uddi_net):
        """Table 5: full bootstrap 4.2–4.8 s."""
        _, _, client = uddi_net
        result = client.full_bootstrap("RAVE project", "RaveRenderService")
        assert 4.2 <= result.elapsed_seconds <= 4.8
        assert result.queries == 3
        assert len(result.access_points) == 1

    def test_warm_scan_timing(self, uddi_net):
        """Table 5: warm access-point scan 0.70–0.73 s."""
        _, _, client = uddi_net
        client.full_bootstrap("RAVE project", "RaveRenderService")
        result = client.scan_access_points("RAVE project",
                                           "RaveRenderService")
        assert 0.68 <= result.elapsed_seconds <= 0.76
        assert result.queries == 1

    def test_scan_requires_proxy(self, uddi_net):
        _, _, client = uddi_net
        with pytest.raises(DiscoveryError):
            client.scan_access_points("RAVE project", "RaveRenderService")

    def test_proxy_creation_idempotent(self, uddi_net):
        _, net, client = uddi_net
        first = client.create_proxy()
        second = client.create_proxy()
        assert first > 0 and second == 0.0

    def test_scan_sees_new_registrations(self, uddi_net):
        reg, _, client = uddi_net
        client.full_bootstrap("RAVE project", "RaveRenderService")
        biz = reg.find_business("RAVE project")
        tm = reg.find_tmodel("RaveRenderService")
        reg.register_service(biz.business_key, "render@newbox",
                             AccessPoint("http://newbox:8080/axis/r",
                                         "newbox"), [tm])
        result = client.scan_access_points("RAVE project",
                                           "RaveRenderService")
        assert len(result.access_points) == 2


class TestContainer:
    @pytest.fixture
    def container(self):
        net = Network()
        net.add_host("tower", profile="athlon")
        return ServiceContainer("tower", net, profile="athlon")

    def test_deploy_and_endpoint(self, container):
        url = container.deploy(RENDER_SERVICE_WSDL)
        assert url == "http://tower:8080/axis/RaveRenderService"
        assert container.wsdl_for("RaveRenderService").endpoint == url

    def test_duplicate_deploy(self, container):
        container.deploy(RENDER_SERVICE_WSDL)
        with pytest.raises(ServiceError):
            container.deploy(RENDER_SERVICE_WSDL)

    def test_unknown_service(self, container):
        with pytest.raises(ServiceError):
            container.wsdl_for("ghost")

    def test_instance_creation_charges_time(self, container):
        before = container.network.sim.clock.now
        inst = container.create_instance("render", label="Skull-internal")
        elapsed = container.network.sim.clock.now - before
        # athlon cpu_factor is 0.75 → slower than the reference
        assert elapsed == pytest.approx(INSTANCE_CREATION_SECONDS / 0.75)
        assert inst.label == "Skull-internal"

    def test_instance_creation_uncharged_for_tests(self, container):
        before = container.network.sim.clock.now
        container.create_instance("data", charge_time=False)
        assert container.network.sim.clock.now == before

    def test_instances_filtered_by_kind(self, container):
        container.create_instance("data", charge_time=False)
        container.create_instance("render", charge_time=False)
        container.create_instance("render", charge_time=False)
        assert len(container.instances("render")) == 2
        assert len(container.instances()) == 3

    def test_destroy_instance(self, container):
        inst = container.create_instance("render", charge_time=False)
        container.destroy_instance(inst.instance_id)
        with pytest.raises(ServiceError):
            container.instance(inst.instance_id)

    def test_host_must_exist(self):
        net = Network()
        with pytest.raises(ServiceError):
            ServiceContainer("ghost", net)


class TestFraming:
    def test_roundtrip(self):
        header, body = unframe_message(frame_message(b"hello", flags=3))
        assert body == b"hello"
        assert header.flags == 3
        assert header.length == 5

    def test_bad_magic(self):
        from repro.errors import MarshallingError

        with pytest.raises(MarshallingError):
            unframe_message(b"\x00" * 30)

    def test_truncated(self):
        from repro.errors import MarshallingError

        with pytest.raises(MarshallingError):
            unframe_message(frame_message(b"hello")[:-2])

    def test_corrupted_payload_detected(self):
        from repro.errors import MarshallingError

        framed = bytearray(frame_message(b"hello world"))
        framed[-1] ^= 0xFF
        with pytest.raises(MarshallingError):
            unframe_message(bytes(framed))
