"""Stereo rendering for the immersive displays (Immersadesk / Workwall)."""

import numpy as np
import pytest

from repro.data.generators import uv_sphere
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.rasterizer import rasterize_mesh
from repro.render.stereo import (
    DEFAULT_EYE_SEPARATION,
    render_stereo,
    stereo_cameras,
)


@pytest.fixture
def cam():
    return Camera.looking_at((0, -3, 0), target=(0, 0, 0), up=(0, 0, 1))


@pytest.fixture
def ball():
    return uv_sphere(radius=0.6, nu=24, nv=24)


def draw_for(mesh):
    def draw(camera, fb):
        rasterize_mesh(mesh, camera, fb)
    return draw


class TestStereoCameras:
    def test_eyes_offset_along_right_axis(self, cam):
        left, right = stereo_cameras(cam, eye_separation=0.1)
        gap = right.position - left.position
        assert np.linalg.norm(gap) == pytest.approx(0.1)
        # the offset is perpendicular to the view direction
        fwd = cam.target - cam.position
        assert abs(float(gap @ fwd)) < 1e-9

    def test_eyes_share_target(self, cam):
        left, right = stereo_cameras(cam)
        assert np.allclose(left.target, right.target)

    def test_head_tracking_shifts_both_eyes(self, cam):
        l0, r0 = stereo_cameras(cam)
        l1, r1 = stereo_cameras(cam, head_offset=(0.5, 0.0, 0.0))
        assert np.linalg.norm(l1.position - l0.position) == \
            pytest.approx(0.5)
        assert np.linalg.norm(r1.position - r0.position) == \
            pytest.approx(0.5)

    def test_invalid_separation(self, cam):
        with pytest.raises(RenderError):
            stereo_cameras(cam, eye_separation=0)

    def test_degenerate_camera(self):
        bad = Camera.looking_at((0, 0, 0), target=(0, 0, 0))
        with pytest.raises(RenderError):
            stereo_cameras(bad)

    def test_up_parallel_to_view_recovered(self):
        cam = Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 0, 1))
        left, right = stereo_cameras(cam)
        assert np.isfinite(left.position).all()
        assert not np.allclose(left.position, right.position)


class TestStereoRendering:
    def test_pair_renders_both_eyes(self, cam, ball):
        pair = render_stereo(draw_for(ball), cam, 96, 96)
        assert pair.left.coverage() > 0.05
        assert pair.right.coverage() > 0.05
        assert pair.eye_separation == DEFAULT_EYE_SEPARATION

    def test_eyes_see_different_images(self, cam, ball):
        pair = render_stereo(draw_for(ball), cam, 96, 96,
                             eye_separation=0.4)
        assert pair.left.mean_abs_diff(pair.right) > 0.1

    def test_disparity_grows_with_separation(self, cam, ball):
        narrow = render_stereo(draw_for(ball), cam, 96, 96,
                               eye_separation=0.05)
        wide = render_stereo(draw_for(ball), cam, 96, 96,
                             eye_separation=0.5)
        assert wide.disparity_stats()[0] > narrow.disparity_stats()[0]

    def test_nearer_object_more_disparity(self, cam):
        near = uv_sphere(radius=0.3, nu=16, nv=16, center=(0, -1.5, 0))
        far = uv_sphere(radius=0.3, nu=16, nv=16, center=(0, 1.5, 0))
        sep = 0.4
        near_pair = render_stereo(draw_for(near), cam, 96, 96,
                                  eye_separation=sep)
        far_pair = render_stereo(draw_for(far), cam, 96, 96,
                                 eye_separation=sep)
        assert near_pair.disparity_stats()[0] > \
            far_pair.disparity_stats()[0]

    def test_anaglyph_composites_channels(self, cam, ball):
        pair = render_stereo(draw_for(ball), cam, 96, 96,
                             eye_separation=0.4)
        ana = pair.anaglyph()
        # left eye only in red, right eye only in cyan
        left_lum = pair.left.color.mean(axis=2)
        assert np.array_equal(ana.color[..., 0],
                              left_lum.astype(np.uint8))
        assert np.array_equal(ana.color[..., 1], ana.color[..., 2])
        assert np.isfinite(ana.depth).any()

    def test_empty_scene_zero_disparity(self, cam):
        def draw(camera, fb):
            pass
        pair = render_stereo(draw, cam, 32, 32)
        assert pair.disparity_stats() == (0.0, 0.0)
