"""Capacity metrics and node/tile cost accounting."""

import numpy as np
import pytest

from repro.core.capacity import DEFAULT_TARGET_FPS, capacity_from_profile
from repro.core.cost import NodeCost, node_cost, subtree_cost, tile_cost, \
    tree_cost
from repro.data.volumes import visible_human_phantom
from repro.hardware.profiles import get_profile
from repro.render.framebuffer import Tile
from repro.scenegraph.nodes import (
    GroupNode,
    MeshNode,
    PointCloudNode,
    VolumeNode,
)


@pytest.fixture
def centrino_cap():
    return capacity_from_profile(get_profile("centrino"))


class TestRenderCapacity:
    def test_polygon_budget(self, centrino_cap):
        budget = centrino_cap.polygon_budget(target_fps=10.0)
        assert budget == pytest.approx(8.4e6 / 10)

    def test_budget_fps_inverse(self, centrino_cap):
        assert (centrino_cap.polygon_budget(30.0)
                < centrino_cap.polygon_budget(10.0))

    def test_invalid_fps(self, centrino_cap):
        with pytest.raises(ValueError):
            centrino_cap.polygon_budget(0)
        with pytest.raises(ValueError):
            centrino_cap.point_budget(-1)
        with pytest.raises(ValueError):
            centrino_cap.voxel_budget(0)

    def test_volume_capacity_follows_profile(self):
        onyx = capacity_from_profile(get_profile("onyx"))
        centrino = capacity_from_profile(get_profile("centrino"))
        assert onyx.volume_support and onyx.voxels_per_second > 0
        assert not centrino.volume_support
        assert centrino.voxels_per_second == 0


class TestNodeCost:
    def test_mesh_node(self, quad):
        c = node_cost(MeshNode(quad))
        assert c.polygons == 2
        assert c.points == 0
        assert c.payload_bytes == quad.byte_size
        assert not c.is_empty

    def test_group_empty(self):
        assert node_cost(GroupNode()).is_empty

    def test_volume_node_textures(self):
        node = VolumeNode(visible_human_phantom(10))
        c = node_cost(node)
        assert c.voxels == 1000
        assert c.texture_bytes == node.payload_bytes

    def test_addition(self, quad):
        a = node_cost(MeshNode(quad))
        b = node_cost(PointCloudNode(np.zeros((5, 3), np.float32)))
        total = a + b
        assert total.polygons == 2 and total.points == 5

    def test_subtree_cost_aggregates(self, quad):
        root = GroupNode()
        root.add_child(MeshNode(quad))
        root.add_child(MeshNode(quad))
        assert subtree_cost(root).polygons == 4

    def test_tree_cost(self, simple_tree):
        assert tree_cost(simple_tree).polygons == 2


class TestRenderLoad:
    def test_load_seconds(self, centrino_cap):
        c = NodeCost(polygons=840_000)
        assert c.render_load(centrino_cap) == pytest.approx(0.1)

    def test_unsupported_primitive_infinite(self, centrino_cap):
        c = NodeCost(voxels=100)
        assert c.render_load(centrino_cap) == float("inf")

    def test_fits_at_target(self, centrino_cap):
        ok = NodeCost(polygons=500_000)
        too_big = NodeCost(polygons=2_000_000)
        assert ok.fits(centrino_cap, target_fps=10.0)
        assert not too_big.fits(centrino_cap, target_fps=10.0)

    def test_fits_considers_committed(self, centrino_cap):
        committed = NodeCost(polygons=700_000)
        extra = NodeCost(polygons=300_000)
        assert not extra.fits(centrino_cap, target_fps=10.0,
                              committed=committed)

    def test_fits_checks_texture_memory(self, centrino_cap):
        c = NodeCost(polygons=10, texture_bytes=10**12)
        assert not c.fits(centrino_cap)

    def test_fits_checks_volume_support(self, centrino_cap):
        c = NodeCost(voxels=10)
        assert not c.fits(centrino_cap)
        onyx = capacity_from_profile(get_profile("onyx"))
        assert c.fits(onyx)


class TestTileCost:
    def test_geometry_not_reduced(self):
        scene = NodeCost(polygons=100_000, payload_bytes=10**6)
        half = tile_cost(Tile(0, 0, 50, 100), 100, 100, scene)
        assert half.polygons == 100_000         # full geometry pass
        assert half.payload_bytes == 500_000    # half the framebuffer

    def test_area_fraction(self):
        scene = NodeCost(polygons=10, payload_bytes=1000)
        quarter = tile_cost(Tile(0, 0, 50, 50), 100, 100, scene)
        assert quarter.payload_bytes == 250

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            tile_cost(Tile(0, 0, 1, 1), 0, 100, NodeCost())


class TestInterrogation:
    def test_interrogate_over_soap(self, small_testbed):
        from repro.core.capacity import interrogate

        tb = small_testbed
        service = tb.render_service("centrino")
        report = interrogate(service, tb.data_service.host)
        assert report.capacity.polygons_per_second == 8.4e6
        assert report.elapsed_seconds > 0
        assert report.service_name == "rs-centrino"
        assert report.headroom() == pytest.approx(
            8.4e6 / DEFAULT_TARGET_FPS)

    def test_headroom_shrinks_with_commitment(self, small_testbed):
        from repro.core.capacity import interrogate
        from repro.data.generators import galleon

        tb = small_testbed
        service = tb.render_service("centrino")
        before = interrogate(service, tb.data_service.host).headroom()
        tb.publish_model("m", galleon())
        service.create_render_session(tb.data_service, "m",
                                      charge_instance=False)
        after = interrogate(service, tb.data_service.host).headroom()
        assert after < before
