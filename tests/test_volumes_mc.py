"""Voxel volumes, marching cubes and decimation (the skeleton provenance)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.data.decimation import cluster_decimate, decimate
from repro.data.marching_cubes import marching_cubes
from repro.data.volumes import VoxelVolume, visible_human_phantom
from repro.errors import DataFormatError


def sphere_volume(n=24, radius=0.6):
    lin = np.linspace(-1, 1, n)
    x, y, z = np.meshgrid(lin, lin, lin, indexing="ij")
    values = radius - np.sqrt(x**2 + y**2 + z**2)   # >0 inside
    spacing = 2.0 / (n - 1)
    return VoxelVolume(values, spacing=(spacing,) * 3, origin=(-1, -1, -1),
                       name="sphere")


class TestVoxelVolume:
    def test_requires_3d(self):
        with pytest.raises(DataFormatError):
            VoxelVolume(np.zeros((4, 4)))

    def test_stats(self):
        v = sphere_volume(16)
        s = v.stats()
        assert s.shape == (16, 16, 16)
        assert s.vmin < 0 < s.vmax
        assert s.byte_size == 16**3 * 4

    def test_world_coords_span_bounds(self):
        v = sphere_volume(16)
        xs, ys, zs = v.world_coords()
        assert xs[0] == pytest.approx(-1.0)
        assert xs[-1] == pytest.approx(1.0)

    def test_split_slabs_cover_volume(self):
        v = sphere_volume(20)
        slabs = v.split_slabs(3, axis=2)
        assert sum(s.shape[2] for s in slabs) == 20
        # reassembled values identical
        recon = np.concatenate([s.values for s in slabs], axis=2)
        assert np.array_equal(recon, v.values)

    def test_slab_origins_offset(self):
        v = sphere_volume(20)
        slabs = v.split_slabs(4, axis=2)
        origins = [s.origin[2] for s in slabs]
        assert origins == sorted(origins)
        assert origins[0] == pytest.approx(-1.0)

    def test_split_bounds_checked(self):
        with pytest.raises(ValueError):
            sphere_volume(8).split_slabs(100)

    def test_phantom_has_structure(self):
        v = visible_human_phantom(24)
        assert v.values.max() > 0.5      # bone
        assert v.values.min() < 0.1      # air
        with pytest.raises(ValueError):
            visible_human_phantom(4)


class TestMarchingCubes:
    def test_sphere_surface_area(self):
        v = sphere_volume(32, radius=0.6)
        mesh = marching_cubes(v, iso=0.0)
        area = mesh.face_areas().sum()
        expected = 4 * np.pi * 0.6**2
        assert area == pytest.approx(expected, rel=0.06)

    def test_sphere_bounds(self):
        mesh = marching_cubes(sphere_volume(32, radius=0.5), iso=0.0)
        r = np.linalg.norm(mesh.vertices, axis=1)
        assert np.all(r < 0.56)
        assert np.all(r > 0.44)

    def test_vertices_on_iso_level(self):
        """Interpolated vertices should sit near the true iso surface."""
        v = sphere_volume(32, radius=0.6)
        mesh = marching_cubes(v, iso=0.0)
        r = np.linalg.norm(mesh.vertices, axis=1)
        assert abs(float(r.mean()) - 0.6) < 0.02

    def test_empty_when_iso_outside_range(self):
        v = sphere_volume(16)
        assert marching_cubes(v, iso=99.0).n_triangles == 0
        assert marching_cubes(v, iso=-99.0).n_triangles == 0

    def test_tiny_volume(self):
        v = VoxelVolume(np.zeros((1, 5, 5), np.float32))
        assert marching_cubes(v, 0.5).n_triangles == 0

    def test_normals_point_outward(self):
        """Winding orientation: normals away from the inside region."""
        mesh = marching_cubes(sphere_volume(24, radius=0.6), iso=0.0)
        centers = mesh.vertices[mesh.faces].mean(axis=1)
        normals = mesh.face_normals()
        outward = np.einsum("ij,ij->i", normals, centers)
        assert (outward > 0).mean() > 0.98

    def test_watertight_edges(self):
        """Every edge of a closed iso-surface is shared by exactly 2 faces."""
        mesh = marching_cubes(sphere_volume(20, radius=0.6), iso=0.0)
        edges = np.concatenate([
            mesh.faces[:, [0, 1]], mesh.faces[:, [1, 2]],
            mesh.faces[:, [2, 0]]])
        edges.sort(axis=1)
        _, counts = np.unique(edges, axis=0, return_counts=True)
        assert (counts == 2).mean() > 0.99

    def test_phantom_extraction(self):
        v = visible_human_phantom(32)
        mesh = marching_cubes(v, iso=0.4)
        assert mesh.n_triangles > 1000
        assert mesh.faces.max() < mesh.n_vertices


class TestDecimation:
    def test_reduces_toward_target(self):
        mesh = marching_cubes(sphere_volume(32, 0.6), iso=0.0)
        target = mesh.n_triangles // 5
        dec = decimate(mesh, target)
        assert dec.n_triangles < mesh.n_triangles
        assert abs(dec.n_triangles - target) / target < 0.6

    def test_already_small_enough(self, quad):
        assert decimate(quad, 10) is quad

    def test_shape_preserved(self):
        mesh = marching_cubes(sphere_volume(32, 0.6), iso=0.0)
        dec = decimate(mesh, mesh.n_triangles // 4)
        r = np.linalg.norm(dec.vertices, axis=1)
        assert abs(float(r.mean()) - 0.6) < 0.05

    def test_faces_valid_after_clustering(self):
        mesh = marching_cubes(sphere_volume(24, 0.6), iso=0.0)
        dec = cluster_decimate(mesh, 8)
        assert dec.n_triangles > 0
        assert dec.faces.max() < dec.n_vertices
        # no degenerate faces
        f = dec.faces
        assert ((f[:, 0] != f[:, 1]) & (f[:, 1] != f[:, 2])
                & (f[:, 0] != f[:, 2])).all()

    def test_no_duplicate_faces(self):
        mesh = marching_cubes(sphere_volume(24, 0.6), iso=0.0)
        dec = cluster_decimate(mesh, 6)
        canon = np.sort(dec.faces, axis=1)
        assert len(np.unique(canon, axis=0)) == len(canon)

    def test_colors_averaged(self):
        mesh = marching_cubes(sphere_volume(20, 0.6), iso=0.0)
        from repro.data.meshes import Mesh

        colored = Mesh(mesh.vertices, mesh.faces,
                       colors=np.full_like(mesh.vertices, 0.5))
        dec = cluster_decimate(colored, 8)
        assert dec.colors is not None
        assert np.allclose(dec.colors, 0.5, atol=1e-5)

    def test_invalid_inputs(self, quad):
        with pytest.raises(ValueError):
            cluster_decimate(quad, 0)
        with pytest.raises(ValueError):
            decimate(quad, 0)

    @given(st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_cluster_never_increases_triangles(self, resolution):
        mesh = marching_cubes(sphere_volume(16, 0.6), iso=0.0)
        dec = cluster_decimate(mesh, resolution)
        assert dec.n_triangles <= mesh.n_triangles


class TestProvenancePipeline:
    def test_volume_to_decimated_skeleton(self):
        """The paper's full skeleton pipeline: CT → marching cubes →
        decimation, end to end."""
        volume = visible_human_phantom(28)
        raw = marching_cubes(volume, iso=0.4)
        final = decimate(raw, max(500, raw.n_triangles // 4))
        assert 0 < final.n_triangles < raw.n_triangles
        # result stays inside the volume's bounds
        lo, hi = final.bounds()
        assert lo.min() >= -1.01 and hi.max() <= 1.01
