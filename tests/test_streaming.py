"""Continuous frame streaming: lockstep vs pipelined (§5.5)."""

import pytest

from repro.data.generators import make_model
from repro.errors import ServiceError
from repro.services.streaming import FrameStreamer


@pytest.fixture
def streamer(testbed):
    # ~1.6M polygons: render (~0.19 s) roughly balances the wireless
    # transfer (~0.21 s), the regime where pipelining pays most
    testbed.publish_model(
        "stream", make_model("skeleton", 1_600_000).normalized())
    rs = testbed.render_service("centrino")
    rsession, _ = rs.create_render_session(testbed.data_service, "stream")
    return testbed, FrameStreamer(rs, rsession.render_session_id,
                                  "zaurus", 200, 200)


class TestLockstep:
    def test_fps_is_reciprocal_of_total(self, streamer):
        tb, s = streamer
        stats = s.stream_lockstep(5)
        render, transfer = s._frame_costs()
        assert stats.fps == pytest.approx(1.0 / (render + transfer),
                                          rel=0.01)

    def test_arrivals_monotonic(self, streamer):
        _, s = streamer
        stats = s.stream_lockstep(4)
        assert stats.arrivals == sorted(stats.arrivals)
        assert stats.frames == 4

    def test_needs_a_frame(self, streamer):
        _, s = streamer
        with pytest.raises(ServiceError):
            s.stream_lockstep(0)


class TestPipelined:
    def test_pipelining_beats_lockstep(self, streamer):
        """Steady-state period = max(render, transfer) < render+transfer."""
        _, s = streamer
        lock = s.stream_lockstep(8)
        pipe = s.stream_pipelined(8)
        assert pipe.fps > 1.3 * lock.fps

    def test_steady_period_is_bottleneck_stage(self, streamer):
        _, s = streamer
        render, transfer = s._frame_costs()
        pipe = s.stream_pipelined(10)
        assert pipe.steady_period == pytest.approx(max(render, transfer),
                                                   rel=0.05)

    def test_all_frames_arrive_in_order(self, streamer):
        _, s = streamer
        stats = s.stream_pipelined(6)
        assert stats.frames == 6
        assert len(stats.arrivals) == 6
        assert stats.arrivals == sorted(stats.arrivals)

    def test_first_frame_latency_unchanged(self, streamer):
        """Pipelining raises throughput, not first-frame latency."""
        tb, s = streamer
        render, transfer = s._frame_costs()
        t0 = tb.clock.now
        stats = s.stream_pipelined(1)
        assert stats.arrivals[0] - t0 == pytest.approx(render + transfer,
                                                       rel=0.01)

    def test_validates_frame_count(self, streamer):
        _, s = streamer
        with pytest.raises(ServiceError):
            s.stream_pipelined(0)

    def test_invalid_session(self, testbed):
        testbed.publish_model(
            "v", make_model("galleon", 5_000).normalized())
        rs = testbed.render_service("centrino")
        with pytest.raises(Exception):
            FrameStreamer(rs, "missing", "zaurus")
