"""The fault-tolerance stack, layer by layer.

Fault injection (crashes, flaps, spikes, loss, partitions), control-plane
retries + circuit breaking, heartbeat-lease failure detection, and the
session-level recovery paths — each exercised in isolation before
``test_chaos.py`` runs them together.
"""

import random

import pytest

from repro.core.health import (
    ALIVE,
    DEAD,
    SUSPECTED,
    HeartbeatMonitor,
    HeartbeatSource,
)
from repro.errors import (
    CallTimeout,
    CircuitOpenError,
    NetworkError,
    ServiceError,
)
from repro.network.clock import Simulator
from repro.network.faults import FaultInjector
from repro.network.simnet import Network
from repro.services.retry import (
    CircuitBreaker,
    RetryPolicy,
    ServiceHealthLedger,
    call_with_retry,
    reliable_request,
)


def star_network():
    """Four hosts on a switch, one extra direct link for reroute tests."""
    net = Network()
    for name in ("a", "b", "c", "d"):
        net.add_host(name)
    net.add_ethernet_segment(["a", "b", "c", "d"], "hub",
                             bandwidth_bps=100e6)
    net.add_link("a", "b", bandwidth_bps=10e6, latency_s=0.01)
    return net


class TestFaultInjectorHosts:
    def test_crash_stops_routing(self):
        net = star_network()
        inj = FaultInjector(net)
        assert net.transfer_time("a", "c", 1000) > 0
        inj.crash_host("c")
        assert not net.host_is_up("c")
        with pytest.raises(NetworkError):
            net.transfer_time("a", "c", 1000)
        inj.restart_host("c")
        assert net.transfer_time("a", "c", 1000) > 0

    def test_crashed_intermediate_host_forces_reroute(self):
        net = star_network()
        inj = FaultInjector(net)
        # sever the direct a-b link: traffic goes via the hub
        net.set_link_up("a", "b", False)
        assert "hub" in net.path("a", "b")
        net.set_link_up("a", "b", True)
        inj.crash_host("hub")
        # the hub is down: only the direct link remains
        assert net.path("a", "b") == ["a", "b"]
        with pytest.raises(NetworkError):
            net.path("a", "c")

    def test_scheduled_crash_and_restart(self):
        net = star_network()
        inj = FaultInjector(net)
        inj.schedule_crash(at=1.0, host="c", restart_after=2.0)
        net.sim.run_until(1.5)
        assert not net.host_is_up("c")
        net.sim.run_until(3.5)
        assert net.host_is_up("c")
        kinds = [e.kind for e in inj.log]
        assert kinds == ["crash", "restart"]

    def test_event_log_records_times(self):
        net = star_network()
        inj = FaultInjector(net)
        inj.schedule_crash(at=2.5, host="b")
        net.sim.run_until(5.0)
        (event,) = inj.events("crash")
        assert event.time == pytest.approx(2.5)
        assert event.detail == "b"


class TestFaultInjectorLinks:
    def test_flap_schedule(self):
        net = star_network()
        inj = FaultInjector(net)
        inj.schedule_flap(at=1.0, a="a", b="b", down_for=1.0)
        net.sim.run_until(1.5)
        assert not net.link_between("a", "b").up
        net.sim.run_until(2.5)
        assert net.link_between("a", "b").up

    def test_latency_spike_and_clear(self):
        net = star_network()
        inj = FaultInjector(net)
        assert net.path("a", "c") == ["a", "hub", "c"]
        base = net.transfer_time("a", "c", 1000)
        inj.schedule_latency_spike(at=0.5, a="a", b="hub",
                                   extra_s=0.2, duration=1.0)
        net.sim.run_until(0.6)
        assert net.transfer_time("a", "c", 1000) == pytest.approx(
            base + 0.2)
        net.sim.run_until(2.0)
        assert net.transfer_time("a", "c", 1000) == pytest.approx(base)

    def test_partition_and_heal(self):
        net = star_network()
        inj = FaultInjector(net)
        severed = inj.partition({"a", "b"}, name="split")
        assert severed
        # inside each side still routes; across the cut does not
        assert net.path("a", "b")
        assert net.path("c", "d")
        with pytest.raises(NetworkError):
            net.path("a", "c")
        inj.heal("split")
        assert net.path("a", "c")

    def test_heal_restores_only_what_partition_severed(self):
        net = star_network()
        inj = FaultInjector(net)
        net.set_link_up("a", "b", False)     # independently down
        inj.partition({"a"}, name="iso")
        inj.heal("iso")
        assert not net.link_between("a", "b").up   # stays down


class TestFaultInjectorLoss:
    def test_certain_loss_drops_transfer(self):
        net = star_network()
        inj = FaultInjector(net, seed=1)
        inj.set_loss("a", "c", 1.0)
        outcomes = []
        net.send("a", "c", 10_000,
                 on_complete=lambda r: outcomes.append("ok"),
                 on_drop=lambda r: outcomes.append("drop"))
        net.sim.run()
        assert outcomes == ["drop"]
        assert inj.transfers_lost == 1

    def test_zero_loss_never_drops(self):
        net = star_network()
        FaultInjector(net, seed=1)
        outcomes = []
        for _ in range(20):
            net.send("a", "c", 1000,
                     on_complete=lambda r: outcomes.append("ok"),
                     on_drop=lambda r: outcomes.append("drop"))
        net.sim.run()
        assert outcomes == ["ok"] * 20

    def test_seeded_loss_is_reproducible(self):
        def run(seed):
            net = star_network()
            inj = FaultInjector(net, seed=seed)
            inj.set_default_loss(0.5)
            return [inj.roll_loss("a", "c") for _ in range(32)]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_dropped_transfer_still_occupies_links(self):
        net = star_network()
        inj = FaultInjector(net, seed=1)
        inj.set_loss("a", "c", 1.0)
        record = net.send("a", "c", 10_000)
        assert record.dropped
        assert net.link_between("a", "hub").active == 1
        net.sim.run()
        assert net.link_between("a", "hub").active == 0


class TestPathCache:
    def test_repeated_path_hits_cache(self):
        net = star_network()
        p1 = net.path("a", "c")
        p2 = net.path("a", "c")
        assert p1 is p2                    # the cached list itself

    def test_link_change_invalidates(self):
        net = star_network()
        assert net.path("a", "b") == ["a", "hub", "b"]
        net.set_link_up("a", "hub", False)
        assert net.path("a", "b") == ["a", "b"]   # falls back to direct
        net.set_link_up("a", "hub", True)
        assert net.path("a", "b") == ["a", "hub", "b"]

    def test_host_change_invalidates(self):
        net = star_network()
        net.path("a", "c")
        net.set_host_up("c", False)
        with pytest.raises(NetworkError):
            net.path("a", "c")
        net.set_host_up("c", True)
        assert net.path("a", "c")


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(base_backoff_s=1.0, backoff_multiplier=2.0,
                             max_backoff_s=4.0, jitter=0.0)
        rng = random.Random(0)
        backoffs = [policy.backoff_seconds(i, rng) for i in (1, 2, 3, 4)]
        assert backoffs == [1.0, 2.0, 4.0, 4.0]

    def test_jitter_stays_in_band_and_is_seeded(self):
        policy = RetryPolicy(base_backoff_s=1.0, jitter=0.25)
        values = [policy.backoff_seconds(1, random.Random(s))
                  for s in range(20)]
        assert all(0.75 <= v <= 1.25 for v in values)
        assert (policy.backoff_seconds(1, random.Random(3))
                == policy.backoff_seconds(1, random.Random(3)))

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(deadline_s=0.0)


class TestCallWithRetry:
    def test_flaky_call_eventually_succeeds(self):
        sim = Simulator()
        calls = []

        def flaky():
            calls.append(sim.now)
            if len(calls) < 3:
                raise NetworkError("flap")
            return "ok"

        policy = RetryPolicy(max_attempts=4, jitter=0.0)
        assert call_with_retry(flaky, policy, sim) == "ok"
        assert len(calls) == 3
        assert sim.now > 0                # backoff charged to the clock

    def test_exhausted_attempts_raise_call_timeout(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=3, jitter=0.0)

        def always_fails():
            raise NetworkError("down")

        with pytest.raises(CallTimeout) as err:
            call_with_retry(always_fails, policy, sim)
        assert err.value.attempts == 3

    def test_deadline_propagates_through_retries(self):
        sim = Simulator()
        policy = RetryPolicy(max_attempts=100, base_backoff_s=1.0,
                             backoff_multiplier=1.0, jitter=0.0,
                             deadline_s=2.5)

        def always_fails():
            raise NetworkError("down")

        with pytest.raises(CallTimeout):
            call_with_retry(always_fails, policy, sim)
        # backoffs are clamped to the deadline: never sleeps past it
        assert sim.now <= 2.5 + 1e-9

    def test_non_retryable_raises_immediately(self):
        sim = Simulator()
        calls = []

        def broken():
            calls.append(1)
            raise ServiceError("logic bug")

        with pytest.raises(ServiceError):
            call_with_retry(broken, RetryPolicy(), sim)
        assert len(calls) == 1

    def test_events_fire_during_backoff_waits(self):
        """A simulator-scheduled recovery lands mid-backoff and the next
        attempt sees it — the waits pump the event queue."""
        sim = Simulator()
        state = {"up": False}
        sim.schedule_at(0.3, lambda: state.update(up=True))

        def call():
            if not state["up"]:
                raise NetworkError("still down")
            return "ok"

        policy = RetryPolicy(max_attempts=5, base_backoff_s=0.5,
                             jitter=0.0)
        assert call_with_retry(call, policy, sim) == "ok"


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        sim = Simulator()
        b = CircuitBreaker(sim, failure_threshold=3, reset_timeout_s=10.0)
        for _ in range(3):
            b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        assert b.trips == 1
        with pytest.raises(CircuitOpenError):
            b.check()

    def test_half_open_probe_after_cooldown(self):
        sim = Simulator()
        b = CircuitBreaker(sim, failure_threshold=1, reset_timeout_s=5.0)
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        sim.clock.advance(5.0)
        assert b.state == CircuitBreaker.HALF_OPEN
        b.check()                           # probe admitted
        b.record_success()
        assert b.state == CircuitBreaker.CLOSED

    def test_failed_probe_reopens(self):
        sim = Simulator()
        b = CircuitBreaker(sim, failure_threshold=1, reset_timeout_s=5.0)
        b.record_failure()
        sim.clock.advance(5.0)
        assert b.state == CircuitBreaker.HALF_OPEN
        b.record_failure()
        assert b.state == CircuitBreaker.OPEN
        sim.clock.advance(4.9)
        assert b.state == CircuitBreaker.OPEN

    def test_success_resets_failure_count(self):
        sim = Simulator()
        b = CircuitBreaker(sim, failure_threshold=3)
        b.record_failure()
        b.record_failure()
        b.record_success()
        b.record_failure()
        assert b.state == CircuitBreaker.CLOSED

    def test_ledger_shares_breakers_and_reports_health(self):
        sim = Simulator()
        ledger = ServiceHealthLedger(sim, failure_threshold=2)
        assert ledger.healthy("rs-a")
        b = ledger.breaker("rs-a")
        assert ledger.breaker("rs-a") is b
        b.record_failure()
        b.record_failure()
        assert not ledger.healthy("rs-a")
        assert ledger.unhealthy_services() == ["rs-a"]


class TestReliableSoap:
    def test_reliable_request_survives_injected_loss(self):
        net = star_network()
        inj = FaultInjector(net, seed=5)
        inj.set_loss("a", "c", 0.6)
        policy = RetryPolicy(max_attempts=8, timeout_s=0.5, jitter=0.0)
        decoded, timing = reliable_request(
            net, "a", "c", ("Ping", {"n": 1}), ("Pong", {"n": 1}),
            policy=policy, seed=5)
        assert decoded == ("Pong", {"n": 1})

    def test_unroutable_call_charges_timeouts_then_raises(self):
        net = star_network()
        FaultInjector(net)
        net.set_host_up("c", False)
        policy = RetryPolicy(max_attempts=2, timeout_s=1.0, jitter=0.0)
        t0 = net.sim.now
        with pytest.raises(CallTimeout):
            reliable_request(net, "a", "c", ("Ping", {}), ("Pong", {}),
                             policy=policy)
        # two attempt timeouts + one backoff were charged to the clock
        assert net.sim.now - t0 >= 2.0

    def test_breaker_feeds_on_soap_failures(self):
        net = star_network()
        FaultInjector(net)
        net.set_host_up("c", False)
        breaker = CircuitBreaker(net.sim, failure_threshold=2,
                                 reset_timeout_s=60.0, name="c")
        policy = RetryPolicy(max_attempts=2, timeout_s=0.1, jitter=0.0)
        with pytest.raises(CallTimeout):
            reliable_request(net, "a", "c", ("Ping", {}), ("Pong", {}),
                             policy=policy, breaker=breaker)
        assert breaker.state == CircuitBreaker.OPEN
        # further calls are rejected without consuming the timeout budget
        t0 = net.sim.now
        with pytest.raises(CircuitOpenError):
            reliable_request(net, "a", "c", ("Ping", {}), ("Pong", {}),
                             policy=policy, breaker=breaker)
        assert net.sim.now == t0


class TestHeartbeatMonitor:
    def make(self, sim=None):
        sim = sim or Simulator()
        return sim, HeartbeatMonitor(sim, suspect_after=1.0,
                                     dead_after=3.0)

    def test_transitions_alive_suspected_dead(self):
        sim, mon = self.make()
        mon.watch("rs-a")
        assert mon.state("rs-a") == ALIVE
        sim.clock.advance(1.5)
        mon.poll()
        assert mon.state("rs-a") == SUSPECTED
        sim.clock.advance(2.0)
        mon.poll()
        assert mon.state("rs-a") == DEAD
        assert mon.dead_services() == ["rs-a"]

    def test_beat_recovers_suspected(self):
        sim, mon = self.make()
        recovered = []
        mon.on_recover.append(recovered.append)
        mon.watch("rs-a")
        sim.clock.advance(1.5)
        mon.poll()
        mon.beat("rs-a")
        assert mon.state("rs-a") == ALIVE
        assert recovered == ["rs-a"]

    def test_callbacks_fire_once_per_transition(self):
        sim, mon = self.make()
        suspected, dead = [], []
        mon.on_suspect.append(suspected.append)
        mon.on_dead.append(dead.append)
        mon.watch("rs-a")
        sim.clock.advance(5.0)
        mon.poll()
        mon.poll()
        mon.poll()
        assert suspected == ["rs-a"]
        assert dead == ["rs-a"]

    def test_recurring_poll_via_simulator(self):
        sim, mon = self.make()
        dead = []
        mon.on_dead.append(dead.append)
        mon.watch("rs-a")
        mon.start(period=0.5)
        sim.run_until(10.0)
        assert dead == ["rs-a"]
        mon.stop()

    def test_invalid_thresholds_rejected(self):
        sim = Simulator()
        with pytest.raises(ServiceError):
            HeartbeatMonitor(sim, suspect_after=2.0, dead_after=1.0)


class TestHeartbeatSource:
    def test_beats_keep_service_alive(self):
        net = star_network()
        mon = HeartbeatMonitor(net.sim, suspect_after=1.0, dead_after=3.0)
        source = HeartbeatSource(monitor=mon, network=net, name="rs-a",
                                 host="a", monitor_host="c",
                                 interval=0.25).start()
        mon.start(period=0.5)
        net.sim.run_until(10.0)
        assert mon.state("rs-a") == ALIVE
        assert source.beats_sent > 0
        source.stop()
        mon.stop()

    def test_stopped_source_beats_again_after_restart(self):
        """Satellite regression: ``stop()`` then ``start()`` must beat.

        ``stop()`` parks the tick loop by raising ``_stopped``, but
        ``start()`` never cleared it — a restarted source scheduled a
        tick loop that exited on its first fire, so the service's lease
        silently died even though the service was healthy.
        """
        net = star_network()
        mon = HeartbeatMonitor(net.sim, suspect_after=1.0, dead_after=3.0)
        source = HeartbeatSource(monitor=mon, network=net, name="rs-a",
                                 host="a", monitor_host="c",
                                 interval=0.25).start()
        mon.start(period=0.5)
        net.sim.run_until(2.0)
        assert source.beats_sent > 0
        source.stop()
        baseline = source.beats_sent
        source.start()
        net.sim.run_until(6.0)
        assert source.beats_sent > baseline
        assert mon.state("rs-a") == ALIVE
        source.stop()
        mon.stop()

    def test_crash_silences_beats_and_kills_lease(self):
        net = star_network()
        inj = FaultInjector(net)
        mon = HeartbeatMonitor(net.sim, suspect_after=1.0, dead_after=3.0)
        source = HeartbeatSource(monitor=mon, network=net, name="rs-a",
                                 host="a", monitor_host="c",
                                 interval=0.25).start()
        mon.start(period=0.5)
        inj.schedule_crash(at=2.0, host="a")
        net.sim.run_until(10.0)
        assert mon.state("rs-a") == DEAD
        assert source.beats_lost > 0
        source.stop()
        mon.stop()

    def test_restart_recovers_lease(self):
        net = star_network()
        inj = FaultInjector(net)
        mon = HeartbeatMonitor(net.sim, suspect_after=1.0, dead_after=3.0)
        HeartbeatSource(monitor=mon, network=net, name="rs-a",
                        host="a", monitor_host="c", interval=0.25).start()
        mon.start(period=0.5)
        inj.schedule_crash(at=2.0, host="a", restart_after=6.0)
        net.sim.run_until(7.0)
        assert mon.state("rs-a") == DEAD
        net.sim.run_until(12.0)
        assert mon.state("rs-a") == ALIVE


class TestDataServiceFailover:
    """The mirror-failover fix: subscribers transfer, no update is lost."""

    def build(self, testbed):
        from repro.data.generators import skeleton
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree
        from repro.services.container import ServiceContainer
        from repro.services.data_service import DataService

        tree = SceneTree("demo")
        tree.add(MeshNode(skeleton(2000).normalized(), name="skel"))
        testbed.publish_tree("demo", tree)
        mirror = DataService(
            "mirror", ServiceContainer("athlon", testbed.network,
                                       http_port=9901))
        return mirror

    def test_subscribers_move_to_mirror(self, small_testbed):
        from repro.scenegraph.updates import SetProperty

        tb = small_testbed
        mirror = self.build(tb)
        tb.data_service.add_mirror(mirror)
        rs = tb.render_service("centrino")
        rs.create_render_session(tb.data_service, "demo")
        assert tb.data_service.session("demo").subscribers
        backup = tb.data_service.failover_to("demo")
        assert backup is mirror
        assert set(mirror.session("demo").subscribers) == set(
            tb.data_service.session("demo").subscribers)
        # updates published on the mirror reach the transferred subscriber
        node_id = next(iter(rs._scene_cache[("rave-data", "demo")])).node_id
        deliveries = mirror.publish_update(
            "demo", SetProperty(node_id=node_id, field_name="name",
                                value="after"))
        assert deliveries

    def test_late_mirror_does_not_replay_snapshot_updates(self,
                                                          small_testbed):
        """A mirror added mid-session starts from a snapshot that already
        contains every applied update; failover must not re-apply them."""
        from repro.scenegraph.nodes import GroupNode
        from repro.scenegraph.updates import AddNode

        tb = small_testbed
        mirror = self.build(tb)
        tb.data_service.publish_update(
            "demo", AddNode.of(GroupNode(name="extra"), parent_id=0,
                               node_id=900))
        tb.data_service.add_mirror(mirror)        # late: snapshot has it
        backup = tb.data_service.failover_to("demo")
        names = [n.name for n in backup.session("demo").tree]
        assert names.count("extra") == 1

    def test_missed_trail_tail_replays_on_failover(self, small_testbed):
        """Updates the mirror never saw (crash between apply and
        replicate) are replayed from the primary's audit trail."""
        from repro.scenegraph.nodes import GroupNode
        from repro.scenegraph.updates import AddNode

        tb = small_testbed
        mirror = self.build(tb)
        tb.data_service.add_mirror(mirror)
        # simulate the replication gap: detach, publish, reattach
        tb.data_service.mirrors.remove(mirror)
        tb.data_service.publish_update(
            "demo", AddNode.of(GroupNode(name="missed"), parent_id=0,
                               node_id=901))
        tb.data_service.mirrors.append(mirror)
        backup = tb.data_service.failover_to("demo")
        names = [n.name for n in backup.session("demo").tree]
        assert names.count("missed") == 1
        assert (backup.session("demo").sequence
                == tb.data_service.session("demo").sequence)


class TestSessionRecovery:
    def build(self, testbed, hosts=("onyx", "v880z", "centrino")):
        from repro.core.session import CollaborativeSession
        from repro.data.generators import skeleton
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        tree = SceneTree("big")
        for i in range(6):
            tree.add(MeshNode(skeleton(4000).normalized(), name=f"m{i}"))
        testbed.publish_tree("big", tree)
        cs = CollaborativeSession(testbed.data_service, "big",
                                  recruiter=testbed.recruiter())
        for host in hosts:
            cs.connect(testbed.render_service(host))
        cs.place_dataset()
        return cs

    def test_failure_reassigns_every_orphan(self, testbed):
        cs = self.build(testbed)
        victim = testbed.render_service("onyx")
        # make sure the victim owns something to orphan
        if not cs.share_of(victim):
            donor = next(s for s in cs.render_services if cs.share_of(s))
            nid = next(iter(cs.share_of(donor)))
            cs.reassign_nodes(donor, victim, [nid])
        before = {s.name: set(cs.share_of(s)) for s in cs.render_services}
        all_before = set().union(*before.values())
        report = cs.handle_service_failure(victim)
        assert report.failed == victim.name
        assert report.nodes_recovered == len(before[victim.name])
        after = set()
        shares = [set(cs.share_of(s)) for s in cs.render_services]
        for share in shares:
            assert not (share & after)          # owned exactly once
            after |= share
        assert after == all_before              # nothing lost

    def test_failed_service_unsubscribed_and_not_rerecruited(self, testbed):
        cs = self.build(testbed)
        victim = testbed.render_service("onyx")
        cs.handle_service_failure(victim)
        session = testbed.data_service.session("big")
        assert not any(name.startswith(f"{victim.name}/")
                       for name in session.subscribers)
        recruited = cs.recruit_more()
        assert victim.name not in [s.name for s in recruited]

    def test_failure_of_unattached_service_rejected(self, testbed):
        from repro.errors import SessionError

        cs = self.build(testbed)
        with pytest.raises(SessionError):
            cs.handle_service_failure("rs-nonexistent")

    def test_composite_skips_dead_service_and_flags_frame(self, testbed):
        from repro.render.camera import Camera

        cs = self.build(testbed)
        inj = FaultInjector(testbed.network)
        # make sure at least two services hold shares
        holder = next(s for s in cs.render_services if cs.share_of(s))
        other = next(s for s in cs.render_services if s is not holder)
        if not cs.share_of(other):
            nid = next(iter(cs.share_of(holder)))
            cs.reassign_nodes(holder, other, [nid])
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        cs.render_composite(cam, 48, 48)
        assert not cs.last_frame_degraded
        inj.crash_host(other.host)
        fb, _ = cs.render_composite(cam, 48, 48)
        assert cs.last_frame_degraded
        assert cs.degraded_frames == 1

    def test_tiled_frame_reuses_last_good_tile(self, testbed):
        from repro.render.camera import Camera

        cs = self.build(testbed)
        inj = FaultInjector(testbed.network)
        cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
        local = cs.render_services[0]
        fb1, plan1, _ = cs.render_tiled(cam, 96, 96, local_service=local)
        assert not cs.last_frame_degraded
        remote = next(s for s in cs.render_services if s is not local)
        inj.crash_host(remote.host)
        fb2, plan2, _ = cs.render_tiled(cam, 96, 96, local_service=local)
        assert cs.last_frame_degraded
        # same camera, same plan shape: cached tiles make the degraded
        # frame pixel-identical to the good one — no hole, no tear
        assert (fb2.color == fb1.color).all()

    def test_heartbeat_death_triggers_auto_recovery(self, testbed):
        inj = FaultInjector(testbed.network, seed=11)
        cs = self.build(testbed)
        cs.enable_fault_tolerance(heartbeat_interval=0.25,
                                  suspect_after=1.0, dead_after=3.0)
        victim = next(s for s in cs.render_services if cs.share_of(s))
        now = testbed.network.sim.now
        inj.schedule_crash(at=now + 1.0, host=victim.host)
        testbed.network.sim.run_until(now + 10.0)
        assert victim.name in cs.failed_services
        assert len(cs.recoveries) == 1
        assert victim.name not in [s.name for s in cs.render_services]

    def test_data_failure_repoints_every_attachment(self, testbed):
        from repro.scenegraph.updates import SetProperty
        from repro.services.container import ServiceContainer
        from repro.services.data_service import DataService

        cs = self.build(testbed)
        mirror = DataService(
            "mirror", ServiceContainer("athlon", testbed.network,
                                       http_port=9902))
        testbed.data_service.add_mirror(mirror)
        mirror_name = mirror.name
        services = list(cs.render_services)
        backup = cs.handle_data_failure()
        assert backup is mirror
        assert cs.data_service is mirror
        for service in services:
            assert (mirror_name, "big") in service._scene_cache
        # an update through the mirror still reaches a share holder
        holder = next(s for s in services if cs.share_of(s))
        nid = next(iter(cs.share_of(holder)))
        deliveries = mirror.publish_update(
            "big", SetProperty(node_id=nid, field_name="name",
                               value="post-failover"))
        assert any(name.startswith(f"{holder.name}/")
                   for name in deliveries)
