"""The software rasterizer: coverage, occlusion, culling, shading paths."""

import numpy as np
import pytest

from repro.data.meshes import Mesh, merge_meshes
from repro.errors import RenderError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.rasterizer import rasterize_mesh
from repro.render.shading import flat_intensity, gouraud_intensity


def facing_quad(z: float, half: float = 1.0, name="q") -> Mesh:
    return Mesh(
        np.array([[-half, -half, z], [half, -half, z], [half, half, z],
                  [-half, half, z]], dtype=np.float32),
        np.array([[0, 1, 2], [0, 2, 3]], dtype=np.int32),
        name=name,
    )


@pytest.fixture
def cam():
    return Camera.looking_at((0, 0, 5), target=(0, 0, 0), up=(0, 1, 0))


class TestCoverage:
    def test_centered_quad_covers_center(self, cam):
        fb = FrameBuffer(64, 64)
        stats = rasterize_mesh(facing_quad(0.0), cam, fb)
        assert stats.faces_rasterized == 2
        assert np.isfinite(fb.depth[32, 32])
        assert fb.coverage() > 0.05

    def test_coverage_scales_with_size(self, cam):
        small = FrameBuffer(64, 64)
        large = FrameBuffer(64, 64)
        rasterize_mesh(facing_quad(0.0, half=0.5), cam, small)
        rasterize_mesh(facing_quad(0.0, half=1.5), cam, large)
        assert large.coverage() > 2 * small.coverage()

    def test_quad_coverage_matches_projection(self, cam):
        """Projected quad area should match rasterized pixel count."""
        fb = FrameBuffer(100, 100)
        rasterize_mesh(facing_quad(0.0), cam, fb)
        screen, _ = cam.project_vertices(facing_quad(0.0).vertices, 100, 100)
        w = screen[:, 0].max() - screen[:, 0].min()
        h = screen[:, 1].max() - screen[:, 1].min()
        covered = np.isfinite(fb.depth).sum()
        assert covered == pytest.approx(w * h, rel=0.08)

    def test_empty_mesh(self, cam):
        fb = FrameBuffer(32, 32)
        stats = rasterize_mesh(
            Mesh(np.zeros((0, 3)), np.zeros((0, 3), np.int32)), cam, fb)
        assert stats.faces_in == 0
        assert fb.coverage() == 0.0

    def test_depth_values_are_view_distance(self, cam):
        fb = FrameBuffer(64, 64)
        rasterize_mesh(facing_quad(0.0), cam, fb)
        assert fb.depth[32, 32] == pytest.approx(5.0, abs=0.01)


class TestOcclusion:
    def test_nearer_quad_wins(self, cam):
        fb = FrameBuffer(64, 64)
        near = facing_quad(2.0)
        far = facing_quad(0.0)
        far_c = Mesh(far.vertices, far.faces,
                     colors=np.tile([1.0, 0, 0], (4, 1)).astype(np.float32))
        near_c = Mesh(near.vertices, near.faces,
                      colors=np.tile([0, 1.0, 0], (4, 1)).astype(np.float32))
        rasterize_mesh(merge_meshes([far_c, near_c]), cam, fb,
                       shading="none")
        # center pixel must be green (near quad) regardless of draw order
        r, g, b = fb.color[32, 32]
        assert g > r

    def test_order_independence(self, cam):
        fb1 = FrameBuffer(64, 64)
        fb2 = FrameBuffer(64, 64)
        a = facing_quad(0.0)
        b = facing_quad(2.0, half=0.5)
        rasterize_mesh(a, cam, fb1)
        rasterize_mesh(b, cam, fb1)
        rasterize_mesh(b, cam, fb2)
        rasterize_mesh(a, cam, fb2)
        assert np.array_equal(fb1.depth, fb2.depth)
        assert fb1.mean_abs_diff(fb2) < 1.0

    def test_accumulates_across_calls(self, cam):
        fb = FrameBuffer(64, 64)
        rasterize_mesh(facing_quad(0.0, half=0.3), cam, fb)
        cov1 = fb.coverage()
        rasterize_mesh(facing_quad(-1.0, half=1.2), cam, fb)
        assert fb.coverage() > cov1


class TestCulling:
    def test_behind_camera_culled(self, cam):
        fb = FrameBuffer(32, 32)
        stats = rasterize_mesh(facing_quad(10.0), cam, fb)  # behind z=5 cam
        assert stats.faces_culled_near == 2
        assert fb.coverage() == 0.0

    def test_offscreen_culled(self, cam):
        fb = FrameBuffer(32, 32)
        stats = rasterize_mesh(
            facing_quad(0.0).translated((100, 0, 0)), cam, fb)
        assert stats.faces_culled_offscreen == 2

    def test_backface_culling(self, cam):
        fb = FrameBuffer(32, 32)
        quad = facing_quad(0.0)
        flipped = Mesh(quad.vertices, quad.faces[:, ::-1])
        s1 = rasterize_mesh(quad, cam, fb, cull_backfaces=True)
        s2 = rasterize_mesh(flipped, cam, fb, cull_backfaces=True)
        # exactly one orientation survives
        assert {s1.faces_rasterized, s2.faces_rasterized} == {0, 2}

    def test_degenerate_faces_skipped(self, cam):
        fb = FrameBuffer(32, 32)
        m = Mesh(np.zeros((3, 3), np.float32),
                 np.array([[0, 1, 2]], np.int32))
        stats = rasterize_mesh(m, cam, fb)
        assert stats.faces_rasterized == 0

    def test_stats_add_up(self, cam):
        fb = FrameBuffer(32, 32)
        mesh = merge_meshes([facing_quad(0.0), facing_quad(10.0),
                             facing_quad(0.0).translated((100, 0, 0))])
        s = rasterize_mesh(mesh, cam, fb)
        assert (s.faces_rasterized + s.faces_culled_near
                + s.faces_culled_backface + s.faces_culled_offscreen
                == s.faces_in)


class TestShading:
    def test_flat_intensity_range(self, small_galleon):
        i = flat_intensity(small_galleon)
        assert (i >= 0).all() and (i <= 1).all()
        assert i.std() > 0.01     # actual variation over the hull

    def test_gouraud_intensity_range(self, small_galleon):
        i = gouraud_intensity(small_galleon)
        assert (i >= 0).all() and (i <= 1).all()

    def test_light_direction_changes_shading(self, small_galleon):
        a = flat_intensity(small_galleon, light_direction=(-1, 0, 0))
        b = flat_intensity(small_galleon, light_direction=(0, 0, -1))
        assert not np.allclose(a, b)

    def test_zero_light_rejected(self, small_galleon):
        with pytest.raises(ValueError):
            flat_intensity(small_galleon, light_direction=(0, 0, 0))

    def test_facing_quad_fully_lit_head_on(self, cam):
        quad = facing_quad(0.0)
        i = flat_intensity(quad, light_direction=(0, 0, -1))
        assert np.allclose(i, 1.0)

    def test_gouraud_rendering_smooth(self, cam, small_galleon):
        flat_fb = FrameBuffer(96, 96)
        smooth_fb = FrameBuffer(96, 96)
        cam2 = Camera.looking_at((2.2, 1.4, 1.2))
        rasterize_mesh(small_galleon, cam2, flat_fb, shading="flat")
        rasterize_mesh(small_galleon, cam2, smooth_fb, shading="gouraud")
        mask = np.isfinite(flat_fb.depth) & np.isfinite(smooth_fb.depth)
        assert mask.sum() > 100

        def roughness(fb):
            g = fb.color[..., 0].astype(float)
            return np.abs(np.diff(g, axis=1))[mask[:, 1:]].mean()

        assert roughness(smooth_fb) <= roughness(flat_fb)

    def test_vertex_colors_interpolated(self, cam):
        quad = facing_quad(0.0)
        # vertices 0,1 are the bottom edge (red); 2,3 the top (blue)
        colors = np.array([[1, 0, 0], [1, 0, 0], [0, 0, 1], [0, 0, 1]],
                          dtype=np.float32)
        m = Mesh(quad.vertices, quad.faces, colors)
        fb = FrameBuffer(64, 64)
        rasterize_mesh(m, cam, fb, shading="none")
        # the quad spans roughly ±15 px around the 64x64 center
        top = fb.color[22, 32]       # image top = world +y = blue
        bottom = fb.color[42, 32]    # image bottom = world -y = red
        assert np.isfinite(fb.depth[22, 32]) and np.isfinite(fb.depth[42, 32])
        assert int(bottom[0]) > int(top[0])    # red fades upward
        assert int(top[2]) > int(bottom[2])    # blue fades downward

    def test_unknown_shading_mode(self, cam, quad):
        with pytest.raises(RenderError):
            rasterize_mesh(quad, cam, FrameBuffer(8, 8), shading="phong")

    def test_bad_base_color(self, cam, quad):
        with pytest.raises(RenderError):
            rasterize_mesh(quad, cam, FrameBuffer(8, 8), base_color=(1, 2))


class TestChunking:
    def test_small_fragment_budget_same_result(self, cam, small_galleon):
        """Chunked processing must be invisible in the output."""
        cam2 = Camera.looking_at((2.2, 1.4, 1.2))
        fb_big = FrameBuffer(64, 64)
        fb_small = FrameBuffer(64, 64)
        rasterize_mesh(small_galleon, cam2, fb_big)
        rasterize_mesh(small_galleon, cam2, fb_small, max_fragments=5_000)
        assert np.array_equal(fb_big.depth, fb_small.depth)
        assert fb_big.mean_abs_diff(fb_small) < 0.5

    def test_giant_triangle_close_up(self):
        """A triangle whose bbox exceeds every bucket still renders."""
        cam = Camera.looking_at((0, 0, 0.4), target=(0, 0, 0))
        fb = FrameBuffer(600, 600)
        tri = Mesh(
            np.array([[-5, -5, 0], [5, -5, 0], [0, 5, 0]], np.float32),
            np.array([[0, 1, 2]], np.int32))
        stats = rasterize_mesh(tri, cam, fb)
        assert stats.faces_rasterized == 1
        assert fb.coverage() > 0.5
