"""Textures: sampling, procedural generators, rasterization, capacity."""

import numpy as np
import pytest

from repro.core.cost import node_cost
from repro.data.meshes import Mesh
from repro.data.textures import (
    Texture,
    checkerboard,
    gradient,
    marble,
    planar_uv,
)
from repro.errors import DataFormatError
from repro.render.camera import Camera
from repro.render.framebuffer import FrameBuffer
from repro.render.rasterizer import rasterize_mesh
from repro.scenegraph.nodes import MeshNode, node_from_wire, node_to_wire


def textured_quad(texture=None, half=1.0):
    verts = np.array([[-half, -half, 0], [half, -half, 0],
                      [half, half, 0], [-half, half, 0]], np.float32)
    faces = np.array([[0, 1, 2], [0, 2, 3]], np.int32)
    tex = texture if texture is not None else checkerboard(32, 4)
    return Mesh(verts, faces, uv=planar_uv(verts), texture=tex)


class TestTexture:
    def test_validation(self):
        with pytest.raises(DataFormatError):
            Texture(np.zeros((4, 4), np.uint8))
        with pytest.raises(DataFormatError):
            Texture(np.zeros((0, 4, 3), np.uint8))

    def test_sample_corners(self):
        img = np.zeros((2, 2, 3), np.uint8)
        img[1, 0] = [255, 0, 0]     # bottom-left in image rows = uv (0,0)
        tex = Texture(img)
        assert np.array_equal(tex.sample(np.array([0.01]),
                                         np.array([0.01]))[0],
                              [255, 0, 0])

    def test_sample_wraps(self):
        tex = checkerboard(16, 2)
        a = tex.sample(np.array([0.25]), np.array([0.25]))
        b = tex.sample(np.array([1.25]), np.array([2.25]))
        assert np.array_equal(a, b)

    def test_nbytes(self):
        assert checkerboard(64).nbytes == 64 * 64 * 3


class TestProceduralTextures:
    def test_checkerboard_two_colors(self):
        tex = checkerboard(32, 4, color_a=(255, 0, 0), color_b=(0, 0, 255))
        uniq = np.unique(tex.image.reshape(-1, 3), axis=0)
        assert len(uniq) == 2

    def test_checkerboard_validation(self):
        with pytest.raises(DataFormatError):
            checkerboard(4, 8)

    def test_marble_deterministic(self):
        assert np.array_equal(marble(32, seed=1).image,
                              marble(32, seed=1).image)
        assert not np.array_equal(marble(32, seed=1).image,
                                  marble(32, seed=2).image)

    def test_gradient_monotone(self):
        tex = gradient(32, start=(0, 0, 0), end=(255, 255, 255), axis=1)
        row = tex.image[0, :, 0].astype(int)
        assert (np.diff(row) >= 0).all()
        assert row[-1] > row[0]

    def test_planar_uv_in_range(self, small_galleon):
        uv = planar_uv(small_galleon.vertices)
        assert uv.shape == (small_galleon.n_vertices, 2)
        assert uv.min() >= 0.0 and uv.max() < 1.0


class TestTexturedMesh:
    def test_uv_requires_matching_shape(self):
        verts = np.zeros((3, 3), np.float32)
        faces = np.array([[0, 1, 2]], np.int32)
        with pytest.raises(DataFormatError):
            Mesh(verts, faces, uv=np.zeros((2, 2), np.float32))

    def test_texture_requires_uv(self):
        verts = np.zeros((3, 3), np.float32)
        faces = np.array([[0, 1, 2]], np.int32)
        with pytest.raises(DataFormatError):
            Mesh(verts, faces, texture=checkerboard(8, 2))

    def test_texture_bytes(self):
        mesh = textured_quad()
        assert mesh.texture_bytes == 32 * 32 * 3
        assert mesh.byte_size > mesh.texture_bytes

    def test_transforms_carry_texture(self):
        mesh = textured_quad()
        moved = mesh.translated((1, 0, 0)).scaled(2.0).normalized()
        assert moved.texture is mesh.texture
        assert np.array_equal(moved.uv, mesh.uv)

    def test_submesh_slices_uv(self):
        mesh = textured_quad()
        sub = mesh.submesh(np.array([True, False]))
        assert sub.uv is not None
        assert len(sub.uv) == sub.n_vertices
        assert sub.texture is mesh.texture

    def test_split_preserves_texture(self, small_galleon):
        m = Mesh(small_galleon.vertices, small_galleon.faces,
                 uv=planar_uv(small_galleon.vertices),
                 texture=checkerboard(16, 2))
        pieces = m.split_spatially(3)
        assert all(p.texture is m.texture for p in pieces)


class TestTexturedRendering:
    def test_checker_pattern_visible(self):
        mesh = textured_quad(checkerboard(64, 8))
        cam = Camera.looking_at((0, 0, 3), target=(0, 0, 0), up=(0, 1, 0))
        fb = FrameBuffer(96, 96)
        rasterize_mesh(mesh, cam, fb)
        covered = np.isfinite(fb.depth)
        assert covered.mean() > 0.2
        # a checkerboard has high contrast: bright and dark texels both
        lum = fb.color[covered].mean(axis=1)
        assert lum.std() > 40

    def test_gradient_orientation(self):
        mesh = textured_quad(gradient(64, start=(255, 0, 0),
                                      end=(0, 0, 255), axis=1))
        cam = Camera.looking_at((0, 0, 3), target=(0, 0, 0), up=(0, 1, 0))
        fb = FrameBuffer(96, 96)
        rasterize_mesh(mesh, cam, fb)
        left = fb.color[48, 30]
        right = fb.color[48, 66]
        assert int(left[0]) != int(right[0])  # gradient across the quad

    def test_texture_modulated_by_lighting(self):
        mesh = textured_quad(checkerboard(8, 1, color_a=(255, 255, 255),
                                          color_b=(255, 255, 255)))
        cam = Camera.looking_at((0, 0, 3), target=(0, 0, 0), up=(0, 1, 0))
        head_on = FrameBuffer(64, 64)
        rasterize_mesh(mesh, cam, head_on, light_direction=(0, 0, -1))
        grazing = FrameBuffer(64, 64)
        rasterize_mesh(mesh, cam, grazing, light_direction=(-1, 0, -0.05))
        m1 = head_on.color[np.isfinite(head_on.depth)].mean()
        m2 = grazing.color[np.isfinite(grazing.depth)].mean()
        assert m1 > m2 + 20


class TestTextureCapacity:
    def test_node_cost_counts_texture(self):
        node = MeshNode(textured_quad(checkerboard(128, 8)))
        cost = node_cost(node)
        assert cost.texture_bytes == 128 * 128 * 3

    def test_wire_roundtrip(self):
        node = MeshNode(textured_quad(marble(32)))
        back = node_from_wire(node_to_wire(node))
        assert back.mesh.texture is not None
        assert np.array_equal(back.mesh.texture.image,
                              node.mesh.texture.image)
        assert np.allclose(back.mesh.uv, node.mesh.uv)

    def test_scheduler_respects_texture_memory(self, testbed):
        """A texture bigger than a machine's texture memory excludes it."""
        from repro.core.cost import NodeCost
        from repro.core.scheduler import RenderServiceScheduler

        sched = RenderServiceScheduler(testbed.data_service, target_fps=10)
        pool = [testbed.render_service(h) for h in ("centrino", "onyx")]
        # the centrino has 32 MB of texture memory; demand 64 MB
        cost = NodeCost(polygons=10_000, texture_bytes=64 * 2**20)
        placement = sched.place(cost, pool)
        assert placement.assignments[0].service.name == "rs-onyx"
