"""SimClock and the discrete-event Simulator."""

import pytest

from repro.network.clock import SimClock, Simulator


class TestSimClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_custom_start(self):
        assert SimClock(5.0).now == 5.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_advance_returns_new_time(self):
        assert SimClock().advance(3.0) == 3.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_is_noop(self):
        clock = SimClock(5.0)
        clock.advance_to(1.0)
        assert clock.now == 5.0


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(3.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, lambda label=label: order.append(label))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]
        assert sim.now == 4.0

    def test_cancellation(self):
        sim = Simulator()
        ran = []
        handle = sim.schedule(1.0, lambda: ran.append(1))
        handle.cancel()
        sim.run()
        assert ran == []
        assert handle.cancelled

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        sim = Simulator()
        sim.clock.advance(5.0)
        with pytest.raises(ValueError):
            sim.schedule_at(3.0, lambda: None)

    def test_event_can_schedule_more_events(self):
        sim = Simulator()
        order = []

        def first():
            order.append("first")
            sim.schedule(1.0, lambda: order.append("second"))

        sim.schedule(1.0, first)
        sim.run()
        assert order == ["first", "second"]
        assert sim.now == 2.0

    def test_run_until_leaves_later_events(self):
        sim = Simulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(5.0, lambda: ran.append(5))
        sim.run_until(2.0)
        assert ran == [1]
        assert sim.now == 2.0
        assert sim.pending == 1

    def test_run_until_runs_boundary_event(self):
        sim = Simulator()
        ran = []
        sim.schedule(2.0, lambda: ran.append(2))
        sim.run_until(2.0)
        assert ran == [2]

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def loop():
            sim.schedule(0.0, loop)

        sim.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            sim.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Simulator().step() is False

    def test_processed_counter(self):
        sim = Simulator()
        for _ in range(3):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.processed == 3
