"""The CollaborativeSession orchestrator + migration over live services."""

import numpy as np
import pytest

from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.errors import SessionError
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree


def publish_big(tb, n=40_000, name="big"):
    tree = SceneTree(name)
    tree.add(MeshNode(skeleton(n).normalized(), name="skel"))
    tb.publish_tree(name, tree)
    return tree


@pytest.fixture
def cs(testbed):
    publish_big(testbed)
    return CollaborativeSession(testbed.data_service, "big",
                                recruiter=testbed.recruiter())


class TestMembership:
    def test_connect_bootstraps(self, testbed, cs):
        attachment = cs.connect(testbed.render_service("centrino"))
        assert attachment.bootstrap_seconds > 0
        assert len(cs.render_services) == 1

    def test_duplicate_connect_rejected(self, testbed, cs):
        cs.connect(testbed.render_service("centrino"))
        with pytest.raises(SessionError):
            cs.connect(testbed.render_service("centrino"))

    def test_disconnect(self, testbed, cs):
        rs = testbed.render_service("centrino")
        cs.connect(rs)
        cs.disconnect(rs)
        assert not cs.render_services

    def test_recruit_more_attaches_everyone(self, testbed, cs):
        attached = cs.recruit_more()
        assert len(attached) == 5      # all testbed render hosts
        assert len(cs.render_services) == 5


class TestPlacement:
    def test_single_placement_assigns_whole_scene(self, testbed, cs):
        rs = testbed.render_service("xeon")
        cs.connect(rs)
        placement = cs.place_dataset()
        assert placement.mode == "single"
        share = cs.share_of(rs)
        geo_ids = {n.node_id for n in cs.master_tree.geometry_nodes()}
        assert share == geo_ids

    def test_distributed_placement_splits_scene(self, testbed):
        publish_big(testbed, 60_000, name="huge")
        # interactive target so high that no single machine fits 60k: the
        # session must split across machines
        cs = CollaborativeSession(testbed.data_service, "huge",
                                  target_fps=1000,
                                  recruiter=testbed.recruiter())
        cs.recruit_more()
        placement = cs.place_dataset()
        assert placement.mode == "dataset-distributed"
        shares = [cs.share_of(s) for s in cs.render_services]
        total = sum(len(s) for s in shares)
        assert total > 0
        # no node assigned twice
        seen = set()
        for share in shares:
            assert not (share & seen)
            seen |= share

    def test_placement_recruits_when_pool_empty(self, testbed, cs):
        placement = cs.place_dataset()
        assert cs.render_services
        assert placement.assignments

    def test_composite_render_covers_scene(self, testbed, cs):
        cs.recruit_more()
        cs.place_dataset()
        cam = CameraNode(position=(2.2, 1.4, 1.2))
        fb, latency = cs.render_composite(cam, 96, 96)
        assert fb.coverage() > 0.02
        assert latency > 0

    def test_distributed_composite_equals_single(self, testbed):
        """Render the same scene via 1-service and n-service placements;
        images must match (the end-to-end distribution invariant)."""
        publish_big(testbed, 10_000, name="scene2")
        cam = CameraNode(position=(2.2, 1.4, 1.2))

        single = CollaborativeSession(testbed.data_service, "scene2")
        single.connect(testbed.render_service("xeon"))
        single.place_dataset()
        mono, _ = single.render_composite(cam, 96, 96)

        publish_big(testbed, 10_000, name="scene3")
        multi = CollaborativeSession(testbed.data_service, "scene3",
                                     target_fps=3000)  # forces a split
        for host in ("centrino", "athlon", "onyx"):
            multi.connect(testbed.render_service(host))
        placement = multi.place_dataset()
        assert placement.mode == "dataset-distributed"
        merged, _ = multi.render_composite(cam, 96, 96)

        assert np.array_equal(np.isfinite(merged.depth),
                              np.isfinite(mono.depth))
        assert merged.mean_abs_diff(mono) < 2.0

    def test_tiled_render(self, testbed, cs):
        cs.recruit_more()
        cs.place_dataset()
        cam = CameraNode(position=(2.2, 1.4, 1.2))
        fb, plan, latency = cs.render_tiled(cam, 100, 100)
        assert len(plan.assignments) == len(cs.render_services)
        assert fb.coverage() > 0.01

    def test_render_without_placement_rejected(self, testbed, cs):
        cs.connect(testbed.render_service("centrino"))
        with pytest.raises(SessionError):
            cs.render_composite(CameraNode(), 64, 64)


class TestReassignment:
    def test_reassign_moves_interest_and_session(self, testbed):
        publish_big(testbed, 30_000, name="move")
        cs = CollaborativeSession(testbed.data_service, "move",
                                  target_fps=1000,
                                  recruiter=testbed.recruiter())
        cs.recruit_more()
        cs.place_dataset()
        donors = [s for s in cs.render_services if cs.share_of(s)]
        src = donors[0]
        dst = next(s for s in cs.render_services if s is not src)
        moving = list(cs.share_of(src))[:1]
        before_dst = set(cs.share_of(dst))
        cs.reassign_nodes(src, dst, moving)
        assert moving[0] in cs.share_of(dst)
        assert moving[0] not in cs.share_of(src)
        assert cs.share_of(dst) == before_dst | set(moving)

    def test_reassign_requires_ownership(self, testbed):
        publish_big(testbed, 10_000, name="own")
        cs = CollaborativeSession(testbed.data_service, "own")
        a = testbed.render_service("centrino")
        b = testbed.render_service("athlon")
        cs.connect(a)
        cs.connect(b)
        with pytest.raises(SessionError):
            cs.reassign_nodes(a, b, [12345])


class TestLiveMigration:
    def test_overloaded_service_sheds_to_idle_peer(self, testbed):
        """End-to-end §3.2.7: sustained low fps on one service triggers a
        move onto an underused one."""
        publish_big(testbed, 50_000, name="hot")
        cs = CollaborativeSession(testbed.data_service, "hot",
                                  target_fps=1000,
                                  recruiter=testbed.recruiter())
        cs.migrator.overload_fps = 1e9       # everything counts as slow
        cs.migrator.smoothing_seconds = 0.0
        cs.recruit_more()
        cs.place_dataset()

        loaded = max(cs.render_services,
                     key=lambda s: len(cs.share_of(s)))
        for i in range(5):
            cs.migrator.tracker(loaded.name).record(
                __import__("repro.core.migration",
                           fromlist=["LoadSample"]).LoadSample(
                    time=float(i), fps=1.0,
                    utilisation=loaded.utilisation(1000)))
        before = len(cs.share_of(loaded))
        actions = cs.rebalance()
        shed = [a for a in actions if a.source == loaded.name]
        if shed:  # a receiver with headroom existed
            assert len(cs.share_of(loaded)) < before

    def test_observe_frame_feeds_tracker(self, testbed):
        publish_big(testbed, 10_000, name="obs")
        cs = CollaborativeSession(testbed.data_service, "obs")
        rs = testbed.render_service("centrino")
        cs.connect(rs)
        cs.observe_frame(rs, fps=5.0)
        assert cs.migrator.tracker(rs.name).n_samples == 1
