"""Scene-node types: structure rules, wire round trips, interrogation."""

import numpy as np
import pytest

from repro.data.volumes import visible_human_phantom
from repro.errors import SceneGraphError
from repro.scenegraph.interfaces import discover_interfaces, interface_fields
from repro.scenegraph.nodes import (
    AvatarNode,
    CameraNode,
    GroupNode,
    LightNode,
    MeshNode,
    NODE_TYPES,
    PointCloudNode,
    TransformNode,
    VolumeNode,
    node_from_wire,
    node_to_wire,
)


class TestStructure:
    def test_add_remove_child(self):
        parent = GroupNode(name="p")
        child = GroupNode(name="c")
        parent.add_child(child)
        assert child.parent is parent
        parent.remove_child(child)
        assert child.parent is None
        assert not parent.children

    def test_self_child_rejected(self):
        node = GroupNode()
        with pytest.raises(SceneGraphError):
            node.add_child(node)

    def test_cycle_rejected(self):
        a, b, c = GroupNode("a"), GroupNode("b"), GroupNode("c")
        a.add_child(b)
        b.add_child(c)
        with pytest.raises(SceneGraphError):
            c.add_child(a)

    def test_reparenting_moves_node(self):
        p1, p2, child = GroupNode(), GroupNode(), GroupNode()
        p1.add_child(child)
        p2.add_child(child)
        assert child.parent is p2
        assert child not in p1.children

    def test_remove_non_child(self):
        with pytest.raises(SceneGraphError):
            GroupNode().remove_child(GroupNode())

    def test_iter_subtree_preorder(self):
        root = GroupNode("root")
        a = GroupNode("a")
        b = GroupNode("b")
        a1 = GroupNode("a1")
        root.add_child(a)
        root.add_child(b)
        a.add_child(a1)
        names = [n.name for n in root.iter_subtree()]
        assert names == ["root", "a", "a1", "b"]


class TestWireRoundTrips:
    def roundtrip(self, node):
        return node_from_wire(node_to_wire(node))

    def test_transform(self):
        node = TransformNode.from_rotation_z(0.5, name="rot")
        back = self.roundtrip(node)
        assert np.allclose(back.matrix, node.matrix)
        assert back.name == "rot"

    def test_mesh(self, quad):
        back = self.roundtrip(MeshNode(quad, name="q"))
        assert back.mesh.n_triangles == 2
        assert np.allclose(back.mesh.vertices, quad.vertices)

    def test_mesh_with_colors(self, quad):
        from repro.data.meshes import Mesh

        colored = Mesh(quad.vertices, quad.faces,
                       np.ones_like(quad.vertices))
        back = self.roundtrip(MeshNode(colored))
        assert back.mesh.colors is not None

    def test_points(self):
        node = PointCloudNode(np.random.default_rng(0).random((10, 3)),
                              point_size=2.5)
        back = self.roundtrip(node)
        assert back.n_points == 10
        assert back.point_size == 2.5

    def test_volume(self):
        node = VolumeNode(visible_human_phantom(12), iso=0.3)
        back = self.roundtrip(node)
        assert back.volume.shape == (12, 12, 12)
        assert back.iso == 0.3
        assert back.volume.spacing == node.volume.spacing

    def test_camera(self):
        node = CameraNode(position=(1, 2, 3), target=(0, 1, 0),
                          fov_degrees=60.0)
        back = self.roundtrip(node)
        assert np.allclose(back.position, [1, 2, 3])
        assert back.fov_degrees == 60.0

    def test_avatar(self):
        node = AvatarNode(user="ian", host="tower", position=(1, 1, 1))
        back = self.roundtrip(node)
        assert back.user == "ian"
        assert back.label == "tower"

    def test_light(self):
        node = LightNode(direction=(1, 0, 0), ambient=0.5)
        back = self.roundtrip(node)
        assert back.ambient == 0.5

    def test_unknown_type_rejected(self):
        with pytest.raises(SceneGraphError):
            node_from_wire({"type": "warp-drive", "fields": {}})

    def test_all_registered_types_blankable(self):
        for type_name in NODE_TYPES:
            node = node_from_wire({"type": type_name, "fields": {}})
            assert node.TYPE == type_name


class TestCamera:
    def test_view_direction_unit(self):
        cam = CameraNode(position=(0, 0, 5), target=(0, 0, 0))
        d = cam.view_direction()
        assert np.linalg.norm(d) == pytest.approx(1.0)
        assert d[2] == pytest.approx(-1.0)

    def test_orbit_preserves_distance(self):
        cam = CameraNode(position=(3, 0, 0), target=(0, 0, 0))
        cam.orbit(azimuth=0.7, elevation=0.2)
        assert np.linalg.norm(cam.position) == pytest.approx(3.0)

    def test_orbit_degenerate_at_target(self):
        cam = CameraNode(position=(0, 0, 0), target=(0, 0, 0))
        cam.orbit(1.0)  # no crash
        assert np.allclose(cam.position, 0)


class TestAvatarGeometry:
    def test_cone_points_along_view(self):
        avatar = AvatarNode(user="u", position=(0, 0, 0),
                            view_direction=(1, 0, 0))
        cone = avatar.cone_geometry(size=1.0)
        assert cone.n_triangles > 4
        lo, hi = cone.bounds()
        assert hi[0] == pytest.approx(1.0, abs=1e-5)   # apex at +x

    def test_cone_valid_for_degenerate_view(self):
        avatar = AvatarNode(user="u", view_direction=(0, 0, 0))
        cone = avatar.cone_geometry()
        assert np.isfinite(cone.vertices).all()


class TestCostSurface:
    def test_mesh_cost(self, quad):
        node = MeshNode(quad)
        assert node.n_polygons == 2
        assert node.payload_bytes == quad.byte_size
        assert node.n_points == 0

    def test_points_cost(self):
        node = PointCloudNode(np.zeros((7, 3), np.float32))
        assert node.n_points == 7
        assert node.n_polygons == 0

    def test_volume_cost(self):
        node = VolumeNode(visible_human_phantom(10))
        assert node.n_voxels == 1000
        assert node.payload_bytes == 1000 * 4

    def test_group_cost_zero(self):
        node = GroupNode()
        assert node.n_polygons == 0
        assert node.payload_bytes == 0


class TestInterrogation:
    def test_camera_interfaces(self):
        found = {i.name for i in discover_interfaces(CameraNode())}
        assert "Camera" in found
        assert "Position" in found
        assert "PolygonGeometry" not in found

    def test_mesh_interfaces(self, quad):
        found = {i.name for i in discover_interfaces(MeshNode(quad))}
        assert "PolygonGeometry" in found
        assert "Named" in found
        assert "Camera" not in found

    def test_avatar_interfaces(self):
        found = {i.name for i in discover_interfaces(AvatarNode("u"))}
        assert {"Identity", "Position", "ViewDirection"} <= found

    def test_interface_fields_mapping(self, quad):
        fields = interface_fields(MeshNode(quad))
        assert fields["PolygonGeometry"] == ["vertices", "faces"]

    def test_supported_interactions_discoverable(self, quad):
        assert "translate" in MeshNode(quad).supported_interactions()
        assert "orbit" in CameraNode().supported_interactions()
        assert "select" in GroupNode().supported_interactions()
