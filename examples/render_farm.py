#!/usr/bin/env python
"""The batch render farm surviving a node loss mid-job.

1. The testbed deploys the :class:`FrameQueueService` as a fifth grid
   service role (own WSDL, UDDI-registered) and an animation job — 12
   frames of the galleon orbiting — is submitted to it.
2. Two idle render services pull frames, **one at a time**, over the
   simulated network; each pull pays the lease transfer, renders on its
   own scratch clock, and ships the frame back.
3. One second in, the fault injector kills the worker holding frame 1
   mid-render.  Heartbeats declare it dead, the queue re-queues the
   lost lease at the front, and the surviving worker re-renders it —
   exactly once, no duplicates.
4. The end-of-job ``checkframes`` audit comes back empty (the crash
   cost time, never frames), the dashboard shows the farm panel, and
   the flight-recorder dump (path = first argv, default
   ``renderfarm-dump.json``) carries the whole lease → crash →
   requeue → complete story in causal order.

Run:
    python examples/render_farm.py [dump.json]
"""

import json
import sys

from repro import build_testbed, obs
from repro.data.generators import galleon
from repro.farm import RenderJob
from repro.network.faults import FaultInjector
from repro.obs.dashboard import render_dashboard

JOB = "galleon-anim"
SCENE = "galleon"
FRAMES = 12
VICTIM = "onyx"                 # rs-onyx sorts first: it leases frame 1


def main() -> int:
    dump_path = sys.argv[1] if len(sys.argv) > 1 else "renderfarm-dump.json"
    tb = build_testbed(monitor_host="registry-host", farm=True)
    bundle = obs.install(clock=tb.clock)
    try:
        tb.publish_model(SCENE, galleon(2000))
        queue = tb.farm_queue
        sim = tb.network.sim
        inj = FaultInjector(tb.network, seed=11)
        farm = tb.render_farm(worker_hosts=(VICTIM, "v880z"),
                              dead_after=2.0)

        print("-- the job goes in ----------------------------------------")
        queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                               start_frame=1, end_frame=FRAMES))
        print(f"  {JOB}: frames 1..{FRAMES} of {SCENE!r}, "
              f"queue depth {queue.queue_depth()}")
        farm.start()
        # no prewarm: the first pull pays the multi-second session
        # bootstrap, so the crash lands squarely mid-frame
        inj.schedule_crash(1.0, VICTIM)

        last_done = -1
        deadline = sim.now + 300.0
        while not queue.job(JOB).finished and sim.now < deadline:
            sim.run_until(sim.now + 1.0)
            job = queue.job(JOB)
            if job.done_frames != last_done:
                lost = (f"  [lost {farm.frames_lost} to "
                        f"{sorted(farm.failed_workers)}]"
                        if farm.frames_lost else "")
                print(f"  t={sim.now:7.2f}s {job.done_frames:2d}/"
                      f"{job.total_frames} frames done{lost}")
                last_done = job.done_frames

        job = queue.job(JOB)
        audit = queue.audit(JOB)
        print(f"\n-- checkframes audit: "
              f"{'CLEAN' if not audit else f'MISSING {audit}'} "
              f"({queue.frames_completed} completed, "
              f"{queue.requeues} re-queued, "
              f"{queue.duplicates_dropped} duplicates dropped)")

        # give the monitor a few scrape periods to observe the finished
        # job so the dashboard shows the settled farm, not a mid-run view
        for _ in range(4):
            sim.run_until(sim.now + 1.0)

        print("\n-- dashboard ----------------------------------------------")
        print(render_dashboard(tb.monitor.snapshot()), end="")

        dump = bundle.recorder.dump("render-farm")
        with open(dump_path, "w") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
        print(f"\nflight-recorder dump -> {dump_path} "
              f"({len(dump['events'])} events)")

        kinds = [e["kind"] for e in dump["events"]]
        frame1 = [e for e in dump["events"] if f"{JOB}#1" in e["detail"]]
        frame1_kinds = [e["kind"] for e in frame1]
        ok = (job.finished and audit == []
              and "fault:crash" in kinds
              and farm.frames_lost == 1
              and queue.requeues == 1
              and queue.duplicates_dropped == 0
              and "farm:requeue" in frame1_kinds
              and kinds.index("fault:crash")
              < kinds.index("farm:requeue")
              < _last(kinds, "farm:complete"))
        if not ok:
            print(f"FAILED: expected lease -> crash -> requeue -> "
                  f"complete with a clean audit (kinds: {kinds})")
            return 1
        print("OK: the crashed worker's frame was re-queued and "
              "re-rendered exactly once; the audit is clean")
        return 0
    finally:
        obs.uninstall()


def _last(kinds, kind):
    return len(kinds) - 1 - kinds[::-1].index(kind)


if __name__ == "__main__":
    raise SystemExit(main())
