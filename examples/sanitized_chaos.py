#!/usr/bin/env python
"""Both chaos stories under the RaveSanitizer — the CI correctness gate.

Runs the two seeded fault-injection scenarios the chaos suites script —
a render-farm worker dying mid-frame, and a multi-tenant grid losing a
member under 4x oversubscription — with :class:`RaveSanitizer` attached
to the simulator the whole time.  The sanitizer checks, at every
simulation event:

- **clock hygiene** — simulated time never moves backwards and no
  scratch clock leaks past its scope;
- **re-entrancy** — no nested callback mutates a registered shared
  ledger behind an outer frame's back;
- **conservation** — the frame ledger always sums to the job
  (pending + leased + done == total, exactly-once intact) and no grid
  session is double-charged or double-rendered.

Any violation lands in the flight recorder as a ``sanitizer:*`` event;
this script dumps the recorder (path = first argv, default
``sanitized-chaos-dump.json``) and exits 1 if the dump contains any.

Run:
    python examples/sanitized_chaos.py [dump.json]
"""

import json
import sys

from repro import obs
from repro.core.grid import TenantQuota
from repro.data.generators import galleon, uv_sphere
from repro.farm import RenderJob
from repro.network.faults import FaultInjector
from repro.sanitizer import RaveSanitizer
from repro.scenegraph import MeshNode, SceneTree
from repro.testbed import build_testbed

FARM_SEED = 11
GRID_SEED = 7
FPS = 3000.0
POOL = ("centrino", "athlon")
TENANTS = tuple(f"t{i}" for i in range(8))


def farm_story():
    """A worker dies mid-frame; the job must still finish clean."""
    tb = build_testbed(farm=True)
    tb.publish_model("scene", galleon(2000))
    queue = tb.farm_queue
    sim = tb.network.sim

    san = RaveSanitizer(sim).attach()
    san.watch_farm_queue(queue)
    inj = FaultInjector(tb.network, seed=FARM_SEED)
    farm = tb.render_farm(worker_hosts=("onyx", "v880z"), dead_after=2.0)
    queue.submit(RenderJob(job_id="anim", session_id="scene",
                           start_frame=1, end_frame=6))
    farm.start()
    inj.schedule_crash(1.0, "onyx")
    deadline = sim.now + 300.0
    while not queue.job("anim").finished and sim.now < deadline:
        sim.run_until(sim.now + 1.0)
    san.detach()
    assert queue.job("anim").finished, "the chaos job never finished"
    print(f"  farm: job done at t={sim.now:.2f}s, "
          f"{san.events_checked} events checked, "
          f"{len(san.violations)} violation(s)")
    return san


def grid_story():
    """Overload + member crash + recovery under admission control."""
    tb = build_testbed()
    sim = tb.network.sim

    grid = tb.session_grid(member_hosts=POOL, queue_capacity=3,
                           queue_timeout=20.0, target_fps=FPS)
    san = RaveSanitizer(sim).attach()
    san.watch_grid(grid)
    inj = FaultInjector(tb.network, seed=GRID_SEED)
    for i, tenant in enumerate(TENANTS):
        grid.register_tenant(TenantQuota(
            tenant=tenant, priority=(2 if i < 2 else 0),
            max_sessions=2, max_share=0.9,
            guaranteed_share=(0.10 if i < 2 else 0.0)))
    for i, tenant in enumerate(TENANTS):
        tree = SceneTree(name=f"scene-{tenant}")
        tree.add(MeshNode(uv_sphere(nu=24, nv=24)))
        grid.request_session(tenant, f"{tenant}-a", tree)
    for _ in range(6):
        sim.run_until(sim.now + 1.0)
        if grid.shed(sim.now) is None:
            break
        grid.pump(sim.now)
    inj.crash_host("athlon")
    grid.handle_member_failure("rs-athlon")
    for gs in grid.sessions():
        if any(s.name == "rs-athlon"
               for s in gs.session.render_services):
            gs.session.handle_service_failure("rs-athlon")
    grid.shed_to_fit(sim.now)
    sim.run_until(sim.now + 25.0)
    grid.pump(sim.now)
    inj.restart_host("athlon")
    grid.failed_members.discard("rs-athlon")
    for _ in range(12):
        if grid.restore(sim.now) is None:
            break
    grid.pump(sim.now)
    san.detach()
    assert grid.decisions, "the grid story recorded no decisions"
    print(f"  grid: {len(grid.decisions)} admission decisions, "
          f"{san.events_checked} events checked, "
          f"{len(san.violations)} violation(s)")
    return san


def main() -> int:
    dump_path = (sys.argv[1] if len(sys.argv) > 1
                 else "sanitized-chaos-dump.json")
    print("-- chaos under the sanitizer ------------------------------")
    with obs.observed() as bundle:
        sanitizers = [farm_story(), grid_story()]
        dump = bundle.recorder.dump("sanitized-chaos")

    with open(dump_path, "w") as fh:
        json.dump(dump, fh, indent=2, sort_keys=True)
    print(f"flight-recorder dump -> {dump_path} "
          f"({len(dump['events'])} events)")

    checked = sum(s.events_checked for s in sanitizers)
    tainted = [e for e in dump["events"]
               if e["kind"].startswith("sanitizer:")]
    if tainted or not all(s.ok for s in sanitizers):
        print(f"FAILED: {len(tainted)} sanitizer event(s) in the dump:")
        for e in tainted:
            print(f"  t={e['time']:.2f}s {e['kind']}: {e['detail']}")
        return 1
    if checked == 0:
        print("FAILED: the sanitizer never saw a simulation event")
        return 1
    print(f"OK: {checked} simulation events checked across both "
          f"stories, zero sanitizer violations")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
