#!/usr/bin/env python
"""Collaborative visualization: the paper's Figure 3 scenario, extended.

Three participants share one skeletal-hand session:

- "ian" on the Athlon desktop (active render client);
- "nick" on the Onyx driving the immersive Workwall view;
- "dave" on the Zaurus PDA via a remote render service.

Everyone is represented by a cone avatar; camera moves propagate through
the data service; ian click-selects the hand and drags it, and the change
appears in everyone's view.  The session is recorded to an audit trail and
replayed — the asynchronous-collaboration feature.

Run:
    python examples/collaborative_session.py
"""

from pathlib import Path

from repro import build_testbed
from repro.collab.interaction import InteractionController
from repro.data import skeletal_hand

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    tb = build_testbed()
    tb.publish_model("hand", skeletal_hand(40_000).normalized())
    print("Session 'hand' published "
          f"({tb.data_service.session('hand').tree.total_polygons():,} "
          "polygons)")

    # -- participants ------------------------------------------------------
    ian = tb.active_client("ian", "athlon")
    nick = tb.active_client("nick", "onyx")
    ian.join(tb.data_service, "hand")
    nick.join(tb.data_service, "hand")
    ian.announce_avatar()
    nick.announce_avatar()

    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "hand")
    dave = tb.thin_client("dave")
    dave.attach(rs, rsession.render_session_id)
    print("ian (Athlon), nick (Onyx) and dave (PDA) joined")

    # -- navigation propagates ------------------------------------------------
    nick.move(position=(0.8, 1.8, 1.2))
    ian.camera.look(position=(2.2, -1.5, 1.0))
    print("nick navigated; his avatar moved in every copy")

    # -- interaction: ian selects the hand and drags it -------------------------
    # the publish callback routes every generated update (including the
    # transform splice) through the data service to the other users
    ctl = InteractionController(
        ian.tree, user="ian",
        publish=lambda u: tb.data_service.publish_update("hand", u))
    hit = ctl.click(ian.camera, 100, 100, 200, 200)
    if hit is not None:
        print(f"ian selected {hit.name!r}; menu: "
              f"{[e.verb for e in ctl.menu()]}")
        update = ctl.drag("translate", ian.camera, dx=0.15, dy=0.0)
        if update is not None:
            print("ian dragged the model; updates multicast to the others")
    else:
        print("ian's click missed — still sharing the session")

    # -- everyone renders their own view -----------------------------------------
    fb_ian, _ = ian.render(200, 200)
    fb_ian.save_ppm(OUTPUT / "collab_ian_view.ppm")
    fb_nick, _ = nick.render(200, 200)
    fb_nick.save_ppm(OUTPUT / "collab_nick_view.ppm")
    dave.move_camera(position=(0.5, 2.4, 0.8))
    fb_dave, timing = dave.request_frame(200, 200)
    fb_dave.save_ppm(OUTPUT / "collab_dave_pda.ppm")
    print(f"dave's PDA frame: {timing.fps:.1f} fps "
          f"(receipt {timing.image_receipt_seconds:.2f} s)")

    # -- asynchronous collaboration -----------------------------------------------
    trail_path = OUTPUT / "hand_session.rave"
    n = tb.data_service.save_session("hand", trail_path)
    print(f"Audit trail saved ({n / 1e3:.0f} kB); replaying tomorrow...")
    replay = tb.data_service.load_session("hand-replay", trail_path)
    print(f"Replayed session has {len(replay.tree)} nodes, "
          f"{len(replay.trail)} recorded updates")


if __name__ == "__main__":
    main()
