#!/usr/bin/env python
"""Driving the immersive stereo displays (Immersadesk / Portico Workwall).

The paper's testbed includes "large-scale stereo, tracked displays"; this
example renders a shared session as an active-stereo pair on the Workwall
host, follows the tracked user's head, and writes a red/cyan anaglyph so
the result is viewable anywhere.  A textured model exercises the
texture-memory capacity path along the way.

Run:
    python examples/immersive_stereo.py
"""

from pathlib import Path

from repro import build_testbed
from repro.data import elle
from repro.data.meshes import Mesh
from repro.data.textures import marble, planar_uv
from repro.render import Camera
from repro.render.rasterizer import rasterize_mesh
from repro.render.stereo import render_stereo

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    tb = build_testbed(render_hosts=("workwall", "centrino"))

    base = elle(20_000).normalized()
    textured = Mesh(base.vertices, base.faces, name="elle-marble",
                    uv=planar_uv(base.vertices, axis_u=0, axis_v=2),
                    texture=marble(128))
    tb.publish_model("gallery", textured)
    print(f"published textured model: {textured.n_triangles:,} triangles, "
          f"{textured.texture_bytes / 1024:.0f} kB of texture")

    wall = tb.render_service("workwall")
    rsession, boot = wall.create_render_session(tb.data_service, "gallery")
    print(f"Workwall bootstrapped in {boot.total_seconds:.1f} sim seconds")

    tree = rsession.tree
    mesh_node = tree.find_by_name("elle-marble")[0]

    def draw(camera: Camera, fb) -> None:
        rasterize_mesh(mesh_node.mesh, camera, fb)

    cam = Camera.looking_at((2.4, 1.8, 1.0), target=(0, 0, 0.2))
    print("\nrendering tracked stereo frames as the user steps sideways:")
    for step, head_x in enumerate((-0.3, 0.0, 0.3)):
        pair = render_stereo(draw, cam, 240, 240,
                             eye_separation=0.065,
                             head_offset=(head_x, 0.0, 0.0))
        mean_d, max_d = pair.disparity_stats()
        ana = pair.anaglyph()
        out = OUTPUT / f"stereo_head{step}.ppm"
        ana.save_ppm(out)
        print(f"  head x={head_x:+.1f}: disparity mean {mean_d:.1f}px "
              f"max {max_d:.1f}px -> {out.name}")

    # stereo doubles the render load: the engine model shows the cost
    timing = wall.engine.timing(mesh_node.mesh.n_triangles * 2, 240 * 240,
                                offscreen=False)
    print(f"\nstereo frame time on the Workwall: "
          f"{timing.total_seconds * 1000:.1f} ms "
          f"({timing.fps:.0f} fps — comfortably above active-stereo rates)")


if __name__ == "__main__":
    main()
