#!/usr/bin/env python
"""Computational steering through RAVE (§5.2's molecule example).

A toy molecular simulator plays the "third-party simulator computed
remotely"; its state streams into a RAVE session as a live point-cloud
feed.  A user on the Workwall grabs an atom and pulls — the force routes
through the steering bridge into the simulator, and every collaborator
(including a PDA viewer) watches the molecule respond.

Run:
    python examples/molecular_steering.py
"""

from pathlib import Path

import numpy as np

from repro import build_testbed
from repro.scenegraph import SceneTree
from repro.services.livefeed import (
    LiveFeed,
    MoleculeSimulator,
    SteeringBridge,
)

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    tb = build_testbed()
    tb.publish_tree("md-session", SceneTree("md-session"))

    sim = MoleculeSimulator(n_atoms=48)
    feed = LiveFeed(tb.data_service, "md-session", sim)
    bridge = SteeringBridge(feed)
    print(f"molecule online: {sim.n_atoms} atoms, "
          f"{len(sim.bonds)} bonds (simulated remotely)")

    # a collaborator joins and a PDA watches via a render service
    wall = tb.active_client("wall-user", "onyx")
    wall.join(tb.data_service, "md-session")
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "md-session")
    pda = tb.thin_client("pda-user")
    pda.attach(rs, rsession.render_session_id)
    pda.move_camera(position=(0, -4.0, 0.5))

    print("\nletting the simulation run...")
    for _ in range(5):
        feed.pump(n_steps=4)
    frame, _ = pda.request_frame(200, 200)
    frame.save_ppm(OUTPUT / "molecule_before_steer.ppm")
    resting = sim.positions.copy()

    print("wall-user grabs an end atom and pulls upward...")
    grab = sim.positions[0]
    for _ in range(4):
        bridge.steer(grab, drag_vector=(0.0, 0.0, 2.0), settle_steps=2)
    displacement = float(np.linalg.norm(sim.positions - resting,
                                        axis=1).max())
    print(f"  max atom displacement: {displacement:.2f} scene units "
          f"after {bridge.steers} steering gestures")

    frame, timing = pda.request_frame(200, 200)
    frame.save_ppm(OUTPUT / "molecule_after_steer.ppm")
    print(f"PDA view updated at {timing.fps:.1f} fps; "
          f"wall-user's copy is in sync: "
          f"{np.array_equal(wall.tree.node(feed.node_id).points, sim.positions.astype(np.float32))}")

    def max_strain() -> float:
        lengths = np.linalg.norm(
            sim.positions[sim.bonds[:, 0]]
            - sim.positions[sim.bonds[:, 1]], axis=1)
        return float(np.abs(lengths - sim.rest_lengths).max())

    print(f"\nreleasing — bonds relax (strain right after pull: "
          f"{max_strain():.3f}):")
    for step in range(6):
        feed.pump(n_steps=10)
        print(f"  t+{(step + 1) * 10} steps: max bond strain "
              f"{max_strain():.3f}")


if __name__ == "__main__":
    main()
