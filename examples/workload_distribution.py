#!/usr/bin/env python
"""Automatic workload distribution and migration — the paper's core story.

1. A dataset too large for any one render service arrives; the scheduler
   interrogates capacities, recruits extra services via UDDI, and splits
   the scene tree across them.
2. Every service renders its subset with the shared camera; the
   framebuffers depth-composite into the final image.
3. A console user logs onto one of the machines (its frame rate
   collapses); the migration policy detects the sustained overload and
   moves fine-grained node sets to machines with headroom.
4. For comparison, the same frame is produced with framebuffer (tile)
   distribution.

Run:
    python examples/workload_distribution.py
"""

from pathlib import Path

from repro import build_testbed
from repro.core import CollaborativeSession
from repro.core.migration import LoadSample
from repro.data import skeleton
from repro.scenegraph import CameraNode, MeshNode, SceneTree

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)
    tb = build_testbed()

    mesh = skeleton(120_000).normalized()
    tree = SceneTree("visible-man")
    tree.add(MeshNode(mesh, name="skeleton"))
    tb.publish_tree("visible-man", tree)
    print(f"Dataset: {mesh.n_triangles:,} polygons")

    # a deliberately demanding interactivity contract so no single
    # machine can host the dataset alone
    cs = CollaborativeSession(tb.data_service, "visible-man",
                              target_fps=600,
                              recruiter=tb.recruiter())
    print("\n-- placement ------------------------------------------------")
    placement = cs.place_dataset()
    print(f"mode: {placement.mode}"
          + (f" (recruited {len(placement.recruited)} services via UDDI)"
             if placement.recruited else ""))
    for a in placement.assignments:
        print(f"  {a.service.name:<14} {a.polygons:>9,} polygons "
              f"(headroom was {a.report.headroom(cs.target_fps):,.0f})")

    print("\n-- dataset-distributed frame ---------------------------------")
    cam = CameraNode(position=(1.0, 1.6, 0.3))
    fb, latency = cs.render_composite(cam, 256, 256)
    fb.save_ppm(OUTPUT / "distribution_composite.ppm")
    print(f"depth-composited frame: coverage {fb.coverage():.0%}, "
          f"latency {latency * 1000:.1f} ms (slowest share + transfers)")

    print("\n-- console user logs onto a render machine -------------------")
    victim = max((s for s in cs.render_services if cs.share_of(s)),
                 key=lambda s: s.committed_polygons())
    print(f"{victim.name} frame rate collapses "
          f"(was committed {victim.committed_polygons():,.0f} polygons)")
    t0 = tb.clock.now
    for i in range(10):
        cs.migrator.tracker(victim.name).record(LoadSample(
            time=t0 + i * 0.5, fps=1.5,
            utilisation=victim.utilisation(cs.target_fps)))
    actions = cs.rebalance()
    for action in actions:
        print(f"  migrated {action.polygons:,} polygons "
              f"({len(action.node_ids)} nodes) "
              f"{action.source} -> {action.destination} [{action.reason}]")
    if not actions:
        print("  (no receiver had spare capacity)")
    fb2, latency2 = cs.render_composite(cam, 256, 256)
    fb2.save_ppm(OUTPUT / "distribution_after_migration.ppm")
    print(f"post-migration frame: coverage {fb2.coverage():.0%}, "
          f"latency {latency2 * 1000:.1f} ms")

    print("\n-- framebuffer (tile) distribution ---------------------------")
    fb3, plan, latency3 = cs.render_tiled(cam, 256, 256)
    fb3.save_ppm(OUTPUT / "distribution_tiled.ppm")
    widths = {a.service_name: a.tile.width for a in plan.assignments}
    print(f"tile widths (capacity-proportional): {widths}")
    print(f"tiled frame: latency {latency3 * 1000:.1f} ms")


if __name__ == "__main__":
    main()
