#!/usr/bin/env python
"""The multi-tenant session grid riding one full overload wave.

1. Six tenants hit a single-member pool at once.  The pool holds two
   sessions at the requested rate, so the admission controller admits
   two, queues three (with position feedback), and answers the sixth
   with an explicit 429 — ``TooManyRequestsError`` with a
   ``retry_after`` hint — instead of silently degrading everyone.
2. The grid exports queue depth and rejection rate like any other
   service; the monitor's sustained ``grid-saturated`` alert puts the
   :class:`~repro.core.autoscale.RecruitmentAutoscaler` (fleet mode)
   to work and the pool grows via UDDI.
3. With the recruit's capacity the admission queue drains to zero —
   every queued tenant gets its session, nobody starves.
4. The flight-recorder dump (path = first argv, default
   ``multitenant-dump.json``) carries every admission decision and
   scale action in causal order; the dashboard shows the admission
   panel and the per-tenant session gauges.

Run:
    python examples/multitenant_grid.py [dump.json]
"""

import json
import sys

from repro import TooManyRequestsError, build_testbed, obs
from repro.core.grid import TenantQuota
from repro.data.generators import uv_sphere
from repro.obs.dashboard import render_dashboard
from repro.scenegraph import MeshNode, SceneTree

FPS = 3000.0          # demand amplifier: one ~1.1k-poly sphere = ~3.3 Mpps
TENANTS = ("aero", "biolab", "cfd", "dyno", "eng", "flux")


def scene(label):
    tree = SceneTree(name=f"scene-{label}")
    tree.add(MeshNode(uv_sphere(nu=24, nv=24)))
    return tree


def main() -> int:
    dump_path = sys.argv[1] if len(sys.argv) > 1 else "multitenant-dump.json"
    tb = build_testbed(monitor_host="registry-host", autoscale=True)
    bundle = obs.install(clock=tb.clock)
    try:
        grid = tb.session_grid(member_hosts=("centrino",),
                               queue_capacity=3, queue_timeout=600.0,
                               target_fps=FPS)
        for i, tenant in enumerate(TENANTS):
            grid.register_tenant(TenantQuota(
                tenant=tenant, priority=i % 3, max_sessions=2,
                max_share=0.9, guaranteed_share=0.05))
        scaler = tb.autoscale_grid(grid, cooldown_seconds=5.0, period=1.0)
        client = tb.thin_client("front-door")

        print("-- admission burst ----------------------------------------")
        for i, tenant in enumerate(TENANTS):
            try:
                decision = client.open_grid_session(
                    grid, tenant, f"{tenant}-viz", scene(i))
            except TooManyRequestsError as err:
                print(f"  {tenant:<7} 429 {err} "
                      f"(retry after {err.retry_after:g}s)")
                continue
            position = (f" (queue position {decision.queue_position})"
                        if decision.queue_position else "")
            print(f"  {tenant:<7} {decision.outcome}{position}")

        print("\n-- the autoscaler reacts ----------------------------------")
        sim = tb.network.sim
        last_pool = len(grid.members)
        for _ in range(60):
            sim.run_until(sim.now + 1.0)
            pool = len(grid.members)
            if pool != last_pool:
                names = sorted(s.name for s in grid.members)
                print(f"  t={sim.now:7.2f}s pool {last_pool} -> {pool} "
                      f"{names}")
                last_pool = pool
            if grid.queue_depth() == 0 and pool > 1:
                break
        scaler.stop()
        print(f"  t={sim.now:7.2f}s queue depth {grid.queue_depth()}, "
              f"{len(grid.sessions())} sessions admitted")
        # the burst charged big data transfers straight to the clock;
        # give the monitor a moment to work through its scrape backlog
        # so the dashboard shows the drained, settled grid
        for _ in range(12):
            sim.run_until(sim.now + 1.0)

        print("\n-- dashboard ----------------------------------------------")
        print(render_dashboard(tb.monitor.snapshot()), end="")

        dump = bundle.recorder.dump("multitenant-grid")
        with open(dump_path, "w") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
        print(f"\nflight-recorder dump -> {dump_path} "
              f"({len(dump['events'])} events)")

        kinds = [e["kind"] for e in dump["events"]]
        ok = ("queue" in kinds and "reject" in kinds
              and "scale:grow" in kinds
              and kinds.index("reject") < kinds.index("scale:grow")
              and kinds.index("scale:grow") < _last(kinds, "admit")
              and grid.queue_depth() == 0
              and len(grid.sessions()) == len(TENANTS) - 1)
        if not ok:
            print(f"FAILED: expected queue -> reject -> grow -> drain "
                  f"(kinds: {kinds})")
            return 1
        print("OK: oversubscription queued and rejected explicitly, the "
              "pool grew, and the queue drained")
        return 0
    finally:
        obs.uninstall()


def _last(kinds, kind):
    return len(kinds) - 1 - kinds[::-1].index(kind)


if __name__ == "__main__":
    raise SystemExit(main())
