#!/usr/bin/env python
"""The skeleton provenance pipeline + distributed volume rendering.

Part 1 — the paper's stated provenance of its skeleton model, end to end:
a CT-like volume (our Visible-Human phantom) → marching cubes →
polygon decimation → a mesh session on the data service.

Part 2 — the future-work extension, implemented: the volume itself is
split into slabs, each slab is ray-marched independently (as it would be
on separate render services), and the slab images blend back-to-front by
view distance (the Visapult scheme) into the same picture a single-pass
ray-march produces.

Run:
    python examples/volume_pipeline.py
"""

from pathlib import Path

import numpy as np

from repro import build_testbed
from repro.data import decimate, marching_cubes, visible_human_phantom
from repro.render import Camera, FrameBuffer, blend_slabs, raymarch_volume
from repro.render.rasterizer import rasterize_mesh

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)

    print("-- part 1: volume -> marching cubes -> decimation -------------")
    volume = visible_human_phantom(56)
    print(f"phantom volume: {volume.shape}, "
          f"{volume.byte_size / 1e6:.1f} MB of voxels")

    iso = marching_cubes(volume, iso=0.4)
    print(f"marching cubes: {iso.n_triangles:,} triangles")

    slim = decimate(iso, iso.n_triangles // 4)
    print(f"decimated:      {slim.n_triangles:,} triangles "
          f"({slim.n_triangles / iso.n_triangles:.0%} of original)")

    cam = Camera.looking_at((2.0, 1.6, 0.8), target=(0, 0, 0))
    fb = FrameBuffer(256, 256, background=(8, 8, 16))
    rasterize_mesh(slim.normalized(), cam, fb, shading="gouraud")
    fb.save_ppm(OUTPUT / "volume_isosurface.ppm")
    print(f"iso-surface render saved (coverage {fb.coverage():.0%})")

    # publish to the grid like any other model
    tb = build_testbed(render_hosts=("onyx",))
    tb.publish_model("phantom-skeleton", slim.normalized())
    print("published as session 'phantom-skeleton'")

    print("\n-- part 2: distributed volume rendering (Visapult scheme) ----")
    vcam = Camera.looking_at((0.2, -2.6, 0.6), target=(0, 0, 0))
    mono = raymarch_volume(volume, vcam, 192, 192, opacity_scale=0.25)
    slabs = volume.split_slabs(4, axis=1)
    print(f"volume split into {len(slabs)} slabs "
          f"(each would render on its own service)")
    images = [raymarch_volume(s, vcam, 192, 192, opacity_scale=0.25)
              for s in slabs]
    blended = blend_slabs(images)

    mono_rgb = np.clip(mono.rgba[..., :3], 0, 1)
    err = float(np.abs(blended - mono_rgb).mean())
    print(f"blend vs single-pass mean error: {err:.4f} "
          "(back-to-front ordering preserves transparency)")

    fb2 = FrameBuffer(192, 192)
    fb2.color[:] = (blended * 255).astype(np.uint8)
    fb2.save_ppm(OUTPUT / "volume_distributed_blend.ppm")
    fb3 = FrameBuffer(192, 192)
    fb3.color[:] = (mono_rgb * 255).astype(np.uint8)
    fb3.save_ppm(OUTPUT / "volume_single_pass.ppm")
    print("both renders saved for comparison")


if __name__ == "__main__":
    main()
