#!/usr/bin/env python
"""Adaptive image compression over a degrading wireless link.

The paper's future-work item, implemented: the PDA user walks away from
the access point, signal quality (and with it goodput) collapses, and the
adaptive codec switches from raw frames through RLE/quantization to
inter-frame deltas — keeping the frame latency near the budget instead of
stalling.

Run:
    python examples/adaptive_streaming.py
"""

from repro import build_testbed
from repro.compression import AdaptiveCodec, BandwidthEstimator
from repro.data import elle


def main() -> None:
    tb = build_testbed(render_hosts=("centrino",))
    tb.publish_model("elle", elle().normalized())
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "elle")
    client = tb.thin_client("walker")
    client.attach(rs, rsession.render_session_id)
    client.move_camera(position=(2.2, 1.4, 1.2))

    estimator = BandwidthEstimator(initial_bps=4.8e6)
    codec = AdaptiveCodec(estimator, latency_budget=0.25)

    print(f"{'signal':>7} {'goodput':>9} {'codec':>9} {'bytes':>8} "
          f"{'latency':>8}")
    walk = [1.0, 0.9, 0.75, 0.6, 0.45, 0.3, 0.2, 0.12, 0.07, 0.05]
    for step, quality in enumerate(walk):
        tb.wireless.set_signal_quality("zaurus", quality)
        client.orbit(azimuth=0.15)      # the user keeps navigating
        frame, timing = client.request_frame(200, 200, codec=codec)
        estimator.observe(timing.nbytes, timing.image_receipt_seconds)
        choice = codec.choices[-1]
        marker = " <- over budget" if (timing.total_latency
                                       > codec.latency_budget * 1.6) else ""
        print(f"{quality:>7.0%} "
              f"{tb.network.link_between('zaurus', 'switch').effective_bandwidth() / 1e6:>7.2f}Mb "
              f"{choice.codec_name:>9} {timing.nbytes:>8,} "
              f"{timing.total_latency:>7.3f}s{marker}")

    used = [c.codec_name for c in codec.choices]
    print(f"\ncodecs used along the walk: {' -> '.join(dict.fromkeys(used))}")
    raw_cost = 120_000 * 8 / (11e6 * 0.44 * walk[-1])
    print(f"(a raw 120 kB frame at {walk[-1]:.0%} signal would take "
          f"{raw_cost:.1f} s)")


if __name__ == "__main__":
    main()
