#!/usr/bin/env python
"""Alert-driven autoscaling closing the observe→scale loop on a session.

1. The testbed comes up with the monitoring plane and autoscaling
   enabled; a session starts on the two weakest machines with a scene
   that nearly fills them.
2. Every member's frame rate collapses while the scene exceeds 80% of
   the *pool's* polygon budget — shuffling work between members cannot
   clear that, so the monitor's sustained ``grid-overload`` alert makes
   the :class:`~repro.core.autoscale.RecruitmentAutoscaler` scan UDDI
   and grow the session pool.
3. With the recruits absorbing work the frame rate recovers, the
   sustained ``grid-underload`` alert takes over, and the autoscaler
   drains idle members one cooldown apart, releasing them back to the
   registry as recruitable spare capacity.
4. The flight-recorder dump (written as JSON, path = first argv or
   ``autoscale-dump.json``) carries every scale decision; the dashboard
   renders the pool-size history.

Run:
    python examples/autoscaled_session.py [dump.json]
"""

import json
import sys

from repro import build_testbed, obs
from repro.core import CollaborativeSession
from repro.data import skeleton
from repro.obs.dashboard import render_dashboard
from repro.scenegraph import MeshNode, SceneTree


def main() -> int:
    dump_path = sys.argv[1] if len(sys.argv) > 1 else "autoscale-dump.json"
    tb = build_testbed(monitor_host="registry-host", autoscale=True)
    bundle = obs.install(clock=tb.clock)
    try:
        tree = SceneTree("visible-man")
        tree.add(MeshNode(skeleton(30_000).normalized(), name="skeleton"))
        tb.publish_tree("visible-man", tree)
        cs = CollaborativeSession(tb.data_service, "visible-man",
                                  target_fps=600,
                                  recruiter=tb.recruiter())
        for host in ("centrino", "athlon"):
            cs.connect(tb.render_service(host))
        cs.place_dataset()
        print(f"initial pool: {sorted(s.name for s in cs.render_services)}")

        scaler = tb.autoscale_session(cs, cooldown_seconds=5.0,
                                      min_services=3)

        def drive() -> None:
            """Report collapsed frame rates while the pool is saturated."""
            pool = cs.render_services
            budget = sum(s.capacity().polygon_budget(cs.target_fps)
                         for s in pool)
            committed = sum(s.committed_polygons() for s in pool)
            heavy = committed > 0.8 * budget
            for service in pool:
                service.reported_fps = 2.0 if heavy else 30.0

        last = len(cs.render_services)
        for _ in range(40):
            drive()
            deadline = tb.clock.now + 1.0
            while tb.clock.now < deadline:
                tb.network.sim.run_until(min(deadline, tb.clock.now + 1.0))
            size = len(cs.render_services)
            if size != last:
                arrow = "grew" if size > last else "shrank"
                print(f"t={tb.clock.now:7.2f}s pool {arrow} "
                      f"{last} -> {size}")
                last = size
        scaler.stop()

        print("\n-- scale decisions ----------------------------------------")
        for event in scaler.events:
            print(f"  t={event.time:7.2f}s {event.kind:<8} "
                  f"{', '.join(event.services)} "
                  f"(pool {event.pool_before} -> {event.pool_after}; "
                  f"{event.reason})")

        print("\n-- dashboard ----------------------------------------------")
        print(render_dashboard(tb.monitor.snapshot()), end="")

        dump = bundle.recorder.dump("autoscaled-session")
        with open(dump_path, "w") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
        print(f"\nflight-recorder dump -> {dump_path} "
              f"({len(dump['events'])} events)")

        sizes = [size for _, size in scaler.pool_history]
        grew = any(b > a for a, b in zip(sizes, sizes[1:]))
        shrank = any(b < a for a, b in zip(sizes, sizes[1:]))
        if not (grew and shrank):
            print(f"FAILED: pool never scaled both ways "
                  f"(history: {sizes})")
            return 1
        print(f"OK: pool history {sizes} — grew under overload, "
              f"shrank under underload")
        return 0
    finally:
        obs.uninstall()


if __name__ == "__main__":
    raise SystemExit(main())
