#!/usr/bin/env python
"""The grid monitoring plane closing the loop on a live session.

1. The testbed comes up with a :class:`MonitorService` on the registry
   host, scraping every service's telemetry over the simulated network
   once a second.
2. A collaborative session places a dataset; frames render; the monitor
   federates fps/utilisation gauges from the scraped payloads.
3. A console user logs onto a render machine — its frame rate collapses.
   The monitor's sustained-threshold rule (the migration policy's own
   8 fps / 3 s contract) raises a ``render-overload`` alert.
4. The alert is handed to ``cs.rebalance(alerts=...)``: the migrator
   sheds work off the overloaded service even though its *local*
   trackers never saw a sample — monitoring drives the policy.
5. The SLO report records the violation window and its recovery, and the
   text dashboard renders the whole story.

Run:
    python examples/monitored_session.py
"""

from repro import build_testbed, obs
from repro.data import skeleton
from repro.obs.dashboard import render_dashboard
from repro.core import CollaborativeSession
from repro.scenegraph import CameraNode, MeshNode, SceneTree


def main() -> None:
    tb = build_testbed(monitor_host="registry-host")
    bundle = obs.install(clock=tb.clock)
    try:
        tree = SceneTree("visible-man")
        tree.add(MeshNode(skeleton(90_000).normalized(), name="skeleton"))
        tb.publish_tree("visible-man", tree)
        cs = CollaborativeSession(tb.data_service, "visible-man",
                                  target_fps=600,
                                  recruiter=tb.recruiter())
        cs.place_dataset()
        print(f"placed across: "
              f"{sorted(s.name for s in cs.render_services)}")

        cam = CameraNode(position=(1.0, 1.6, 0.3))
        print("\n-- healthy baseline ---------------------------------------")
        for _ in range(4):
            cs.render_composite(cam, 128, 128)
            tb.network.sim.run_until(tb.clock.now + 1.0)
        print(f"monitor scraped {tb.monitor.scrapes} payloads "
              f"({tb.monitor.scrape_bytes:,} bytes on the wire); "
              f"alerts: {len(tb.monitor.firing_alerts())}")

        print("\n-- console login collapses one machine --------------------")
        victim = max((s for s in cs.render_services if cs.share_of(s)),
                     key=lambda s: s.committed_polygons())
        print(f"{victim.name}: reported fps pinned to 2.0")
        for _ in range(6):
            victim.reported_fps = 2.0
            tb.network.sim.run_until(tb.clock.now + 1.0)
        alerts = tb.monitor.firing_alerts()
        for alert in alerts:
            print(f"  ALERT {alert.rule} on {alert.service} "
                  f"(value {alert.value:.1f}, since t={alert.since:.1f}s)")

        print("\n-- the alert drives the migration policy ------------------")
        actions = cs.rebalance(alerts=alerts)
        for action in actions:
            print(f"  migrated {action.polygons:,} polygons "
                  f"{action.source} -> {action.destination} "
                  f"[{action.reason}]")
        if not actions:
            print("  (no receiver had spare capacity)")
        victim.reported_fps = float("inf")   # load gone; fps recovers
        for _ in range(3):
            cs.render_composite(cam, 128, 128)
            tb.network.sim.run_until(tb.clock.now + 1.0)

        print("\n-- dashboard ----------------------------------------------")
        print(render_dashboard(tb.monitor.snapshot()), end="")
        print(f"\nflight recorder: {bundle.recorder.seen} events noted, "
              f"{len(bundle.recorder.dumps)} dump(s)")
    finally:
        obs.uninstall()


if __name__ == "__main__":
    main()
