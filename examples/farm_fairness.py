#!/usr/bin/env python
"""Fair-share scheduling: a late short job beats a long animation.

1. The testbed deploys the :class:`FrameQueueService` and a long
   priority-0 animation (60 frames, tenant ``batch``) starts rendering
   on a two-worker pool.
2. One second in — both workers deep in the animation — a short
   priority-1 job (6 frames, tenant ``viz``) is submitted.  Under the
   old flat FIFO its frames would have queued behind every remaining
   animation frame; the fair scheduler serves them at the very next
   lease instead (lease-time preemption, no lease revocation).
3. The short job finishes while the animation is still near its start;
   nothing starves, both ``checkframes`` audits come back empty, and
   the dashboard's farm panel shows per-job priorities and waits.
4. The flight-recorder dump (path = first argv, default
   ``farm-fairness-dump.json``) carries the whole story: the CI smoke
   job asserts the preemption ordering from the dump alone.

Run:
    python examples/farm_fairness.py [dump.json]
"""

import json
import sys

from repro import build_testbed, obs
from repro.data.generators import galleon
from repro.farm import RenderJob
from repro.obs.dashboard import render_dashboard

SCENE = "galleon"
LONG, SHORT = "galleon-anim", "title-card"
LONG_FRAMES, SHORT_FRAMES = 60, 6


def main() -> int:
    dump_path = (sys.argv[1] if len(sys.argv) > 1
                 else "farm-fairness-dump.json")
    tb = build_testbed(monitor_host="registry-host", farm=True)
    bundle = obs.install(clock=tb.clock)
    try:
        tb.publish_model(SCENE, galleon(2000))
        queue = tb.farm_queue
        sim = tb.network.sim
        farm = tb.render_farm(worker_hosts=("onyx", "v880z"))

        print("-- the animation goes in ----------------------------------")
        queue.submit(RenderJob(job_id=LONG, session_id=SCENE,
                               start_frame=1, end_frame=LONG_FRAMES,
                               priority=0, tenant="batch"))
        print(f"  {LONG}: frames 1..{LONG_FRAMES}, priority 0, "
              f"tenant batch")
        farm.start()
        sim.run_until(sim.now + 1.0)

        print("-- a short high-priority job arrives ----------------------")
        queue.submit(RenderJob(job_id=SHORT, session_id=SCENE,
                               start_frame=1, end_frame=SHORT_FRAMES,
                               priority=1, tenant="viz"))
        print(f"  {SHORT}: frames 1..{SHORT_FRAMES}, priority 1, "
              f"tenant viz (t={sim.now:.2f}s)")

        deadline = sim.now + 300.0
        while not (queue.job(LONG).finished
                   and queue.job(SHORT).finished) and sim.now < deadline:
            sim.run_until(sim.now + 0.5)

        short = queue.job(SHORT)
        long_job = queue.job(LONG)
        long_at_short = sum(
            1 for f in long_job.frames.values()
            if f.completed_at and f.completed_at <= short.finished_at)
        print(f"\n  {SHORT} finished at t={short.finished_at:.2f}s with "
              f"{LONG} at {long_at_short}/{LONG_FRAMES} frames")
        audits = {LONG: queue.audit(LONG), SHORT: queue.audit(SHORT)}

        # give the monitor a few scrape periods to observe the settled
        # farm before rendering the dashboard
        for _ in range(4):
            sim.run_until(sim.now + 1.0)
        print("\n-- dashboard ----------------------------------------------")
        print(render_dashboard(tb.monitor.snapshot()), end="")

        dump = bundle.recorder.dump("farm-fairness")
        with open(dump_path, "w") as fh:
            json.dump(dump, fh, indent=2, sort_keys=True)
        print(f"\nflight-recorder dump -> {dump_path} "
              f"({len(dump['events'])} events)")

        kinds = [e["kind"] for e in dump["events"]]
        ok = (short.finished and long_job.finished
              and long_at_short < LONG_FRAMES // 2
              and audits == {LONG: [], SHORT: []}
              and queue.starved_jobs() == []
              and queue.duplicates_dropped == 0
              and "farm:starved" not in kinds
              and "alert:farm-starvation" not in kinds)
        if not ok:
            print(f"FAILED: expected the short job done before the "
                  f"animation's midpoint with clean audits and no "
                  f"starvation (long at {long_at_short}, "
                  f"audits {audits})")
            return 1
        print("OK: the late short job preempted at lease time and "
              "finished first; audits clean, nothing starved")
        return 0
    finally:
        obs.uninstall()


if __name__ == "__main__":
    raise SystemExit(main())
