#!/usr/bin/env python
"""Quickstart: publish a model, render it remotely, view it on a PDA.

This is the smallest complete RAVE workflow:

1. build the paper's testbed (six machines, wired LAN + 802.11b cell);
2. import the Galleon model into the data service as a session;
3. bootstrap a render service from the data service;
4. attach a thin client (the Zaurus) and request frames.

Run:
    python examples/quickstart.py
"""

from pathlib import Path

from repro import build_testbed
from repro.data import galleon

OUTPUT = Path(__file__).parent / "output"


def main() -> None:
    OUTPUT.mkdir(exist_ok=True)

    print("Building the SC2004 testbed (simulated)...")
    tb = build_testbed()

    print("Importing the Galleon model into the data service...")
    mesh = galleon(20_000).normalized()
    tb.publish_model("galleon-demo", mesh)
    print(f"  session 'galleon-demo': {mesh.n_triangles:,} triangles")

    print("Bootstrapping a render service on the Centrino laptop...")
    rs = tb.render_service("centrino")
    rsession, boot = rs.create_render_session(tb.data_service,
                                              "galleon-demo")
    print(f"  bootstrap took {boot.total_seconds:.1f} simulated seconds "
          f"({boot.nbytes / 1e3:.0f} kB transferred)")

    print("Attaching the PDA thin client over 802.11b...")
    client = tb.thin_client("quickstart-user")
    client.attach(rs, rsession.render_session_id)
    client.move_camera(position=(2.2, 1.4, 1.2))

    for i in range(3):
        frame, timing = client.request_frame(200, 200)
        print(f"  frame {i}: {timing.fps:.1f} fps "
              f"(render {timing.render_seconds * 1000:.0f} ms, "
              f"receipt {timing.image_receipt_seconds * 1000:.0f} ms, "
              f"overheads {timing.overhead_seconds * 1000:.0f} ms)")
        client.orbit(azimuth=0.4)

    out = OUTPUT / "quickstart_galleon.ppm"
    frame.save_ppm(out)
    print(f"Saved the last frame to {out}")


if __name__ == "__main__":
    main()
