"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs are unavailable; ``pip install -e . --no-use-pep517
--no-build-isolation`` with this shim uses the classic develop path.
All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
