"""Ablation — fine-grain migration vs naive whole-subtree moves.

§3.2.7's worry: "If an underloaded service has capacity for another 5k
polygons/sec ... we do not want to add 100k polygons by mistake — this
service will then become overloaded and need its work redistributing."

We compare the shipped fine-grain knapsack against a naive policy that
always moves the largest node, on the paper's exact scenario: a small
receiver with 5k-polygon headroom and a donor holding a mix of node sizes.
The metric is post-migration overshoot (receiver load beyond its budget),
which the naive policy incurs and the fine-grain policy must not.
"""

import pytest

from repro.core.migration import WorkloadMigrator
from repro.data.generators import skeleton
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree


def build_scene():
    """A donor share with one huge node and many small ones."""
    tree = SceneTree("grain")
    ids = []
    big = tree.add(MeshNode(skeleton(100_000).normalized(), name="big"))
    ids.append(big.node_id)
    for i in range(8):
        node = tree.add(MeshNode(skeleton(3_000).normalized(),
                                 name=f"small{i}"))
        ids.append(node.node_id)
    return tree, set(ids)


def naive_select(tree, candidate_ids, polygons_needed):
    """The strawman: always move the largest node."""
    biggest = max(candidate_ids,
                  key=lambda nid: tree.node(nid).n_polygons)
    return [biggest], tree.node(biggest).n_polygons


def run_policies():
    tree, ids = build_scene()
    needed = 2_500          # shed a little work
    headroom = 5_000        # the paper's "5k polygons/sec" receiver
    fine_ids, fine_moved = WorkloadMigrator.select_nodes(
        tree, ids, polygons_needed=needed, receiver_headroom=headroom)
    naive_ids, naive_moved = naive_select(tree, ids, needed)
    return tree, headroom, (fine_ids, fine_moved), (naive_ids, naive_moved)


def test_migration_grain_ablation(report, benchmark):
    tree, headroom, fine, naive = benchmark.pedantic(run_policies, rounds=1,
                                                     iterations=1)
    fine_ids, fine_moved = fine
    naive_ids, naive_moved = naive
    table = report(
        "ablation_migration_grain",
        "Ablation: fine-grain vs naive node selection "
        f"(receiver headroom {headroom} polygons)",
        ["Policy", "Nodes moved", "Polygons moved", "Receiver overshoot"],
    )
    table.add_row("fine-grain knapsack", len(fine_ids), fine_moved,
                  max(0, fine_moved - headroom))
    table.add_row("naive largest-first", len(naive_ids), naive_moved,
                  max(0, naive_moved - headroom))

    # the paper's requirement: never overshoot the receiver
    assert fine_moved <= headroom
    assert fine_moved > 0
    # the naive policy drops the 100k node on the 5k receiver
    assert naive_moved > 10 * headroom


def test_fine_grain_still_makes_progress_when_needed(benchmark):
    """Fine grain must not mean paralysis: with only coarse nodes, the
    smallest movable one still moves (subject to receiver headroom)."""
    def run():
        tree = SceneTree("coarse")
        ids = set()
        for i in range(3):
            node = tree.add(MeshNode(skeleton(4_000).normalized(),
                                     name=f"chunk{i}"))
            ids.add(node.node_id)
        return WorkloadMigrator.select_nodes(
            tree, ids, polygons_needed=500,
            receiver_headroom=50_000)

    chosen, moved = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(chosen) == 1
    assert moved > 0
