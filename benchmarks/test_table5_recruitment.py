"""Table 5 — Timings of UDDI recruitment and subsequent service bootstrap.

Paper (100 Mbit ethernet):

    Model          Data file  UDDI scan            Service bootstrap
    Galleon        0.3 MB     0.73 s (4.8 s full)  10.5 s
    Skeletal Hand  20 MB      0.70 s (4.2 s full)  68.2 s

The scan times are discovery-protocol costs (independent of model size);
the bootstrap is instance creation + SOAP subscription + the introspection-
marshalled scene transfer — the paper's identified bottleneck ("presently
bottlenecking on Java's marshalling/demarshalling").
"""

import pytest

from benchmarks.conftest import within
from repro.data.generators import make_model
from repro.testbed import build_testbed

PAPER = {
    "galleon": dict(warm=0.73, full=4.8, bootstrap=10.5),
    "skeletal_hand": dict(warm=0.70, full=4.2, bootstrap=68.2),
}


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino", "athlon"))
    for name in ("galleon", "skeletal_hand"):
        testbed.publish_model(name,
                              make_model(name, paper_scale=True).normalized())
    return testbed


def run_uddi_scans(tb):
    client = tb.uddi_client("centrino")
    full = client.full_bootstrap("RAVE project", "RaveRenderService")
    warm = client.scan_access_points("RAVE project", "RaveRenderService")
    return warm, full


def run_bootstrap(tb, model):
    # the Centrino is the calibration reference CPU (cpu_factor 1.0)
    rs = tb.render_service("centrino")
    _, timing = rs.create_render_session(tb.data_service, model)
    return timing


def test_table5_uddi_scans(tb, report, benchmark):
    warm, full = benchmark.pedantic(run_uddi_scans, args=(tb,), rounds=1,
                                    iterations=1)
    table = report(
        "table5_uddi",
        "Table 5 (UDDI): scan timings, paper vs measured",
        ["Scan", "Paper (s)", "Measured (s)"],
    )
    table.add_row("warm access-point scan", "0.70-0.73",
                  f"{warm.elapsed_seconds:.2f}")
    table.add_row("full bootstrap scan", "4.2-4.8",
                  f"{full.elapsed_seconds:.2f}")

    assert 0.65 <= warm.elapsed_seconds <= 0.80
    assert 4.0 <= full.elapsed_seconds <= 5.0
    assert full.elapsed_seconds > 5 * warm.elapsed_seconds
    assert len(full.access_points) == 2


@pytest.mark.parametrize("model", ["galleon", "skeletal_hand"])
def test_table5_service_bootstrap(tb, report, benchmark, model):
    timing = benchmark.pedantic(run_bootstrap, args=(tb, model), rounds=1,
                                iterations=1)
    paper = PAPER[model]["bootstrap"]
    table = report(
        f"table5_bootstrap_{model}",
        f"Table 5 (bootstrap, {model}): paper vs measured, with breakdown",
        ["Component", "Seconds"],
    )
    table.add_row("paper total", f"{paper:.1f}")
    table.add_row("measured total", f"{timing.total_seconds:.1f}")
    table.add_row("  instance creation", f"{timing.instance_seconds:.1f}")
    table.add_row("  SOAP handshakes", f"{timing.handshake_seconds:.2f}")
    table.add_row("  marshal (introspection)",
                  f"{timing.marshal_seconds:.1f}")
    table.add_row("  network transfer", f"{timing.transfer_seconds:.2f}")
    table.add_row("  demarshal", f"{timing.demarshal_seconds:.1f}")
    table.add_row("  payload bytes", f"{timing.nbytes}")

    assert within(timing.total_seconds, paper, 0.20)


def test_table5_marshalling_is_the_bottleneck(tb, benchmark):
    """The paper's analysis: for the big model, CPU marshalling dwarfs the
    wire time on 100 Mbit ethernet."""

    def measure():
        rs = tb.render_service("athlon")
        _, timing = rs.create_render_session(tb.data_service,
                                             "skeletal_hand")
        return timing

    timing = benchmark.pedantic(measure, rounds=1, iterations=1)
    cpu = timing.marshal_seconds + timing.demarshal_seconds
    assert cpu > 10 * timing.transfer_seconds
