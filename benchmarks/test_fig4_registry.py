"""Figure 4 — Simple UDDI registry GUI.

The paper's screenshot shows two machines ("tower" and "adrenochrome")
registered with the UDDI server, data- and render-service instances on
each (e.g. render service "Skull-internal" on tower, bootstrapped from
data service "Skull" on adrenochrome), and an italic "Create new
instance" action at the bottom of each listing.

We rebuild that exact state over the live registry/browser stack and
save the textual rendering the figure screenshots.
"""

import pytest

from repro.collab.gui import RegistryBrowser
from repro.data.generators import galleon
from repro.data.obj import write_obj
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def tb():
    return build_testbed(render_hosts=("centrino", "athlon"))


def build_figure_state(tb, tmp_path):
    browser = RegistryBrowser(
        tb.registry, tb.containers,
        data_services={tb.data_service.host: tb.data_service},
        render_services=dict(tb.render_services))
    # "adrenochrome" hosts the data service with a 'Skull' session...
    skull = tmp_path / "Skull.obj"
    write_obj(galleon().normalized(), skull)
    browser.create_data_instance(tb.data_service.host, f"file://{skull}")
    # ...and "tower" runs a render service bootstrapped from it
    browser.create_render_instance("centrino", tb.data_service.host,
                                   "Skull")
    return browser


def test_fig4_registry_listing(tb, results_dir, tmp_path, benchmark):
    browser = build_figure_state(tb, tmp_path)
    text = benchmark(browser.render_text, "RAVE project")
    (results_dir / "fig4_registry_browser.txt").write_text(text)

    # the figure's structure: business > hosts > services > instances
    assert "RAVE project" in text
    lines = text.splitlines()
    host_lines = [ln for ln in lines if ln.strip() in tb.containers]
    assert len(host_lines) >= 2
    assert "Skull" in text                       # the data session
    assert "Skull@rs-centrino" in text           # the render instance
    assert text.count("*Create new instance*") >= 2

    # create-new-instance actions work from the listing
    rows = browser.rows("RAVE project")
    actions = {r.action for r in rows if r.action}
    assert actions == {"create-data", "create-render"}
