"""Table 1 — Models used in benchmarks.

Paper:
    Model Name     Number of Polygons   Size of Data File
    Skeletal Hand  0.83 million         20 MB
    Skeleton       2.8  million         75 MB

We regenerate both models at paper scale, export them as Wavefront OBJ
(the paper's import format) and compare polygon counts and on-disk sizes.
Byte sizes land in the same regime (text OBJ of the same polygon count);
the exact figure depends on coordinate digit counts.
"""

import pytest

from benchmarks.conftest import within
from repro.data.generators import PAPER_TRIANGLES, make_model
from repro.data.obj import write_obj

PAPER_FILE_MB = {"skeletal_hand": 20.0, "skeleton": 75.0}


@pytest.fixture(scope="module")
def paper_models():
    return {
        name: make_model(name, paper_scale=True)
        for name in ("skeletal_hand", "skeleton")
    }


def test_table1_reproduction(paper_models, report, tmp_path, benchmark):
    table = report(
        "table1_models",
        "Table 1: Models used in benchmarks (paper vs reproduced)",
        ["Model", "Paper polys", "Our polys", "Paper MB", "Our MB (OBJ)"],
    )

    def export_all():
        sizes = {}
        for name, mesh in paper_models.items():
            sizes[name] = write_obj(mesh, tmp_path / f"{name}.obj",
                                    precision=5)
        return sizes

    sizes = benchmark.pedantic(export_all, rounds=1, iterations=1)

    for name, mesh in paper_models.items():
        our_mb = sizes[name] / 1e6
        table.add_row(name, f"{PAPER_TRIANGLES[name]:,}",
                      f"{mesh.n_triangles:,}",
                      f"{PAPER_FILE_MB[name]:.0f}", f"{our_mb:.1f}")
        # polygon counts must match the paper within the generator tolerance
        assert within(mesh.n_triangles, PAPER_TRIANGLES[name], 0.08)
        # file size: same order, within ~2x (text formatting differences)
        assert 0.5 < our_mb / PAPER_FILE_MB[name] < 2.0

    # the paper's size ordering holds: skeleton file ~3-4x the hand's
    ratio = sizes["skeleton"] / sizes["skeletal_hand"]
    assert 2.5 < ratio < 5.0


def test_generation_speed_hand(benchmark):
    """Wall-clock: building the 0.83M-triangle hand must stay interactive."""
    mesh = benchmark(make_model, "skeletal_hand", PAPER_TRIANGLES[
        "skeletal_hand"])
    assert mesh.n_triangles > 700_000


def test_generation_speed_galleon(benchmark):
    mesh = benchmark(make_model, "galleon", 5_500)
    assert 4_000 < mesh.n_triangles < 7_000
