"""Ablation — compression codecs under varying wireless signal quality.

§5.1: "we need to investigate image compression, as our bottleneck is the
available network bandwidth ... a compression algorithm that can adapt on
the fly to changing network conditions."  We sweep the PDA's signal
quality and compare per-frame latency for raw transmission, each fixed
codec, and the adaptive controller, over the real thin-client pipeline.
"""

import numpy as np
import pytest

from repro.compression import (
    AdaptiveCodec,
    BandwidthEstimator,
    DeltaCodec,
    Rgb565Codec,
    RleCodec,
)
from repro.data.generators import galleon
from repro.testbed import build_testbed

QUALITIES = (1.0, 0.5, 0.25, 0.1)


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino",))
    testbed.publish_model("ship", galleon(20_000).normalized())
    return testbed


def fresh_client(tb, tag):
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "ship")
    client = tb.thin_client(f"codec-{tag}")
    client.attach(rs, rsession.render_session_id)
    client.move_camera(position=(2.2, 1.4, 1.2))
    return client


def sweep(tb):
    latencies: dict[str, dict[float, float]] = {}
    codecs = {
        "raw": None,
        "rle": RleCodec(),
        "rgb565": Rgb565Codec(),
        "delta": DeltaCodec(),
    }
    estimator = BandwidthEstimator(initial_bps=4.8e6)
    adaptive = AdaptiveCodec(estimator, latency_budget=0.25)
    codecs["adaptive"] = adaptive
    for name, codec in codecs.items():
        client = fresh_client(tb, f"{name}")
        latencies[name] = {}
        for quality in QUALITIES:
            tb.wireless.set_signal_quality("zaurus", quality)
            if name == "adaptive":
                estimator.bps = 4.8e6 * quality
            # two frames per condition; report the second so stateful
            # codecs (delta, adaptive) are compared warm
            client.request_frame(200, 200, codec=codec)
            _, timing = client.request_frame(200, 200, codec=codec)
            latencies[name][quality] = timing.total_latency
    tb.wireless.set_signal_quality("zaurus", 1.0)
    return latencies, adaptive


def test_compression_ablation(tb, report, benchmark):
    latencies, adaptive = benchmark.pedantic(sweep, args=(tb,), rounds=1,
                                             iterations=1)
    table = report(
        "ablation_compression",
        "Ablation: per-frame latency (s) by codec and signal quality",
        ["Codec"] + [f"q={q}" for q in QUALITIES],
    )
    for name, by_quality in latencies.items():
        table.add_row(name, *(f"{by_quality[q]:.3f}" for q in QUALITIES))

    worst = QUALITIES[-1]
    # at 10% signal, raw transmission is painful (~2 s/frame)
    assert latencies["raw"][worst] > 1.5
    # every codec beats raw there
    for name in ("rle", "rgb565", "delta", "adaptive"):
        assert latencies[name][worst] < latencies["raw"][worst], name
    # the adaptive codec tracks (or beats) the best fixed codec within 20%
    best_fixed = min(latencies[n][worst] for n in ("rle", "rgb565",
                                                   "delta"))
    assert latencies["adaptive"][worst] <= best_fixed * 1.2
    # and on a clean link it does not pay a compression tax worth noting
    assert latencies["adaptive"][1.0] <= latencies["raw"][1.0] * 1.1
    # the controller actually changed codecs across the sweep
    used = {c.codec_name for c in adaptive.choices}
    assert len(used) >= 2


def test_delta_codec_wins_on_static_scenes(tb, benchmark):
    """Camera still + scene static: delta frames are near-free."""
    def run():
        client = fresh_client(tb, "delta-static")
        codec = DeltaCodec()
        _, first = client.request_frame(200, 200, codec=codec)
        _, second = client.request_frame(200, 200, codec=codec)
        return first, second

    first, second = benchmark.pedantic(run, rounds=1, iterations=1)
    assert second.nbytes < first.nbytes / 100
    assert second.total_latency < first.total_latency
