"""Ablation — interest management + multicast vs naive broadcast.

Two data-service bandwidth savers the paper describes:

- interest management ("sections of the dataset [are] marked as being of
  interest to a render service — this render service must be updated if
  the data service receives any changes to this subset"), which prunes
  irrelevant deliveries entirely;
- multicast ("network bandwidth-saving techniques such as multicasting"),
  which serialises a shared payload once on shared links.

We drive a session with N subscribers, each interested in a disjoint
slice, publish updates touching single slices, and compare the simulated
delivery cost against a naive unicast-broadcast baseline.
"""

import pytest

from repro.data.generators import skeleton
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import ModifyGeometry
from repro.testbed import build_testbed

N_PARTS = 4
HOSTS = ("centrino", "athlon", "onyx", "v880z")


@pytest.fixture(scope="module")
def setup():
    tb = build_testbed()
    tree = SceneTree("interest")
    parts = skeleton(12_000).normalized().split_spatially(N_PARTS)
    ids = []
    for i, piece in enumerate(parts):
        node = tree.add(MeshNode(piece, name=f"slice{i}"))
        ids.append(node.node_id)
    tb.publish_tree("interest", tree)
    return tb, ids


def geometry_update(tb, node_id):
    tree = tb.data_service.session("interest").tree
    node = tree.node(node_id)
    return ModifyGeometry(node_id=node_id, fields={
        "vertices": node.mesh.vertices,
        "faces": node.mesh.faces,
    })


def run(tb, ids, with_interests):
    session = tb.data_service.session("interest")
    session.subscribers.clear()
    delivered_bytes = 0
    deliveries = 0
    for i, host in enumerate(HOSTS):
        tb.data_service.subscribe(
            "interest", f"sub-{with_interests}-{i}", host,
            interests={ids[i]} if with_interests else None)
    total_seconds = 0.0
    for node_id in ids:
        update = geometry_update(tb, node_id)
        times = tb.data_service.publish_update("interest", update)
        deliveries += len(times)
        delivered_bytes += update.payload_bytes * len(times)
        # total receiver-seconds: multicast equalises the *slowest*
        # receiver, so the discriminating cost is the sum of delivery
        # times (downlink serialisations) across receivers
        total_seconds += sum(times.values())
    return deliveries, delivered_bytes, total_seconds


def test_interest_management_ablation(setup, report, benchmark):
    tb, ids = setup

    def both():
        filtered = run(tb, ids, with_interests=True)
        broadcast = run(tb, ids, with_interests=False)
        return filtered, broadcast

    filtered, broadcast = benchmark.pedantic(both, rounds=1, iterations=1)
    table = report(
        "ablation_interest_management",
        "Ablation: interest-filtered multicast vs naive broadcast "
        f"({len(ids)} geometry updates, {len(HOSTS)} subscribers)",
        ["Policy", "Deliveries", "Bytes delivered", "Receiver-seconds"],
    )
    for label, (deliveries, nbytes, secs) in (
            ("interest-filtered", filtered),
            ("broadcast", broadcast)):
        table.add_row(label, deliveries, f"{nbytes:,}", f"{secs:.3f}")

    f_del, f_bytes, f_secs = filtered
    b_del, b_bytes, b_secs = broadcast
    # each update reaches exactly its one interested subscriber
    assert f_del == len(ids)
    assert b_del == len(ids) * len(HOSTS)
    assert f_bytes * 3 < b_bytes
    assert f_secs < b_secs


def test_multicast_saves_on_shared_uplink(setup, benchmark):
    """Even without interests, multicast beats per-subscriber unicast on
    the data service's shared uplink."""
    tb, ids = setup

    def measure():
        session = tb.data_service.session("interest")
        session.subscribers.clear()
        for i, host in enumerate(HOSTS):
            tb.data_service.subscribe("interest", f"mc-{i}", host)
        update = geometry_update(tb, ids[0])
        times = tb.data_service.publish_update("interest", update)
        multicast_worst = max(times.values())
        unicast_sum = sum(
            tb.network.transfer_time(tb.data_service.host, host,
                                     update.payload_bytes)
            for host in HOSTS)
        return multicast_worst, unicast_sum

    multicast_worst, unicast_sum = benchmark.pedantic(measure, rounds=1,
                                                      iterations=1)
    assert multicast_worst < unicast_sum
