"""Table 3 — Off-screen render timings (400x400), % of on-screen speed.

Paper:
    400x400 image        GeForce2 420 Go  GeForce2 GTS   XVR-4000
    Dataset              Centrino 1.6GHz  Athlon 1.2GHz  V880z
    "Elle" (50k poly)    35%              40%            3%
    "Galleon" (5.5k)     9%               9%             16%

Our engine model computes efficiency mechanistically (off-screen request/
poll/copy overhead on NVIDIA hardware; software-fallback re-render on the
XVR-4000).  Deviations are recorded in EXPERIMENTS.md; the defining shapes
are asserted here.
"""

import pytest

from benchmarks.conftest import within
from repro.hardware.profiles import get_profile
from repro.render.engine import RenderEngine

PAPER_400 = {
    # (machine, dataset polygons) -> paper efficiency
    ("centrino", 50_000): 0.35,
    ("centrino", 5_500): 0.09,
    ("athlon", 50_000): 0.40,
    ("athlon", 5_500): 0.09,
    ("v880z", 50_000): 0.03,
    ("v880z", 5_500): 0.16,
}

DATASETS = {"Elle": 50_000, "Galleon": 5_500}
MACHINES = ("centrino", "athlon", "v880z")
PIXELS = 400 * 400


def compute_table():
    out = {}
    for machine in MACHINES:
        engine = RenderEngine(get_profile(machine))
        for _label, polys in DATASETS.items():
            out[(machine, polys)] = engine.offscreen_efficiency(polys,
                                                                PIXELS)
    return out


def test_table3_reproduction(report, benchmark):
    measured = benchmark(compute_table)
    table = report(
        "table3_offscreen_400",
        "Table 3: off-screen efficiency at 400x400 (paper% / measured%)",
        ["Dataset"] + list(MACHINES),
    )
    for label, polys in DATASETS.items():
        cells = [label]
        for machine in MACHINES:
            paper = PAPER_400[(machine, polys)]
            got = measured[(machine, polys)]
            cells.append(f"{paper:.0%} / {got:.0%}")
        table.add_row(*cells)

    # calibrated cells: NVIDIA columns within a few points of the paper
    for machine in ("centrino", "athlon"):
        for polys in DATASETS.values():
            assert abs(measured[(machine, polys)]
                       - PAPER_400[(machine, polys)]) < 0.06, machine

    # the XVR-4000 Elle catastrophe (software fallback)
    assert measured[("v880z", 50_000)] < 0.06
    # known deviation: the paper's Galleon/XVR cell (16%) is inconsistent
    # with any single software rate; we reproduce "much slower than the
    # NVIDIA hardware path" qualitatively
    assert measured[("v880z", 5_500)] < 0.25


def test_table3_shapes(benchmark):
    measured = benchmark(compute_table)
    # off-screen always slower than on-screen
    assert all(0 < eff < 1 for eff in measured.values())
    # on NVIDIA hardware the small model suffers relatively more
    for machine in ("centrino", "athlon"):
        assert measured[(machine, 5_500)] < measured[(machine, 50_000)]
    # the software-fallback machine is the worst on the big model
    worst = min(MACHINES,
                key=lambda m: measured[(m, 50_000)])
    assert worst == "v880z"
