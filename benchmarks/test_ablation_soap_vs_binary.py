"""Ablation — SOAP control plane vs binary data plane.

The paper's §4.3 design rule: SOAP "not suited to large data transmission
or low latency, due to the size of the SOAP packets related to the size of
the data, and the time required to marshall/demarshall", so RAVE "backs
off from SOAP and uses direct socket communication to send binary
information".  This ablation quantifies that rule across payload sizes:
where is the crossover, and how big is the penalty at frame-buffer scale?
"""

import numpy as np
import pytest

from repro.network.simnet import Network
from repro.network.transport import BinaryChannel, SoapChannel


@pytest.fixture(scope="module")
def net():
    network = Network()
    network.add_host("a")
    network.add_host("b")
    network.add_link("a", "b", 100e6, 0.0002)
    return network


SIZES = (100, 1_000, 10_000, 120_000, 1_000_000)


def measure(net):
    rows = []
    for size in SIZES:
        payload = {"data": np.zeros(size, np.uint8)}
        _, t_soap = SoapChannel(net, "a", "b").send(("op", payload),
                                                    advance_clock=False)
        _, t_bin = BinaryChannel(net, "a", "b").send(payload,
                                                     advance_clock=False)
        rows.append((size, t_soap, t_bin))
    return rows


def test_soap_vs_binary_ablation(net, report, benchmark):
    rows = benchmark.pedantic(measure, args=(net,), rounds=1, iterations=1)
    table = report(
        "ablation_soap_vs_binary",
        "Ablation: SOAP vs binary channel, simulated per-message seconds",
        ["Payload B", "SOAP bytes", "SOAP s", "Binary bytes", "Binary s",
         "Penalty"],
    )
    for size, t_soap, t_bin in rows:
        table.add_row(size, t_soap.nbytes, f"{t_soap.total_seconds:.5f}",
                      t_bin.nbytes, f"{t_bin.total_seconds:.5f}",
                      f"{t_soap.total_seconds / t_bin.total_seconds:.1f}x")

    by_size = {size: (t_soap, t_bin) for size, t_soap, t_bin in rows}
    # XML + base64 expansion: >4/3 on bulk payloads
    t_soap, t_bin = by_size[1_000_000]
    assert t_soap.nbytes > 1.30 * t_bin.nbytes
    # at frame-buffer scale (the 120 kB PDA frame) SOAP costs at least
    # half again as much time end to end
    t_soap, t_bin = by_size[120_000]
    assert t_soap.total_seconds > 1.5 * t_bin.total_seconds
    # for tiny control messages the gap is bounded — which is why SOAP is
    # acceptable for discovery/subscription
    t_soap, t_bin = by_size[100]
    assert t_soap.total_seconds < 30 * t_bin.total_seconds


def test_soap_absolute_cost_grows_with_size(net, benchmark):
    """The paper's complaint is about bulk data: the *absolute* extra
    seconds SOAP costs grow with payload size (the fixed envelope overhead
    dominates tiny control messages instead — which is precisely why RAVE
    keeps SOAP only for discovery/subscription)."""
    rows = benchmark.pedantic(measure, args=(net,), rounds=1, iterations=1)
    extras = [t_soap.total_seconds - t_bin.total_seconds
              for _, t_soap, t_bin in rows]
    assert extras == sorted(extras)
    assert extras[-1] > 20 * extras[0]
    # byte expansion also grows toward the base64 4/3 asymptote
    expansions = [t_soap.nbytes / t_bin.nbytes for _, t_soap, t_bin in rows]
    assert expansions[-1] > 1.30
