"""Figure 3 — Two users visualising the same scene collaboratively.

The paper's screenshot: the local user sees the remote user (host
"Desktop") as a cone avatar while both navigate the skeletal-hand scene.
We reproduce the scenario end-to-end: two active render clients join one
data session, announce avatars, navigate, and the local user's render is
checked for the remote avatar's pixels.
"""

import numpy as np
import pytest

from repro.data.generators import skeletal_hand
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino", "athlon"))
    testbed.publish_model("hand-scene", skeletal_hand(40_000).normalized())
    return testbed


def run_collaboration(tb, tag="0"):
    local = tb.active_client(f"local-user-{tag}", "centrino")
    remote = tb.active_client(f"Desktop-{tag}", "athlon")
    local.join(tb.data_service, "hand-scene")
    remote.join(tb.data_service, "hand-scene")
    local.announce_avatar()
    remote_avatar = remote.announce_avatar()

    # the remote user navigates around the dataset; place their avatar in
    # the local user's field of view
    remote.move(position=(0.9, 0.6, 0.6))
    local.camera.look(position=(2.4, 1.6, 1.2), target=(0, 0, 0))

    with_avatar, _ = local.render(160, 160)
    # counterfactual: remove the remote avatar, render again
    local.tree.remove(remote_avatar)
    without_avatar, _ = local.render(160, 160)
    return with_avatar, without_avatar


def test_fig3_collaboration(tb, results_dir, benchmark):
    with_avatar, without_avatar = benchmark.pedantic(
        run_collaboration, args=(tb,), kwargs={"tag": "bench"},
        rounds=1, iterations=1)
    with_avatar.save_ppm(results_dir / "fig3_local_view_with_avatar.ppm")
    without_avatar.save_ppm(results_dir / "fig3_local_view_without.ppm")

    # the avatar cone contributed visible pixels
    diff = np.abs(with_avatar.color.astype(int)
                  - without_avatar.color.astype(int)).sum(axis=2)
    avatar_pixels = int((diff > 10).sum())
    assert avatar_pixels > 20, "remote user's cone must be visible"

    # and the scene itself is present in both
    assert without_avatar.coverage() > 0.05


def test_fig3_avatar_updates_are_cheap(tb, benchmark):
    """Avatar moves are tiny updates — they must not cost like geometry."""
    local = tb.active_client("cheap-local", "centrino")
    remote = tb.active_client("cheap-remote", "athlon")
    local.join(tb.data_service, "hand-scene")
    remote.join(tb.data_service, "hand-scene")
    remote.announce_avatar()

    def move_many():
        t0 = tb.clock.now
        for i in range(20):
            remote.move(position=(np.cos(i / 3.0), np.sin(i / 3.0), 0.5))
        return tb.clock.now - t0

    sim_elapsed = benchmark.pedantic(move_many, rounds=1, iterations=1)
    # 20 avatar updates over the LAN in well under a second of sim time
    assert sim_elapsed < 0.5
