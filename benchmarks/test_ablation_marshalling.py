"""Ablation — introspection marshalling vs direct binary streaming.

The paper names reflective marshalling as its bootstrap bottleneck and
plans to "directly send a native Java3D stream" instead.  This ablation
re-runs the Table 5 bootstrap with both marshallers and reports the
speed-up the planned fix would deliver.
"""

import pytest

from repro.data.generators import make_model
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino", "athlon"))
    testbed.publish_model(
        "hand", make_model("skeletal_hand", paper_scale=True).normalized())
    return testbed


def bootstrap(tb, host, introspective):
    rs = tb.render_service(host)
    session, timing = rs.create_render_session(
        tb.data_service, "hand", introspective=introspective)
    # closing the last session drops the shared copy and the subscription,
    # so the next bootstrap re-transfers
    rs.close_render_session(session.render_session_id)
    return timing


def test_marshalling_ablation(tb, report, benchmark):
    def run():
        slow = bootstrap(tb, "centrino", introspective=True)
        fast = bootstrap(tb, "centrino", introspective=False)
        return slow, fast

    slow, fast = benchmark.pedantic(run, rounds=1, iterations=1)
    table = report(
        "ablation_marshalling",
        "Ablation: introspection vs binary-stream bootstrap (0.83M-poly "
        "hand)",
        ["Path", "Marshal s", "Demarshal s", "Transfer s", "Total s"],
    )
    for label, t in (("introspection (shipped)", slow),
                     ("binary stream (planned fix)", fast)):
        table.add_row(label, f"{t.marshal_seconds:.1f}",
                      f"{t.demarshal_seconds:.1f}",
                      f"{t.transfer_seconds:.2f}",
                      f"{t.total_seconds:.1f}")

    # identical bytes moved either way
    assert slow.nbytes == fast.nbytes
    # the bottleneck: introspection CPU dwarfs the binary path's
    assert slow.marshal_seconds > 30 * fast.marshal_seconds
    # fixing marshalling turns a ~70 s bootstrap into ~instance-creation
    # + wire time
    assert fast.total_seconds < 0.25 * slow.total_seconds
    assert fast.total_seconds < 9.8 + 0.5 + 4 * fast.transfer_seconds


def test_binary_path_is_network_bound(tb, benchmark):
    """After the fix the wire, not the CPU, dominates — the healthy state."""
    timing = benchmark.pedantic(
        bootstrap, args=(tb, "centrino", False), rounds=1, iterations=1)
    cpu = timing.marshal_seconds + timing.demarshal_seconds
    assert cpu < timing.transfer_seconds
