"""Shared benchmark machinery.

Every benchmark regenerates one of the paper's tables or figures.  Results
go two places:

- the pytest-benchmark wall-clock table (is the harness itself fast?);
- ``benchmarks/results/<name>.txt`` — the reproduced table, paper value vs
  measured simulated value per cell, which EXPERIMENTS.md indexes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


class TableReport:
    """Accumulates paper-vs-measured rows and writes the result file."""

    def __init__(self, name: str, title: str, columns: list[str]) -> None:
        self.name = name
        self.title = title
        self.columns = columns
        self.rows: list[list[str]] = []

    def add_row(self, *cells) -> None:
        self.rows.append([str(c) for c in cells])

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines) + "\n"

    def save(self, directory: Path) -> Path:
        directory.mkdir(exist_ok=True)
        path = directory / f"{self.name}.txt"
        path.write_text(self.render())
        return path


@pytest.fixture
def report(results_dir):
    """Factory: report(name, title, columns) -> TableReport, auto-saved."""
    made: list[TableReport] = []

    def factory(name: str, title: str, columns: list[str]) -> TableReport:
        table = TableReport(name, title, columns)
        made.append(table)
        return table

    yield factory
    for table in made:
        table.save(results_dir)


def within(measured: float, paper: float, rel: float) -> bool:
    """Shape check helper: measured within a relative band of the paper."""
    if paper == 0:
        return abs(measured) < 1e-9
    return abs(measured - paper) / abs(paper) <= rel
