"""Figure 1 — Diagram of basic RAVE architecture.

The paper's Figure 1 shows the component graph: a remote data source
feeding the data service; render services subscribing for scene updates
and sending modifications back; a render service doubling as an active
render client on a large-scale stereo display; thin clients exchanging
camera/interaction messages for rendered framebuffers.

This benchmark *generates the diagram from a live system*: it assembles
the pictured deployment, walks the actual objects and their observed
message flows, and emits the component graph as text — asserting that
every arrow in the paper's figure corresponds to traffic that really
happened.
"""

import numpy as np
import pytest

from repro.data.generators import galleon
from repro.scenegraph.updates import SetProperty
from repro.testbed import build_testbed


def build_figure_system():
    tb = build_testbed(render_hosts=("onyx", "centrino"))
    tb.publish_model("fig1", galleon(10_000).normalized())

    # render service on the Onyx drives the large-scale stereo display
    # (the "Render Service (and Active Render Client)" box)
    wall_rs = tb.render_service("onyx")
    wall_session, _ = wall_rs.create_render_session(tb.data_service, "fig1")

    # a second render service serves the thin client
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "fig1")
    pda = tb.thin_client("fig1-pda")
    pda.attach(rs, rsession.render_session_id)
    pda.move_camera(position=(2.2, 1.4, 1.2))

    # traffic for every arrow:
    # camera/interaction -> render service -> framebuffer back
    pda.request_frame(200, 200)
    # modifications to scene -> data service -> scene updates multicast
    ship = tb.data_service.session("fig1").tree.find_by_name("galleon")[0]
    deliveries = tb.data_service.publish_update("fig1", SetProperty(
        node_id=ship.node_id, field_name="name", value="fig1-renamed"))
    return tb, wall_rs, rs, pda, deliveries


def render_diagram(tb, wall_rs, rs, pda, deliveries) -> str:
    ds = tb.data_service
    session = ds.session("fig1")
    lines = ["Figure 1: RAVE architecture (reconstructed from live objects)",
             ""]
    lines.append(f"[Remote Data Source] --import--> "
                 f"[Data Service '{ds.name}' @ {ds.host}]")
    for name, sub in session.subscribers.items():
        lines.append(f"  [Data Service] --scene updates "
                     f"({sub.updates_delivered} delivered)--> "
                     f"[{sub.kind} '{name}' @ {sub.host}]")
        lines.append(f"  [{sub.kind} '{name}'] --modifications to scene--> "
                     f"[Data Service]")
    lines.append(f"[Render Service '{wall_rs.name}'] --local display--> "
                 f"[Large-Scale Stereo Display @ {wall_rs.host}]")
    lines.append(f"[Thin Client '{pda.name}' @ {pda.host}] "
                 f"--camera position, object interaction--> "
                 f"[Render Service '{rs.name}']")
    lines.append(f"  [Render Service '{rs.name}'] "
                 f"--rendered frame buffer ({pda.frames_received} frames, "
                 f"120 kB each)--> [Thin Client]")
    return "\n".join(lines) + "\n"


def test_fig1_architecture(results_dir, benchmark):
    tb, wall_rs, rs, pda, deliveries = benchmark.pedantic(
        build_figure_system, rounds=1, iterations=1)
    diagram = render_diagram(tb, wall_rs, rs, pda, deliveries)
    (results_dir / "fig1_architecture.txt").write_text(diagram)

    # every box in the paper's figure exists and every arrow carried data
    assert "Data Service" in diagram
    assert "Large-Scale Stereo Display" in diagram
    assert "Thin Client" in diagram
    assert "rendered frame buffer (1 frames" in diagram
    # both render services received the scene update multicast
    assert len(deliveries) == 2
    session = tb.data_service.session("fig1")
    assert all(sub.updates_delivered == 1
               for sub in session.subscribers.values())
    # the renamed scene propagated into both render services' copies
    for service in (wall_rs, rs):
        copies = [s.tree for s in service.render_sessions()]
        assert any(t.find_by_name("fig1-renamed") for t in copies)
