"""Ablation — request/response frames vs pipelined streaming.

Table 2's fps is the reciprocal of the full request→render→transfer→blit
latency: nothing overlaps.  The §5.5 best-effort streaming mode can
pipeline render and transfer; this ablation measures the throughput gain
across the render/transfer balance, from transfer-bound (Galleon) through
balanced to render-bound scenes.
"""

import pytest

from repro.data.generators import make_model
from repro.services.streaming import FrameStreamer
from repro.testbed import build_testbed

SCENES = {
    "galleon (5.5k, transfer-bound)": ("galleon", 5_500),
    "hand (830k)": ("skeletal_hand", 830_000),
    "skeleton (2.8M, render-bound)": ("skeleton", 2_800_000),
}


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino",))
    for _label, (name, polys) in SCENES.items():
        testbed.publish_model(f"s-{name}",
                              make_model(name, polys).normalized())
    return testbed


def run_all(tb):
    out = {}
    for label, (name, _) in SCENES.items():
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service,
                                               f"s-{name}")
        streamer = FrameStreamer(rs, rsession.render_session_id,
                                 "zaurus", 200, 200)
        lock = streamer.stream_lockstep(10)
        pipe = streamer.stream_pipelined(10)
        out[label] = (lock.fps, pipe.fps)
        rs.close_render_session(rsession.render_session_id)
    return out


def test_streaming_ablation(tb, report, benchmark):
    results = benchmark.pedantic(run_all, args=(tb,), rounds=1,
                                 iterations=1)
    table = report(
        "ablation_streaming",
        "Ablation: lockstep vs pipelined streaming over 802.11b (fps)",
        ["Scene", "Lockstep", "Pipelined", "Gain"],
    )
    for label, (lock_fps, pipe_fps) in results.items():
        table.add_row(label, f"{lock_fps:.2f}", f"{pipe_fps:.2f}",
                      f"{pipe_fps / lock_fps:.2f}x")

    # pipelining never loses
    for label, (lock_fps, pipe_fps) in results.items():
        assert pipe_fps >= lock_fps * 0.99, label
    # the gain is sum/max of the two stages: tiny when one stage dominates
    # (galleon: transfer >> render), large when they are comparable
    gains = {label: p / l for label, (l, p) in results.items()}
    assert gains["galleon (5.5k, transfer-bound)"] < 1.15
    assert gains["hand (830k)"] > 1.3
    assert gains["skeleton (2.8M, render-bound)"] > 1.4
