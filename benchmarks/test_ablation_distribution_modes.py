"""Ablation — dataset distribution vs framebuffer (tile) distribution.

§3.2.5 offers both modes without saying when each wins.  The trade-off the
cost model encodes:

- *dataset* distribution divides geometry work (each service transforms
  only its subset) but every frame moves full-resolution framebuffers with
  depth for compositing;
- *framebuffer* distribution duplicates geometry work on every assistant
  (each renders the whole scene) but moves only color tiles.

So dataset distribution should win on geometry-heavy scenes and tile
distribution on fill/transfer-bound ones.  This ablation sweeps polygon
count and reports the simulated frame latency of both modes on the same
two-service testbed, locating the crossover.
"""

import pytest

from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.testbed import build_testbed

POLY_COUNTS = (5_000, 20_000, 60_000)


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino", "athlon"))
    for n in POLY_COUNTS:
        tree = SceneTree(f"scene-{n}")
        tree.add(MeshNode(skeleton(n).normalized(), name="skel"))
        testbed.publish_tree(f"scene-{n}", tree)
    return testbed


def run_modes(tb, n):
    cam = CameraNode(position=(1.0, 1.6, 0.3))
    width = height = 128

    # dataset mode: split the scene, composite by depth.  The fps target
    # sits between "one machine fits it" (11e6/n) and "the pool fits it"
    # (19.4e6/n), forcing a genuine split that remains feasible.
    cs = CollaborativeSession(tb.data_service, f"scene-{n}",
                              target_fps=15e6 / n)
    cs.connect(tb.render_service("centrino"))
    cs.connect(tb.render_service("athlon"))
    try:
        cs.place_dataset()
        _, dataset_latency = cs.render_composite(cam, width, height)
    finally:
        for service in list(cs.render_services):
            cs.disconnect(service)

    # tile mode: both render everything, assemble tiles
    cs2 = CollaborativeSession(tb.data_service, f"scene-{n}")
    cs2.connect(tb.render_service("centrino"))
    cs2.connect(tb.render_service("athlon"))
    try:
        _, _, tile_latency = cs2.render_tiled(cam, width, height)
    finally:
        for service in list(cs2.render_services):
            cs2.disconnect(service)
    return dataset_latency, tile_latency


def test_distribution_mode_ablation(tb, report, benchmark):
    def sweep():
        return {n: run_modes(tb, n) for n in POLY_COUNTS}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = report(
        "ablation_distribution_modes",
        "Ablation: dataset vs framebuffer distribution, simulated frame "
        "latency (s)",
        ["Polygons", "Dataset mode", "Tile mode", "Winner"],
    )
    for n, (d, t) in results.items():
        table.add_row(f"{n:,}", f"{d:.4f}", f"{t:.4f}",
                      "dataset" if d < t else "tile")

    small_d, small_t = results[POLY_COUNTS[0]]
    big_d, big_t = results[POLY_COUNTS[-1]]
    # geometry-light scenes: tiles win (framebuffer+depth transfers
    # dominate the dataset mode)
    assert small_t < small_d
    # the dataset mode's relative cost improves as geometry grows: the
    # split amortizes geometry work that tile mode duplicates
    assert (big_d / big_t) < (small_d / small_t)


def test_dataset_mode_shares_geometry_work(tb, benchmark):
    """In dataset mode no service transforms the whole scene."""
    n = POLY_COUNTS[-1]
    cs = CollaborativeSession(tb.data_service, f"scene-{n}",
                              target_fps=15e6 / n)
    cs.connect(tb.render_service("centrino"))
    cs.connect(tb.render_service("athlon"))
    placement = benchmark.pedantic(cs.place_dataset, rounds=1, iterations=1)
    assert placement.mode == "dataset-distributed"
    total = cs.master_tree.total_polygons()
    for service in cs.render_services:
        assert service.committed_polygons() < total
    for service in list(cs.render_services):
        cs.disconnect(service)
