"""Table 2 — Visualization timings using a PDA.

Paper (200x200 image, 11 Mbit wireless, Centrino render service):

    Model          Polys    fps   Total    Image    Render   Other
                                  Latency  Receipt  Time     Overheads
    Skeletal Hand  0.83 M   2.9   0.339 s  0.201 s  0.091 s  0.047 s
    Skeleton       2.8  M   1.6   0.598 s  0.194 s  0.355 s  0.049 s

We run the full thin-client pipeline over the simulated testbed: the PDA
sends the SOAP request, the Centrino renders off-screen *for real* (the
software rasterizer draws the paper-scale model), the raw 120 kB frame
crosses the 802.11b cell, and the C++ blit path presents it.  All reported
seconds are simulated; the wall-clock benchmark times the pipeline itself.
"""

import pytest

from benchmarks.conftest import within
from repro.data.generators import make_model
from repro.testbed import build_testbed

PAPER = {
    "skeletal_hand": dict(fps=2.9, total=0.339, receipt=0.201, render=0.091,
                          overhead=0.047),
    "skeleton": dict(fps=1.6, total=0.598, receipt=0.194, render=0.355,
                     overhead=0.049),
}


@pytest.fixture(scope="module")
def pda_setup():
    tb = build_testbed(render_hosts=("centrino",))
    sessions = {}
    for name in ("skeletal_hand", "skeleton"):
        mesh = make_model(name, paper_scale=True).normalized()
        tb.publish_model(name, mesh)
        rs = tb.render_service("centrino")
        rsession, _ = rs.create_render_session(tb.data_service, name)
        sessions[name] = rsession.render_session_id
    return tb, sessions


def request_frame(tb, sessions, model):
    client = tb.thin_client(f"viewer-{model}-{tb.clock.now}")
    client.attach(tb.render_service("centrino"), sessions[model])
    client.move_camera(position=(0.4, 2.2, 1.0))
    return client.request_frame(200, 200)


@pytest.mark.parametrize("model", ["skeletal_hand", "skeleton"])
def test_table2_row(pda_setup, report, benchmark, model):
    tb, sessions = pda_setup
    fb, timing = benchmark.pedantic(
        request_frame, args=(tb, sessions, model), rounds=1, iterations=1)

    paper = PAPER[model]
    table = report(
        f"table2_pda_{model}",
        f"Table 2 ({model}): PDA visualization timings, paper vs measured",
        ["Metric", "Paper", "Measured"],
    )
    table.add_row("frames/second", f"{paper['fps']:.1f}",
                  f"{timing.fps:.2f}")
    table.add_row("total latency (s)", f"{paper['total']:.3f}",
                  f"{timing.total_latency:.3f}")
    table.add_row("image receipt (s)", f"{paper['receipt']:.3f}",
                  f"{timing.image_receipt_seconds:.3f}")
    table.add_row("render time (s)", f"{paper['render']:.3f}",
                  f"{timing.render_seconds:.3f}")
    table.add_row("other overheads (s)", f"{paper['overhead']:.3f}",
                  f"{timing.overhead_seconds:.3f}")

    # something real was rendered
    assert fb.coverage() > 0.05
    # shape assertions: each component within a modest band of the paper
    assert within(timing.fps, paper["fps"], 0.25)
    assert within(timing.total_latency, paper["total"], 0.25)
    assert within(timing.image_receipt_seconds, paper["receipt"], 0.2)
    assert within(timing.render_seconds, paper["render"], 0.3)
    # receipt is roughly constant across models (bandwidth-bound)
    # while render grows with polygons — checked across rows below


def test_table2_shape_across_rows(pda_setup, report, benchmark):
    """The qualitative claims: hand faster than skeleton; receipt flat;
    render scales with polygon count; fps = 1/total."""
    tb, sessions = pda_setup

    def both():
        return {m: request_frame(tb, sessions, m)[1]
                for m in ("skeletal_hand", "skeleton")}

    timings = benchmark.pedantic(both, rounds=1, iterations=1)
    hand = timings["skeletal_hand"]
    skel = timings["skeleton"]
    assert hand.fps > skel.fps
    assert abs(hand.image_receipt_seconds - skel.image_receipt_seconds) \
        < 0.03
    assert skel.render_seconds > 2.5 * hand.render_seconds
    for t in (hand, skel):
        assert t.fps == pytest.approx(1.0 / t.total_latency)
