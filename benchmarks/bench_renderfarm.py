"""Render-farm scaling benchmark: frames/sec versus pool size.

Reproduces the paper's motivating claim for the batch farm — "automatic
distribution of rendering workloads" should make an animation job
finish faster as render services join the pool.  One
:class:`~repro.farm.queue_service.FrameQueueService` is deployed by the
testbed, one :class:`~repro.farm.job.RenderJob` is submitted per run,
and the :class:`~repro.farm.controller.RenderFarmController` drives
pools of 1, 2 and 4 workers over the simulated network.  Each pool is
prewarmed first so the measurement isolates the steady-state pull →
render → ship cycle from the paper's container instance-creation cost
(JVM start-up plus scene transfer), which is paid once per worker.

The artifact is ``benchmarks/results/BENCH_renderfarm.json``: measured
frames/sec per pool size, the speedup relative to one worker, and the
end-of-job queue state (audit must be empty — the farm never loses a
frame to scheduling alone).  Speedups are measured and reported, not
asserted: CI uploads the JSON so regressions show up as a diff, while
``check`` only guards the invariants (every frame rendered exactly
once, throughput monotone in pool size).

A second, mixed-priority phase measures the fair scheduler: a long
priority-0 animation is running on a two-worker pool when a short
priority-1 job from another tenant arrives.  The artifact records the
short job's completion latency and how far the long job had got when
the short one finished; ``check`` asserts the short job finished
before the long job's midpoint (the pre-scheduler FIFO made it wait
for the whole animation) and that nothing starved.

Usage::

    PYTHONPATH=src python benchmarks/bench_renderfarm.py [--smoke]
        [--out PATH]

``--smoke`` shrinks the scene and the frame range so CI finishes in
seconds; the JSON schema is identical.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.data.generators import galleon
from repro.farm import RenderJob
from repro.sanitizer import RaveSanitizer
from repro.testbed import build_testbed

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_renderfarm.json"

#: pool size -> worker hosts (drawn from the testbed's render pool)
POOLS = {
    1: ("onyx",),
    2: ("onyx", "v880z"),
    4: ("onyx", "v880z", "centrino", "xeon"),
}
SCENE = "bench-scene"
JOB = "bench-anim"

#: the fairness phase: two workers, a long low-priority animation and
#: a later short high-priority job from another tenant
FAIRNESS_HOSTS = ("onyx", "v880z")
LONG_JOB, SHORT_JOB = "bench-long", "bench-short"


def run_pool(hosts: tuple[str, ...], polygons: int, frames: int) -> dict:
    """One fresh testbed, one job, one pool size; returns the row."""
    tb = build_testbed(farm=True)
    tb.publish_model(SCENE, galleon(polygons))
    queue = tb.farm_queue
    farm = tb.render_farm(worker_hosts=hosts)
    sim = tb.network.sim

    bootstrapped = farm.prewarm(SCENE)
    sim.run_until(sim.now + 30.0)   # let every bootstrap finish
    queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                           start_frame=1, end_frame=frames,
                           width=160, height=120))
    farm.start()
    t0 = sim.now
    deadline = t0 + 600.0
    while not queue.job(JOB).finished and sim.now < deadline:
        sim.run_until(sim.now + 0.25)
    job = queue.job(JOB)
    elapsed = (job.finished_at or sim.now) - t0
    farm.stop()
    return {
        "workers": len(hosts),
        "hosts": list(hosts),
        "bootstrapped": bootstrapped,
        "frames": frames,
        "finished": job.finished,
        "elapsed_sim_seconds": round(elapsed, 6),
        "frames_per_second": round(frames / elapsed, 3) if elapsed else 0.0,
        "audit": queue.audit(JOB),
        "queue": queue.describe(),
    }


def run_fairness(polygons: int, long_frames: int,
                 short_frames: int) -> dict:
    """Mixed-priority phase: a late short job against a long one.

    Both jobs render the same scene, so the measurement isolates pure
    queueing: under the old FIFO the short job's frames sat behind
    every remaining animation frame; under the fair scheduler the
    first worker to free serves them all before touching the
    animation's backlog again.
    """
    tb = build_testbed(farm=True)
    tb.publish_model(SCENE, galleon(polygons))
    queue = tb.farm_queue
    farm = tb.render_farm(worker_hosts=FAIRNESS_HOSTS)
    sim = tb.network.sim

    queue.submit(RenderJob(job_id=LONG_JOB, session_id=SCENE,
                           start_frame=1, end_frame=long_frames,
                           width=160, height=120,
                           priority=0, tenant="batch"))
    farm.start()
    sim.run_until(sim.now + 1.0)    # the animation holds every worker
    short_submitted = sim.now
    queue.submit(RenderJob(job_id=SHORT_JOB, session_id=SCENE,
                           start_frame=1, end_frame=short_frames,
                           width=160, height=120,
                           priority=1, tenant="viz"))
    deadline = sim.now + 600.0
    while not (queue.job(LONG_JOB).finished
               and queue.job(SHORT_JOB).finished) and sim.now < deadline:
        sim.run_until(sim.now + 0.25)
    farm.stop()
    short = queue.job(SHORT_JOB)
    long_job = queue.job(LONG_JOB)
    short_done_at = short.finished_at or sim.now
    long_done_at_short_finish = sum(
        1 for f in long_job.frames.values()
        if f.completed_at and f.completed_at <= short_done_at)
    return {
        "workers": len(FAIRNESS_HOSTS),
        "long_frames": long_frames,
        "short_frames": short_frames,
        "short_finished": short.finished,
        "long_finished": long_job.finished,
        "short_completion_seconds":
            round(short_done_at - short_submitted, 6),
        "long_done_at_short_finish": long_done_at_short_finish,
        "long_midpoint": long_frames // 2,
        "starved_jobs": queue.starved_jobs(),
        "audits": {LONG_JOB: queue.audit(LONG_JOB),
                   SHORT_JOB: queue.audit(SHORT_JOB)},
        "invalid_results": queue.invalid_results,
        "duplicates_dropped": queue.duplicates_dropped,
    }


def _drive_job(polygons: int, frames: int, sanitize: bool) -> dict:
    """One two-worker run; wall-clock time of the drive loop.

    Identical scenario either way — the only variable is whether the
    :class:`RaveSanitizer` is attached and watching the frame ledger,
    so the wall-clock ratio isolates the per-event checking cost.
    """
    tb = build_testbed(farm=True)
    tb.publish_model(SCENE, galleon(polygons))
    queue = tb.farm_queue
    farm = tb.render_farm(worker_hosts=FAIRNESS_HOSTS)
    sim = tb.network.sim
    san = None
    if sanitize:
        san = RaveSanitizer(sim).attach()
        san.watch_farm_queue(queue)

    queue.submit(RenderJob(job_id=JOB, session_id=SCENE,
                           start_frame=1, end_frame=frames,
                           width=160, height=120))
    farm.start()
    deadline = sim.now + 600.0
    t0 = time.perf_counter()
    while not queue.job(JOB).finished and sim.now < deadline:
        sim.run_until(sim.now + 0.25)
    wall = time.perf_counter() - t0
    farm.stop()
    assert queue.job(JOB).finished
    return {"wall_seconds": wall,
            "events_checked": san.events_checked if san else 0,
            "violations": len(san.violations) if san else 0}


def run_sanitizer_overhead(polygons: int, frames: int) -> dict:
    """Wall-clock cost of running the farm story under the sanitizer.

    Each variant runs twice and keeps the faster pass so a one-off
    scheduler hiccup on the CI runner cannot fake a regression; the
    acceptance bar (``check``) is a ratio below 2x.
    """
    bare = min(_drive_job(polygons, frames, sanitize=False)["wall_seconds"]
               for _ in range(2))
    sanitized_runs = [_drive_job(polygons, frames, sanitize=True)
                      for _ in range(2)]
    sanitized = min(r["wall_seconds"] for r in sanitized_runs)
    worst = max(sanitized_runs, key=lambda r: r["wall_seconds"])
    return {
        "frames": frames,
        "bare_seconds": round(bare, 6),
        "sanitized_seconds": round(sanitized, 6),
        "overhead_ratio": round(sanitized / bare, 3) if bare else 0.0,
        "events_checked": worst["events_checked"],
        "violations": worst["violations"],
    }


def run(smoke: bool, out: Path) -> Path:
    polygons = 2_000 if smoke else 4_000
    frames = 12 if smoke else 36
    long_frames, short_frames = (60, 6) if smoke else (500, 10)
    rows = [run_pool(hosts, polygons, frames)
            for _, hosts in sorted(POOLS.items())]
    base = rows[0]["frames_per_second"] or 1.0
    for row in rows:
        row["speedup"] = round(row["frames_per_second"] / base, 3)
    fairness = run_fairness(polygons, long_frames, short_frames)
    sanitizer = run_sanitizer_overhead(polygons, frames)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(
        {"format": "rave-renderfarm-bench/3",
         "benchmark": "renderfarm",
         "mode": "smoke" if smoke else "full",
         "scene_polygons": polygons,
         "frames_per_job": frames,
         "resolution": [160, 120],
         "pools": rows,
         "fairness": fairness,
         "sanitizer_overhead": sanitizer},
        indent=2) + "\n")
    return out


def check(path: Path) -> None:
    """Guard the invariants; the speedup numbers themselves are data."""
    data = json.loads(path.read_text())
    rows = data["pools"]
    assert [r["workers"] for r in rows] == [1, 2, 4]
    for row in rows:
        assert row["finished"], \
            f"pool of {row['workers']} never finished the job"
        assert row["audit"] == [], \
            f"pool of {row['workers']} ended with missing frames"
        assert row["queue"]["duplicates_dropped"] == 0, \
            "a frame completed twice under pure scheduling"
    rates = [r["frames_per_second"] for r in rows]
    assert rates[0] < rates[1] < rates[2], \
        f"frames/sec not monotone in pool size: {rates}"
    fair = data["fairness"]
    assert fair["short_finished"] and fair["long_finished"], \
        "the mixed-priority phase never drained"
    assert fair["long_done_at_short_finish"] < fair["long_midpoint"], (
        f"short job finished only after the long job was "
        f"{fair['long_done_at_short_finish']}/{fair['long_frames']} "
        f"done — no lease-time preemption")
    assert fair["starved_jobs"] == [], \
        f"jobs starved during the fairness phase: {fair['starved_jobs']}"
    assert all(a == [] for a in fair["audits"].values()), \
        f"fairness phase lost frames: {fair['audits']}"
    san = data["sanitizer_overhead"]
    assert san["events_checked"] > 0, \
        "the sanitizer variant never checked an event"
    assert san["violations"] == 0, \
        f"the sanitizer flagged {san['violations']} violation(s)"
    assert san["overhead_ratio"] < 2.0, (
        f"sanitizer overhead {san['overhead_ratio']}x exceeds the 2x "
        f"budget — per-event invariant checks are too expensive")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast scenario (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"results path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    path = run(args.smoke, args.out)
    check(path)
    data = json.loads(path.read_text())
    for row in data["pools"]:
        print(f"  pool={row['workers']}  "
              f"{row['frames_per_second']:.2f} frames/s  "
              f"speedup x{row['speedup']:.2f}")
    fair = data["fairness"]
    print(f"  fairness: short job ({fair['short_frames']} frames, "
          f"priority 1) done in {fair['short_completion_seconds']:.2f}s "
          f"with the long job at {fair['long_done_at_short_finish']}"
          f"/{fair['long_frames']}")
    san = data["sanitizer_overhead"]
    print(f"  sanitizer: {san['sanitized_seconds']:.3f}s vs "
          f"{san['bare_seconds']:.3f}s bare "
          f"(x{san['overhead_ratio']:.2f}, "
          f"{san['events_checked']} events checked)")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
