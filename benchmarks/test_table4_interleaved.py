"""Table 4 — Off-screen render timings (200x200), sequential vs interleaved.

Paper (four 200x200 images, "seq" = one at a time, "int" = 4 outstanding):

    Dataset     GeForce2 420 Go   GeForce2 GTS     XVR-4000
    "Elle"      seq:55%  int:90%  seq:51% int:90%  seq:3%  int:4%
    "Galleon"   seq:9%   int:33%  seq:11% int:41%  seq:30% int:48%

The experiment demonstrated that interleaving off-screen requests recovers
most of the on-screen speed on hardware off-screen paths ("with a Linux
workstation, the on-screen rendering speed is available if multiple images
are rendered") but not on the V880z software fallback.
"""

import pytest

from repro.hardware.profiles import get_profile
from repro.render.engine import RenderEngine

PAPER_200 = {
    ("centrino", 50_000): (0.55, 0.90),
    ("centrino", 5_500): (0.09, 0.33),
    ("athlon", 50_000): (0.51, 0.90),
    ("athlon", 5_500): (0.11, 0.41),
    ("v880z", 50_000): (0.03, 0.04),
    ("v880z", 5_500): (0.30, 0.48),
}

DATASETS = {"Elle": 50_000, "Galleon": 5_500}
MACHINES = ("centrino", "athlon", "v880z")
PIXELS = 200 * 200


def compute_table():
    out = {}
    for machine in MACHINES:
        engine = RenderEngine(get_profile(machine))
        for polys in DATASETS.values():
            out[(machine, polys)] = (
                engine.offscreen_efficiency(polys, PIXELS, interleaved=1),
                engine.offscreen_efficiency(polys, PIXELS, interleaved=4),
            )
    return out


def test_table4_reproduction(report, benchmark):
    measured = benchmark(compute_table)
    table = report(
        "table4_offscreen_200_interleaved",
        "Table 4: 200x200 off-screen efficiency seq/int "
        "(paper / measured)",
        ["Dataset"] + list(MACHINES),
    )
    for label, polys in DATASETS.items():
        cells = [label]
        for machine in MACHINES:
            p_seq, p_int = PAPER_200[(machine, polys)]
            m_seq, m_int = measured[(machine, polys)]
            cells.append(
                f"seq {p_seq:.0%}/{m_seq:.0%} int {p_int:.0%}/{m_int:.0%}")
        table.add_row(*cells)

    # calibrated sequential cells on the NVIDIA machines
    for machine in ("centrino", "athlon"):
        m_seq, _ = measured[(machine, 50_000)]
        p_seq, _ = PAPER_200[(machine, 50_000)]
        assert abs(m_seq - p_seq) < 0.08, machine


def test_table4_interleaving_recovery(benchmark):
    """The headline finding: interleaving recovers on-screen speed on
    hardware off-screen paths; the software fallback barely improves."""
    measured = benchmark(compute_table)
    for machine in ("centrino", "athlon"):
        seq, inter = measured[(machine, 50_000)]
        assert inter > 0.75            # paper: 90%
        assert inter > 1.4 * seq       # big recovery
    seq, inter = measured[("v880z", 50_000)]
    assert inter < 0.10                # paper: 4%
    assert inter < seq * 2.0           # no meaningful recovery


def test_table4_small_model_interleaving(benchmark):
    """Galleon: interleaving helps but cannot reach on-screen speed
    (paper 9% -> 33%)."""
    measured = benchmark(compute_table)
    seq, inter = measured[("centrino", 5_500)]
    assert inter > 2.0 * seq
    assert inter < 0.6
