"""Wall-clock performance of the software-rendering substrate itself.

Unlike the paper-table benchmarks (simulated seconds), these measure the
real throughput of the NumPy rasterizer, the compositor, the codecs and
the binary marshaller on the machine running the suite — the numbers a
downstream user of this library actually cares about.
"""

import numpy as np
import pytest

from repro.compression import RleCodec
from repro.data.generators import make_model
from repro.network.marshalling import BinaryMarshaller
from repro.render.camera import Camera
from repro.render.compositor import depth_composite
from repro.render.framebuffer import FrameBuffer
from repro.render.rasterizer import rasterize_mesh


@pytest.fixture(scope="module")
def elle_mesh():
    return make_model("elle", 50_000).normalized()


@pytest.fixture(scope="module")
def cam():
    return Camera.looking_at((2.2, 1.4, 1.2))


def test_rasterize_50k_at_200(benchmark, elle_mesh, cam):
    def run():
        fb = FrameBuffer(200, 200)
        rasterize_mesh(elle_mesh, cam, fb)
        return fb

    fb = benchmark(run)
    assert fb.coverage() > 0.02


def test_rasterize_50k_at_400(benchmark, elle_mesh, cam):
    def run():
        fb = FrameBuffer(400, 400)
        rasterize_mesh(elle_mesh, cam, fb)
        return fb

    fb = benchmark(run)
    assert fb.coverage() > 0.02


def test_rasterize_gouraud_overhead(benchmark, elle_mesh, cam):
    def run():
        fb = FrameBuffer(200, 200)
        rasterize_mesh(elle_mesh, cam, fb, shading="gouraud")
        return fb

    fb = benchmark(run)
    assert fb.coverage() > 0.02


def test_depth_composite_three_buffers(benchmark, elle_mesh, cam):
    buffers = []
    for piece in elle_mesh.split_spatially(3):
        fb = FrameBuffer(256, 256)
        rasterize_mesh(piece, cam, fb)
        buffers.append(fb)

    merged = benchmark(depth_composite, buffers)
    assert merged.coverage() > 0.02


def test_rle_encode_frame(benchmark, elle_mesh, cam):
    fb = FrameBuffer(200, 200)
    rasterize_mesh(elle_mesh, cam, fb)
    codec = RleCodec()

    enc = benchmark(codec.encode, fb)
    assert enc.ratio > 1.5


def test_binary_marshal_megabyte(benchmark):
    value = {"vertices": np.zeros((30_000, 3), np.float32),
             "faces": np.zeros((60_000, 3), np.int32)}
    marshaller = BinaryMarshaller()

    result = benchmark(marshaller.marshal, value)
    assert result.nbytes > 10**6


def test_model_generation_throughput(benchmark):
    mesh = benchmark(make_model, "skeleton", 200_000)
    assert mesh.n_triangles > 150_000
