"""Figure 2 — Screen dumps from a Zaurus PDA running the RAVE thin client.

The paper shows the skeletal hand and skeleton rendered remotely and
displayed at 200x200 on the PDA.  We regenerate the images through the
real pipeline (paper-scale models, software rasterizer, thin-client
delivery) and write them as PPM files next to the results.
"""

import pytest

from repro.data.generators import make_model
from repro.testbed import build_testbed

CAMERAS = {
    "skeletal_hand": (0.4, 2.2, 1.0),
    "skeleton": (1.0, 1.6, 0.3),
}


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino",))
    for name in CAMERAS:
        testbed.publish_model(
            name, make_model(name, paper_scale=True).normalized())
    return testbed


@pytest.mark.parametrize("model", sorted(CAMERAS))
def test_fig2_pda_screenshot(tb, results_dir, benchmark, model):
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, model)
    client = tb.thin_client(f"fig2-{model}")
    client.attach(rs, rsession.render_session_id)
    client.move_camera(position=CAMERAS[model])

    fb, timing = benchmark.pedantic(client.request_frame, args=(200, 200),
                                    rounds=1, iterations=1)
    path = results_dir / f"fig2_{model}_200x200.ppm"
    fb.save_ppm(path)

    # a recognisable object fills a reasonable share of the frame
    assert fb.coverage() > 0.08
    # the image is the paper's wire payload: exactly 120 kB of pixels
    assert fb.nbytes_color == 120_000
    # and it arrived at interactive-but-slow PDA rates (Table 2 regime)
    assert 1.0 < timing.fps < 5.0
