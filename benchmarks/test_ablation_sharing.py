"""Ablation — resource sharing: many users on one multi-pipe service.

§3.2.3: "our architecture where a service can support many simultaneous
clients — now, the host machines can support many simultaneous users, as
we are not taking over the machine."  §3.1.2 adds that "if multiple users
view the same session, then a single copy of the data are stored in the
render service to save resources."

This ablation measures both claims on the Onyx (3 InfiniteReality pipes):

- per-user frame latency as user count grows (batches of `pipes` overlap);
- memory: one shared scene copy regardless of user count, vs the naive
  per-user copy a VizServer-style design would hold.
"""

import pytest

from repro.data.generators import skeleton
from repro.scenegraph.nodes import CameraNode
from repro.testbed import build_testbed

USER_COUNTS = (1, 3, 6, 9)


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("onyx",))
    testbed.publish_model("shared", skeleton(300_000).normalized())
    return testbed


def run_sweep(tb):
    rs = tb.render_service("onyx")
    results = {}
    sessions = []
    for n in USER_COUNTS:
        while len(sessions) < n:
            session, _ = rs.create_render_session(
                tb.data_service, "shared", charge_instance=False)
            sessions.append(session)
        requests = [
            (s.render_session_id,
             CameraNode(position=(2.0 + 0.05 * i, 1.4, 1.2)), 64, 64)
            for i, s in enumerate(sessions[:n])
        ]
        t0 = tb.clock.now
        rs.render_views_parallel(requests)
        results[n] = tb.clock.now - t0
    shared_copies = len(rs._scene_cache)
    payload = tb.data_service.session("shared").tree.total_payload_bytes()
    return results, shared_copies, payload, len(sessions)


def test_sharing_ablation(tb, report, benchmark):
    results, shared_copies, payload, n_sessions = benchmark.pedantic(
        run_sweep, args=(tb,), rounds=1, iterations=1)
    table = report(
        "ablation_sharing",
        "Ablation: simultaneous users on the 3-pipe Onyx "
        "(total frame-batch seconds / memory copies)",
        ["Users", "Batch seconds", "Scene copies held", "Naive copies"],
    )
    for n in USER_COUNTS:
        table.add_row(n, f"{results[n]:.4f}", shared_copies, n)

    # three pipes: 3 users cost (about) what 1 user costs
    assert results[3] == pytest.approx(results[1], rel=0.05)
    # 9 users = 3 batches
    assert results[9] == pytest.approx(3 * results[3], rel=0.1)
    # a single shared scene copy serves every session (paper's memory claim)
    assert shared_copies == 1
    assert n_sessions == max(USER_COUNTS)
    assert payload > 10**6   # sharing a real multi-MB scene, not a toy
