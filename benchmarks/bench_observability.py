"""End-to-end observability benchmark: one instrumented grid scenario.

Runs the paper's whole machinery — placement, collaborative compositing,
pipelined streaming, adaptive compression over a degrading wireless link,
migration pressure and a mid-run crash with heartbeat-driven recovery —
under an installed :mod:`repro.obs` bundle and a deployed
:class:`~repro.services.monitor.MonitorService` scraping every service
over the simulated network, then exports everything the instrumentation
captured as one JSON snapshot
(``benchmarks/results/BENCH_observability.json``).

The snapshot is the artifact: counters for every subsystem, latency
histograms, the per-frame span chains that let a trace viewer (or a
regression diff) reconstruct exactly where each frame's time went, the
monitor's federated view (alerts + SLO attainment report), and the
flight-recorder dumps (also written separately as
``BENCH_flight_recorder.json`` so CI can upload the post-mortem on its
own).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--smoke]
        [--out PATH]

``--smoke`` shrinks the scenario (fewer polygons, fewer frames) so CI can
run it in seconds; the snapshot schema is identical.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.compression import AdaptiveCodec, BandwidthEstimator
from repro.core.migration import WorkloadMigrator
from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.network.faults import FaultInjector
from repro.obs import write_snapshot
from repro.render.camera import Camera
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.streaming import FrameStreamer
from repro.testbed import build_testbed

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_observability.json"
DEFAULT_DUMP_OUT = (Path(__file__).parent / "results"
                    / "BENCH_flight_recorder.json")


def build_session(tb, polygons_per_part: int, parts: int
                  ) -> CollaborativeSession:
    """Publish a multi-part model and place it across the render pool."""
    tree = SceneTree("bench")
    for i in range(parts):
        tree.add(MeshNode(skeleton(polygons_per_part).normalized(),
                          name=f"part{i}"))
    tb.publish_tree("bench", tree)
    cs = CollaborativeSession(tb.data_service, "bench",
                              recruiter=tb.recruiter())
    for host in ("onyx", "v880z", "centrino"):
        cs.connect(tb.render_service(host))
    cs.place_dataset()
    return cs


def composite_frames(cs, n_frames: int) -> None:
    """Orbiting composite renders (the collaborative hot path)."""
    cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
    for _ in range(n_frames):
        cs.render_composite(cam, 64, 64)


def stream_frames(tb, n_frames: int) -> None:
    """Pipelined streaming from a render service to the PDA host."""
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "bench")
    streamer = FrameStreamer(rs, rsession.render_session_id, "zaurus",
                             128, 128, blit_seconds=0.004)
    streamer.stream_pipelined(n_frames)


def walkaway_compression(tb, n_frames: int) -> None:
    """Adaptive codec while the PDA user walks away from the access point."""
    from repro.render.framebuffer import FrameBuffer
    import numpy as np

    codec = AdaptiveCodec(estimator=BandwidthEstimator(),
                          latency_budget=0.25)
    rng = np.random.default_rng(42)
    fb = FrameBuffer(96, 96)
    fb.color[:] = rng.integers(0, 256, fb.color.shape, dtype=np.uint8)
    for i in range(n_frames):
        quality = max(0.1, 1.0 - i / n_frames)
        tb.wireless.set_signal_quality("zaurus", quality)
        # drift a band of pixels so deltas have real content
        fb = fb.copy()
        fb.color[i % 96, :] = rng.integers(0, 256, (96, 3), dtype=np.uint8)
        encoded = codec.encode(fb)
        seconds = tb.network.transfer_time("centrino", "zaurus",
                                           max(1, encoded.nbytes))
        tb.network.sim.clock.advance(seconds)
        codec.estimator.observe(encoded.nbytes, seconds)


def bulk_scene_transfers(tb, cs, nbytes: int) -> None:
    """Model the scene hand-off as contention-aware scheduled transfers.

    ``Network.send`` is the instrumented path (per-link bytes and busy
    time); pushing each attachment's share concurrently also makes the
    transfers contend, so the link-utilisation gauges show real overlap.
    """
    data_host = tb.data_service.host
    for service in cs.render_services:
        if service.host != data_host:
            tb.network.send(data_host, service.host, nbytes)
    tb.network.sim.run()


def migration_pressure(cs, samples: int) -> None:
    """Feed sustained low-fps samples so the migrator plans real moves."""
    migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                smoothing_seconds=3.0)
    loaded = next((s for s in cs.render_services if cs.share_of(s)), None)
    if loaded is None:
        return
    now = cs.data_service.network.sim.now
    for i in range(samples):
        migrator.record_frame(loaded, time=now + i, fps=2.0)
    migrator.plan(cs)


def tail_latency_breach(tb) -> None:
    """Saturate a one-member grid so queued admissions breach the p95 SLO.

    Two tenants alternate requests (so the per-tenant share cap never
    fires before the pool fills); the queued head waits ~1 simulated
    second before a release admits it, pushing the queue-wait p95 over
    the 0.5 s objective.  Cumulative buckets never decay, so the breach
    sustains across every subsequent scrape and the quantile-targeting
    alerts land in the snapshot and the flight-recorder dump.
    """
    from repro.core.grid import TenantQuota
    from repro.data.generators import uv_sphere
    from repro.obs.vocab import EVENT_QUEUE

    grid = tb.session_grid(member_hosts=("athlon",), name="bench-grid",
                           recruit=False, target_fps=3000.0)
    for i, tenant in enumerate(("acme", "beta")):
        grid.register_tenant(TenantQuota(tenant=tenant, priority=i,
                                         max_sessions=8, max_share=1.0,
                                         guaranteed_share=0.0))
    sim = tb.network.sim
    admitted = []
    for i in range(16):
        tree = SceneTree(name=f"grid-s{i}")
        tree.add(MeshNode(uv_sphere(nu=24, nv=24)))
        decision = grid.request_session(("acme", "beta")[i % 2],
                                        f"grid-s{i}", tree)
        if decision.outcome == EVENT_QUEUE:
            break
        admitted.append(f"grid-s{i}")
    sim.run_until(sim.now + 1.0)
    grid.release_session(admitted[0])    # the queued head waited ~1 s
    sim.run_until(sim.now + 7.0)         # sustain > 5 s of breached scrapes


def quantile_overhead(monitor, samples: int = 2000) -> dict:
    """Wall-clock cost of one federated p95 estimate, in microseconds.

    This is the only wall-clock measurement in the snapshot: the
    estimation happens on the scrape path, so its real cost bounds how
    often a monitor can afford to tick.
    """
    import time

    from repro.obs.quantiles import estimate_quantile

    merged = monitor.federated_buckets("rave_queue_wait_seconds")
    if not merged:
        return {"samples": 0, "buckets": 0, "mean_us": 0.0}
    t0 = time.perf_counter()
    for _ in range(samples):
        estimate_quantile(merged, 0.95)
    elapsed = time.perf_counter() - t0
    return {"samples": samples, "buckets": len(merged),
            "mean_us": elapsed / samples * 1e6}


def crash_and_recover(tb, cs) -> None:
    """Kill a share-holding service; heartbeats detect it, recovery runs."""
    cs.enable_fault_tolerance(heartbeat_interval=0.25,
                              suspect_after=1.0, dead_after=3.0)
    victim = next((s for s in cs.render_services if cs.share_of(s)), None)
    if victim is None:
        return
    inj = FaultInjector(tb.network, seed=7)
    now = tb.network.sim.now
    inj.schedule_crash(at=now + 1.0, host=victim.host)
    tb.network.sim.run_until(now + 10.0)


def run(smoke: bool, out: Path,
        dump_out: Path = DEFAULT_DUMP_OUT) -> Path:
    import json

    polygons = 4_000 if smoke else 40_000
    frames = 3 if smoke else 12
    tb = build_testbed(monitor_host="registry-host")
    bundle = obs.install(clock=tb.clock)
    try:
        cs = build_session(tb, polygons, parts=6)
        bulk_scene_transfers(tb, cs, nbytes=polygons * 36)
        composite_frames(cs, frames)
        stream_frames(tb, frames * 2)
        walkaway_compression(tb, frames * 4)
        migration_pressure(cs, samples=8)
        tail_latency_breach(tb)
        crash_and_recover(tb, cs)
        path = write_snapshot(
            out, bundle.metrics, bundle.tracer, clock=tb.clock,
            meta={"benchmark": "observability",
                  "mode": "smoke" if smoke else "full",
                  "polygons_per_part": polygons,
                  "frames": frames},
            recorder=bundle.recorder,
            extra={"monitor": tb.monitor.snapshot(),
                   "quantile_overhead": quantile_overhead(tb.monitor)})
        dump_out.parent.mkdir(parents=True, exist_ok=True)
        dump_out.write_text(json.dumps(
            {"format": "rave-flight-recorder/1",
             "events_seen": bundle.recorder.seen,
             "capacity": bundle.recorder.capacity,
             "dumps": bundle.recorder.dumps},
            indent=2) + "\n")
    finally:
        obs.uninstall()
    return path


def check(path: Path) -> None:
    """Sanity-check the snapshot covers every instrumented subsystem."""
    import json

    data = json.loads(path.read_text())
    names = set(data["metrics"])
    for prefix in ("rave_scheduler_", "rave_session_", "rave_net_",
                   "rave_stream_", "rave_codec_", "rave_health_",
                   "rave_migration_"):
        assert any(n.startswith(prefix) for n in names), \
            f"snapshot is missing {prefix}* metrics"
    assert data["frames"], "snapshot has no per-frame span chains"
    # registry metadata + federation slot (satellite 2)
    assert data["registry"]["families"] > 0, "registry metadata missing"
    assert "default" in data["wall_meta"], "wall_meta slot missing"
    # the monitoring plane (tentpole): federated view, scrape traffic, SLOs
    monitor = data["monitor"]
    assert monitor["format"] == "rave-monitor-snapshot/1"
    assert monitor["scrapes"]["count"] > 0, "monitor never scraped"
    assert monitor["scrapes"]["bytes"] > 0, \
        "scrapes put no bytes on the simulated wire"
    assert monitor["services"], "monitor federated no services"
    assert monitor["slo"], "SLO attainment report is empty"
    # the tail-latency plane: a federated p95 over the breach threshold,
    # the quantile SLO section, and the sustained alert
    grid_p95 = monitor["grid"]["rave_grid_queue_wait_seconds_p95"]
    assert grid_p95 > 0.5, f"queue-wait p95 never breached ({grid_p95})"
    assert monitor["slo"]["queue-wait-p95"]["quantile"] == 0.95
    assert any(a["kind"] == "tail-latency" for a in monitor["alerts"]), \
        "no tail-latency alert firing at snapshot time"
    overhead = data["quantile_overhead"]
    assert overhead["samples"] > 0 and overhead["buckets"] > 0, \
        "quantile-overhead measurement missing"
    # the crash left a post-mortem with the tail alert in its timeline
    recorder = data["flight_recorder"]
    assert recorder["dumps"], "no flight-recorder dump after the crash"
    dump_kinds = {e["kind"] for dump in recorder["dumps"]
                  for e in dump["events"]}
    assert "alert:tail-latency" in dump_kinds, \
        "tail-latency alert missing from the flight-recorder dump"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast scenario (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"snapshot path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    path = run(args.smoke, args.out)
    check(path)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
