"""End-to-end observability benchmark: one instrumented grid scenario.

Runs the paper's whole machinery — placement, collaborative compositing,
pipelined streaming, adaptive compression over a degrading wireless link,
migration pressure and a mid-run crash with heartbeat-driven recovery —
under an installed :mod:`repro.obs` bundle and a deployed
:class:`~repro.services.monitor.MonitorService` scraping every service
over the simulated network, then exports everything the instrumentation
captured as one JSON snapshot
(``benchmarks/results/BENCH_observability.json``).

The snapshot is the artifact: counters for every subsystem, latency
histograms, the per-frame span chains that let a trace viewer (or a
regression diff) reconstruct exactly where each frame's time went, the
monitor's federated view (alerts + SLO attainment report), and the
flight-recorder dumps (also written separately as
``BENCH_flight_recorder.json`` so CI can upload the post-mortem on its
own).

Usage::

    PYTHONPATH=src python benchmarks/bench_observability.py [--smoke]
        [--out PATH]

``--smoke`` shrinks the scenario (fewer polygons, fewer frames) so CI can
run it in seconds; the snapshot schema is identical.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.compression import AdaptiveCodec, BandwidthEstimator
from repro.core.migration import WorkloadMigrator
from repro.core.session import CollaborativeSession
from repro.data.generators import skeleton
from repro.network.faults import FaultInjector
from repro.obs import write_snapshot
from repro.render.camera import Camera
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.streaming import FrameStreamer
from repro.testbed import build_testbed

DEFAULT_OUT = Path(__file__).parent / "results" / "BENCH_observability.json"
DEFAULT_DUMP_OUT = (Path(__file__).parent / "results"
                    / "BENCH_flight_recorder.json")


def build_session(tb, polygons_per_part: int, parts: int
                  ) -> CollaborativeSession:
    """Publish a multi-part model and place it across the render pool."""
    tree = SceneTree("bench")
    for i in range(parts):
        tree.add(MeshNode(skeleton(polygons_per_part).normalized(),
                          name=f"part{i}"))
    tb.publish_tree("bench", tree)
    cs = CollaborativeSession(tb.data_service, "bench",
                              recruiter=tb.recruiter())
    for host in ("onyx", "v880z", "centrino"):
        cs.connect(tb.render_service(host))
    cs.place_dataset()
    return cs


def composite_frames(cs, n_frames: int) -> None:
    """Orbiting composite renders (the collaborative hot path)."""
    cam = Camera.looking_at((0, 0, 5), (0, 0, 0))
    for _ in range(n_frames):
        cs.render_composite(cam, 64, 64)


def stream_frames(tb, n_frames: int) -> None:
    """Pipelined streaming from a render service to the PDA host."""
    rs = tb.render_service("centrino")
    rsession, _ = rs.create_render_session(tb.data_service, "bench")
    streamer = FrameStreamer(rs, rsession.render_session_id, "zaurus",
                             128, 128, blit_seconds=0.004)
    streamer.stream_pipelined(n_frames)


def walkaway_compression(tb, n_frames: int) -> None:
    """Adaptive codec while the PDA user walks away from the access point."""
    from repro.render.framebuffer import FrameBuffer
    import numpy as np

    codec = AdaptiveCodec(estimator=BandwidthEstimator(),
                          latency_budget=0.25)
    rng = np.random.default_rng(42)
    fb = FrameBuffer(96, 96)
    fb.color[:] = rng.integers(0, 256, fb.color.shape, dtype=np.uint8)
    for i in range(n_frames):
        quality = max(0.1, 1.0 - i / n_frames)
        tb.wireless.set_signal_quality("zaurus", quality)
        # drift a band of pixels so deltas have real content
        fb = fb.copy()
        fb.color[i % 96, :] = rng.integers(0, 256, (96, 3), dtype=np.uint8)
        encoded = codec.encode(fb)
        seconds = tb.network.transfer_time("centrino", "zaurus",
                                           max(1, encoded.nbytes))
        tb.network.sim.clock.advance(seconds)
        codec.estimator.observe(encoded.nbytes, seconds)


def bulk_scene_transfers(tb, cs, nbytes: int) -> None:
    """Model the scene hand-off as contention-aware scheduled transfers.

    ``Network.send`` is the instrumented path (per-link bytes and busy
    time); pushing each attachment's share concurrently also makes the
    transfers contend, so the link-utilisation gauges show real overlap.
    """
    data_host = tb.data_service.host
    for service in cs.render_services:
        if service.host != data_host:
            tb.network.send(data_host, service.host, nbytes)
    tb.network.sim.run()


def migration_pressure(cs, samples: int) -> None:
    """Feed sustained low-fps samples so the migrator plans real moves."""
    migrator = WorkloadMigrator(target_fps=10, overload_fps=8.0,
                                smoothing_seconds=3.0)
    loaded = next((s for s in cs.render_services if cs.share_of(s)), None)
    if loaded is None:
        return
    now = cs.data_service.network.sim.now
    for i in range(samples):
        migrator.record_frame(loaded, time=now + i, fps=2.0)
    migrator.plan(cs)


def crash_and_recover(tb, cs) -> None:
    """Kill a share-holding service; heartbeats detect it, recovery runs."""
    cs.enable_fault_tolerance(heartbeat_interval=0.25,
                              suspect_after=1.0, dead_after=3.0)
    victim = next((s for s in cs.render_services if cs.share_of(s)), None)
    if victim is None:
        return
    inj = FaultInjector(tb.network, seed=7)
    now = tb.network.sim.now
    inj.schedule_crash(at=now + 1.0, host=victim.host)
    tb.network.sim.run_until(now + 10.0)


def run(smoke: bool, out: Path,
        dump_out: Path = DEFAULT_DUMP_OUT) -> Path:
    import json

    polygons = 4_000 if smoke else 40_000
    frames = 3 if smoke else 12
    tb = build_testbed(monitor_host="registry-host")
    bundle = obs.install(clock=tb.clock)
    try:
        cs = build_session(tb, polygons, parts=6)
        bulk_scene_transfers(tb, cs, nbytes=polygons * 36)
        composite_frames(cs, frames)
        stream_frames(tb, frames * 2)
        walkaway_compression(tb, frames * 4)
        migration_pressure(cs, samples=8)
        crash_and_recover(tb, cs)
        path = write_snapshot(
            out, bundle.metrics, bundle.tracer, clock=tb.clock,
            meta={"benchmark": "observability",
                  "mode": "smoke" if smoke else "full",
                  "polygons_per_part": polygons,
                  "frames": frames},
            recorder=bundle.recorder,
            extra={"monitor": tb.monitor.snapshot()})
        dump_out.parent.mkdir(parents=True, exist_ok=True)
        dump_out.write_text(json.dumps(
            {"format": "rave-flight-recorder/1",
             "events_seen": bundle.recorder.seen,
             "capacity": bundle.recorder.capacity,
             "dumps": bundle.recorder.dumps},
            indent=2) + "\n")
    finally:
        obs.uninstall()
    return path


def check(path: Path) -> None:
    """Sanity-check the snapshot covers every instrumented subsystem."""
    import json

    data = json.loads(path.read_text())
    names = set(data["metrics"])
    for prefix in ("rave_scheduler_", "rave_session_", "rave_net_",
                   "rave_stream_", "rave_codec_", "rave_health_",
                   "rave_migration_"):
        assert any(n.startswith(prefix) for n in names), \
            f"snapshot is missing {prefix}* metrics"
    assert data["frames"], "snapshot has no per-frame span chains"
    # registry metadata + federation slot (satellite 2)
    assert data["registry"]["families"] > 0, "registry metadata missing"
    assert "default" in data["wall_meta"], "wall_meta slot missing"
    # the monitoring plane (tentpole): federated view, scrape traffic, SLOs
    monitor = data["monitor"]
    assert monitor["format"] == "rave-monitor-snapshot/1"
    assert monitor["scrapes"]["count"] > 0, "monitor never scraped"
    assert monitor["scrapes"]["bytes"] > 0, \
        "scrapes put no bytes on the simulated wire"
    assert monitor["services"], "monitor federated no services"
    assert monitor["slo"], "SLO attainment report is empty"
    # the crash left a post-mortem
    recorder = data["flight_recorder"]
    assert recorder["dumps"], "no flight-recorder dump after the crash"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small fast scenario (CI)")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help=f"snapshot path (default {DEFAULT_OUT})")
    args = parser.parse_args(argv)
    path = run(args.smoke, args.out)
    check(path)
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
