"""Ablation — single data service vs a sharded federation (§6 future work).

"We will consider the distribution of the data across several data
servers, to match our render service workload distribution.  This will
alleviate any bottleneck in our system."

The bottleneck in question is Table 5's marshalling-bound bootstrap.  With
the scene sharded across N data servers, each shard marshals on its own
machine concurrently; the subscriber's bootstrap time becomes the slowest
shard instead of the whole-scene sum.
"""

import pytest

from repro.data.generators import skeletal_hand
from repro.scenegraph.nodes import MeshNode
from repro.scenegraph.tree import SceneTree
from repro.services.container import ServiceContainer
from repro.services.data_service import DataService
from repro.services.federation import DataFederation
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def setup():
    tb = build_testbed()
    members = [tb.data_service]
    for i, host in enumerate(("athlon", "onyx")):
        container = ServiceContainer(host, tb.network,
                                     http_port=9500 + i)
        members.append(DataService(f"fed-{host}", container))
    federation = DataFederation("fed", members)

    tree = SceneTree("big")
    mesh = skeletal_hand(240_000).normalized()
    for piece in mesh.split_spatially(6):
        tree.add(MeshNode(piece, name=f"part"))
    tb.publish_tree("big-single", SceneTree.from_wire(tree.to_wire()))
    federation.create_session("big-fed", tree)
    return tb, federation


def measure(tb, federation):
    t0 = tb.clock.now
    tb.data_service.subscribe("big-single", f"serial-{t0}", "centrino")
    serial = tb.clock.now - t0
    t0 = tb.clock.now
    federation.subscribe("big-fed", f"fed-{t0}", "centrino")
    parallel = tb.clock.now - t0
    return serial, parallel


def test_federation_ablation(setup, report, benchmark):
    tb, federation = setup
    serial, parallel = benchmark.pedantic(measure, args=(tb, federation),
                                          rounds=1, iterations=1)
    table = report(
        "ablation_federation",
        "Ablation: bootstrap via one data server vs a 3-member federation",
        ["Configuration", "Bootstrap (s)"],
    )
    table.add_row("single data service", f"{serial:.1f}")
    table.add_row("3-shard federation", f"{parallel:.1f}")
    table.add_row("speed-up", f"{serial / parallel:.1f}x")

    # three-way sharding should cut the marshalling-bound bootstrap by
    # well over half (perfect scaling would be ~3x; handshakes and the
    # shared subscriber-side demarshal keep it below that)
    assert parallel < 0.6 * serial


def test_federation_routing_overhead_is_negligible(setup, benchmark):
    """Routing an update through the federation costs no more than a
    direct publish (one dictionary lookup plus the member's path)."""
    from repro.scenegraph.updates import SetProperty

    tb, federation = setup
    session = federation.session("big-fed")
    target_id = next(iter(session.shards[0].node_ids))

    def publish():
        return federation.publish_update("big-fed", SetProperty(
            node_id=target_id, field_name="name", value="x"))

    deliveries = benchmark(publish)
    assert isinstance(deliveries, dict)
