"""Figure 5 — Tearing artifact from 2 tiles, and tile-update latency.

The paper demonstrates best-effort tiled rendering tearing at the seam
when the remote tile lags ("a tear in the region of the middle mast of the
galleon"), produced "by artificially stalling the remote render service".
It also reports the drag-to-tile-update delay: ~0.05 s for the galleon
(transport-bound) and ~0.3 s for the skeletal hand (render-bound) — the
motivation for frame synchronization with complex scenes.

This benchmark reproduces all three:

1. the torn frame (stalled remote tile, seam metric spikes) — saved as PPM;
2. the synchronized frame (FrameSynchronizer holds the frame until every
   tile of the same sequence arrives — no tear);
3. the two tile-update delays through the simulated network + engine model.
"""

import numpy as np
import pytest

from repro.core.session import CollaborativeSession
from repro.data.generators import galleon, make_model
from repro.render.compositor import FrameSynchronizer, seam_discontinuity
from repro.render.framebuffer import FrameBuffer, split_tiles
from repro.scenegraph.nodes import CameraNode, MeshNode
from repro.scenegraph.tree import SceneTree
from repro.testbed import build_testbed


@pytest.fixture(scope="module")
def tb():
    testbed = build_testbed(render_hosts=("centrino", "athlon"))
    testbed.publish_model("galleon-tiled", galleon(20_000).normalized())
    return testbed


def tiled_setup(tb):
    # Framebuffer distribution: every participant renders the WHOLE scene
    # from the shared camera (no dataset split), so connect-time full
    # copies are exactly what tiling needs.
    cs = CollaborativeSession(tb.data_service, "galleon-tiled")
    local = tb.render_service("centrino")
    remote = tb.render_service("athlon")
    cs.connect(local)
    cs.connect(remote)
    return cs, local, remote


def test_fig5_tearing_and_sync(tb, results_dir, benchmark):
    def run():
        cs, local, remote = tiled_setup(tb)
        width = height = 192
        tiles = split_tiles(width, height, 2, 1)
        cam_before = CameraNode(position=(2.4, 1.5, 1.1))
        cam_after = CameraNode(position=(1.2, 2.5, 1.4))

        def tile_of(service, cam, tile):
            att = cs.attachment(service)
            fb, _ = service.render_tile(att.render_session_id, cam, tile,
                                        width, height)
            return fb

        # best effort: the local tile shows the *new* camera, the stalled
        # remote tile still shows the old one → Figure 5's tear
        torn = FrameBuffer(width, height)
        torn.paste(tiles[0], tile_of(local, cam_after, tiles[0]))
        torn.paste(tiles[1], tile_of(remote, cam_before, tiles[1]))

        # synchronized: the frame only presents when both tiles of the
        # same sequence have arrived
        sync = FrameSynchronizer(tiles)
        sync.submit(0, 0, tile_of(local, cam_before, tiles[0]))
        sync.submit(1, 0, tile_of(local, cam_after, tiles[0]))
        sync.submit(1, 1, tile_of(remote, cam_after, tiles[1]))
        # sequence 0's remote tile never arrives (stall) — seq 1 completes
        clean = FrameBuffer(width, height)
        seq = sync.take_frame(clean)
        return torn, clean, seq, tiles

    torn, clean, seq, tiles = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    torn.save_ppm(results_dir / "fig5_torn_frame.ppm")
    clean.save_ppm(results_dir / "fig5_synchronized_frame.ppm")

    torn_score = seam_discontinuity(torn, tiles)
    clean_score = seam_discontinuity(clean, tiles)
    assert seq == 1
    assert torn_score > 1.5 * clean_score
    # a consistent frame's seam looks like ordinary geometry edges (the
    # galleon's mast sits near the seam, so ~2 rather than ~1)
    assert clean_score < 2.5


PAPER_DELAYS = {"galleon": 0.05, "skeletal_hand": 0.3}


def test_fig5_tile_update_delay(tb, report, benchmark):
    """Drag-to-tile-update latency: galleon ~0.05 s, hand ~0.3 s."""
    table = report(
        "fig5_tile_delay",
        "Figure 5 discussion: drag-to-tile-update delay (s)",
        ["Model", "Paper", "Measured"],
    )

    def measure():
        delays = {}
        for name in ("galleon", "skeletal_hand"):
            session_id = f"delay-{name}"
            if session_id not in [s.session_id
                                  for s in tb.data_service.sessions()]:
                tb.publish_model(
                    session_id,
                    make_model(name, paper_scale=True).normalized())
            remote = tb.render_service("centrino")
            rsession, _ = remote.create_render_session(tb.data_service,
                                                       session_id)
            cam = CameraNode(position=(2.2, 1.5, 1.1))
            width = height = 400
            tile = split_tiles(width, height, 2, 1)[1]
            t0 = tb.clock.now
            # 1. the camera drag reaches the remote service
            tb.clock.advance(tb.network.transfer_time(
                "athlon", "centrino", 900))
            # 2. the remote renders its tile off-screen (in-progress frame
            #    finishes first: expected extra half frame)
            fb, timing = remote.render_tile(
                rsession.render_session_id, cam, tile, width, height)
            tb.clock.advance(0.5 * timing.total_seconds)
            # 3. the tile crosses the LAN — color only: tile *assembly*
            #    needs no depth (unlike dataset-distribution compositing)
            tb.clock.advance(tb.network.transfer_time(
                "centrino", "athlon", fb.nbytes_color))
            delays[name] = tb.clock.now - t0
        return delays

    delays = benchmark.pedantic(measure, rounds=1, iterations=1)
    for name, delay in delays.items():
        table.add_row(name, f"{PAPER_DELAYS[name]:.2f}", f"{delay:.3f}")

    # galleon delay is transport-bound and tiny
    assert delays["galleon"] < 0.12
    # the hand's render time dominates: several times the galleon's delay
    assert delays["skeletal_hand"] > 2.5 * delays["galleon"]
    assert 0.1 < delays["skeletal_hand"] < 0.5
