"""Batch render farm: a throughput workload beside the interactive grid.

The paper's grid serves interactive collaborative sessions; this package
reuses the same substrate — UDDI discovery, WSDL tmodels, the simulated
network, heartbeat leases, retry policies, per-service telemetry — for
offline animation rendering in the style of cluster render controllers:
jobs enqueue frame ranges, idle render services pull exactly one frame
at a time, failed nodes' frames are re-queued (never duplicated), and a
``checkframes``-style audit proves no frame went missing.
"""

from repro.farm.controller import RenderFarmController
from repro.farm.job import (
    FRAME_DONE,
    FRAME_LEASED,
    FRAME_PENDING,
    FrameRecord,
    RenderJob,
)
from repro.farm.queue_service import FrameQueueService

__all__ = [
    "FRAME_PENDING",
    "FRAME_LEASED",
    "FRAME_DONE",
    "FrameRecord",
    "RenderJob",
    "FrameQueueService",
    "RenderFarmController",
]
