"""Render jobs: an animation frame range against a data-service scene.

A :class:`RenderJob` is the farm's unit of submission — render frames
``start_frame..end_frame`` of ``session_id``'s scene, one deterministic
orbit step per frame.  Each frame is tracked by a :class:`FrameRecord`
through the pending → leased → done lifecycle; a frame lost to a node
crash goes *back* to pending (a re-queue, counted), never to a second
concurrent lease, so every frame completes exactly once however many
times the fault layer makes the farm try.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ServiceError
from repro.scenegraph.nodes import CameraNode

#: frame lifecycle states
FRAME_PENDING = "pending"
FRAME_LEASED = "leased"
FRAME_DONE = "done"


@dataclass
class FrameRecord:
    """One animation frame's bookkeeping inside a job."""

    index: int
    state: str = FRAME_PENDING
    #: render attempts started (1 on first lease; +1 per re-lease)
    attempts: int = 0
    #: times the frame went back to pending after a lost lease
    requeues: int = 0
    #: worker currently holding (or last holding) the lease
    worker: str = ""
    #: simulated-clock time after which the lease may be re-issued
    lease_deadline: float = 0.0
    #: simulated-clock time the frame last entered the pending queue
    queued_at: float = 0.0
    render_seconds: float = 0.0
    completed_at: float = 0.0
    nbytes: int = 0


@dataclass
class RenderJob:
    """An animation range: frames ``start_frame..end_frame`` inclusive."""

    job_id: str
    session_id: str
    start_frame: int
    end_frame: int
    width: int = 160
    height: int = 120
    #: camera orbit per frame (degrees) — deterministic per-frame views
    orbit_step_degrees: float = 3.0
    #: lease-time preemption class: a higher-priority job's frames always
    #: go out before any lower-priority job's (no lease revocation)
    priority: int = 0
    #: submitting tenant, charged against its farm quota at lease time
    tenant: str = ""
    #: fair-share weight inside a priority class — the job's
    #: deficit-round-robin quantum in frames per scheduling round
    weight: float = 1.0
    submitted_at: float = 0.0
    finished_at: float | None = None
    #: simulated-clock time of the job's most recent lease grant (used by
    #: the queue's starvation detector; 0 until first leased)
    last_leased_at: float = 0.0
    #: submitting request's trace id; leases derive per-frame spans from it
    trace_id: str = ""
    frames: dict[int, FrameRecord] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.end_frame < self.start_frame:
            raise ServiceError(
                f"job {self.job_id!r}: end_frame {self.end_frame} < "
                f"start_frame {self.start_frame}")
        if self.weight <= 0:
            raise ServiceError(
                f"job {self.job_id!r}: weight must be positive, "
                f"got {self.weight!r}")
        if not self.frames:
            self.frames = {i: FrameRecord(index=i)
                           for i in range(self.start_frame,
                                          self.end_frame + 1)}

    # -- progress -------------------------------------------------------------------

    @property
    def total_frames(self) -> int:
        return len(self.frames)

    @property
    def done_frames(self) -> int:
        return sum(1 for f in self.frames.values()
                   if f.state == FRAME_DONE)

    @property
    def progress(self) -> float:
        return self.done_frames / self.total_frames

    @property
    def finished(self) -> bool:
        return self.done_frames == self.total_frames

    def frame(self, index: int) -> FrameRecord:
        try:
            return self.frames[index]
        except KeyError:
            raise ServiceError(
                f"job {self.job_id!r} has no frame {index}") from None

    def missing_frames(self) -> list[int]:
        """The ``checkframes`` audit: frame indexes not yet rendered."""
        return sorted(i for i, f in self.frames.items()
                      if f.state != FRAME_DONE)

    def camera_for(self, index: int) -> CameraNode:
        """The deterministic camera for one animation frame."""
        camera = CameraNode(name=f"{self.job_id}-f{index:04d}")
        camera.orbit(self.orbit_step_degrees * (index - self.start_frame))
        return camera

    def describe(self) -> dict:
        """JSON-serialisable job state (progress endpoint / dashboard)."""
        return {
            "job_id": self.job_id,
            "session_id": self.session_id,
            "range": [self.start_frame, self.end_frame],
            "priority": self.priority,
            "tenant": self.tenant,
            "weight": self.weight,
            "done": self.done_frames,
            "total": self.total_frames,
            "progress": self.progress,
            "finished": self.finished,
            "missing": self.missing_frames(),
            "requeues": sum(f.requeues for f in self.frames.values()),
        }


__all__ = [
    "FRAME_PENDING",
    "FRAME_LEASED",
    "FRAME_DONE",
    "FrameRecord",
    "RenderJob",
]
