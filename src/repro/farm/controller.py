"""The render-farm controller: workers pulling frames, one at a time.

Drives a pool of :class:`~repro.services.render_service.RenderService`
workers against one :class:`~repro.farm.queue_service.FrameQueueService`:

- a daemon dispatch tick re-queues expired leases and offers every idle
  worker a pull; a worker that delivers a result immediately pulls
  again, so the pool stays saturated without waiting for the tick;
- each pull pays the lease transfer (queue → worker) on the simulated
  network, renders the frame on a **scratch clock** (the
  :meth:`~repro.services.render_service.RenderService.render_views_parallel`
  idiom), and ships the result back via :meth:`Network.send` — so N
  workers render concurrently and farm throughput scales with the pool;
- every worker emits heartbeats to a lease-based
  :class:`~repro.core.health.HeartbeatMonitor`; a worker declared dead
  has its in-flight frames re-queued at once (the fault path the chaos
  suite exercises), and a result whose ship was dropped in flight is
  recovered by the queue's own lease timeout;
- :meth:`grow` recruits extra workers through UDDI (the autoscaler's
  farm-pressure path) and :meth:`release_idle` returns them when the
  backlog clears.
"""

from __future__ import annotations

from repro.core.health import HeartbeatMonitor, HeartbeatSource
from repro.errors import NetworkError, ServiceError, SessionError
from repro.network.clock import SimClock
from repro.obs import active as _obs
from repro.services.protocol import (
    FarmResult,
    frame_farm_result,
    unframe_farm_lease,
)


class RenderFarmController:
    """Schedules one queue's frames across a pool of render workers."""

    def __init__(self, queue, data_service, workers=(), recruiter=None,
                 poll_period: float = 0.5,
                 heartbeat_interval: float = 0.5,
                 suspect_after: float = 1.5,
                 dead_after: float = 4.0) -> None:
        self.queue = queue
        self.data_service = data_service
        self.recruiter = recruiter
        self.poll_period = poll_period
        self.heartbeat_interval = heartbeat_interval
        self._workers: dict[str, object] = {}
        self._busy: set[str] = set()
        self.failed_workers: set[str] = set()
        #: render-session cache, (worker, data session) -> rsid
        self._rsids: dict[tuple[str, str], str] = {}
        self._sources: dict[str, HeartbeatSource] = {}
        self.monitor = HeartbeatMonitor(self.sim,
                                        suspect_after=suspect_after,
                                        dead_after=dead_after)
        self.monitor.on_dead.append(self._on_worker_dead)
        self.monitor.on_recover.append(self._on_worker_recovered)
        self.frames_rendered = 0
        self.frames_lost = 0
        self.ships_dropped = 0
        self._tick_handle = None
        for worker in workers:
            self.add_worker(worker)

    # -- plumbing --------------------------------------------------------------------

    @property
    def network(self):
        return self.queue.network

    @property
    def sim(self):
        return self.queue.network.sim

    # -- the pool --------------------------------------------------------------------

    def add_worker(self, service) -> None:
        if service.name in self._workers:
            raise ServiceError(f"{service.name!r} already in the farm")
        self._workers[service.name] = service
        self.failed_workers.discard(service.name)
        # the queue's tenant lease caps are fractions of the pool size
        self.queue.register_worker(service.name)
        source = HeartbeatSource(
            monitor=self.monitor, network=self.network,
            name=service.name, host=service.host,
            monitor_host=self.queue.host,
            interval=self.heartbeat_interval).start()
        self._sources[service.name] = source

    def remove_worker(self, name: str) -> None:
        self._workers.pop(name, None)
        source = self._sources.pop(name, None)
        if source is not None:
            source.stop()
        self.monitor.unwatch(name)
        self._busy.discard(name)
        self.queue.unregister_worker(name)

    def workers(self) -> list:
        return [self._workers[n] for n in sorted(self._workers)]

    def pool_size(self) -> int:
        return len(self._workers)

    def live_workers(self) -> list:
        out = []
        for name in sorted(self._workers):
            if name in self.failed_workers:
                continue
            service = self._workers[name]
            try:
                if self.network.host_is_up(service.host):
                    out.append(service)
            except NetworkError:
                continue
        return out

    def idle_workers(self) -> list:
        return [s for s in self.live_workers() if s.name not in self._busy]

    def grow(self, count: int = 1) -> list:
        """Recruit extra workers via UDDI (the autoscaler's farm path)."""
        if self.recruiter is None:
            return []
        result = self.recruiter.recruit(
            exclude=set(self._workers) | self.failed_workers)
        added = []
        for service in result.services:
            if len(added) >= count:
                break
            if service.name in self._workers:
                continue
            try:
                if not self.network.host_is_up(service.host):
                    continue
            except NetworkError:
                continue
            self.add_worker(service)
            added.append(service)
        return added

    def release_idle(self, min_workers: int = 1) -> list[str]:
        """Drop idle workers once the backlog clears (scale-in)."""
        if self.queue.backlog() > 0:
            return []
        released = []
        for name in sorted(self._workers):
            if len(self._workers) - len(released) <= min_workers:
                break
            if name in self._busy or name in self.failed_workers:
                continue
            released.append(name)
        for name in released:
            self.remove_worker(name)
        return released

    # -- failure handling -------------------------------------------------------------

    def _on_worker_dead(self, name: str) -> None:
        if name not in self._workers:
            return
        self.failed_workers.add(name)
        self._busy.discard(name)
        # a dead worker's slot leaves the lease-cap denominator until it
        # recovers, so quotas track the live pool
        self.queue.unregister_worker(name)
        lost = self.queue.requeue_worker(name)
        self.frames_lost += len(lost)
        # the worker's render sessions died with its host
        for key in [k for k in self._rsids if k[0] == name]:
            del self._rsids[key]
        self.dispatch()

    def _on_worker_recovered(self, name: str) -> None:
        self.failed_workers.discard(name)
        if name in self._workers:
            self.queue.register_worker(name)
        self.dispatch()

    # -- dispatch --------------------------------------------------------------------

    def start(self) -> RenderFarmController:
        """Run heartbeat polling and the dispatch tick on the clock."""
        self.monitor.start(self.poll_period)
        if self._tick_handle is None:
            def tick() -> None:
                self.queue.requeue_expired()
                self.dispatch()
                self._tick_handle = self.sim.schedule(self.poll_period,
                                                      tick, daemon=True)

            self._tick_handle = self.sim.schedule(self.poll_period, tick,
                                                  daemon=True)
        self.dispatch()
        return self

    def stop(self) -> None:
        self.monitor.stop()
        if self._tick_handle is not None:
            self._tick_handle.cancel()
            self._tick_handle = None
        for source in self._sources.values():
            source.stop()

    def prewarm(self, session_id: str) -> int:
        """Bootstrap every idle worker's render session for one scene.

        The paper's container instance-creation cost (seconds of JVM
        start-up plus the scene transfer) dwarfs a single frame render,
        so the farm pays it once per worker up front rather than inside
        the first pull.  Bootstraps run on scratch clocks — concurrent
        in simulated time — and each worker stays busy until its own
        bootstrap delay elapses.  Returns the number of bootstraps
        started.
        """
        started = 0
        for worker in self.idle_workers():
            if (worker.name, session_id) in self._rsids:
                continue
            self._busy.add(worker.name)
            real_clock = self.sim.clock
            scratch = SimClock(real_clock.now)
            self.sim.clock = scratch
            try:
                self._render_session(worker, session_id)
            except (NetworkError, ServiceError, SessionError):
                self._busy.discard(worker.name)
                continue
            finally:
                self.sim.clock = real_clock

            def ready(name: str = worker.name) -> None:
                self._busy.discard(name)
                self.dispatch()

            self.sim.schedule(scratch.now - real_clock.now, ready)
            started += 1
        return started

    def dispatch(self) -> int:
        """Offer every idle live worker one pull; returns pulls started."""
        started = 0
        for worker in self.idle_workers():
            if self._pull(worker):
                started += 1
        return started

    def _pull(self, worker) -> bool:
        """One worker pulls exactly one frame; False when nothing started."""
        if worker.name in self._busy or worker.name in self.failed_workers:
            return False
        lease_bytes = self.queue.lease(worker.name)
        if lease_bytes is None:
            return False
        try:
            lease_transfer = self.network.transfer_time(
                self.queue.host, worker.host, len(lease_bytes))
        except NetworkError:
            # undeliverable lease: the frame stays leased and the queue's
            # own timeout (or the worker's death) re-queues it
            return False
        lease = unframe_farm_lease(lease_bytes)
        job = self.queue.job(lease.job_id)
        self._busy.add(worker.name)
        # render on a scratch clock so concurrent workers overlap in
        # simulated time — the global clock only sees the scheduled
        # delivery, which is what makes frames/sec scale with the pool
        real_clock = self.sim.clock
        scratch = SimClock(real_clock.now)
        self.sim.clock = scratch
        try:
            rsid = self._render_session(worker, lease.session_id)
            fb, timing = worker.render_view(
                rsid, job.camera_for(lease.frame), job.width, job.height,
                offscreen=True)
        except (NetworkError, ServiceError, SessionError):
            self._busy.discard(worker.name)
            return False
        finally:
            self.sim.clock = real_clock
        elapsed = scratch.now - real_clock.now
        obs = _obs()
        if obs.enabled and lease.trace is not None:
            # the worker's render span joins the submitting request's
            # trace; the span id came with the lease, so a re-issued
            # lease shows up as a distinct span on the same trace
            obs.tracer.record(
                "farm-render", real_clock.now + lease_transfer,
                real_clock.now + lease_transfer + timing.total_seconds,
                service=worker.name, job=lease.job_id, frame=lease.frame,
                attempt=lease.attempt, trace=lease.trace.trace_id)
        result_bytes = frame_farm_result(FarmResult(
            job_id=lease.job_id, frame=lease.frame, worker=worker.name,
            render_seconds=timing.total_seconds, nbytes=fb.color.nbytes,
            attempt=lease.attempt, trace=lease.trace))
        self.sim.schedule(lease_transfer + elapsed,
                          lambda: self._ship(worker, result_bytes))
        return True

    def _render_session(self, worker, session_id: str) -> str:
        """The worker's render session for a scene, bootstrapped lazily."""
        key = (worker.name, session_id)
        rsid = self._rsids.get(key)
        if rsid is not None:
            return rsid
        session, _ = worker.create_render_session(self.data_service,
                                                  session_id)
        self._rsids[key] = session.render_session_id
        return session.render_session_id

    def _ship(self, worker, result_bytes: bytes) -> None:
        """The rendered frame travels worker → queue over the network."""
        try:
            self.network.send(
                worker.host, self.queue.host, len(result_bytes),
                on_complete=lambda record: self._deliver(worker,
                                                         result_bytes),
                on_drop=lambda record: self._ship_dropped(worker))
        except NetworkError:
            # host died between render and ship: the lease times out and
            # the frame is re-queued for another worker
            self._busy.discard(worker.name)

    def _deliver(self, worker, result_bytes: bytes) -> None:
        if self.queue.complete(result_bytes):
            self.frames_rendered += 1
        self._busy.discard(worker.name)
        self._pull(worker)

    def _ship_dropped(self, worker) -> None:
        self.ships_dropped += 1
        self._busy.discard(worker.name)
        self._pull(worker)

    def describe(self) -> dict:
        return {
            "workers": sorted(self._workers),
            "busy": sorted(self._busy),
            "failed_workers": sorted(self.failed_workers),
            "frames_rendered": self.frames_rendered,
            "frames_lost": self.frames_lost,
            "ships_dropped": self.ships_dropped,
        }

    def __repr__(self) -> str:
        return (f"RenderFarmController(workers={len(self._workers)}, "
                f"busy={len(self._busy)}, "
                f"rendered={self.frames_rendered})")


__all__ = ["RenderFarmController"]
