"""The frame queue service: the farm's front door and source of truth.

A fifth RAVE service role (tmodel ``RaveFrameQueueService``), deployed
in a container and registered in UDDI like the others.  It owns every
job's :class:`~repro.farm.job.FrameRecord` ledger and a **fair-share
frame scheduler** in place of the original flat FIFO (which let one
long animation starve every job submitted after it):

- :meth:`submit` accepts a :class:`~repro.farm.job.RenderJob` — with a
  ``priority``, a ``tenant`` and a fair-share ``weight`` — and queues
  its whole range;
- :meth:`lease` hands an idle worker **exactly one** frame as a wire
  frame (:func:`repro.services.protocol.frame_farm_lease`) with a
  simulated-clock deadline.  The frame is chosen by the scheduler:
  a strictly higher ``priority`` job always goes out first (lease-time
  preemption, never lease revocation); inside a priority class, active
  jobs interleave by deficit round robin with per-job ``weight`` as the
  quantum, so a 10-frame job submitted behind a 500-frame animation
  still finishes promptly; and a tenant at its
  :meth:`~repro.core.grid.TenantQuota.lease_cap` is skipped while other
  tenants have pending work (work-conserving: the cap is ignored when
  nobody else is waiting).  Within one job, re-queued frames go out
  before never-leased ones;
- :meth:`complete` accepts a result frame and is idempotent: a result
  for a frame that is not leased to that worker any more (the lease
  expired and was re-issued, or the frame already completed) is counted
  and dropped — a frame is never marked done twice.  A hostile result
  whose frame index lies outside the job's range is counted as
  ``invalid_results`` and dropped, never raised;
- :meth:`requeue_expired` / :meth:`requeue_worker` put lost leases back
  at the *front of their job's queue*, **in frame order** (a batch of
  expired frames 3 and 5 re-leases as 3 then 5, not reversed), at most
  one re-queue per failure since only a ``leased`` frame can go back to
  ``pending``;
- :meth:`audit` is the ``checkframes`` pass: the sorted list of frame
  indexes a finished-looking job is still missing.

Starvation is observable, not silent: every lease records the frame's
queue wait into the ``rave_farm_job_wait_seconds`` histogram (job +
tenant labels), and jobs with pending frames that have gone unserved
past ``starvation_after`` raise the ``rave_farm_starved_jobs`` gauge
the monitor's sustained ``farm-starvation`` alert fires on.  The queue
exports its own telemetry (kind ``farm``): queue depth, active leases,
trailing-window frames/sec, per-job progress and priority gauges, and
``farm:`` flight-recorder events for every decision.
"""

from __future__ import annotations

import zlib
from collections import deque

from repro.core.grid import TenantQuota
from repro.errors import ServiceError
from repro.farm.job import FRAME_DONE, FRAME_LEASED, FRAME_PENDING, RenderJob
from repro.obs import active as _obs
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.tracing import TraceContext
from repro.obs.vocab import EVENT_FARM_PREFIX, SERVICE_FARM
from repro.services.protocol import (
    FarmLease,
    FarmResult,
    frame_farm_lease,
    unframe_farm_result,
)

#: seconds a job may sit with pending frames and no lease before the
#: starvation gauge counts it (the ``farm-starvation`` alert's signal)
DEFAULT_STARVATION_AFTER = 30.0


def _lease_span_id(job_id: str, index: int, attempt: int) -> str:
    """A deterministic 16-hex span id for one lease attempt.

    The queue has no RNG of its own (and must not grow one — replay
    determinism), so span ids are content-addressed: a CRC of the
    ``job#frame@attempt`` triple, unique per lease re-issue.
    """
    lo = zlib.crc32(f"{job_id}#{index}@{attempt}".encode())
    hi = zlib.crc32(f"{attempt}@{index}#{job_id}".encode())
    return f"{hi:08x}{lo:08x}"


class FrameQueueService:
    """Batch frame queue deployed in a service container."""

    def __init__(self, name: str, container, lease_timeout: float = 30.0,
                 throughput_window: float = 20.0,
                 starvation_after: float = DEFAULT_STARVATION_AFTER) -> None:
        from repro.services.wsdl import FRAME_QUEUE_WSDL

        if lease_timeout <= 0:
            raise ServiceError("lease_timeout must be positive")
        if throughput_window <= 0:
            raise ServiceError("throughput_window must be positive")
        if starvation_after <= 0:
            raise ServiceError("starvation_after must be positive")
        self.name = name
        self.container = container
        self.endpoint = container.deploy(FRAME_QUEUE_WSDL)
        self.lease_timeout = lease_timeout
        self.throughput_window = throughput_window
        self.starvation_after = starvation_after
        self._jobs: dict[str, RenderJob] = {}
        #: per-job pending frame indexes; re-queues go to the front of
        #: the owning job's deque, in frame order
        self._job_pending: dict[str, deque[int]] = {}
        #: deficit-round-robin rings, one per priority class: the job at
        #: the left serves while its deficit lasts, then rotates away
        self._rings: dict[int, deque[str]] = {}
        #: per-job deficit (frames of credit); reset when backlog empties
        self._deficit: dict[str, float] = {}
        #: jobs already granted their quantum for the current ring visit
        self._charged: set[str] = set()
        #: per-tenant outstanding lease counts (quota accounting)
        self._tenant_leases: dict[str, int] = {}
        self._quotas: dict[str, TenantQuota] = {}
        #: worker slots the lease caps are computed against — kept by
        #: the controller via register_worker/unregister_worker, and
        #: grown lazily by lease() for hand-driven tests
        self._worker_slots: set[str] = set()
        #: jobs currently counted starved (for transition events)
        self._starved: set[str] = set()
        self._completion_times: deque[float] = deque(maxlen=4096)
        self.leases_issued = 0
        self.frames_completed = 0
        self.duplicates_dropped = 0
        self.invalid_results = 0
        self.requeues = 0
        self.telemetry = ServiceTelemetry(name, container.host,
                                          SERVICE_FARM)
        self.telemetry.add_collector(self._collect_telemetry)

    # -- plumbing --------------------------------------------------------------------

    @property
    def network(self):
        return self.container.network

    @property
    def host(self) -> str:
        return self.container.host

    @property
    def now(self) -> float:
        return self.network.sim.now

    # -- tenants and workers ---------------------------------------------------------

    def register_tenant(self, quota: TenantQuota) -> None:
        """Cap a tenant's concurrent leases (the session grid's quota
        machinery, applied to the farm's discrete worker slots)."""
        self._quotas[quota.tenant] = quota

    def register_worker(self, worker: str) -> None:
        """Declare a worker slot (the controller's pool membership)."""
        self._worker_slots.add(worker)

    def unregister_worker(self, worker: str) -> None:
        self._worker_slots.discard(worker)

    def _tenant_has_room(self, tenant: str) -> bool:
        quota = self._quotas.get(tenant)
        if quota is None:
            return True
        cap = quota.lease_cap(len(self._worker_slots))
        return self._tenant_leases.get(tenant, 0) < cap

    # -- jobs ------------------------------------------------------------------------

    def submit(self, job: RenderJob) -> str:
        """Enqueue a job's whole frame range; returns its job id."""
        if job.job_id in self._jobs:
            raise ServiceError(f"job {job.job_id!r} already submitted")
        now = self.now
        job.submitted_at = now
        self._jobs[job.job_id] = job
        pending = deque()
        for index in sorted(job.frames):
            job.frames[index].queued_at = now
            pending.append(index)
        self._job_pending[job.job_id] = pending
        self._rings.setdefault(job.priority, deque()).append(job.job_id)
        self._note("submit",
                   f"{job.job_id}: frames {job.start_frame}.."
                   f"{job.end_frame} of {job.session_id} "
                   f"({job.total_frames} queued, priority {job.priority}, "
                   f"tenant {job.tenant or '-'}, weight {job.weight:g})")
        return job.job_id

    def job(self, job_id: str) -> RenderJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"no job {job_id!r}") from None

    def jobs(self) -> list[RenderJob]:
        return [self._jobs[j] for j in sorted(self._jobs)]

    def progress(self, job_id: str) -> tuple[int, int]:
        job = self.job(job_id)
        return job.done_frames, job.total_frames

    def audit(self, job_id: str) -> list[int]:
        """The ``checkframes`` audit: frames the job is still missing."""
        job = self.job(job_id)
        missing = job.missing_frames()
        self._note("audit",
                   f"{job_id}: {len(missing)} missing of "
                   f"{job.total_frames}" + (f" {missing}" if missing else ""))
        return missing

    # -- the frame scheduler ---------------------------------------------------------

    def queue_depth(self) -> int:
        return sum(len(q) for q in self._job_pending.values())

    def active_leases(self) -> int:
        return sum(1 for job in self._jobs.values()
                   for f in job.frames.values()
                   if f.state == FRAME_LEASED)

    def backlog(self) -> int:
        """Frames not yet done (pending + leased) — the autoscaler signal."""
        return self.queue_depth() + self.active_leases()

    def starved_jobs(self) -> list[str]:
        """Jobs with pending frames unserved past ``starvation_after``."""
        now = self.now
        out = []
        for job_id in sorted(self._jobs):
            if not self._job_pending.get(job_id):
                continue
            job = self._jobs[job_id]
            served = max(job.submitted_at, job.last_leased_at)
            if now - served > self.starvation_after:
                out.append(job_id)
        return out

    def _ring_drop(self, job_id: str, priority: int) -> None:
        """A job's backlog emptied: it leaves the ring and (per DRR)
        loses its accumulated deficit."""
        ring = self._rings.get(priority)
        if ring is not None and job_id in ring:
            ring.remove(job_id)
            if not ring:
                del self._rings[priority]
        self._deficit.pop(job_id, None)
        self._charged.discard(job_id)

    def _ring_add(self, job_id: str, priority: int) -> None:
        """A job regained backlog: it rejoins the end of its ring."""
        ring = self._rings.setdefault(priority, deque())
        if job_id not in ring:
            ring.append(job_id)

    def _drr_next(self, ring: deque, eligible: set[str]) -> str | None:
        """Deficit round robin over one priority ring, one frame's worth.

        The job at the ring's left serves while its deficit lasts (its
        quantum is the job's ``weight``, topped up once per visit); when
        the deficit drops below one frame — or the job is ineligible —
        it rotates away and the next job tops up.  Serving does *not*
        rotate, so a weight-2 job leases two consecutive frames per
        round against a weight-1 job's one.
        """
        min_weight = min(self._jobs[j].weight for j in eligible)
        limit = (len(ring) + 1) * (int(1.0 / min_weight) + 2)
        for _ in range(limit):
            job_id = ring[0]
            if job_id in eligible:
                if job_id not in self._charged:
                    self._deficit[job_id] = (self._deficit.get(job_id, 0.0)
                                             + self._jobs[job_id].weight)
                    self._charged.add(job_id)
                if self._deficit[job_id] >= 1.0:
                    self._deficit[job_id] -= 1.0
                    return job_id
            self._charged.discard(job_id)
            ring.rotate(-1)
        return None

    def _pick_job(self) -> str | None:
        """The scheduling decision for one lease.

        Strict priority first: the highest class with schedulable work
        wins outright.  Tenant lease caps filter jobs inside every
        class; if the caps leave *nothing* schedulable anywhere, they
        are waived (work-conserving — an idle worker is never refused
        while frames are pending).
        """
        for enforce_quota in (True, False):
            for priority in sorted(self._rings, reverse=True):
                ring = self._rings[priority]
                eligible = {
                    j for j in ring
                    if self._job_pending.get(j)
                    and (not enforce_quota
                         or self._tenant_has_room(self._jobs[j].tenant))
                }
                if not eligible:
                    continue
                picked = self._drr_next(ring, eligible)
                if picked is not None:
                    return picked
        return None

    def lease(self, worker: str) -> bytes | None:
        """Hand ``worker`` exactly one frame, as wire bytes; None if idle."""
        self._worker_slots.add(worker)
        job_id = self._pick_job()
        if job_id is None:
            return None
        job = self._jobs[job_id]
        index = self._job_pending[job_id].popleft()
        if not self._job_pending[job_id]:
            self._ring_drop(job_id, job.priority)
        record = job.frame(index)
        if record.state != FRAME_PENDING:
            raise ServiceError(
                f"frame ledger corrupt: {job_id}#{index} is in the "
                f"pending deque but its state is {record.state!r}")
        now = self.now
        wait = max(0.0, now - record.queued_at)
        record.state = FRAME_LEASED
        record.attempts += 1
        record.worker = worker
        record.lease_deadline = now + self.lease_timeout
        job.last_leased_at = now
        self.leases_issued += 1
        self._tenant_leases[job.tenant] = \
            self._tenant_leases.get(job.tenant, 0) + 1
        self.telemetry.registry.histogram(
            "rave_farm_job_wait_seconds",
            "pending-to-lease wait per frame",
            job=job_id, tenant=job.tenant or "-").observe(wait)
        trace = None
        if job.trace_id:
            trace = TraceContext(
                trace_id=job.trace_id,
                span_id=_lease_span_id(job_id, index, record.attempts))
        self._note("lease",
                   f"{job_id}#{index} -> {worker} "
                   f"(attempt {record.attempts}, priority {job.priority}, "
                   f"waited {wait:.3f}s, "
                   f"deadline {record.lease_deadline:g}s)",
                   trace=job.trace_id)
        return frame_farm_lease(FarmLease(
            job_id=job_id, frame=index, session_id=job.session_id,
            attempt=record.attempts, deadline=record.lease_deadline,
            priority=job.priority, trace=trace))

    def complete(self, data: bytes) -> bool:
        """Accept a worker's result frame; False when dropped.

        Exactly-once: only the worker currently holding the lease may
        complete a frame.  A straggler whose lease expired and was
        re-issued (or whose frame already completed) is dropped, so a
        re-rendered frame never lands twice.  A corrupt or hostile
        result naming a frame outside the job's range is counted as
        ``invalid_results`` and dropped — never raised into the
        delivery path.
        """
        result: FarmResult = unframe_farm_result(data)
        job = self._jobs.get(result.job_id)
        if job is None:
            self.invalid_results += 1
            self.telemetry.registry.counter(
                "rave_farm_invalid_results_total",
                "results naming no known job or frame").inc()
            self._note("invalid",
                       f"result for unknown job {result.job_id!r} "
                       f"from {result.worker} dropped")
            return False
        record = job.frames.get(result.frame)
        if record is None:
            self.invalid_results += 1
            self.telemetry.registry.counter(
                "rave_farm_invalid_results_total",
                "results naming no known job or frame").inc()
            self._note("invalid",
                       f"{result.job_id}#{result.frame} from "
                       f"{result.worker} dropped (frame outside "
                       f"{job.start_frame}..{job.end_frame})")
            return False
        if record.state != FRAME_LEASED or record.worker != result.worker:
            self.duplicates_dropped += 1
            self._note("duplicate",
                       f"{result.job_id}#{result.frame} from "
                       f"{result.worker} dropped ({record.state})")
            return False
        if result.attempt and result.attempt != record.attempts:
            # the same worker can hold a *re-issued* lease for a frame it
            # already lost: an expired attempt's result passes the
            # state+worker check above but must not complete the frame
            self.duplicates_dropped += 1
            self._note("duplicate",
                       f"{result.job_id}#{result.frame} from "
                       f"{result.worker} dropped (stale attempt "
                       f"{result.attempt}, lease attempt "
                       f"{record.attempts})")
            return False
        now = self.now
        record.state = FRAME_DONE
        record.render_seconds = result.render_seconds
        record.nbytes = result.nbytes
        record.completed_at = now
        self.frames_completed += 1
        self._tenant_leases[job.tenant] = max(
            0, self._tenant_leases.get(job.tenant, 0) - 1)
        self._completion_times.append(now)
        self.telemetry.registry.counter(
            "rave_farm_frames_total", "frames completed").inc()
        self.telemetry.registry.histogram(
            "rave_farm_render_seconds",
            "per-frame render latency reported by workers").observe(
                result.render_seconds)
        self._note("complete",
                   f"{result.job_id}#{result.frame} by {result.worker} "
                   f"({result.render_seconds:.3f}s render)",
                   trace=result.trace.trace_id if result.trace else "")
        if job.finished and job.finished_at is None:
            job.finished_at = now
            missing = self.audit(job.job_id)
            self._note("job-done",
                       f"{job.job_id}: {job.total_frames} frames in "
                       f"{now - job.submitted_at:.2f}s, audit missing "
                       f"{missing}")
        return True

    def requeue_expired(self) -> list[tuple[str, int]]:
        """Re-queue every lease the simulated clock has outlived."""
        now = self.now
        expired = [
            (job_id, f.index)
            for job_id, job in sorted(self._jobs.items())
            for f in job.frames.values()
            if f.state == FRAME_LEASED and f.lease_deadline <= now
        ]
        self._requeue_batch(expired, "lease expired")
        return expired

    def requeue_worker(self, worker: str) -> list[tuple[str, int]]:
        """Re-queue every frame leased to a worker declared dead."""
        lost = [
            (job_id, f.index)
            for job_id, job in sorted(self._jobs.items())
            for f in job.frames.values()
            if f.state == FRAME_LEASED and f.worker == worker
        ]
        self._requeue_batch(lost, f"worker {worker} lost")
        return lost

    def _requeue_batch(self, frames: list[tuple[str, int]],
                       why: str) -> None:
        """Re-queue a batch of lost leases, **preserving frame order**.

        Each job's lost frames go to the front of that job's pending
        deque ahead of never-leased work, but in ascending frame order —
        a single ``appendleft`` per frame would reverse the batch (frame
        5 re-leasing before frame 3), which is the ordering bug this
        method replaced.
        """
        per_job: dict[str, list[int]] = {}
        for job_id, index in frames:
            per_job.setdefault(job_id, []).append(index)
        now = self.now
        for job_id in sorted(per_job):
            job = self._jobs[job_id]
            requeued: list[int] = []
            for index in sorted(per_job[job_id]):
                record = job.frame(index)
                # only a live lease can lose its lease: a frame that
                # completed (or was already re-queued) in the same tick
                # must not be yanked back to pending
                if record.state != FRAME_LEASED:
                    continue
                record.state = FRAME_PENDING
                record.requeues += 1
                record.lease_deadline = 0.0
                record.queued_at = now
                self._tenant_leases[job.tenant] = max(
                    0, self._tenant_leases.get(job.tenant, 0) - 1)
                self.requeues += 1
                self.telemetry.registry.counter(
                    "rave_farm_requeues_total",
                    "frames re-queued after a lost lease").inc()
                self._note("requeue", f"{job_id}#{index}: {why} "
                                      f"(requeue {record.requeues})")
                requeued.append(index)
            if not requeued:
                continue
            pending = self._job_pending.setdefault(job_id, deque())
            # front of the job's queue, batch order intact
            pending.extendleft(reversed(requeued))
            self._ring_add(job_id, job.priority)

    # -- telemetry -------------------------------------------------------------------

    def frames_per_second(self, now: float | None = None) -> float:
        """Completions per second over the trailing window."""
        now = self.now if now is None else now
        cutoff = now - self.throughput_window
        recent = sum(1 for t in self._completion_times if t > cutoff)
        return recent / self.throughput_window

    def _collect_telemetry(self, registry) -> None:
        registry.gauge("rave_farm_queue_depth",
                       "pending frames").set(self.queue_depth())
        registry.gauge("rave_farm_active_leases",
                       "frames out on lease").set(self.active_leases())
        registry.gauge("rave_farm_frames_per_second",
                       "completions per second, trailing window"
                       ).set(self.frames_per_second())
        starved = self.starved_jobs()
        for job_id in starved:
            if job_id not in self._starved:
                self._note("starved",
                           f"{job_id}: no lease for "
                           f"{self.starvation_after:g}s+ with "
                           f"{len(self._job_pending[job_id])} pending")
        self._starved = set(starved)
        registry.gauge("rave_farm_starved_jobs",
                       "jobs with pending frames unserved past the "
                       "starvation threshold").set(len(starved))
        for job in self.jobs():
            registry.gauge("rave_farm_job_progress",
                           "per-job completed fraction",
                           job=job.job_id).set(job.progress)
            registry.gauge("rave_farm_job_priority",
                           "per-job scheduling priority",
                           job=job.job_id,
                           tenant=job.tenant or "-").set(job.priority)

    def _note(self, kind: str, detail: str, trace: str = "") -> None:
        self.telemetry.event(EVENT_FARM_PREFIX + kind, self.now, detail)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(EVENT_FARM_PREFIX + kind, time=self.now,
                              detail=detail, trace=trace)

    def describe(self) -> dict:
        return {
            "queue_depth": self.queue_depth(),
            "active_leases": self.active_leases(),
            "leases_issued": self.leases_issued,
            "frames_completed": self.frames_completed,
            "duplicates_dropped": self.duplicates_dropped,
            "invalid_results": self.invalid_results,
            "requeues": self.requeues,
            "starved_jobs": self.starved_jobs(),
            "tenant_leases": {t: n for t, n
                              in sorted(self._tenant_leases.items()) if n},
            "jobs": [job.describe() for job in self.jobs()],
        }

    def __repr__(self) -> str:
        return (f"FrameQueueService(name={self.name!r}, "
                f"jobs={len(self._jobs)}, pending={self.queue_depth()}, "
                f"leased={self.active_leases()})")


__all__ = ["DEFAULT_STARVATION_AFTER", "FrameQueueService"]
