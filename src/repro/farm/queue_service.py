"""The frame queue service: the farm's front door and source of truth.

A fifth RAVE service role (tmodel ``RaveFrameQueueService``), deployed
in a container and registered in UDDI like the others.  It owns the
pending-frame FIFO and every job's :class:`~repro.farm.job.FrameRecord`
ledger:

- :meth:`submit` accepts a :class:`~repro.farm.job.RenderJob` and queues
  its whole range;
- :meth:`lease` hands an idle worker **exactly one** frame as a wire
  frame (:func:`repro.services.protocol.frame_farm_lease`) with a
  simulated-clock deadline;
- :meth:`complete` accepts a result frame and is idempotent: a result
  for a frame that is not leased to that worker any more (the lease
  expired and was re-issued, or the frame already completed) is counted
  and dropped — a frame is never marked done twice;
- :meth:`requeue_expired` / :meth:`requeue_worker` put lost leases back
  at the *front* of the FIFO (a re-queued frame goes out next, the
  render-controller convention), at most one re-queue per failure since
  only a ``leased`` frame can go back to ``pending``;
- :meth:`audit` is the ``checkframes`` pass: the sorted list of frame
  indexes a finished-looking job is still missing.

The queue exports its own telemetry (kind ``farm``): queue depth,
active leases, trailing-window frames/sec, per-job progress gauges, and
``farm:`` flight-recorder events for every decision.
"""

from __future__ import annotations

import zlib
from collections import deque

from repro.errors import ServiceError
from repro.farm.job import FRAME_DONE, FRAME_LEASED, FRAME_PENDING, RenderJob
from repro.obs import active as _obs
from repro.obs.telemetry import ServiceTelemetry
from repro.obs.tracing import TraceContext
from repro.obs.vocab import EVENT_FARM_PREFIX, SERVICE_FARM
from repro.services.protocol import (
    FarmLease,
    FarmResult,
    frame_farm_lease,
    unframe_farm_result,
)


def _lease_span_id(job_id: str, index: int, attempt: int) -> str:
    """A deterministic 16-hex span id for one lease attempt.

    The queue has no RNG of its own (and must not grow one — replay
    determinism), so span ids are content-addressed: a CRC of the
    ``job#frame@attempt`` triple, unique per lease re-issue.
    """
    lo = zlib.crc32(f"{job_id}#{index}@{attempt}".encode())
    hi = zlib.crc32(f"{attempt}@{index}#{job_id}".encode())
    return f"{hi:08x}{lo:08x}"


class FrameQueueService:
    """Batch frame queue deployed in a service container."""

    def __init__(self, name: str, container, lease_timeout: float = 30.0,
                 throughput_window: float = 20.0) -> None:
        from repro.services.wsdl import FRAME_QUEUE_WSDL

        if lease_timeout <= 0:
            raise ServiceError("lease_timeout must be positive")
        if throughput_window <= 0:
            raise ServiceError("throughput_window must be positive")
        self.name = name
        self.container = container
        self.endpoint = container.deploy(FRAME_QUEUE_WSDL)
        self.lease_timeout = lease_timeout
        self.throughput_window = throughput_window
        self._jobs: dict[str, RenderJob] = {}
        #: pending (job_id, frame) pairs, strict FIFO; re-queues go front
        self._pending: deque[tuple[str, int]] = deque()
        self._completion_times: deque[float] = deque(maxlen=4096)
        self.leases_issued = 0
        self.frames_completed = 0
        self.duplicates_dropped = 0
        self.requeues = 0
        self.telemetry = ServiceTelemetry(name, container.host,
                                          SERVICE_FARM)
        self.telemetry.add_collector(self._collect_telemetry)

    # -- plumbing --------------------------------------------------------------------

    @property
    def network(self):
        return self.container.network

    @property
    def host(self) -> str:
        return self.container.host

    @property
    def now(self) -> float:
        return self.network.sim.now

    # -- jobs ------------------------------------------------------------------------

    def submit(self, job: RenderJob) -> str:
        """Enqueue a job's whole frame range; returns its job id."""
        if job.job_id in self._jobs:
            raise ServiceError(f"job {job.job_id!r} already submitted")
        job.submitted_at = self.now
        self._jobs[job.job_id] = job
        for index in sorted(job.frames):
            self._pending.append((job.job_id, index))
        self._note("submit",
                   f"{job.job_id}: frames {job.start_frame}.."
                   f"{job.end_frame} of {job.session_id} "
                   f"({job.total_frames} queued)")
        return job.job_id

    def job(self, job_id: str) -> RenderJob:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise ServiceError(f"no job {job_id!r}") from None

    def jobs(self) -> list[RenderJob]:
        return [self._jobs[j] for j in sorted(self._jobs)]

    def progress(self, job_id: str) -> tuple[int, int]:
        job = self.job(job_id)
        return job.done_frames, job.total_frames

    def audit(self, job_id: str) -> list[int]:
        """The ``checkframes`` audit: frames the job is still missing."""
        job = self.job(job_id)
        missing = job.missing_frames()
        self._note("audit",
                   f"{job_id}: {len(missing)} missing of "
                   f"{job.total_frames}" + (f" {missing}" if missing else ""))
        return missing

    # -- the frame queue -------------------------------------------------------------

    def queue_depth(self) -> int:
        return len(self._pending)

    def active_leases(self) -> int:
        return sum(1 for job in self._jobs.values()
                   for f in job.frames.values()
                   if f.state == FRAME_LEASED)

    def backlog(self) -> int:
        """Frames not yet done (pending + leased) — the autoscaler signal."""
        return self.queue_depth() + self.active_leases()

    def lease(self, worker: str) -> bytes | None:
        """Hand ``worker`` exactly one frame, as wire bytes; None if idle."""
        if not self._pending:
            return None
        job_id, index = self._pending.popleft()
        job = self._jobs[job_id]
        record = job.frame(index)
        record.state = FRAME_LEASED
        record.attempts += 1
        record.worker = worker
        record.lease_deadline = self.now + self.lease_timeout
        self.leases_issued += 1
        trace = None
        if job.trace_id:
            trace = TraceContext(
                trace_id=job.trace_id,
                span_id=_lease_span_id(job_id, index, record.attempts))
        self._note("lease",
                   f"{job_id}#{index} -> {worker} "
                   f"(attempt {record.attempts}, "
                   f"deadline {record.lease_deadline:g}s)",
                   trace=job.trace_id)
        return frame_farm_lease(FarmLease(
            job_id=job_id, frame=index, session_id=job.session_id,
            attempt=record.attempts, deadline=record.lease_deadline,
            trace=trace))

    def complete(self, data: bytes) -> bool:
        """Accept a worker's result frame; False when dropped as duplicate.

        Exactly-once: only the worker currently holding the lease may
        complete a frame.  A straggler whose lease expired and was
        re-issued (or whose frame already completed) is dropped, so a
        re-rendered frame never lands twice.
        """
        result: FarmResult = unframe_farm_result(data)
        job = self._jobs.get(result.job_id)
        if job is None:
            self.duplicates_dropped += 1
            return False
        record = job.frame(result.frame)
        if record.state != FRAME_LEASED or record.worker != result.worker:
            self.duplicates_dropped += 1
            self._note("duplicate",
                       f"{result.job_id}#{result.frame} from "
                       f"{result.worker} dropped ({record.state})")
            return False
        now = self.now
        record.state = FRAME_DONE
        record.render_seconds = result.render_seconds
        record.nbytes = result.nbytes
        record.completed_at = now
        self.frames_completed += 1
        self._completion_times.append(now)
        self.telemetry.registry.counter(
            "rave_farm_frames_total", "frames completed").inc()
        self.telemetry.registry.histogram(
            "rave_farm_render_seconds",
            "per-frame render latency reported by workers").observe(
                result.render_seconds)
        self._note("complete",
                   f"{result.job_id}#{result.frame} by {result.worker} "
                   f"({result.render_seconds:.3f}s render)",
                   trace=result.trace.trace_id if result.trace else "")
        if job.finished and job.finished_at is None:
            job.finished_at = now
            missing = self.audit(job.job_id)
            self._note("job-done",
                       f"{job.job_id}: {job.total_frames} frames in "
                       f"{now - job.submitted_at:.2f}s, audit missing "
                       f"{missing}")
        return True

    def requeue_expired(self) -> list[tuple[str, int]]:
        """Re-queue every lease the simulated clock has outlived."""
        now = self.now
        expired = [
            (job_id, f.index)
            for job_id, job in sorted(self._jobs.items())
            for f in job.frames.values()
            if f.state == FRAME_LEASED and f.lease_deadline <= now
        ]
        for job_id, index in expired:
            self._requeue(job_id, index, "lease expired")
        return expired

    def requeue_worker(self, worker: str) -> list[tuple[str, int]]:
        """Re-queue every frame leased to a worker declared dead."""
        lost = [
            (job_id, f.index)
            for job_id, job in sorted(self._jobs.items())
            for f in job.frames.values()
            if f.state == FRAME_LEASED and f.worker == worker
        ]
        for job_id, index in lost:
            self._requeue(job_id, index, f"worker {worker} lost")
        return lost

    def _requeue(self, job_id: str, index: int, why: str) -> None:
        record = self._jobs[job_id].frame(index)
        record.state = FRAME_PENDING
        record.requeues += 1
        record.lease_deadline = 0.0
        # front of the FIFO: a lost frame goes out next, not last
        self._pending.appendleft((job_id, index))
        self.requeues += 1
        self.telemetry.registry.counter(
            "rave_farm_requeues_total", "frames re-queued after a lost "
            "lease").inc()
        self._note("requeue", f"{job_id}#{index}: {why} "
                              f"(requeue {record.requeues})")

    # -- telemetry -------------------------------------------------------------------

    def frames_per_second(self, now: float | None = None) -> float:
        """Completions per second over the trailing window."""
        now = self.now if now is None else now
        cutoff = now - self.throughput_window
        recent = sum(1 for t in self._completion_times if t > cutoff)
        return recent / self.throughput_window

    def _collect_telemetry(self, registry) -> None:
        registry.gauge("rave_farm_queue_depth",
                       "pending frames").set(self.queue_depth())
        registry.gauge("rave_farm_active_leases",
                       "frames out on lease").set(self.active_leases())
        registry.gauge("rave_farm_frames_per_second",
                       "completions per second, trailing window"
                       ).set(self.frames_per_second())
        for job in self.jobs():
            registry.gauge("rave_farm_job_progress",
                           "per-job completed fraction",
                           job=job.job_id).set(job.progress)

    def _note(self, kind: str, detail: str, trace: str = "") -> None:
        self.telemetry.event(EVENT_FARM_PREFIX + kind, self.now, detail)
        obs = _obs()
        if obs.enabled:
            obs.recorder.note(EVENT_FARM_PREFIX + kind, time=self.now,
                              detail=detail, trace=trace)

    def describe(self) -> dict:
        return {
            "queue_depth": self.queue_depth(),
            "active_leases": self.active_leases(),
            "leases_issued": self.leases_issued,
            "frames_completed": self.frames_completed,
            "duplicates_dropped": self.duplicates_dropped,
            "requeues": self.requeues,
            "jobs": [job.describe() for job in self.jobs()],
        }

    def __repr__(self) -> str:
        return (f"FrameQueueService(name={self.name!r}, "
                f"jobs={len(self._jobs)}, pending={len(self._pending)}, "
                f"leased={self.active_leases()})")


__all__ = ["FrameQueueService"]
