"""RaveSanitizer: runtime race/invariant detection under simulated time.

The static rules in :mod:`repro.analysis` prove structural properties —
writes go through transition methods, state moves follow the declared
charts.  What they cannot see is a *schedule*: two legal transition
methods interleaving in an order that breaks a conservation law.  The
sanitizer is the dynamic twin — a TSan analog where the "threads" are
``Simulator`` callback chains and the "happens-before" edges are event
boundaries:

- **monotonic time**: the clock never moves backwards across an event,
  and the clock *object* installed on the simulator is the same one
  after every event — a bootstrap that swaps in a scratch
  :class:`~repro.network.clock.SimClock` and forgets to restore the
  real one corrupts every later timestamp silently;
- **re-entrant mutation**: a callback that re-enters the event loop
  (``sim.run_until`` inside a callback) must not mutate any registered
  shared object from the nested execution — that is exactly the
  interleaving the ``daemon-race`` lint rule forbids statically;
- **conservation invariants**, re-checked after every top-level event:
  the session grid's charged capacity versus its members' shares, the
  farm ledger's ``pending + leased + done == total`` and exactly-once
  completion counts (see :meth:`RaveSanitizer.watch_grid` /
  :meth:`RaveSanitizer.watch_farm_queue`).

The sanitizer is **passive**: it wraps :meth:`Simulator.step` via
instance-attribute shadowing, never schedules events, and only *notes*
violations through the flight recorder (kind ``sanitizer:<what>``), so
a sanitized run replays byte-identically to an unsanitized one.  Set
``strict=True`` to raise on the first violation instead.

Usage::

    san = RaveSanitizer(tb.network.sim).attach()
    san.watch_grid(grid)
    san.watch_farm_queue(queue)
    ...run the scenario...
    assert san.ok, san.violations
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.errors import ServiceError
from repro.obs import active as _obs
from repro.obs.vocab import EVENT_SANITIZER_PREFIX


@dataclass(frozen=True)
class SanitizerViolation:
    """One detected violation; ``kind`` is the flight-recorder suffix."""

    kind: str
    time: float
    detail: str


def _fingerprint(obj: object) -> object:
    """A cheap, comparison-stable snapshot of a shared object's state.

    ``repr`` is deliberate: every registered ledger is built from
    dicts/deques/sets of primitives whose repr is deterministic, and a
    fingerprint is only taken while a *nested* event-loop entry is on
    the stack — the rare case the re-entrancy check exists for.
    """
    return repr(obj)


class RaveSanitizer:
    """Opt-in ``Simulator`` wrapper detecting races and broken invariants.

    ``attach()`` shadows the simulator's bound ``step`` with an
    instrumented one (``run``/``run_until`` call ``self.step()``, so
    every execution path is covered); ``detach()`` restores it.
    Violations accumulate in :attr:`violations` and are noted through
    ``recorder`` (default: the active observability context's flight
    recorder) as ``sanitizer:`` events.
    """

    def __init__(self, sim, recorder=None, strict: bool = False) -> None:
        self.sim = sim
        self._recorder = recorder
        self.strict = strict
        self.violations: list[SanitizerViolation] = []
        self.events_checked = 0
        self._attached = False
        self._depth = 0
        self._clock = None
        #: name -> (obj, fingerprint_fn)
        self._shared: dict[str, tuple[object, Callable[[object], object]]] = {}
        #: name -> zero-arg check returning an error string or None
        self._invariants: dict[str, Callable[[], str | None]] = {}

    # -- lifecycle --------------------------------------------------------------------

    def attach(self) -> RaveSanitizer:
        if self._attached:
            raise ServiceError("sanitizer already attached")
        self._clock = self.sim.clock
        # shadow the bound method: run()/run_until() dispatch through
        # ``self.step()``, so the instance attribute intercepts them all
        self.sim.step = self._step
        self._attached = True
        return self

    def detach(self) -> None:
        if not self._attached:
            return
        del self.sim.step            # un-shadow the class method
        self._attached = False

    @property
    def ok(self) -> bool:
        return not self.violations

    # -- registration -----------------------------------------------------------------

    def register_shared(self, name: str, obj: object,
                        fingerprint: Callable[[object], object] | None = None
                        ) -> None:
        """Guard ``obj`` against mutation from nested event-loop entries."""
        self._shared[name] = (obj, fingerprint or _fingerprint)

    def register_invariant(self, name: str,
                           check: Callable[[], str | None]) -> None:
        """Run ``check`` after every top-level event; a returned string
        is the violation detail (None = invariant holds)."""
        self._invariants[name] = check

    # -- the instrumented step --------------------------------------------------------

    def _step(self) -> bool:
        before = self.sim.clock.now
        nested = self._depth > 0
        snapshot = self._snapshot() if nested else None
        self._depth += 1
        try:
            advanced = type(self.sim).step(self.sim)
        finally:
            self._depth -= 1
        if self.sim.clock is not self._clock:
            self._violate(
                "clock-swap",
                f"simulator clock object changed across an event "
                f"(scratch clock not restored?): now reads "
                f"{self.sim.clock.now:.6f}, real clock at "
                f"{self._clock.now:.6f}")
        elif self.sim.clock.now < before:
            self._violate(
                "clock-backwards",
                f"clock moved backwards across an event: "
                f"{before:.6f} -> {self.sim.clock.now:.6f}")
        if nested:
            self._check_reentrant(snapshot)
        if self._depth == 0:
            for name, check in self._invariants.items():
                detail = check()
                if detail is not None:
                    self._violate("conservation", f"{name}: {detail}")
            self.events_checked += 1
        return advanced

    def _snapshot(self) -> dict[str, object]:
        return {name: fp(obj)
                for name, (obj, fp) in self._shared.items()}

    def _check_reentrant(self, snapshot: dict[str, object]) -> None:
        for name, (obj, fp) in self._shared.items():
            if fp(obj) != snapshot.get(name):
                self._violate(
                    "reentrant",
                    f"shared object {name!r} mutated from a nested "
                    f"event-loop entry — route the mutation through a "
                    f"scheduled transition, not a re-entrant callback")

    def _violate(self, kind: str, detail: str) -> None:
        violation = SanitizerViolation(kind=kind, time=self._clock.now,
                                       detail=detail)
        self.violations.append(violation)
        recorder = self._recorder
        if recorder is None:
            obs = _obs()
            recorder = obs.recorder if obs.enabled else None
        if recorder is not None:
            recorder.note(EVENT_SANITIZER_PREFIX + kind,
                          time=violation.time, detail=detail)
        if self.strict:
            raise ServiceError(f"sanitizer: {kind}: {detail}")

    # -- canned watchers --------------------------------------------------------------

    def watch_grid(self, grid) -> None:
        """Guard a :class:`~repro.core.grid.SessionGridManager`.

        Conservation: queued session ids are unique and disjoint from
        admitted ones (a duplicate would double-charge the pool on
        admit), and every unparked healthy session's member shares are
        pairwise disjoint — one scene node rendered by two members is
        double-spent capacity the pps ledger never charged.
        """
        self.register_shared(f"grid:{grid.name}:queue", grid._queue)
        self.register_shared(f"grid:{grid.name}:sessions", grid._sessions,
                             fingerprint=lambda s: repr(sorted(s)))
        self.register_invariant(f"grid:{grid.name}",
                                lambda: self._check_grid(grid))

    @staticmethod
    def _check_grid(grid) -> str | None:
        queued = [e.session_id for e in grid._queue]
        if len(queued) != len(set(queued)):
            return f"duplicate session ids in admission queue: {queued}"
        both = set(queued) & set(grid._sessions)
        if both:
            return (f"session ids both queued and admitted: "
                    f"{sorted(both)}")
        for sid, gs in sorted(grid._sessions.items()):
            if gs.parked or gs.session.failed_services:
                continue                # shares in flux, legal transient
            seen: dict[int, str] = {}
            for svc in gs.session.render_services:
                share = gs.session.attachment(svc).share
                for node_id in share:
                    if node_id in seen:
                        return (f"session {sid}: node {node_id} in the "
                                f"share of both {seen[node_id]!r} and "
                                f"{svc.name!r} — double-rendered work "
                                f"the capacity ledger never charged")
                    seen[node_id] = svc.name
        return None

    def watch_farm_queue(self, queue) -> None:
        """Guard a :class:`~repro.farm.queue_service.FrameQueueService`.

        Conservation per job: ``pending + leased + done == total``, the
        pending deque holds exactly the pending-state frames once each,
        completions are exactly-once (``frames_completed`` equals the
        count of done frames), and the per-tenant lease ledger matches
        the leased-state frames tenant by tenant.
        """
        self.register_shared(f"farm:{queue.name}:pending",
                             queue._job_pending)
        self.register_shared(f"farm:{queue.name}:tenant-leases",
                             queue._tenant_leases)
        self.register_invariant(f"farm:{queue.name}",
                                lambda: self._check_farm(queue))

    @staticmethod
    def _check_farm(queue) -> str | None:
        from repro.farm.job import FRAME_DONE, FRAME_LEASED, FRAME_PENDING

        total_done = 0
        tenant_leased: dict[str, int] = {}
        for job_id, job in sorted(queue._jobs.items()):
            counts = {FRAME_PENDING: 0, FRAME_LEASED: 0, FRAME_DONE: 0}
            for record in job.frames.values():
                if record.state not in counts:
                    return (f"job {job_id}: frame {record.index} in "
                            f"undeclared state {record.state!r}")
                counts[record.state] += 1
            if sum(counts.values()) != job.total_frames:
                return (f"job {job_id}: pending + leased + done = "
                        f"{sum(counts.values())} != total "
                        f"{job.total_frames}")
            deque_ids = list(queue._job_pending.get(job_id, ()))
            if len(deque_ids) != len(set(deque_ids)):
                return (f"job {job_id}: duplicate frame indexes in the "
                        f"pending deque: {deque_ids}")
            if len(deque_ids) != counts[FRAME_PENDING]:
                return (f"job {job_id}: pending deque holds "
                        f"{len(deque_ids)} frames but {counts[FRAME_PENDING]} "
                        f"records are pending")
            for index in deque_ids:
                if job.frames[index].state != FRAME_PENDING:
                    return (f"job {job_id}: frame {index} queued as "
                            f"pending but its state is "
                            f"{job.frames[index].state!r}")
            total_done += counts[FRAME_DONE]
            tenant_leased[job.tenant] = (tenant_leased.get(job.tenant, 0)
                                         + counts[FRAME_LEASED])
        if queue.frames_completed != total_done:
            return (f"exactly-once broken: frames_completed = "
                    f"{queue.frames_completed} but {total_done} frames "
                    f"are done")
        for tenant in sorted(tenant_leased, key=repr):
            leased = tenant_leased[tenant]
            ledger = queue._tenant_leases.get(tenant, 0)
            if ledger != leased:
                return (f"tenant {tenant!r}: lease ledger says {ledger} "
                        f"but {leased} frames are leased")
        return None
