"""RaveSanitizer: a TSan analog for simulated time.

See :mod:`repro.sanitizer.core`.  The static half of the correctness
tooling lives in :mod:`repro.analysis` (ravelint); this package is the
dynamic half, run in the chaos suites and the ``sanitizer-smoke`` CI
job.
"""

from __future__ import annotations

from repro.sanitizer.core import RaveSanitizer, SanitizerViolation

__all__ = ["RaveSanitizer", "SanitizerViolation"]
