"""Declared state machines and shared-state contracts (ravelint v2).

The simulation's correctness rests on a handful of tiny state machines
— a farm frame goes pending → leased → done (or back to pending when a
lease is lost), a heartbeat lease goes alive → suspected → dead and
recovers, an admission request resolves to exactly one of
admit/queue/reject — and on a handful of ledgers (the grid's admission
queue and session map, the frame queue's pending/lease bookkeeping)
that only a few *transition methods* may touch.  Before this module
those machines lived implicitly in scattered ``if`` guards; nothing
stopped a new ``Simulator.schedule`` callback from flipping a frame
straight from ``done`` back to ``leased`` or appending to the admission
queue from the side.

Everything is declared **once** here, and consumed twice:

- statically, by the ``lifecycle`` and ``daemon-race`` checkers in
  :mod:`repro.analysis.checkers`, which verify every assignment and
  comparison site against the legal transitions and every ledger
  mutation against the declared transition methods;
- at runtime, by :class:`repro.sanitizer.RaveSanitizer`, whose
  conservation invariants are the dynamic twin of these charts.

The module stays stdlib-only (like the rest of ``repro.analysis``): the
charts reference runtime constants *by name* (``FRAME_PENDING``,
``ALIVE``...), never by import, so the checkers can match call sites in
any tree — including the synthetic fixture trees the lint tests build.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Statechart:
    """One declared state machine over a single attribute.

    ``constants`` maps the *constant names* code must use to the state
    values they hold; a site assigning or comparing a raw string literal
    where a constant exists is itself a finding.  ``write_once`` charts
    (admission decisions) are produced exactly once via a constructor
    keyword and never reassigned — for those the checker forbids field
    assignment entirely and validates the keyword instead.
    """

    name: str
    #: the attribute the state lives in (``state``, ``outcome``)
    field: str
    #: constant name -> state value
    constants: dict[str, str]
    initial: str
    #: legal ``(from_state, to_state)`` moves
    transitions: frozenset[tuple[str, str]] = frozenset()
    #: produced once at construction (``outcome=...``), never reassigned
    write_once: bool = False

    @property
    def states(self) -> frozenset[str]:
        return frozenset(self.constants.values())

    def value_of(self, constant: str) -> str | None:
        return self.constants.get(constant)

    def constant_of(self, value: str) -> str | None:
        for name, state in self.constants.items():
            if state == value:
                return name
        return None

    def can(self, frm: str, to: str) -> bool:
        return frm == to or (frm, to) in self.transitions


@dataclass(frozen=True)
class SharedStateContract:
    """A ledger only its declared transition methods may mutate.

    ``owner`` names the class and ``module`` the src file (matched by
    path suffix); ``attrs`` are the guarded instance attributes and
    ``transition_methods`` the only methods allowed to write them
    (``__init__`` is always allowed).  The ``daemon-race`` checker
    flags any other mutation site — in particular one reachable from a
    ``Simulator.schedule`` callback chain.
    """

    owner: str
    module: str
    attrs: tuple[str, ...]
    transition_methods: tuple[str, ...]
    rationale: str = ""

    def allows(self, method: str) -> bool:
        return method == "__init__" or method in self.transition_methods


# -- the declared charts --------------------------------------------------------------

#: farm frame lifecycle (src/repro/farm/job.py): a frame is leased from
#: pending, completes from leased, and only a *leased* frame may go back
#: to pending (one re-queue per lost lease, never done → anything).
FRAME_LEASE = Statechart(
    name="frame-lease",
    field="state",
    constants={
        "FRAME_PENDING": "pending",
        "FRAME_LEASED": "leased",
        "FRAME_DONE": "done",
    },
    initial="pending",
    transitions=frozenset({
        ("pending", "leased"),
        ("leased", "done"),
        ("leased", "pending"),
    }),
)

#: heartbeat lease lifecycle (src/repro/core/health.py): silence makes a
#: lease suspected then dead; a beat recovers either back to alive.
HEARTBEAT_LEASE = Statechart(
    name="heartbeat-lease",
    field="state",
    constants={
        "ALIVE": "alive",
        "SUSPECTED": "suspected",
        "DEAD": "dead",
    },
    initial="alive",
    transitions=frozenset({
        ("alive", "suspected"),
        ("suspected", "dead"),
        ("suspected", "alive"),
        ("dead", "alive"),
    }),
)

#: admission outcome (src/repro/core/grid.py): write-once — a request
#: resolves to exactly one outcome at AdmissionDecision construction;
#: shed/restore are the post-admission overload ladder.  The pseudo
#: state "requested" exists only to give the ladder a root.
ADMISSION = Statechart(
    name="admission",
    field="outcome",
    constants={
        "EVENT_ADMIT": "admit",
        "EVENT_QUEUE": "queue",
        "EVENT_REJECT": "reject",
        "EVENT_SHED": "shed",
        "EVENT_RESTORE": "restore",
    },
    initial="requested",
    transitions=frozenset({
        ("requested", "admit"),
        ("requested", "queue"),
        ("requested", "reject"),
        ("queue", "admit"),
        ("queue", "reject"),
        ("admit", "shed"),
        ("shed", "restore"),
        ("restore", "shed"),
    }),
    write_once=True,
)

STATECHARTS: tuple[Statechart, ...] = (
    FRAME_LEASE,
    HEARTBEAT_LEASE,
    ADMISSION,
)


# -- the declared shared-state contracts ----------------------------------------------

GRID_LEDGER = SharedStateContract(
    owner="SessionGridManager",
    module="core/grid.py",
    attrs=("_queue", "_sessions"),
    transition_methods=("_enqueue", "pump", "_pump_locked", "_try_admit",
                        "release_session"),
    rationale="admission queue entries and the admitted-session map are "
              "the capacity ledger; a schedule callback appending or "
              "removing from the side would double-admit or leak pps",
)

FARM_LEDGER = SharedStateContract(
    owner="FrameQueueService",
    module="farm/queue_service.py",
    attrs=("_job_pending", "_rings", "_deficit", "_charged",
           "_tenant_leases"),
    transition_methods=("submit", "lease", "complete", "_requeue_batch",
                        "_ring_drop", "_ring_add", "_drr_next"),
    rationale="the frame ledger backs exactly-once completion; pending "
              "deques, DRR rings and tenant lease counts must only move "
              "through the scheduler's own transitions",
)

HEALTH_LEDGER = SharedStateContract(
    owner="HeartbeatMonitor",
    module="core/health.py",
    attrs=("_leases",),
    transition_methods=("watch", "unwatch"),
    rationale="lease membership changes outside watch/unwatch would "
              "fire death callbacks for services nobody registered",
)

CONTRACTS: tuple[SharedStateContract, ...] = (
    GRID_LEDGER,
    FARM_LEDGER,
    HEALTH_LEDGER,
)


__all__ = [
    "Statechart",
    "SharedStateContract",
    "FRAME_LEASE",
    "HEARTBEAT_LEASE",
    "ADMISSION",
    "STATECHARTS",
    "GRID_LEDGER",
    "FARM_LEDGER",
    "HEALTH_LEDGER",
    "CONTRACTS",
]
