"""ravelint reporters: human text and machine JSON."""

from __future__ import annotations

import json

from repro.analysis.core import SEVERITIES, LintResult


def render_text(result: LintResult, verbose: bool = False) -> str:
    """``path:line: severity [rule] message`` lines plus a summary."""
    lines: list[str] = []
    for f in result.findings:
        lines.append(f"{f.path}:{f.line}: {f.severity} [{f.rule}] "
                     f"{f.message}")
    if verbose:
        for f in result.suppressed:
            lines.append(f"{f.path}:{f.line}: suppressed [{f.rule}] "
                         f"{f.message}")
        for f in result.baselined:
            lines.append(f"{f.path}:{f.line}: baselined [{f.rule}] "
                         f"{f.message}")
    counts = result.counts()
    summary = ", ".join(f"{counts[s]} {s}" for s in reversed(SEVERITIES)
                        if counts[s])
    lines.append(
        f"ravelint: {len(result.findings)} finding(s)"
        + (f" ({summary})" if summary else "")
        + f", {len(result.suppressed)} suppressed, "
          f"{len(result.baselined)} baselined "
          f"[rules: {', '.join(result.rules)}]")
    return "\n".join(lines) + "\n"


def render_json(result: LintResult) -> str:
    """The full run as a JSON document (the CI artifact format)."""
    payload = {
        "format": "ravelint-report/1",
        "root": result.root,
        "rules": result.rules,
        "summary": {
            **result.counts(),
            "findings": len(result.findings),
            "suppressed": len(result.suppressed),
            "baselined": len(result.baselined),
        },
        "findings": [f.to_dict() for f in result.findings],
        "suppressed": [f.to_dict() for f in result.suppressed],
        "baselined": [f.to_dict() for f in result.baselined],
    }
    return json.dumps(payload, indent=2, sort_keys=False) + "\n"
