"""Metric-registry consistency: producers and consumers must agree.

The monitoring plane is stringly typed at its edges: services register
``rave_*`` families through :class:`~repro.obs.metrics.MetricsRegistry`
call sites (``registry.counter("rave_rs_frames_total").inc()``), while
alert rules (``obs/rules.py``), the dashboard (``obs/dashboard.py``) and
the test/benchmark harnesses look the same names up in scraped
snapshots.  Nothing at runtime connects the two — a typo on either side
just reads zeros forever.

This cross-file rule reconstructs both sides statically:

- **registrations** — every ``.counter(...)``/``.gauge(...)``/
  ``.histogram(...)`` call whose first argument is a ``rave_*`` string
  literal, anywhere in the tree (tests register fixture metrics too),
  plus the ``DERIVED_METRICS`` vocabulary (grid aggregates the monitor
  computes without a registry);
- **consumptions** — every bare ``rave_*`` string literal in
  ``obs/rules.py``, ``obs/dashboard.py`` and the tests/benchmarks
  trees.  Literals ending in ``_`` are treated as prefix probes
  (``name.startswith("rave_net_")``) and consume every matching family;
  flattened histogram suffixes (``_count``/``_sum``/``_bucket`` and the
  derived quantile keys ``_p50``/``_p95``/``_p99``) map back to their
  base family.

A consumed name nobody registers is an **error** (the lookup can never
succeed); a ``src/repro`` registration nobody consumes is a **warning**
(dead telemetry, or a missing assertion).
"""

from __future__ import annotations

from collections.abc import Iterator
import ast
import re

from repro.analysis.astutil import vocab_env, str_set
from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register

#: a complete metric name (never ends in an underscore)
NAME_RE = re.compile(r"rave_[a-z0-9]+(?:_[a-z0-9]+)*")
#: a prefix probe, as used with ``str.startswith``
PREFIX_RE = re.compile(r"rave_[a-z0-9_]*_")

REGISTRY_METHODS = ("counter", "gauge", "histogram")
CONSUMER_SUFFIXES = ("obs/rules.py", "obs/dashboard.py")
#: flattened-histogram lookups resolve to their parent family: the
#: scrape layer derives ``_count``/``_sum``/``_bucket`` and the
#: interpolated ``_p50``/``_p95``/``_p99`` quantile keys from one
#: registered histogram
FLATTEN_SUFFIXES = ("_count", "_sum", "_bucket", "_p50", "_p95", "_p99")


def _registrations(sf: SourceFile):
    """``(name, line, node)`` per registry call site in one file."""
    for node in ast.walk(sf.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute) \
                or node.func.attr not in REGISTRY_METHODS:
            continue
        if not node.args:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str) \
                and NAME_RE.fullmatch(arg.value):
            yield arg.value, arg.lineno, arg


@register
class MetricRegistryChecker(Checker):
    rule = "metric-registry"
    severity = "error"
    description = ("every consumed rave_* metric name must have a "
                   "registration site, and registrations should have "
                   "consumers")
    contract = (
        "A rave_* metric name read anywhere (dashboards, alert rules, "
        "tests) must be registered by exactly one producer kind "
        "(counter/gauge/histogram), and registered metrics should have "
        "at least one consumer — the producer and consumer sides of the "
        "telemetry plane may not drift.")
    example = ("flat[\"rave_fps_budgett\"]   # metric-registry: typo'd\n"
               "                           # name nobody registers\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        registered: dict[str, tuple[str, int]] = {}
        src_registered: dict[str, tuple[str, int]] = {}
        registration_nodes: set[int] = set()
        for sf in tree.files:
            if sf.tree is None:
                continue
            for name, line, node in _registrations(sf):
                registration_nodes.add(id(node))
                registered.setdefault(name, (sf.rel, line))
                if sf.role == "src":
                    src_registered.setdefault(name, (sf.rel, line))

        _, env = vocab_env(tree)
        derived = str_set(env, "DERIVED_METRICS")
        declared = set(registered) | derived

        consumed: dict[str, tuple[str, int]] = {}
        prefixes: set[str] = set()
        for sf in tree.files:
            if sf.tree is None:
                continue
            if sf.role == "src" \
                    and not sf.rel.endswith(CONSUMER_SUFFIXES):
                continue
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Constant) \
                        or not isinstance(node.value, str) \
                        or id(node) in registration_nodes:
                    continue
                value = node.value
                if NAME_RE.fullmatch(value):
                    consumed.setdefault(value, (sf.rel, node.lineno))
                elif PREFIX_RE.fullmatch(value):
                    prefixes.add(value)

        # consumed names that can never resolve
        for name in sorted(consumed):
            if self._declared(name, declared):
                continue
            rel, line = consumed[name]
            yield self.finding(
                rel, line,
                f"metric {name!r} is consumed here but never registered "
                f"by any MetricsRegistry call site (nor declared in "
                f"obs/vocab.DERIVED_METRICS) — the lookup reads zeros "
                f"forever",
                symbol=name)

        # src registrations nobody reads back
        consumed_bases = {self._base(name, declared) for name in consumed}
        for name in sorted(src_registered):
            if name in consumed_bases:
                continue
            if any(name.startswith(p) for p in prefixes):
                continue
            rel, line = src_registered[name]
            yield self.finding(
                rel, line,
                f"metric {name!r} is registered here but never consumed "
                f"by obs/rules.py, obs/dashboard.py, tests or benchmarks "
                f"— dead telemetry or a missing assertion",
                symbol=name, severity="warning")

    @staticmethod
    def _base(name: str, declared: set[str]) -> str:
        """Map a flattened histogram lookup back to its family name."""
        for suffix in FLATTEN_SUFFIXES:
            if name.endswith(suffix) and name[:-len(suffix)] in declared:
                return name[:-len(suffix)]
        return name

    @classmethod
    def _declared(cls, name: str, declared: set[str]) -> bool:
        return cls._base(name, declared) in declared
