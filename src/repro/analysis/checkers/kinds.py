"""Event/alert-kind consistency: one shared vocabulary, machine-checked.

Flight-recorder ``note(kind, ...)`` tags, per-service telemetry
``event(kind, ...)`` tags, ``AlertRule``/``Alert`` kinds and every
``.kind == "..."`` comparison in the migrator/autoscaler must name
members of the vocabularies declared in :mod:`repro.obs.vocab` —
otherwise a producer and its consumer can drift apart silently (the
autoscaler filtering on ``"grid-overload"`` while a rule fires
``"grid_overload"`` would simply never scale).

Accepted kind expressions at a ``note``/``event`` call site:

- a string literal that is a vocabulary member, or that starts with a
  declared dynamic prefix (``"fault:crash"``);
- a ``Name``/``Attribute`` whose terminal identifier is a constant
  defined by the vocabulary module (``EVENT_MIGRATION``);
- a concatenation or f-string whose *leading* part is one of the above
  prefixes (``EVENT_FAULT_PREFIX + kind``, ``f"telemetry:{kind}"``).

Anything else — an unknown literal, or an expression built from names
the vocabulary does not define — is a finding.
"""

from __future__ import annotations

from collections.abc import Iterator
import ast

from repro.analysis.astutil import VOCAB_REL, terminal_name, vocab_env, \
    str_set
from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register


@register
class KindVocabularyChecker(Checker):
    rule = "event-kind"
    severity = "error"
    description = ("flight-recorder, telemetry and alert kinds must come "
                   "from the obs/vocab vocabularies")
    contract = (
        "Every event/alert/service kind produced (recorder.note, "
        "telemetry, alert rules) or compared (.kind == ...) must be a "
        "constant from obs/vocab.py or extend one of its declared "
        "prefixes — ad-hoc kind strings silently split dashboards and "
        "alert routing.")
    example = ("recorder.note(\"migrations\", ...)   # event-kind: not in\n"
               "                                   # the vocabulary\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        vocab_sf, env = vocab_env(tree)
        if vocab_sf is None:
            yield self.finding(
                VOCAB_REL, 1,
                "vocabulary module obs/vocab.py not found — event/alert "
                "kinds have no source of truth to check against",
                symbol="missing-vocab")
            return
        self._names = frozenset(n for n, v in env.items()
                                if isinstance(v, str))
        self._event_kinds = str_set(env, "EVENT_KINDS")
        self._prefixes = str_set(env, "EVENT_PREFIXES")
        self._alert_kinds = str_set(env, "ALERT_KINDS")
        self._telemetry_kinds = str_set(env, "TELEMETRY_EVENT_KINDS")
        self._known_kinds = str_set(env, "KNOWN_KINDS") or (
            self._event_kinds | self._alert_kinds | self._telemetry_kinds)
        for sf in tree.src_files:
            if sf.tree is None or sf is vocab_sf:
                continue
            yield from self._check_file(sf)

    def _check_file(self, sf: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(sf, node)
            elif isinstance(node, ast.Compare):
                yield from self._check_compare(sf, node)

    # -- emission sites -------------------------------------------------------------

    def _check_call(self, sf, node: ast.Call) -> Iterator[Finding]:
        if isinstance(node.func, ast.Attribute):
            attr = node.func.attr
            if attr in ("note", "event") and node.args:
                allowed = (self._event_kinds if attr == "note"
                           else self._telemetry_kinds)
                yield from self._check_kind_expr(
                    sf, node.args[0], allowed,
                    f"{attr}() kind")
            elif attr == "startswith" \
                    and self._is_kind_expr(node.func.value) and node.args:
                arg = node.args[0]
                if isinstance(arg, ast.Constant) \
                        and isinstance(arg.value, str) \
                        and not self._prefix_ok(arg.value) \
                        and arg.value not in self._known_kinds:
                    yield self.finding(
                        sf, arg.lineno,
                        f"kind prefix {arg.value!r} is not a declared "
                        f"obs/vocab prefix",
                        symbol=arg.value)
        # constructor kinds: AlertRule(kind=...), Alert(kind=...) — both
        # bare names and attribute paths (rules.Alert)
        func_name = terminal_name(node.func)
        if func_name in ("Alert", "AlertRule"):
            for kw in node.keywords:
                if kw.arg != "kind":
                    continue
                value = kw.value
                if isinstance(value, ast.Constant) \
                        and isinstance(value.value, str) \
                        and value.value not in self._alert_kinds:
                    yield self.finding(
                        sf, value.lineno,
                        f"alert kind {value.value!r} is not in "
                        f"obs/vocab.ALERT_KINDS — the migrator/autoscaler "
                        f"will never match it",
                        symbol=value.value)

    def _check_kind_expr(self, sf, expr: ast.expr,
                         allowed: frozenset[str],
                         what: str) -> Iterator[Finding]:
        if isinstance(expr, ast.Constant) and isinstance(expr.value, str):
            if expr.value not in allowed \
                    and not self._prefix_ok(expr.value):
                yield self.finding(
                    sf, expr.lineno,
                    f"{what} {expr.value!r} is not in the obs/vocab "
                    f"vocabulary (and matches no declared prefix)",
                    symbol=expr.value)
            return
        if isinstance(expr, (ast.Name, ast.Attribute)):
            name = terminal_name(expr)
            if name is not None and name not in self._names:
                yield self.finding(
                    sf, expr.lineno,
                    f"{what} is the identifier {name!r}, which obs/vocab "
                    f"does not define — route the kind through the shared "
                    f"vocabulary",
                    symbol=name)
            return
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, ast.Add):
            yield from self._check_prefix_part(sf, expr.left, what)
            return
        if isinstance(expr, ast.JoinedStr) and expr.values:
            yield from self._check_prefix_part(sf, expr.values[0], what)
            return
        yield self.finding(
            sf, expr.lineno,
            f"{what} cannot be statically tied to the obs/vocab "
            f"vocabulary — use a vocabulary constant or prefix",
            symbol=ast.dump(expr)[:40])

    def _check_prefix_part(self, sf, part: ast.expr,
                           what: str) -> Iterator[Finding]:
        """The leading piece of a concatenated/interpolated kind."""
        if isinstance(part, ast.FormattedValue):
            part = part.value
        if isinstance(part, ast.Constant) and isinstance(part.value, str):
            if not self._prefix_ok(part.value):
                yield self.finding(
                    sf, part.lineno,
                    f"{what} starts with {part.value!r}, which is not a "
                    f"declared obs/vocab prefix",
                    symbol=part.value)
            return
        name = terminal_name(part)
        if name is None or name not in self._names:
            yield self.finding(
                sf, part.lineno,
                f"{what} is built from {name or 'an expression'!r} that "
                f"obs/vocab does not define",
                symbol=name or "<expr>")

    def _prefix_ok(self, value: str) -> bool:
        return any(value == p or value.startswith(p)
                   for p in self._prefixes)

    # -- comparison sites -----------------------------------------------------------

    @staticmethod
    def _is_kind_expr(node: ast.expr) -> bool:
        """``x.kind``, ``x["kind"]`` or ``x.get("kind")`` receivers."""
        if isinstance(node, ast.Attribute) and node.attr == "kind":
            return True
        if isinstance(node, ast.Subscript) \
                and isinstance(node.slice, ast.Constant) \
                and node.slice.value == "kind":
            return True
        if isinstance(node, ast.Call) \
                and isinstance(node.func, ast.Attribute) \
                and node.func.attr == "get" and node.args \
                and isinstance(node.args[0], ast.Constant) \
                and node.args[0].value == "kind":
            return True
        return False

    def _check_compare(self, sf, node: ast.Compare) -> Iterator[Finding]:
        sides = [node.left, *node.comparators]
        if not any(self._is_kind_expr(side) for side in sides):
            return
        for side in sides:
            literals: list[ast.Constant] = []
            if isinstance(side, ast.Constant):
                literals = [side]
            elif isinstance(side, (ast.Set, ast.Tuple, ast.List)):
                literals = [el for el in side.elts
                            if isinstance(el, ast.Constant)]
            for lit in literals:
                if not isinstance(lit.value, str):
                    continue
                if lit.value in self._known_kinds \
                        or self._prefix_ok(lit.value):
                    continue
                yield self.finding(
                    sf, lit.lineno,
                    f"comparison against kind {lit.value!r}, which no "
                    f"obs/vocab vocabulary declares — producer and "
                    f"consumer can drift silently",
                    symbol=lit.value)
