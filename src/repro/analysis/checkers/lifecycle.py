"""Lifecycle rule: state-field writes must follow the declared statecharts.

Every state machine the simulation depends on is declared once in
:mod:`repro.analysis.statecharts`; this rule checks every *site* against
that declaration:

- an assignment ``x.state = FRAME_DONE`` must establish its source state
  first — an enclosing ``if x.state == FRAME_LEASED:`` (or ``in (...)``),
  or a preceding early-exit guard ``if x.state != FRAME_LEASED: return``
  — and the resulting ``from → to`` move must be a declared transition;
- a raw string literal at a state site (``x.state = "done"``,
  ``x.state == "alive"``) is flagged: the named constant exists so typos
  can't mint new states;
- ``write_once`` charts (admission outcomes) forbid field assignment
  entirely and validate the ``outcome=`` constructor keyword instead;
- per chart, states nobody ever produces (**unreachable**) or nobody
  ever compares against (**unhandled**) are warnings — but only when the
  chart is *active* in the tree (one of its constants is referenced), so
  partial fixture trees don't drown in noise.

Sites are matched by the chart's *constant names*, never by imports:
three different classes may each have a ``state`` field, and only the
one moved between ``FRAME_*`` constants belongs to the frame-lease
chart.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import terminal_name
from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register
from repro.analysis.statecharts import STATECHARTS, Statechart

#: statements that terminate the enclosing block (early-exit guards)
_TERMINATORS = (ast.Return, ast.Raise, ast.Continue, ast.Break)


def _receiver(node: ast.expr) -> str | None:
    """A stable source string for an attribute's receiver chain."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on exprs
        return None


def _terminates(body: list[ast.stmt]) -> bool:
    return bool(body) and isinstance(body[-1], _TERMINATORS)


@register
class LifecycleChecker(Checker):
    rule = "lifecycle"
    severity = "error"
    description = ("state-field assignments and comparisons must follow "
                   "the statecharts declared in analysis/statecharts.py")
    contract = (
        "Every write to a declared state field (frame-lease 'state', "
        "heartbeat-lease 'state', admission 'outcome') must (a) use the "
        "named constant, not a string literal, (b) establish the source "
        "state with a guard in the same function, and (c) move along a "
        "declared transition.  Write-once charts forbid reassignment; "
        "their outcome keyword must be a declared constant.  States "
        "never produced or never handled are warnings.")
    example = (
        "def complete(self, record):\n"
        "    record.state = FRAME_DONE   # lifecycle: no guard "
        "establishes\n"
        "                                # that state was FRAME_LEASED\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        for chart in STATECHARTS:
            if chart.write_once:
                yield from self._check_write_once(tree, chart)
            else:
                yield from self._check_guarded(tree, chart)

    # -- guarded charts ---------------------------------------------------------------

    def _check_guarded(self, tree: SourceTree,
                       chart: Statechart) -> Iterator[Finding]:
        produced: set[str] = set()
        handled: set[str] = set()
        active = False
        findings: list[Finding] = []
        for sf in tree.src_files:
            if sf.tree is None or sf.rel.endswith("analysis/statecharts.py"):
                continue
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
                    findings.extend(
                        self._check_function(sf, node, chart, produced))
                elif isinstance(node, ast.ClassDef):
                    findings.extend(
                        self._check_class_defaults(sf, node, chart,
                                                   produced))
                elif isinstance(node, ast.Compare):
                    findings.extend(
                        self._check_compare(sf, node, chart, handled))
                if not active and isinstance(node, ast.Name | ast.Attribute) \
                        and terminal_name(node) in chart.constants:
                    active = True
        yield from findings
        if not active:
            return
        for state in sorted(chart.states - produced - {chart.initial}):
            yield self.finding(
                tree.src_files[0] if tree.src_files else "src",
                1,
                f"statechart {chart.name}: state {state!r} is declared "
                f"but never produced (unreachable) — no assignment sets "
                f"{chart.field} to {chart.constant_of(state)}",
                symbol=f"{chart.name}:unreachable:{state}",
                severity="warning")
        for state in sorted(chart.states - handled):
            yield self.finding(
                tree.src_files[0] if tree.src_files else "src",
                1,
                f"statechart {chart.name}: state {state!r} is declared "
                f"but never handled — nothing compares {chart.field} "
                f"against {chart.constant_of(state)}",
                symbol=f"{chart.name}:unhandled:{state}",
                severity="warning")

    def _check_class_defaults(self, sf: SourceFile, cls: ast.ClassDef,
                              chart: Statechart,
                              produced: set[str]) -> list[Finding]:
        """Class-body defaults (dataclass fields) must be the initial state."""
        out: list[Finding] = []
        for stmt in cls.body:
            target = value = None
            if isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                target, value = stmt.target, stmt.value
            elif isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            if not isinstance(target, ast.Name) \
                    or target.id != chart.field:
                continue
            state = self._state_of(value, chart)
            if state is None:
                continue
            produced.add(state)
            if state != chart.initial:
                out.append(self.finding(
                    sf, stmt.lineno,
                    f"statechart {chart.name}: {cls.name}.{chart.field} "
                    f"defaults to {state!r}; the declared initial state "
                    f"is {chart.initial!r}",
                    symbol=f"{chart.name}:{cls.name}:default"))
        return out

    def _check_function(self, sf: SourceFile,
                        fn: ast.FunctionDef | ast.AsyncFunctionDef,
                        chart: Statechart,
                        produced: set[str]) -> list[Finding]:
        out: list[Finding] = []
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Attribute) \
                    or target.attr != chart.field:
                continue
            to_state = self._state_of(node.value, chart)
            literal = self._literal_state(node.value, chart)
            if literal is not None:
                produced.add(literal)
                out.append(self.finding(
                    sf, node.lineno,
                    f"statechart {chart.name}: {chart.field} assigned the "
                    f"raw literal {literal!r} — use the declared constant "
                    f"{chart.constant_of(literal)}",
                    symbol=f"{chart.name}:literal:{literal}"))
                to_state = literal
            if to_state is None:
                continue
            produced.add(to_state)
            recv = _receiver(target)
            if recv is None:
                continue
            frm = self._established(fn.body, node, recv, chart)
            if frm is None:
                out.append(self.finding(
                    sf, node.lineno,
                    f"statechart {chart.name}: {recv} set to {to_state!r} "
                    f"without establishing the source state — guard with "
                    f"a check of {recv} first so illegal transitions "
                    f"cannot slip through",
                    symbol=f"{chart.name}:unguarded:{to_state}"))
                continue
            for state in sorted(frm):
                if not chart.can(state, to_state):
                    out.append(self.finding(
                        sf, node.lineno,
                        f"statechart {chart.name}: illegal transition "
                        f"{state!r} -> {to_state!r} at {recv} (declared "
                        f"transitions allow "
                        f"{sorted(t for f2, t in chart.transitions if f2 == state) or 'nothing'} "
                        f"from {state!r})",
                        symbol=f"{chart.name}:illegal:{state}->{to_state}"))
        return out

    # -- dataflow: which source states reach an assignment ----------------------------

    def _established(self, body: list[ast.stmt], assign: ast.Assign,
                     recv: str, chart: Statechart
                     ) -> frozenset[str] | None:
        """The possible source states at ``assign``, or None when unknown.

        Walks the statement list containing (transitively) the
        assignment, narrowing a fact set from enclosing ``if`` tests on
        ``recv`` and from preceding early-exit guards; a preceding
        conditional write to ``recv`` invalidates what is known.
        """
        states: frozenset[str] | None = None
        for stmt in body:
            if self._contains(stmt, assign):
                if stmt is assign:
                    return states
                if isinstance(stmt, ast.If):
                    true_set, false_set = self._test_facts(stmt.test, recv,
                                                           chart)
                    if any(self._contains(s, assign) for s in stmt.body):
                        inner = self._intersect(states, true_set)
                        return self._established(stmt.body, assign, recv,
                                                 chart) \
                            if states is None and true_set is None \
                            else self._merge_inner(stmt.body, assign, recv,
                                                   chart, inner)
                    inner = self._intersect(states, false_set)
                    return self._merge_inner(stmt.orelse, assign, recv,
                                             chart, inner)
                for block in self._blocks(stmt):
                    if any(self._contains(s, assign) for s in block):
                        return self._merge_inner(block, assign, recv,
                                                 chart, states)
                return states
            # statements strictly before the assignment
            if isinstance(stmt, ast.If) and not stmt.orelse \
                    and _terminates(stmt.body):
                _, false_set = self._test_facts(stmt.test, recv, chart)
                states = self._intersect(states, false_set)
            elif self._writes_receiver(stmt, recv, chart):
                direct = self._direct_write(stmt, recv, chart)
                states = direct  # known state, or None (conditional write)
        return states

    def _merge_inner(self, body: list[ast.stmt], assign: ast.Assign,
                     recv: str, chart: Statechart,
                     outer: frozenset[str] | None
                     ) -> frozenset[str] | None:
        inner = self._established(body, assign, recv, chart)
        return self._intersect(outer, inner)

    @staticmethod
    def _blocks(stmt: ast.stmt) -> list[list[ast.stmt]]:
        blocks = []
        for name in ("body", "orelse", "finalbody"):
            block = getattr(stmt, name, None)
            if block:
                blocks.append(block)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks

    @staticmethod
    def _contains(stmt: ast.stmt, node: ast.AST) -> bool:
        return any(child is node for child in ast.walk(stmt))

    @staticmethod
    def _intersect(a: frozenset[str] | None, b: frozenset[str] | None
                   ) -> frozenset[str] | None:
        if a is None:
            return b
        if b is None:
            return a
        return a & b

    def _writes_receiver(self, stmt: ast.stmt, recv: str,
                         chart: Statechart) -> bool:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Attribute) \
                            and target.attr == chart.field \
                            and _receiver(target) == recv:
                        return True
        return False

    def _direct_write(self, stmt: ast.stmt, recv: str,
                      chart: Statechart) -> frozenset[str] | None:
        """A top-level unconditional write's state, else None (unknown)."""
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Attribute) \
                    and target.attr == chart.field \
                    and _receiver(target) == recv:
                state = self._state_of(stmt.value, chart) \
                    or self._literal_state(stmt.value, chart)
                if state is not None:
                    return frozenset({state})
        return None

    def _test_facts(self, test: ast.expr, recv: str, chart: Statechart
                    ) -> tuple[frozenset[str] | None, frozenset[str] | None]:
        """``(states_if_true, states_if_false)`` implied by a test."""
        if isinstance(test, ast.BoolOp):
            trues: frozenset[str] | None = None
            falses: frozenset[str] | None = None
            for value in test.values:
                t, f = self._test_facts(value, recv, chart)
                if isinstance(test.op, ast.And):
                    trues = self._intersect(trues, t)
                else:
                    falses = self._intersect(falses, f)
            return (trues, None) if isinstance(test.op, ast.And) \
                else (None, falses)
        if not isinstance(test, ast.Compare) or len(test.ops) != 1:
            return None, None
        left, op, right = test.left, test.ops[0], test.comparators[0]
        if self._is_field(left, recv, chart):
            other = right
        elif self._is_field(right, recv, chart) \
                and isinstance(op, ast.Eq | ast.NotEq):
            other = left
        else:
            return None, None
        matched = self._states_in(other, chart)
        if matched is None:
            return None, None
        universe = chart.states
        if isinstance(op, ast.Eq | ast.In):
            return matched, universe - matched
        if isinstance(op, ast.NotEq | ast.NotIn):
            return universe - matched, matched
        return None, None

    def _is_field(self, node: ast.expr, recv: str,
                  chart: Statechart) -> bool:
        return isinstance(node, ast.Attribute) \
            and node.attr == chart.field and _receiver(node) == recv

    def _states_in(self, node: ast.expr, chart: Statechart
                   ) -> frozenset[str] | None:
        if isinstance(node, ast.Set | ast.Tuple | ast.List):
            states = set()
            for el in node.elts:
                state = self._state_of(el, chart) \
                    or self._literal_state(el, chart)
                if state is None:
                    return None
                states.add(state)
            return frozenset(states)
        state = self._state_of(node, chart) \
            or self._literal_state(node, chart)
        return frozenset({state}) if state is not None else None

    @staticmethod
    def _state_of(node: ast.expr, chart: Statechart) -> str | None:
        name = terminal_name(node)
        if name is not None:
            return chart.value_of(name)
        return None

    @staticmethod
    def _literal_state(node: ast.expr, chart: Statechart) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str) \
                and node.value in chart.states:
            return node.value
        return None

    # -- comparison sites -------------------------------------------------------------

    def _check_compare(self, sf: SourceFile, node: ast.Compare,
                       chart: Statechart,
                       handled: set[str]) -> list[Finding]:
        out: list[Finding] = []
        sides = [node.left, *node.comparators]
        field_side = any(
            isinstance(s, ast.Attribute) and s.attr == chart.field
            for s in sides)
        if not field_side:
            return out
        for side in sides:
            name = terminal_name(side)
            if name in chart.constants:
                handled.add(chart.constants[name])
                continue
            literal = self._literal_state(side, chart)
            if literal is not None:
                handled.add(literal)
                out.append(self.finding(
                    sf, side.lineno,
                    f"statechart {chart.name}: comparison against the "
                    f"raw literal {literal!r} — use the declared "
                    f"constant {chart.constant_of(literal)}",
                    symbol=f"{chart.name}:literal:{literal}"))
            if isinstance(side, ast.Set | ast.Tuple | ast.List):
                for el in side.elts:
                    el_name = terminal_name(el)
                    if el_name in chart.constants:
                        handled.add(chart.constants[el_name])
        return out

    # -- write-once charts (admission outcomes) ---------------------------------------

    def _check_write_once(self, tree: SourceTree,
                          chart: Statechart) -> Iterator[Finding]:
        referenced: set[str] = set()
        active = False
        findings: list[Finding] = []
        for sf in tree.src_files:
            if sf.tree is None or sf.rel.endswith("obs/vocab.py") \
                    or sf.rel.endswith("analysis/statecharts.py"):
                continue
            for node in ast.walk(sf.tree):
                if isinstance(node, ast.Name | ast.Attribute):
                    name = terminal_name(node)
                    if name in chart.constants:
                        referenced.add(chart.constants[name])
                        active = True
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if isinstance(target, ast.Attribute) \
                                and target.attr == chart.field:
                            state = self._state_of(node.value, chart) \
                                or self._literal_state(node.value, chart)
                            if state is not None:
                                findings.append(self.finding(
                                    sf, node.lineno,
                                    f"statechart {chart.name} is "
                                    f"write-once: {chart.field} may only "
                                    f"be set at construction, never "
                                    f"reassigned",
                                    symbol=f"{chart.name}:reassigned"))
                if isinstance(node, ast.Call):
                    for kw in node.keywords:
                        if kw.arg != chart.field:
                            continue
                        literal = self._literal_state(kw.value, chart)
                        if literal is not None:
                            findings.append(self.finding(
                                sf, kw.value.lineno,
                                f"statechart {chart.name}: "
                                f"{chart.field}= set to the raw literal "
                                f"{literal!r} — use the declared "
                                f"constant {chart.constant_of(literal)}",
                                symbol=f"{chart.name}:literal:{literal}"))
        yield from findings
        if not active:
            return
        for state in sorted(chart.states - referenced - {chart.initial}):
            yield self.finding(
                tree.src_files[0] if tree.src_files else "src",
                1,
                f"statechart {chart.name}: outcome {state!r} is declared "
                f"but no src module outside the vocabulary references "
                f"{chart.constant_of(state)} — dead state",
                symbol=f"{chart.name}:unreachable:{state}",
                severity="warning")
