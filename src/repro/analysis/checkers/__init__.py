"""Built-in ravelint checkers.

Importing this package registers every built-in rule with
:func:`repro.analysis.core.register`; :func:`repro.analysis.core.registered_rules`
does so lazily.  Adding a checker is: write a module here with a
``@register``-decorated :class:`~repro.analysis.core.Checker` subclass,
import it below, and give it fixture tests (see ``docs/ANALYSIS.md``).
"""

from __future__ import annotations

from repro.analysis.checkers.api_surface import ApiSurfaceChecker
from repro.analysis.checkers.daemon_race import DaemonRaceChecker
from repro.analysis.checkers.determinism import DeterminismChecker
from repro.analysis.checkers.kinds import KindVocabularyChecker
from repro.analysis.checkers.label_cardinality import LabelCardinalityChecker
from repro.analysis.checkers.lifecycle import LifecycleChecker
from repro.analysis.checkers.metrics_registry import MetricRegistryChecker
from repro.analysis.checkers.protocol import ProtocolSymmetryChecker

__all__ = [
    "ApiSurfaceChecker",
    "DaemonRaceChecker",
    "DeterminismChecker",
    "KindVocabularyChecker",
    "LabelCardinalityChecker",
    "LifecycleChecker",
    "MetricRegistryChecker",
    "ProtocolSymmetryChecker",
]
