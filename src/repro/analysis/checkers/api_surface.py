"""API-surface drift: ``__all__`` must match what a module really binds.

Two failure modes, both silent until an import explodes (or worse,
quietly exports nothing):

- **stale export** — a name listed in ``__all__`` that the module never
  defines or imports: ``from repro.x import *`` raises
  ``AttributeError`` at a distance (error, every module);
- **missing export** — a public name a package ``__init__.py`` defines
  or re-exports from inside ``repro`` but forgot to list in
  ``__all__``, so the documented surface and the real surface disagree
  (warning, ``__init__.py`` only; stdlib/third-party imports are
  implementation details and exempt).

Top-level ``if``/``try`` bodies count as module scope because guarded
imports and conditional definitions are normal Python.
"""

from __future__ import annotations

from collections.abc import Iterator
import ast

from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register


def _top_level(module: ast.Module) -> Iterator[ast.stmt]:
    """Module-body statements, descending into if/try blocks."""
    stack = list(module.body)
    while stack:
        stmt = stack.pop(0)
        yield stmt
        if isinstance(stmt, ast.If):
            stack.extend(stmt.body + stmt.orelse)
        elif isinstance(stmt, ast.Try):
            stack.extend(stmt.body + stmt.orelse + stmt.finalbody)
            for handler in stmt.handlers:
                stack.extend(handler.body)


@register
class ApiSurfaceChecker(Checker):
    rule = "api-surface"
    severity = "error"
    description = ("__all__ entries must exist, and package __init__ "
                   "re-exports must be listed in __all__")
    contract = (
        "Every name in a module's __all__ must be defined or imported "
        "in that module, and every public re-export in a package "
        "__init__ must appear in its __all__ — the declared API surface "
        "and the real one may not drift apart.")
    example = ("__all__ = [\"Widget\"]        # api-surface: Widget is\n"
               "                             # never defined or imported\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        for sf in tree.src_files:
            if sf.tree is None:
                continue
            yield from self._check_module(sf)

    def _check_module(self, sf: SourceFile) -> Iterator[Finding]:
        bound: dict[str, int] = {}
        exported: dict[str, int] | None = None
        exported_line = 1
        reexports: dict[str, int] = {}

        for stmt in _top_level(sf.tree):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                bound.setdefault(stmt.name, stmt.lineno)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            exported = self._exports(stmt.value)
                            exported_line = stmt.lineno
                        else:
                            bound.setdefault(target.id, stmt.lineno)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for el in target.elts:
                            if isinstance(el, ast.Name):
                                bound.setdefault(el.id, el.lineno)
            elif isinstance(stmt, ast.AnnAssign) \
                    and isinstance(stmt.target, ast.Name):
                bound.setdefault(stmt.target.id, stmt.lineno)
            elif isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    local = alias.asname or alias.name.split(".")[0]
                    bound.setdefault(local, stmt.lineno)
            elif isinstance(stmt, ast.ImportFrom):
                internal = stmt.level > 0 or (
                    stmt.module or "").split(".")[0] == "repro"
                for alias in stmt.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    bound.setdefault(local, stmt.lineno)
                    if internal and not local.startswith("_"):
                        reexports.setdefault(local, stmt.lineno)

        if exported is None:
            return

        for name, line in sorted(exported.items()):
            if name not in bound:
                yield self.finding(
                    sf, line or exported_line,
                    f"__all__ exports {name!r} but the module never "
                    f"defines or imports it — star-imports raise "
                    f"AttributeError",
                    symbol=name)

        if not sf.rel.endswith("__init__.py"):
            return
        for name, line in sorted(reexports.items()):
            if name not in exported:
                yield self.finding(
                    sf, line,
                    f"{name!r} is re-exported from inside repro but "
                    f"missing from __all__ — the public surface and the "
                    f"real surface disagree",
                    symbol=name, severity="warning")

    @staticmethod
    def _exports(node: ast.expr) -> dict[str, int]:
        """``__all__`` entries -> line, for list/tuple string displays."""
        out: dict[str, int] = {}
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for el in node.elts:
                if isinstance(el, ast.Constant) \
                        and isinstance(el.value, str):
                    out.setdefault(el.value, el.lineno)
        return out
