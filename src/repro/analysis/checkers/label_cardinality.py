"""Label-cardinality rule: no unbounded label values on ``rave_*`` metrics.

A metric label whose value space is unbounded — a frame index, a raw
hostname, a trace id — multiplies the series count without bound and
eventually OOMs whatever scrapes it.  Labels must come from small,
closed sets (tenant names, declared reasons, service kinds).

This rule inspects every ``counter(...)`` / ``gauge(...)`` /
``histogram(...)`` call whose metric name literal starts with ``rave_``
and flags label keyword values that are:

- f-strings with interpolation or string concatenation/formatting
  (``frame=f"frame-{i}"``) — directly or through a local variable
  assigned one earlier in the same function;
- names or attributes whose terminal name is a known unbounded source
  (``frame``, ``index``, ``hostname``, ``trace_id``...).

Label keys declared in ``obs/vocab.BOUNDED_LABEL_KEYS`` are exempt:
that set is the auditable declaration that a key's value space is
bounded by construction (e.g. ``link`` — one series per topology edge).
The ``help`` and ``buckets`` keywords are metric metadata, not labels.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import str_set, terminal_name, vocab_env
from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register

_METRIC_FACTORIES = frozenset({"counter", "gauge", "histogram"})
_NON_LABEL_KWARGS = frozenset({"help", "buckets"})

#: terminal names that are unbounded by nature wherever they appear
_BANNED_TERMINALS = frozenset({
    "frame", "frame_index", "index", "host", "hostname", "trace_id",
    "span_id",
})


def _metric_name(call: ast.Call) -> str | None:
    if not call.args:
        return None
    first = call.args[0]
    if isinstance(first, ast.Constant) and isinstance(first.value, str):
        return first.value
    return None


@register
class LabelCardinalityChecker(Checker):
    rule = "label-cardinality"
    severity = "error"
    description = ("rave_* metric labels must be drawn from bounded value "
                   "sets — no f-strings, concatenation, or raw "
                   "host/frame/trace identifiers")
    contract = (
        "Every label keyword on a counter()/gauge()/histogram() call "
        "registering a rave_* metric must have a bounded value space: "
        "no interpolated or concatenated strings, no str()/format() "
        "calls, and no values whose name marks them unbounded (frame, "
        "index, hostname, trace_id...).  Keys listed in "
        "obs/vocab.BOUNDED_LABEL_KEYS are declared bounded by "
        "construction and exempt; 'help' and 'buckets' are metadata, "
        "not labels.")
    example = (
        "self.metrics.counter(\"rave_frames\", frame=f\"frame-{i}\")\n"
        "# label-cardinality: one series per frame index grows without\n"
        "# bound — drop the label or aggregate it away\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        vocab_sf, env = vocab_env(tree)
        bounded = str_set(env, "BOUNDED_LABEL_KEYS") or frozenset() \
            if vocab_sf is not None else frozenset()
        for sf in tree.src_files:
            if sf.tree is None:
                continue
            for fn in self._functions(sf.tree):
                yield from self._check_function(sf, fn, bounded)

    @staticmethod
    def _functions(tree: ast.AST) -> Iterator[ast.AST]:
        yielded = False
        for node in ast.walk(tree):
            if isinstance(node, ast.FunctionDef | ast.AsyncFunctionDef):
                yield node
                yielded = True
        if not yielded:
            yield tree

    def _check_function(self, sf: SourceFile, fn: ast.AST,
                        bounded: frozenset[str]) -> Iterator[Finding]:
        statements = list(ast.walk(fn))
        for call in statements:
            if not isinstance(call, ast.Call):
                continue
            if not isinstance(call.func, ast.Attribute) \
                    or call.func.attr not in _METRIC_FACTORIES:
                continue
            name = _metric_name(call)
            if name is None or not name.startswith("rave_"):
                continue
            for kw in call.keywords:
                if kw.arg is None or kw.arg in _NON_LABEL_KWARGS \
                        or kw.arg in bounded:
                    continue
                reason = self._unbounded(kw.value, fn, call)
                if reason is not None:
                    yield self.finding(
                        sf, kw.value.lineno,
                        f"metric {name} label {kw.arg!r} has an unbounded "
                        f"value ({reason}) — draw labels from a closed "
                        f"set, or declare the key in "
                        f"obs/vocab.BOUNDED_LABEL_KEYS with a rationale",
                        symbol=f"{name}:{kw.arg}")

    def _unbounded(self, value: ast.expr, fn: ast.AST,
                   call: ast.Call) -> str | None:
        """Why ``value`` is unbounded, or None if it looks bounded."""
        if isinstance(value, ast.JoinedStr):
            if any(isinstance(part, ast.FormattedValue)
                   for part in value.values):
                return "f-string interpolation"
            return None
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Add):
            return "string concatenation"
        if isinstance(value, ast.Call):
            name = terminal_name(value.func)
            if name in ("str", "format", "repr"):
                return f"{name}() of a runtime value"
            return None
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                reason = self._unbounded(operand, fn, call)
                if reason is not None:
                    return reason
            return None
        name = terminal_name(value)
        if name in _BANNED_TERMINALS:
            return f"value named {name!r} is an unbounded identifier"
        if isinstance(value, ast.Name):
            assigned = self._last_local_assignment(fn, value.id, call)
            if assigned is not None:
                reason = self._unbounded(assigned, fn, call)
                if reason is not None:
                    return f"local {value.id!r} holds {reason}"
        return None

    @staticmethod
    def _last_local_assignment(fn: ast.AST, name: str,
                               before: ast.Call) -> ast.expr | None:
        """The value last assigned to ``name`` before ``before`` in ``fn``."""
        last: ast.expr | None = None
        limit = before.lineno
        for node in ast.walk(fn):
            if not isinstance(node, ast.Assign) or node.lineno >= limit:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == name:
                    if last is None or node.lineno > last.lineno:
                        last = node.value
        return last
