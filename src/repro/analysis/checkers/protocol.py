"""Protocol symmetry: every framer has an unframer, flags used both ways.

``services/protocol.py`` is the data-plane wire contract: a
``frame_X`` producer without a matching ``unframe_X`` consumer (or the
reverse) means one side of the wire speaks a dialect nobody parses.
Header flag constants (``FLAG_*``) have the same symmetry requirement —
a flag only set by framers is never enforced, a flag only tested by
unframers can never appear on the wire.

The rule applies to every module named ``protocol.py`` under
``src/repro`` so future per-subsystem protocols inherit the contract.
"""

from __future__ import annotations

from collections.abc import Iterator
import ast
import re

from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register

_FLAG_RE = re.compile(r"FLAG_[A-Z0-9_]+")


@register
class ProtocolSymmetryChecker(Checker):
    rule = "protocol-symmetry"
    severity = "error"
    description = ("every frame_* has a matching unframe_* and FLAG_* "
                   "constants are used on both sides of the wire")
    contract = (
        "The wire protocol stays symmetric: every frame_<x> encoder in "
        "services/protocol.py needs a matching unframe_<x> decoder, and "
        "every FLAG_* constant must be referenced by both an encoder "
        "and a decoder — one-sided frames rot into undecodable bytes.")
    example = ("def frame_ping(...): ...\n"
               "# protocol-symmetry: no unframe_ping decoder exists\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        for sf in tree.src_files:
            if sf.tree is None or not sf.rel.endswith("protocol.py"):
                continue
            yield from self._check_module(sf)

    def _check_module(self, sf: SourceFile) -> Iterator[Finding]:
        framers: dict[str, ast.FunctionDef] = {}
        unframers: dict[str, ast.FunctionDef] = {}
        flags: dict[str, int] = {}
        for stmt in sf.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if stmt.name.startswith("frame_"):
                    framers[stmt.name[len("frame_"):]] = stmt
                elif stmt.name.startswith("unframe_"):
                    unframers[stmt.name[len("unframe_"):]] = stmt
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) \
                            and _FLAG_RE.fullmatch(target.id):
                        flags[target.id] = stmt.lineno

        for suffix, fn in sorted(framers.items()):
            if suffix not in unframers:
                yield self.finding(
                    sf, fn.lineno,
                    f"frame_{suffix} has no matching unframe_{suffix} — "
                    f"nothing can parse what this produces",
                    symbol=f"frame_{suffix}")
        for suffix, fn in sorted(unframers.items()):
            if suffix not in framers:
                yield self.finding(
                    sf, fn.lineno,
                    f"unframe_{suffix} has no matching frame_{suffix} — "
                    f"nothing ever produces what this parses",
                    symbol=f"unframe_{suffix}")

        for flag, lineno in sorted(flags.items()):
            in_frame = any(self._references(fn, flag)
                           for fn in framers.values())
            in_unframe = any(self._references(fn, flag)
                             for fn in unframers.values())
            if in_frame and in_unframe:
                continue
            if not in_frame and not in_unframe:
                missing = "any frame_* or unframe_* function"
            elif not in_frame:
                missing = "any frame_* function (set but never produced)"
            else:
                missing = "any unframe_* function (set but never checked)"
            yield self.finding(
                sf, lineno,
                f"header flag {flag} is not referenced by {missing}",
                symbol=flag)

    @staticmethod
    def _references(fn: ast.FunctionDef, name: str) -> bool:
        return any(isinstance(node, ast.Name) and node.id == name
                   for node in ast.walk(fn))
