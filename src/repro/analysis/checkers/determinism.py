"""Determinism checker: no wall clocks, no hidden global RNG state.

The whole reproduction is a discrete-event simulation: every timing the
paper tables report flows through ``repro.network.clock.SimClock``, and
``network/clock.py`` explicitly bans wall-clock time from the results.
Randomness has the same contract — every stochastic component threads a
*seeded* ``random.Random`` or ``numpy.random.Generator`` so the same
seed replays the same run.

This rule therefore flags, anywhere under ``src/repro``:

- wall-clock reads and sleeps (``time.time``/``monotonic``/``sleep``/
  ``perf_counter``..., ``datetime.now``/``utcnow``/``today``);
- ambient entropy (``uuid.uuid1``/``uuid4``, ``os.urandom``,
  ``secrets.*``);
- module-level RNG calls that use the interpreter's hidden global state
  (``random.random()``, ``numpy.random.shuffle()``, ...);
- RNG constructors created *without a seed* (``random.Random()``,
  ``numpy.random.default_rng()``, ``RandomState()``, ``SeedSequence()``).

Seeded constructors pass, as do calls on locally held generator objects
(``self.rng.random()`` resolves to a variable, not an import).
"""

from __future__ import annotations

from collections.abc import Iterator
import ast

from repro.analysis.astutil import import_aliases, resolve_call
from repro.analysis.core import Checker, Finding, SourceTree, register

#: absolute call targets that are never allowed in simulation code
BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.monotonic_ns": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "time.perf_counter_ns": "wall-clock read",
    "time.process_time": "wall-clock read",
    "time.sleep": "wall-clock sleep",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid1": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
    "os.urandom": "ambient entropy",
    "secrets.token_bytes": "ambient entropy",
    "secrets.token_hex": "ambient entropy",
    "secrets.token_urlsafe": "ambient entropy",
    "secrets.randbelow": "ambient entropy",
    "secrets.choice": "ambient entropy",
}

#: RNG constructors that are deterministic only when explicitly seeded
SEED_REQUIRED = {
    "random.Random",
    "random.SystemRandom",      # never acceptable, but caught as unseeded
    "numpy.random.RandomState",
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
}

#: modules whose bare functions mutate interpreter-global RNG state
GLOBAL_RNG_MODULES = ("random", "numpy.random")


@register
class DeterminismChecker(Checker):
    rule = "determinism"
    severity = "error"
    description = ("all timing must flow through SimClock and all "
                   "randomness through explicitly seeded generators")
    contract = (
        "Simulation results must replay byte for byte: src modules may "
        "not read wall-clock time (time.time, datetime.now, "
        "perf_counter...) or use unseeded randomness (random.random, "
        "np.random.*) — route timing through SimClock and randomness "
        "through an explicitly seeded Random/Generator instance.")
    example = ("import time\n"
               "stamp = time.time()   # determinism: wall clock leaks\n"
               "                      # into simulated results\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        for sf in tree.src_files:
            if sf.tree is None:
                continue
            aliases = import_aliases(sf.tree)
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Call):
                    continue
                target = resolve_call(node.func, aliases)
                if target is None:
                    continue
                yield from self._judge(sf, node, target)

    def _judge(self, sf, node: ast.Call, target: str) -> Iterator[Finding]:
        reason = BANNED_CALLS.get(target)
        if reason is not None:
            yield self.finding(
                sf, node.lineno,
                f"{reason} {target}() — all timing/entropy must flow "
                f"through the simulated clock (network/clock.SimClock) "
                f"or a seeded RNG",
                symbol=target)
            return
        if target in SEED_REQUIRED:
            if not node.args and not node.keywords:
                yield self.finding(
                    sf, node.lineno,
                    f"unseeded {target}() draws OS entropy — pass an "
                    f"explicit seed so runs replay deterministically",
                    symbol=target)
            return
        for module in GLOBAL_RNG_MODULES:
            prefix = module + "."
            if target.startswith(prefix) and "." not in target[len(prefix):]:
                yield self.finding(
                    sf, node.lineno,
                    f"{target}() uses the interpreter-global RNG — thread "
                    f"a seeded random.Random / numpy Generator instead",
                    symbol=target)
                return
