"""Daemon-race rule: shared ledgers move only through transition methods.

The simulated network is single-threaded, but it is still *concurrent*:
every ``Simulator.schedule`` / ``schedule_at`` callback is a separate
logical task, and two callback chains interleaving writes to the same
ledger (the grid's admission queue, the farm's pending/lease maps, a
health monitor's lease table) produce exactly the lost-update and
double-spend bugs a thread race would — just deterministically.

:mod:`repro.analysis.statecharts` declares, per ledger owner, which
attributes are guarded and which *transition methods* may mutate them.
This rule enforces the contract interprocedurally:

- any mutation of a guarded attribute outside the declared transition
  methods (``__init__`` is always allowed) is an error;
- a mutation written *inline* in a scheduled callback (a ``lambda`` or
  closure passed to ``schedule``/``schedule_at``) is an error even
  inside an owner class — callbacks must call a transition method, not
  poke the ledger;
- for classes with **no** declared contract, the same ``self._attr``
  mutated inline from two or more distinct schedule callbacks is
  flagged: that attribute is de-facto shared state and needs either a
  transition method or a declared contract.

A method-name call graph (intra-class, by terminal name) is closed over
so findings can say how many schedule chains actually reach the bad
site.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.analysis.astutil import terminal_name
from repro.analysis.core import Checker, Finding, SourceFile, SourceTree, \
    register
from repro.analysis.statecharts import CONTRACTS, SharedStateContract

#: method calls that mutate their receiver in place
_MUTATORS = frozenset({
    "append", "appendleft", "add", "remove", "pop", "popleft", "extend",
    "extendleft", "clear", "update", "discard", "insert", "setdefault",
    "rotate",
})

_SCHEDULE_NAMES = frozenset({"schedule", "schedule_at"})


def _self_attr_root(node: ast.expr) -> str | None:
    """``self._attr`` at the root of an attribute/subscript chain, or None."""
    while isinstance(node, ast.Subscript | ast.Attribute):
        if isinstance(node, ast.Attribute) \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "self":
            return node.attr
        node = node.value
    return None


def _mutations(node: ast.AST) -> Iterator[tuple[str, int]]:
    """Yield ``(attr, lineno)`` for every ``self._attr`` mutation under node."""
    for child in ast.walk(node):
        if isinstance(child, ast.Assign):
            for target in child.targets:
                attr = _self_attr_root(target)
                # plain ``self.x = ...`` rebinding is a write too, but only
                # count it when the target is the attr or a key under it
                if attr is not None:
                    yield attr, child.lineno
        elif isinstance(child, ast.AugAssign):
            attr = _self_attr_root(child.target)
            if attr is not None:
                yield attr, child.lineno
        elif isinstance(child, ast.Delete):
            for target in child.targets:
                attr = _self_attr_root(target)
                if attr is not None:
                    yield attr, child.lineno
        elif isinstance(child, ast.Call) \
                and isinstance(child.func, ast.Attribute) \
                and child.func.attr in _MUTATORS:
            attr = _self_attr_root(child.func.value)
            if attr is not None:
                yield attr, child.lineno


def _schedule_callbacks(fn: ast.AST) -> Iterator[tuple[ast.Call, ast.expr]]:
    """Yield ``(call, callback_expr)`` for schedule()/schedule_at() calls."""
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        name = terminal_name(node.func)
        if name not in _SCHEDULE_NAMES or len(node.args) < 2:
            continue
        yield node, node.args[1]


@register
class DaemonRaceChecker(Checker):
    rule = "daemon-race"
    severity = "error"
    description = ("guarded shared ledgers may only be mutated through "
                   "their declared transition methods, never inline from "
                   "Simulator.schedule callback chains")
    contract = (
        "analysis/statecharts.py declares, per owner class, the guarded "
        "ledger attributes and the only methods allowed to mutate them. "
        "Any mutation site outside those methods is an error, as is an "
        "inline mutation inside a lambda/closure handed to "
        "Simulator.schedule or schedule_at (call a transition method "
        "instead).  In undeclared classes, the same self attribute "
        "mutated inline from two or more schedule callbacks is flagged "
        "as de-facto shared state.")
    example = (
        "self.sim.schedule(1.0, lambda: self._queue.append(req))\n"
        "# daemon-race: callback mutates the guarded ledger directly —\n"
        "# route through the declared transition method (_enqueue)\n")

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        for sf in tree.src_files:
            if sf.tree is None:
                continue
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                contract = self._contract_for(sf, node)
                if contract is not None:
                    yield from self._check_contract(sf, node, contract)
                else:
                    yield from self._check_undeclared(sf, node)

    @staticmethod
    def _contract_for(sf: SourceFile,
                      cls: ast.ClassDef) -> SharedStateContract | None:
        for contract in CONTRACTS:
            if cls.name == contract.owner and sf.rel.endswith(
                    contract.module):
                return contract
        return None

    # -- declared owners --------------------------------------------------------------

    def _check_contract(self, sf: SourceFile, cls: ast.ClassDef,
                        contract: SharedStateContract
                        ) -> Iterator[Finding]:
        guarded = set(contract.attrs)
        methods = {stmt.name: stmt for stmt in cls.body
                   if isinstance(stmt,
                                 ast.FunctionDef | ast.AsyncFunctionDef)}
        callers = self._reverse_call_graph(methods)
        for name, fn in methods.items():
            inline = self._inline_callback_mutations(fn, guarded)
            for attr, lineno in inline:
                yield self.finding(
                    sf, lineno,
                    f"{contract.owner}.{attr} mutated inline from a "
                    f"schedule callback in {name}() — callbacks must "
                    f"route through a declared transition method "
                    f"({', '.join(contract.transition_methods)})",
                    symbol=f"{contract.owner}.{name}:{attr}")
            if contract.allows(name):
                continue
            inline_lines = {lineno for _, lineno in inline}
            for attr, lineno in _mutations(fn):
                if attr not in guarded or lineno in inline_lines:
                    continue
                chains = self._schedule_chains(name, callers, methods)
                via = (f"; reachable from {chains} schedule callback "
                       f"chain{'s' if chains != 1 else ''}") if chains \
                    else ""
                yield self.finding(
                    sf, lineno,
                    f"{contract.owner}.{attr} mutated in {name}(), which "
                    f"is not a declared transition method "
                    f"({', '.join(contract.transition_methods)}){via}",
                    symbol=f"{contract.owner}.{name}:{attr}")

    @staticmethod
    def _inline_callback_mutations(fn: ast.AST, guarded: set[str]
                                   ) -> list[tuple[str, int]]:
        """Guarded-attr mutations inside schedule callbacks under ``fn``."""
        out: list[tuple[str, int]] = []
        local_defs = {n.name: n for n in ast.walk(fn)
                      if isinstance(n, ast.FunctionDef) and n is not fn}
        for _, callback in _schedule_callbacks(fn):
            target: ast.AST | None = None
            if isinstance(callback, ast.Lambda):
                target = callback.body
            elif isinstance(callback, ast.Name) \
                    and callback.id in local_defs:
                target = local_defs[callback.id]
            if target is None:
                continue
            out.extend((attr, lineno) for attr, lineno in
                       _mutations(target) if attr in guarded)
        return out

    # -- call-graph closure -----------------------------------------------------------

    @staticmethod
    def _reverse_call_graph(methods: dict[str, ast.AST]
                            ) -> dict[str, set[str]]:
        """callee method name -> set of caller method names (intra-class)."""
        callers: dict[str, set[str]] = {name: set() for name in methods}
        for name, fn in methods.items():
            for node in ast.walk(fn):
                if isinstance(node, ast.Call):
                    callee = terminal_name(node.func)
                    if callee in callers and callee != name:
                        callers[callee].add(name)
        return callers

    def _schedule_chains(self, method: str, callers: dict[str, set[str]],
                         methods: dict[str, ast.AST]) -> int:
        """How many schedule callbacks can (transitively) reach ``method``."""
        reach = {method}
        frontier = [method]
        while frontier:
            current = frontier.pop()
            for caller in callers.get(current, ()):
                if caller not in reach:
                    reach.add(caller)
                    frontier.append(caller)
        count = 0
        for name, fn in methods.items():
            for _, callback in _schedule_callbacks(fn):
                callee = None
                if isinstance(callback, ast.Lambda):
                    for node in ast.walk(callback.body):
                        if isinstance(node, ast.Call):
                            callee = terminal_name(node.func)
                            if callee in reach:
                                count += 1
                                break
                elif isinstance(callback, ast.Attribute | ast.Name):
                    callee = terminal_name(callback)
                    if callee in reach:
                        count += 1
        return count

    # -- undeclared classes -----------------------------------------------------------

    def _check_undeclared(self, sf: SourceFile,
                          cls: ast.ClassDef) -> Iterator[Finding]:
        """Same attr inline-mutated from >= 2 distinct schedule callbacks.

        Sites are deduplicated by line: a self-rescheduling closure that
        registers itself again counts once, not once per registration.
        """
        sites: dict[str, set[int]] = {}
        for stmt in cls.body:
            if not isinstance(stmt, ast.FunctionDef | ast.AsyncFunctionDef):
                continue
            local_defs = {n.name: n for n in ast.walk(stmt)
                          if isinstance(n, ast.FunctionDef) and n is not stmt}
            for _, callback in _schedule_callbacks(stmt):
                target: ast.AST | None = None
                if isinstance(callback, ast.Lambda):
                    target = callback.body
                elif isinstance(callback, ast.Name) \
                        and callback.id in local_defs:
                    target = local_defs[callback.id]
                if target is None:
                    continue
                for attr, lineno in _mutations(target):
                    sites.setdefault(attr, set()).add(lineno)
        for attr, line_set in sorted(sites.items()):
            lines = sorted(line_set)
            if len(lines) < 2:
                continue
            yield self.finding(
                sf, lines[0],
                f"{cls.name}.{attr} is mutated inline from "
                f"{len(lines)} distinct schedule callbacks (lines "
                f"{', '.join(str(ln) for ln in lines)}) — this is "
                f"de-facto shared state; add a transition method and "
                f"declare a SharedStateContract in "
                f"analysis/statecharts.py",
                symbol=f"{cls.name}:{attr}")
