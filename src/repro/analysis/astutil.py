"""Small AST helpers shared by the ravelint checkers."""

from __future__ import annotations

import ast

from repro.analysis.core import SourceFile, SourceTree

#: relative path of the shared vocabulary module inside the tree
VOCAB_REL = "src/repro/obs/vocab.py"


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` attribute chains as a dotted string (else ``None``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def terminal_name(node: ast.expr) -> str | None:
    """The identifier a ``Name`` or ``Attribute`` expression ends in."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def import_aliases(module: ast.Module) -> dict[str, str]:
    """Local name -> absolute dotted target for every import binding.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import
    monotonic as mono`` maps ``mono -> time.monotonic``.  Imports are
    collected from the whole module (including function bodies) because
    a deferred ``import random`` inside a method still binds the same
    module.  Relative imports resolve to nothing useful from text alone
    and are skipped.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                aliases[local] = target
        elif isinstance(node, ast.ImportFrom) and node.level == 0 \
                and node.module:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


def resolve_call(func: ast.expr, aliases: dict[str, str]) -> str | None:
    """A call target as an absolute dotted path, or ``None``.

    ``np.random.default_rng`` with ``np -> numpy`` resolves to
    ``numpy.random.default_rng``; calls on local variables (``rng.random``)
    resolve to ``None`` because their receiver is not an imported name.
    """
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    base = aliases.get(node.id)
    if base is None:
        return None
    return ".".join([base, *reversed(parts)]) if parts else base


def literal_env(module: ast.Module) -> dict[str, object]:
    """Statically evaluate a constants-only module's top-level bindings.

    Supports exactly what :mod:`repro.obs.vocab` uses: string/number
    constants, names referring to earlier bindings, ``set``/``tuple``/
    ``list`` displays, ``frozenset({...})`` calls and ``|`` unions of
    sets.  Anything else simply does not land in the environment.
    """
    env: dict[str, object] = {}
    for stmt in module.body:
        if not isinstance(stmt, ast.Assign) or len(stmt.targets) != 1:
            continue
        target = stmt.targets[0]
        if not isinstance(target, ast.Name):
            continue
        value = _eval_literal(stmt.value, env)
        if value is not None:
            env[target.id] = value
    return env


def _eval_literal(node: ast.expr, env: dict[str, object]) -> object | None:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return env.get(node.id)
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        items = [_eval_literal(el, env) for el in node.elts]
        if any(item is None for item in items):
            return None
        return frozenset(items)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name) \
            and node.func.id == "frozenset" and len(node.args) == 1 \
            and not node.keywords:
        inner = _eval_literal(node.args[0], env)
        return frozenset(inner) if isinstance(inner, frozenset) else None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _eval_literal(node.left, env)
        right = _eval_literal(node.right, env)
        if isinstance(left, frozenset) and isinstance(right, frozenset):
            return left | right
    return None


def vocab_env(tree: SourceTree) -> tuple[SourceFile | None, dict[str, object]]:
    """The vocabulary module and its statically-evaluated bindings."""
    sf = tree.find("obs/vocab.py")
    if sf is None or sf.tree is None:
        return None, {}
    return sf, literal_env(sf.tree)


def str_set(env: dict[str, object], name: str) -> frozenset[str]:
    """A frozenset-of-strings binding from ``env`` (empty if absent)."""
    value = env.get(name)
    if isinstance(value, frozenset) \
            and all(isinstance(v, str) for v in value):
        return value
    return frozenset()
