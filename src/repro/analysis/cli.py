"""``python -m repro lint``: the ravelint command-line front end."""

from __future__ import annotations

import sys
from pathlib import Path

from repro.analysis.core import (
    BASELINE_NAME,
    default_root,
    registered_rules,
    run_lint,
    write_baseline,
)
from repro.analysis.reporters import render_json, render_text


def add_lint_arguments(parser) -> None:
    """Attach the lint options to an argparse (sub)parser."""
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--rules", "--select", dest="rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all; --select is an alias)")
    parser.add_argument("--ignore", default=None,
                        help="comma-separated rule ids to drop from the "
                             "selection")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print a rule's contract and a minimal "
                             "violating example, then exit")
    parser.add_argument("--root", default=None,
                        help="repository root to lint (default: the root "
                             "this package was loaded from)")
    parser.add_argument("--baseline", default=None,
                        help=f"baseline file (default: <root>/{BASELINE_NAME})")
    parser.add_argument("--write-baseline", action="store_true",
                        help="grandfather every current finding into the "
                             "baseline file and exit 0")
    parser.add_argument("--fail-on", choices=("info", "warning", "error"),
                        default="warning",
                        help="lowest severity that fails the run "
                             "(default: warning)")
    parser.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    parser.add_argument("--verbose", action="store_true",
                        help="also print suppressed/baselined findings "
                             "(text format)")


def _split(value) -> list[str] | None:
    if not value:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def cmd_lint(args) -> int:
    if args.list_rules:
        for rule_id, cls in registered_rules().items():
            print(f"{rule_id:<20} {cls.severity:<8} {cls.description}")
        return 0
    if args.explain is not None:
        cls = registered_rules().get(args.explain)
        if cls is None:
            print(f"unknown rule {args.explain!r}; run --list-rules",
                  file=sys.stderr)
            return 2
        print(f"{cls.rule} ({cls.severity}): {cls.description}")
        print()
        print(cls.contract or "(no extended contract documented)")
        if cls.example:
            print()
            print("Minimal violating example:")
            for line in cls.example.rstrip("\n").splitlines():
                print(f"    {line}")
        return 0
    root = Path(args.root).resolve() if args.root else default_root()
    baseline = Path(args.baseline) if args.baseline \
        else root / BASELINE_NAME
    result = run_lint(root=root, rules=_split(args.rules),
                      baseline_path=baseline, ignore=_split(args.ignore))
    if args.write_baseline:
        payload = write_baseline(baseline, result.findings)
        print(f"wrote {len(payload['findings'])} finding(s) to {baseline}")
        return 0
    if args.format == "json":
        print(render_json(result), end="")
    else:
        print(render_text(result, verbose=args.verbose), end="")
    return 1 if result.failed(args.fail_on) else 0
