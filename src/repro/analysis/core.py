"""ravelint core: source tree loading, findings, suppressions, baseline.

``ravelint`` is a project-specific static-analysis pass over the whole
repository tree (``src/repro`` plus the ``tests``/``benchmarks``
harnesses), built on :mod:`ast`.  Unlike a generic linter it checks
*cross-component contracts*: wall-clock bans that keep the simulation
deterministic, metric names that must agree between producers and
consumers, event/alert-kind vocabularies, protocol frame/unframe
symmetry, and ``__all__`` drift.

The moving parts:

- :class:`Finding` — one diagnostic, anchored at a file/line, with a
  stable ``fingerprint`` (rule + path + symbol) that survives line-number
  churn so baselines stay valid across unrelated edits;
- :class:`Checker` — base class; subclasses set ``rule``/``severity``
  and implement :meth:`Checker.check` over a :class:`SourceTree`
  (cross-file analysis, not per-file only);
- suppressions — a ``# ravelint: ignore[rule-id]`` comment on the
  flagged line silences that rule there (bare ``ignore`` silences all);
- baseline — a committed JSON file of fingerprints for grandfathered
  findings; baselined findings are reported separately and never fail
  the run;
- :func:`run_lint` — load tree, run checkers, partition findings.

The package deliberately imports nothing from the rest of ``repro`` (it
analyses the code as text) and nothing outside the stdlib.
"""

from __future__ import annotations

import ast
import json
import re
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, field
from pathlib import Path

#: severity ladder; ``run_lint`` callers fail on a configurable floor
SEVERITIES = ("info", "warning", "error")
SEVERITY_ORDER = {name: rank for rank, name in enumerate(SEVERITIES)}

#: default name of the committed baseline file, relative to the root
BASELINE_NAME = "lint-baseline.json"

_SUPPRESS_RE = re.compile(r"#\s*ravelint:\s*ignore(?:\[([^\]]+)\])?")


@dataclass(frozen=True)
class Finding:
    """One diagnostic: a rule violation anchored at a file and line."""

    rule: str
    severity: str
    path: str           # root-relative posix path
    line: int
    message: str
    #: stable anchor (metric name, export, function...) for fingerprints
    symbol: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule}::{self.path}::{self.symbol or self.message}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }


@dataclass
class SourceFile:
    """One parsed module: raw text, split lines and its AST (or error)."""

    path: Path
    rel: str            # posix path relative to the lint root
    role: str           # "src" | "tests" | "benchmarks"
    text: str
    lines: list[str]
    tree: ast.Module | None
    error: str | None = None

    def suppresses(self, line: int, rule: str) -> bool:
        """True when ``line`` carries an ignore comment covering ``rule``."""
        if not 1 <= line <= len(self.lines):
            return False
        match = _SUPPRESS_RE.search(self.lines[line - 1])
        if match is None:
            return False
        listed = match.group(1)
        if listed is None:
            return True
        return rule in {item.strip() for item in listed.split(",")}


class SourceTree:
    """Every parsed module under the lint root, queryable by path."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = root
        self.files = files
        self.by_rel = {sf.rel: sf for sf in files}

    @property
    def src_files(self) -> list[SourceFile]:
        return [sf for sf in self.files if sf.role == "src"]

    @property
    def consumer_files(self) -> list[SourceFile]:
        """Test + benchmark modules: legitimate metric-name consumers."""
        return [sf for sf in self.files if sf.role in ("tests", "benchmarks")]

    def find(self, rel_suffix: str) -> SourceFile | None:
        """First src file whose relative path ends with ``rel_suffix``."""
        for sf in self.src_files:
            if sf.rel.endswith(rel_suffix):
                return sf
        return None


def _collect(base: Path, role: str, root: Path) -> Iterator[SourceFile]:
    if not base.is_dir():
        return
    for path in sorted(base.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        text = path.read_text(encoding="utf-8")
        rel = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(text, filename=rel)
            error = None
        except SyntaxError as exc:
            tree, error = None, f"{exc.msg} (line {exc.lineno})"
        yield SourceFile(path=path, rel=rel, role=role, text=text,
                         lines=text.splitlines(), tree=tree, error=error)


def load_tree(root: Path) -> SourceTree:
    """Parse ``src/repro``, ``tests`` and ``benchmarks`` under ``root``."""
    root = Path(root).resolve()
    files: list[SourceFile] = []
    for role, base in (("src", root / "src" / "repro"),
                       ("tests", root / "tests"),
                       ("benchmarks", root / "benchmarks")):
        files.extend(_collect(base, role, root))
    return SourceTree(root, files)


def default_root() -> Path:
    """The repository root this installed package was loaded from."""
    here = Path(__file__).resolve()
    for candidate in here.parents:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


class Checker:
    """Base class for one lint rule.

    Subclasses set ``rule`` (the id used in reports, ``--rules`` and
    ignore comments), a default ``severity`` and a one-line
    ``description``, then yield :class:`Finding` objects from
    :meth:`check`.  Register with :func:`register` so the CLI and
    :func:`run_lint` discover them.

    ``contract`` is the rule's full prose contract and ``example`` a
    minimal violating snippet — both printed by
    ``python -m repro lint --explain <rule>``.
    """

    rule: str = ""
    severity: str = "warning"
    description: str = ""
    contract: str = ""
    example: str = ""

    def check(self, tree: SourceTree) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile | str, line: int, message: str,
                symbol: str = "", severity: str | None = None) -> Finding:
        path = sf if isinstance(sf, str) else sf.rel
        return Finding(rule=self.rule, severity=severity or self.severity,
                       path=path, line=line, message=message, symbol=symbol)


_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a checker to the global rule registry."""
    if not cls.rule:
        raise ValueError(f"{cls.__name__} declares no rule id")
    if cls.severity not in SEVERITY_ORDER:
        raise ValueError(f"{cls.__name__} has unknown severity "
                         f"{cls.severity!r}")
    if cls.rule in _REGISTRY and _REGISTRY[cls.rule] is not cls:
        raise ValueError(f"rule id {cls.rule!r} registered twice")
    _REGISTRY[cls.rule] = cls
    return cls


def registered_rules() -> dict[str, type[Checker]]:
    """Rule id -> checker class, importing the built-in checkers once."""
    from repro.analysis import checkers  # noqa: F401  (registration side effect)

    return dict(sorted(_REGISTRY.items()))


# -- baseline -------------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    """Fingerprints grandfathered by a committed baseline file."""
    if not Path(path).is_file():
        return set()
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return {entry["fingerprint"] for entry in data.get("findings", [])}


def write_baseline(path: Path, findings: Iterable[Finding]) -> dict:
    """Persist ``findings`` as the new baseline; returns the payload."""
    payload = {
        "version": 1,
        "comment": "grandfathered ravelint findings; regenerate with "
                   "`python -m repro lint --write-baseline`",
        "findings": [
            {"fingerprint": f.fingerprint, "rule": f.rule, "path": f.path,
             "severity": f.severity, "message": f.message}
            for f in sorted(findings,
                            key=lambda f: (f.path, f.rule, f.symbol,
                                           f.message))
        ],
    }
    Path(path).write_text(json.dumps(payload, indent=2) + "\n",
                          encoding="utf-8")
    return payload


# -- running --------------------------------------------------------------------------


@dataclass
class LintResult:
    """Partitioned output of one lint run."""

    root: str
    rules: list[str]
    findings: list[Finding] = field(default_factory=list)   # actionable
    suppressed: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        out = dict.fromkeys(SEVERITIES, 0)
        for f in self.findings:
            out[f.severity] += 1
        return out

    def failed(self, fail_on: str = "warning") -> bool:
        floor = SEVERITY_ORDER[fail_on]
        return any(SEVERITY_ORDER[f.severity] >= floor
                   for f in self.findings)


def run_lint(root: Path | str | None = None,
             rules: Iterable[str] | None = None,
             baseline_path: Path | str | None = None,
             ignore: Iterable[str] | None = None) -> LintResult:
    """Run ravelint over the tree rooted at ``root``.

    ``rules`` restricts the run to the named rule ids (default: all
    registered) and ``ignore`` then drops rule ids from that selection
    — CI granularity without touching suppressions or the baseline.
    ``baseline_path`` defaults to ``lint-baseline.json`` under the root
    when that file exists.  Unparseable modules surface as ``parse``
    findings rather than aborting the run.
    """
    root = Path(root).resolve() if root is not None else default_root()
    available = registered_rules()
    if rules is None:
        selected = list(available)
    else:
        selected = list(rules)
        unknown = [r for r in selected if r not in available]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; "
                f"available: {sorted(available)}")
    if ignore is not None:
        dropped = list(ignore)
        unknown = [r for r in dropped if r not in available]
        if unknown:
            raise ValueError(
                f"unknown rule id(s) {unknown}; "
                f"available: {sorted(available)}")
        selected = [r for r in selected if r not in dropped]
    tree = load_tree(root)

    raw: list[Finding] = []
    for sf in tree.files:
        if sf.error is not None:
            raw.append(Finding(rule="parse", severity="error", path=sf.rel,
                               line=1, symbol=sf.rel,
                               message=f"could not parse: {sf.error}"))
    for rule_id in selected:
        raw.extend(available[rule_id]().check(tree))
    raw.sort(key=lambda f: (f.path, f.line, f.rule, f.message))

    if baseline_path is None:
        baseline_path = root / BASELINE_NAME
    grandfathered = load_baseline(Path(baseline_path))

    result = LintResult(root=str(root), rules=selected)
    for f in raw:
        sf = tree.by_rel.get(f.path)
        if sf is not None and sf.suppresses(f.line, f.rule):
            result.suppressed.append(f)
        elif f.fingerprint in grandfathered:
            result.baselined.append(f)
        else:
            result.findings.append(f)
    return result
