"""ravelint: project-specific static analysis for the reproduction.

An AST-based invariant checker over the whole repository tree.  Generic
linters check style; this package checks the *contracts* the
reproduction's headline claims rest on: simulation determinism (no wall
clocks, no unseeded RNGs), metric-name agreement between producers and
consumers, shared event/alert-kind vocabularies, wire-protocol
frame/unframe symmetry, and ``__all__`` drift.

Run it as ``python -m repro lint`` (see ``docs/ANALYSIS.md``) or use the
importable API::

    from repro.analysis import run_lint

    result = run_lint()                       # whole repo, all rules
    assert not result.findings

Checkers are pluggable: subclass :class:`Checker`, decorate with
:func:`register`, import the module from
:mod:`repro.analysis.checkers`.
"""

from __future__ import annotations

from repro.analysis.core import (
    BASELINE_NAME,
    Checker,
    Finding,
    LintResult,
    SourceFile,
    SourceTree,
    default_root,
    load_baseline,
    load_tree,
    register,
    registered_rules,
    run_lint,
    write_baseline,
)
from repro.analysis.reporters import render_json, render_text

__all__ = [
    "BASELINE_NAME",
    "Checker",
    "Finding",
    "LintResult",
    "SourceFile",
    "SourceTree",
    "default_root",
    "load_baseline",
    "load_tree",
    "register",
    "registered_rules",
    "run_lint",
    "write_baseline",
    "render_json",
    "render_text",
]
