"""The registry-browser GUI model (Figure 4).

"We use a simple client GUI to examine a UDDI registry, which then reports
on what instances are available at each resource. ... The GUI also has the
option of creating new instances, by clicking on the 'Create new instance'
service instance, in italics at the bottom of each service instance
listing.  This permits the entry of a data URL to create a data service, or
the URL of the data service instance to create a new render service."

:class:`RegistryBrowser` renders the textual tree the figure shows and
implements both create actions against live containers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DiscoveryError, ServiceError
from repro.services.uddi import UddiRegistry


@dataclass
class BrowserRow:
    """One line of the browser tree."""

    depth: int
    text: str
    action: str | None = None     # "create-data" | "create-render" | None

    def render(self) -> str:
        prefix = "  " * self.depth
        text = f"*{self.text}*" if self.action else self.text  # italics
        return prefix + text


class RegistryBrowser:
    """The Figure 4 browser: machines → services → instances (+ create)."""

    def __init__(self, registry: UddiRegistry,
                 containers: dict[str, object],
                 data_services: dict[str, object] | None = None,
                 render_services: dict[str, object] | None = None) -> None:
        #: host name → ServiceContainer
        self.registry = registry
        self.containers = dict(containers)
        self.data_services = dict(data_services or {})
        self.render_services = dict(render_services or {})

    # -- view ----------------------------------------------------------------------

    def rows(self, business_name: str) -> list[BrowserRow]:
        business = self.registry.find_business(business_name)
        rows: list[BrowserRow] = [BrowserRow(0, business.name)]
        hosts = sorted({b.access_point.host
                        for s in business.services for b in s.bindings})
        for host in hosts:
            rows.append(BrowserRow(1, host))
            container = self.containers.get(host)
            services_here = [
                s for s in business.services
                if any(b.access_point.host == host for b in s.bindings)]
            for service in sorted(services_here, key=lambda s: s.name):
                rows.append(BrowserRow(2, service.name))
                if container is not None:
                    kind = ("data" if "Data" in service.name else "render")
                    for inst in container.instances(kind):
                        rows.append(BrowserRow(3, inst.label))
                    rows.append(BrowserRow(
                        3, "Create new instance",
                        action=f"create-{kind}"))
        return rows

    def render_text(self, business_name: str) -> str:
        """The whole browser as text (what Figure 4 screenshots)."""
        return "\n".join(row.render() for row in self.rows(business_name))

    # -- create actions ----------------------------------------------------------------

    def create_data_instance(self, host: str, data_url: str) -> str:
        """'Entry of a data URL to create a data service' instance.

        Loads the model behind ``data_url`` into the host's data service as
        a new session; returns the session id.
        """
        service = self.data_services.get(host)
        if service is None:
            raise DiscoveryError(f"no data service runs on {host!r}")
        from pathlib import Path

        from repro.data.obj import read_obj
        from repro.data.ply import read_ply
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.tree import SceneTree

        path = Path(data_url.removeprefix("file://"))
        if path.suffix == ".obj":
            mesh = read_obj(path)
        elif path.suffix == ".ply":
            mesh = read_ply(path)
        else:
            raise ServiceError(f"unsupported data URL {data_url!r}")
        tree = SceneTree(name=path.stem)
        tree.add(MeshNode(mesh))
        session_id = path.stem
        service.create_session(session_id, tree)
        return session_id

    def create_render_instance(self, host: str, data_service_host: str,
                               session_id: str):
        """'The URL of the data service instance to create a new render
        service (as a render service needs a data service to bootstrap
        from)'.  Returns (render session, bootstrap timing)."""
        render_service = self.render_services.get(host)
        if render_service is None:
            raise DiscoveryError(f"no render service runs on {host!r}")
        data_service = self.data_services.get(data_service_host)
        if data_service is None:
            raise DiscoveryError(
                f"no data service runs on {data_service_host!r}")
        return render_service.create_render_session(data_service, session_id)
