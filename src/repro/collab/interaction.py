"""Interrogation-based interaction.

"Our current GUI enables users to carry out actions with specific objects
(such as the user's camera), with selected objects or relative to selected
objects (such as rotate the camera around a selected object).  The GUI
interrogates objects for any supported interactions, and reflects this in
the drop-down menus; all interactions are based on clicking to select /
deselect an object, and dragging.  ...  The interrogation approach was
selected as this permits alterations of the supported interactions without
affecting any part of the GUI or underlying message transport."

:func:`discover_menu` is the interrogation; :class:`InteractionController`
maps (selection, verb, drag) to scene updates, so new node types with new
``supported_interactions`` work without touching this file — the property
the paper designed for.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import SceneGraphError
from repro.scenegraph.nodes import (
    CameraNode,
    MeshNode,
    SceneNode,
    TransformNode,
)
from repro.scenegraph.picking import Ray, pick_tree
from repro.scenegraph.tree import SceneTree
from repro.scenegraph.updates import SceneUpdate, SetCamera, SetTransform


@dataclass(frozen=True)
class MenuEntry:
    """One drop-down entry the GUI shows for a selected object."""

    verb: str
    target_id: int
    target_name: str


def discover_menu(node: SceneNode) -> list[MenuEntry]:
    """Interrogate a node for its supported interactions."""
    return [MenuEntry(verb=verb, target_id=node.node_id,
                      target_name=node.name)
            for verb in node.supported_interactions()]


class InteractionController:
    """Maps click-and-drag gestures to scene updates.

    With a ``publish`` callback (normally the data service's
    ``publish_update`` partially applied to the session), every update an
    object-verb gesture generates — including the structural splice that
    wraps a bare node in a transform — is published automatically, so
    collaborators' copies stay consistent.  Camera gestures return their
    update but are not auto-published (the camera may be local-only).
    """

    def __init__(self, tree: SceneTree, user: str = "",
                 publish=None) -> None:
        self.tree = tree
        self.user = user
        self.publish = publish
        self.selection: SceneNode | None = None

    # -- selection ----------------------------------------------------------------

    def click(self, camera: CameraNode, px: float, py: float,
              width: int, height: int) -> SceneNode | None:
        """Click to select (or deselect when the same object is hit again)."""
        ray = Ray.through_pixel(camera, px, py, width, height)
        hit = pick_tree(ray, self.tree)
        if hit is None or hit.node is None:
            self.selection = None
        elif hit.node is self.selection:
            self.selection = None          # click again to deselect
        else:
            self.selection = hit.node
        return self.selection

    def menu(self) -> list[MenuEntry]:
        """The drop-down for the current selection (empty menu when none)."""
        if self.selection is None:
            return []
        return discover_menu(self.selection)

    # -- verbs ---------------------------------------------------------------------

    def drag(self, verb: str, camera: CameraNode,
             dx: float, dy: float) -> SceneUpdate | None:
        """Perform a drag gesture for a verb; returns the resulting update.

        Camera verbs mutate the camera and return a :class:`SetCamera`;
        object verbs return a :class:`SetTransform` against the selection's
        transform (wrapping the object in one if needed).  The update has
        already been applied locally — publish it to share.
        """
        if verb in ("orbit", "zoom", "pan", "rotate-around-selection"):
            return self._camera_verb(verb, camera, dx, dy)
        if self.selection is None:
            raise SceneGraphError(f"verb {verb!r} needs a selected object")
        if verb not in self.selection.supported_interactions():
            raise SceneGraphError(
                f"{self.selection.name!r} does not support {verb!r}")
        if verb in ("translate", "rotate", "scale"):
            return self._object_verb(verb, camera, dx, dy)
        if verb in ("select", "rename", "recolor"):
            return None  # dialog verbs: see rename() / recolor()
        raise SceneGraphError(f"unknown verb {verb!r}")

    # -- dialog verbs ------------------------------------------------------------

    def rename(self, new_name: str) -> SceneUpdate:
        """The rename dialog: set the selection's name."""
        from repro.scenegraph.updates import SetProperty

        if self.selection is None:
            raise SceneGraphError("rename needs a selected object")
        update = SetProperty(node_id=self.selection.node_id,
                             origin=self.user, field_name="name",
                             value=str(new_name))
        update.apply(self.tree)
        if self.publish is not None:
            self.publish(update)
        return update

    def recolor(self, rgb) -> SceneUpdate:
        """The recolor dialog: flat-tint the selected mesh's vertices."""
        from repro.scenegraph.nodes import MeshNode
        from repro.scenegraph.updates import ModifyGeometry

        node = self.selection
        if not isinstance(node, MeshNode):
            raise SceneGraphError("recolor needs a selected mesh")
        rgb = np.clip(np.asarray(rgb, dtype=np.float32), 0.0, 1.0)
        if rgb.shape != (3,):
            raise SceneGraphError(f"recolor expects RGB; got {rgb!r}")
        colors = np.broadcast_to(rgb, (node.mesh.n_vertices, 3)).copy()
        update = ModifyGeometry(node_id=node.node_id, origin=self.user,
                                fields={"vertices": node.mesh.vertices,
                                        "faces": node.mesh.faces,
                                        "colors": colors})
        update.apply(self.tree)
        self.selection = self.tree.node(node.node_id)
        if self.publish is not None:
            self.publish(update)
        return update

    # -- camera verbs -----------------------------------------------------------------

    def _camera_verb(self, verb: str, camera: CameraNode,
                     dx: float, dy: float) -> SceneUpdate:
        if verb == "orbit":
            camera.orbit(azimuth=dx * 2 * np.pi,
                         elevation=dy * np.pi)
        elif verb == "zoom":
            rel = camera.position - camera.target
            camera.position = camera.target + rel * float(
                np.clip(1.0 - dy, 0.2, 5.0))
        elif verb == "pan":
            fwd = camera.view_direction()
            up = camera.up / np.linalg.norm(camera.up)
            right = np.cross(fwd, up)
            span = np.linalg.norm(camera.position - camera.target)
            shift = (-dx * right + dy * up) * span
            camera.position = camera.position + shift
            camera.target = camera.target + shift
        elif verb == "rotate-around-selection":
            if self.selection is None:
                raise SceneGraphError(
                    "rotate-around-selection needs a selected object")
            pivot = self._selection_center()
            camera.target = pivot
            camera.orbit(azimuth=dx * 2 * np.pi, elevation=dy * np.pi)
        return SetCamera.of(camera, origin=self.user)

    def _selection_center(self) -> np.ndarray:
        node = self.selection
        if isinstance(node, MeshNode):
            world = self.tree.world_transform(node)
            c = node.mesh.centroid().astype(np.float64)
            return world[:3, :3] @ c + world[:3, 3]
        if hasattr(node, "position"):
            return np.asarray(node.position, dtype=np.float64)
        return np.zeros(3)

    # -- object verbs -------------------------------------------------------------------

    def _ensure_transform(self) -> TransformNode:
        """The selection's transform parent, wrapping the node if absent.

        The splice (parent -> new transform -> node) is expressed as scene
        updates so it replays identically on every collaborator's copy:
        AddNode(transform), RemoveNode(node), AddNode(node under the
        transform, keeping its id).
        """
        from repro.scenegraph.nodes import node_to_wire
        from repro.scenegraph.updates import AddNode, RemoveNode

        node = self.selection
        assert node is not None
        if isinstance(node.parent, TransformNode):
            return node.parent
        parent = node.parent
        if parent is None:
            raise SceneGraphError("cannot transform the root")
        node_id = node.node_id      # RemoveNode resets the instance's id
        xf_id = max(n.node_id for n in self.tree) + 1
        payload = node_to_wire(node)
        splice = [
            AddNode.of(TransformNode(name=f"{node.name}:xf"),
                       parent_id=parent.node_id, node_id=xf_id,
                       origin=self.user),
            RemoveNode(node_id=node_id, origin=self.user),
            AddNode(node_id=node_id, origin=self.user,
                    parent_id=xf_id, node_payload=payload),
        ]
        for update in splice:
            update.apply(self.tree)
            if self.publish is not None:
                self.publish(update)
        self.selection = self.tree.node(node_id)   # the re-added copy
        return self.tree.node(xf_id)

    def _object_verb(self, verb: str, camera: CameraNode,
                     dx: float, dy: float) -> SceneUpdate:
        xf = self._ensure_transform()
        m = xf.matrix.copy()
        if verb == "translate":
            fwd = camera.view_direction()
            up = camera.up / np.linalg.norm(camera.up)
            right = np.cross(fwd, up)
            span = np.linalg.norm(camera.position - camera.target)
            m[:3, 3] += (dx * right - dy * up) * span * 0.5
        elif verb == "rotate":
            angle = dx * 2 * np.pi
            c, s = np.cos(angle), np.sin(angle)
            rot = np.eye(4)
            rot[0, 0], rot[0, 1], rot[1, 0], rot[1, 1] = c, -s, s, c
            m = m @ rot
        elif verb == "scale":
            factor = float(np.clip(1.0 + dy, 0.1, 10.0))
            m[:3, :3] *= factor
        xf.set_matrix(m)
        update = SetTransform(node_id=xf.node_id, origin=self.user,
                              matrix=m)
        if self.publish is not None:
            self.publish(update)
        return update
