"""Collaboration layer: avatars, interrogation-based interaction, registry GUI."""

from repro.collab.avatar import AvatarManager
from repro.collab.interaction import (
    InteractionController,
    MenuEntry,
    discover_menu,
)
from repro.collab.gui import RegistryBrowser

__all__ = [
    "AvatarManager",
    "InteractionController",
    "MenuEntry",
    "discover_menu",
    "RegistryBrowser",
]
