"""Avatar management for collaborative sessions.

"Clients are represented in the dataset by an avatar — a simple graphical
object to indicate the position and view of the client" (paper §3.2.4);
Figure 3 shows "a cone pointing in the direction of the user's view, and
the name of the user or host".

The :class:`AvatarManager` owns the avatar lifecycle on top of a data
service session: join (AddNode), camera-follows (MoveAvatar), leave
(RemoveNode), and the echo-suppression rule that a user never renders their
own avatar.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SessionError
from repro.scenegraph.nodes import AvatarNode, CameraNode
from repro.scenegraph.updates import AddNode, MoveAvatar, RemoveNode


@dataclass(frozen=True)
class CollaboratorView:
    """What one user sees of another: label + pose."""

    user: str
    host: str
    position: tuple[float, float, float]
    view_direction: tuple[float, float, float]


class AvatarManager:
    """Avatar lifecycle for one data-service session."""

    def __init__(self, data_service, session_id: str) -> None:
        self.data_service = data_service
        self.session_id = session_id
        #: user → avatar node id
        self._avatars: dict[str, int] = {}

    @property
    def master_tree(self):
        return self.data_service.session(self.session_id).tree

    def join(self, user: str, host: str, camera: CameraNode) -> int:
        """Publish a new avatar for a user; returns its node id."""
        if user in self._avatars:
            raise SessionError(f"{user!r} already has an avatar")
        tree = self.master_tree
        avatar = AvatarNode(user=user, host=host,
                            position=camera.position.copy(),
                            view_direction=camera.view_direction())
        node_id = max((n.node_id for n in tree), default=0) + 1
        update = AddNode.of(avatar, parent_id=tree.root.node_id,
                            node_id=node_id, origin=user)
        self.data_service.publish_update(self.session_id, update)
        self._avatars[user] = node_id
        return node_id

    def follow(self, user: str, camera: CameraNode) -> None:
        """Move a user's avatar to track their camera."""
        node_id = self._require(user)
        update = MoveAvatar(node_id=node_id, origin=user,
                            position=camera.position.copy(),
                            view_direction=camera.view_direction())
        self.data_service.publish_update(self.session_id, update)

    def leave(self, user: str) -> None:
        node_id = self._avatars.pop(self._check_user(user))
        update = RemoveNode(node_id=node_id, origin=user)
        self.data_service.publish_update(self.session_id, update)

    def collaborators(self, excluding: str | None = None
                      ) -> list[CollaboratorView]:
        """Everyone's avatar pose (minus the asking user's own)."""
        tree = self.master_tree
        out = []
        for user, node_id in self._avatars.items():
            if user == excluding or node_id not in tree:
                continue
            node = tree.node(node_id)
            assert isinstance(node, AvatarNode)
            out.append(CollaboratorView(
                user=node.user, host=node.host,
                position=tuple(float(x) for x in node.position),
                view_direction=tuple(float(x)
                                     for x in node.view_direction)))
        return out

    def avatar_node_ids(self, excluding: str | None = None) -> set[int]:
        return {nid for user, nid in self._avatars.items()
                if user != excluding}

    def _check_user(self, user: str) -> str:
        if user not in self._avatars:
            raise SessionError(f"{user!r} has no avatar in this session")
        return user

    def _require(self, user: str) -> int:
        return self._avatars[self._check_user(user)]
