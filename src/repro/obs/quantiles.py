"""Histogram quantile estimation from cumulative buckets.

Rendering offered as a service is judged on latency *percentiles*, not
means: a mean queue wait of 0.1 s hides the tenant who waited 2 s.  The
monitoring plane scrapes Prometheus-style cumulative bucket counts
(``<name>_bucket{le=...}``) over the simulated network; this module turns
them back into tail estimates the alert rules and SLO report can target:

- :func:`estimate_quantile` — the classic ``histogram_quantile``
  algorithm: find the bucket the requested rank lands in and interpolate
  linearly inside it.  A rank landing in the ``+Inf`` bucket is clamped
  to the largest finite bound (the estimate cannot exceed what the
  buckets resolve).
- :func:`merge_cumulative` — federation: sum per-``le`` counts across
  several services' buckets, so a grid-wide p95 is computed from the
  *merged distribution* rather than averaging per-service estimates
  (averaging percentiles is statistically meaningless).
- :func:`format_le` / :func:`parse_le` — the canonical ``%g``-style
  bucket-bound labels shared by the JSON snapshot and the Prometheus
  exposition format, so ``0.001 * 2.5`` renders ``"0.0025"`` and not the
  ``repr`` drift ``"0.0025000000000000001"``.

Everything here is pure arithmetic on plain data: no clocks, no network,
and no ``repro`` imports, so :mod:`repro.obs.metrics` can depend on it
without a cycle.
"""

from __future__ import annotations

_INF = float("inf")

#: the quantiles the monitoring plane derives per histogram family
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def format_le(bound: float) -> str:
    """Canonical text for a bucket's upper bound (``le`` label).

    ``%g``-style shortest-ish formatting with 12 significant digits —
    enough to round-trip every bucket layout in use while never emitting
    ``repr`` noise like ``0.0025000000000000001``.
    """
    bound = float(bound)
    if bound != bound:                       # NaN never equals itself
        return "NaN"
    if bound == _INF:
        return "+Inf"
    if bound == -_INF:
        return "-Inf"
    return f"{bound:.12g}"


def parse_le(text: str) -> float:
    """Invert :func:`format_le` (accepts legacy ``repr`` keys too)."""
    if text == "+Inf":
        return _INF
    if text == "-Inf":
        return -_INF
    return float(text)


def quantile_suffix(q: float) -> str:
    """Flattened-metric suffix for a quantile: ``0.95`` → ``"p95"``."""
    return "p" + f"{q * 100:g}".replace(".", "_")


def estimate_quantile(cumulative, q: float) -> float:
    """Estimate the ``q``-quantile from ``(le, cumulative count)`` pairs.

    Linear interpolation within the bucket the rank lands in, taking the
    first bucket's lower edge as 0 (latency histograms never go
    negative); a rank landing in the ``+Inf`` bucket is clamped to the
    largest finite bound.  Empty input (or zero observations) estimates
    0.0.
    """
    if not 0.0 < q < 1.0:
        raise ValueError(f"quantile must be in (0, 1), got {q!r}")
    pairs = sorted((float(le), int(n)) for le, n in cumulative)
    if not pairs:
        return 0.0
    total = pairs[-1][1]
    if total <= 0:
        return 0.0
    rank = q * total
    prev_bound: float | None = None
    prev_count = 0
    for le, count in pairs:
        if count >= rank:
            if le == _INF:
                # the buckets cannot resolve beyond their largest finite
                # bound — clamp rather than extrapolate to infinity
                return prev_bound if prev_bound is not None else 0.0
            if le <= 0 and prev_bound is None:
                return le
            lower = prev_bound if prev_bound is not None else 0.0
            fraction = (rank - prev_count) / (count - prev_count)
            return lower + (le - lower) * fraction
        prev_bound, prev_count = le, count
    return prev_bound if prev_bound is not None else 0.0


def merge_cumulative(histograms) -> list[tuple[float, int]]:
    """Sum several histograms' cumulative buckets into one distribution.

    ``histograms`` is an iterable of ``(le, cumulative count)`` pair
    iterables.  The merged layout is the sorted union of every input's
    bounds; each input contributes, at every bound, its count at its own
    largest ``le`` not exceeding that bound (a step-function read — exact
    whenever the inputs share a bucket layout, which is the monitoring
    plane's normal case).
    """
    prepared: list[list[tuple[float, int]]] = []
    for cumulative in histograms:
        pairs = sorted((float(le), int(n)) for le, n in cumulative)
        if pairs:
            prepared.append(pairs)
    bounds = sorted({le for pairs in prepared for le, _ in pairs})
    merged: list[tuple[float, int]] = []
    for bound in bounds:
        total = 0
        for pairs in prepared:
            at = 0
            for le, count in pairs:
                if le > bound:
                    break
                at = count
            total += at
        merged.append((bound, total))
    return merged


def buckets_from_snapshot(entry: dict) -> list[tuple[float, int]]:
    """Cumulative pairs from a snapshot series' ``buckets`` dict.

    Snapshot bucket keys are :func:`format_le` text (``"0.0025"``,
    ``"+Inf"``); :func:`parse_le` also accepts legacy ``repr`` keys, so
    payloads recorded before the canonical formatting still parse.
    """
    buckets = entry.get("buckets") or {}
    return sorted((parse_le(text), int(count))
                  for text, count in buckets.items())


def bucket_quantiles(cumulative, quantiles=DEFAULT_QUANTILES
                     ) -> dict[str, float]:
    """``{"p50": ..., "p95": ..., "p99": ...}`` from cumulative pairs."""
    pairs = list(cumulative)
    return {quantile_suffix(q): estimate_quantile(pairs, q)
            for q in quantiles}


__all__ = [
    "DEFAULT_QUANTILES",
    "format_le",
    "parse_le",
    "quantile_suffix",
    "estimate_quantile",
    "merge_cumulative",
    "buckets_from_snapshot",
    "bucket_quantiles",
]
