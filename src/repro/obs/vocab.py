"""Shared string vocabularies for the monitoring plane.

The monitoring -> alerting -> scaling loop is glued together by short
string tags: flight-recorder event kinds, alert kinds consumed by the
migrator and autoscaler, service roles carried in telemetry payloads,
and the grid-wide metric names the monitor *computes* (rather than
registering through a :class:`~repro.obs.metrics.MetricsRegistry`).
Before this module each tag was a bare literal repeated across files,
and a typo on either side of a producer/consumer pair failed silently.

Everything lives here once, as plain constants grouped into frozensets,
and ``ravelint`` (:mod:`repro.analysis`) statically checks every call
site against these sets: a ``recorder.note(...)`` kind, an
``AlertRule(kind=...)``, or a ``.kind == "..."`` comparison that names a
string outside its vocabulary is a lint error.  This module must stay
import-free (constants only) so both the runtime and the AST-based
checker can treat it as the single source of truth.
"""

from __future__ import annotations

# -- flight-recorder event kinds ------------------------------------------------------
# (:meth:`repro.obs.recorder.FlightRecorder.note`)

EVENT_PLACEMENT = "placement"
EVENT_MIGRATION = "migration"
EVENT_RECOVERY = "recovery"
EVENT_RELEASE = "release"
EVENT_LEASE_TRANSITION = "lease-transition"
EVENT_CODEC_SWITCH = "codec-switch"

# admission-control decisions (:class:`repro.core.grid.SessionGridManager`)
EVENT_ADMIT = "admit"
EVENT_QUEUE = "queue"
EVENT_REJECT = "reject"
EVENT_SHED = "shed"
EVENT_RESTORE = "restore"

#: dynamic kinds are namespaced: a fixed prefix plus a runtime detail
#: (``fault:crash``, ``scale:grow``, ``telemetry:subscribe``,
#: ``farm:requeue``, ``alert:tail-latency``)
EVENT_FAULT_PREFIX = "fault:"
EVENT_SCALE_PREFIX = "scale:"
EVENT_TELEMETRY_PREFIX = "telemetry:"
EVENT_FARM_PREFIX = "farm:"
EVENT_ALERT_PREFIX = "alert:"
EVENT_SANITIZER_PREFIX = "sanitizer:"

EVENT_KINDS = frozenset({
    EVENT_PLACEMENT,
    EVENT_MIGRATION,
    EVENT_RECOVERY,
    EVENT_RELEASE,
    EVENT_LEASE_TRANSITION,
    EVENT_CODEC_SWITCH,
    EVENT_ADMIT,
    EVENT_QUEUE,
    EVENT_REJECT,
    EVENT_SHED,
    EVENT_RESTORE,
})

EVENT_PREFIXES = frozenset({
    EVENT_FAULT_PREFIX,
    EVENT_SCALE_PREFIX,
    EVENT_TELEMETRY_PREFIX,
    EVENT_FARM_PREFIX,
    EVENT_ALERT_PREFIX,
    EVENT_SANITIZER_PREFIX,
})

# -- alert kinds ----------------------------------------------------------------------
# (:class:`repro.obs.rules.AlertRule`; consumed by WorkloadMigrator.plan
# and RecruitmentAutoscaler.evaluate)

ALERT_OVERLOAD = "overload"
ALERT_UNDERLOAD = "underload"
GRID_OVERLOAD_KIND = "grid-overload"
GRID_UNDERLOAD_KIND = "grid-underload"
GRID_SATURATED_KIND = "grid-saturated"
FARM_BACKLOG_KIND = "farm-backlog"
FARM_STARVATION_KIND = "farm-starvation"
TAIL_LATENCY_KIND = "tail-latency"

ALERT_KINDS = frozenset({
    ALERT_OVERLOAD,
    ALERT_UNDERLOAD,
    GRID_OVERLOAD_KIND,
    GRID_UNDERLOAD_KIND,
    GRID_SATURATED_KIND,
    FARM_BACKLOG_KIND,
    FARM_STARVATION_KIND,
    TAIL_LATENCY_KIND,
})

# -- service roles --------------------------------------------------------------------
# (``ServiceTelemetry.kind`` and the ``kind`` field of scrape payloads)

SERVICE_RENDER = "render"
SERVICE_DATA = "data"
SERVICE_REGISTRY = "registry"
SERVICE_MONITOR = "monitor"
SERVICE_CLIENT = "client"
SERVICE_GRID = "grid"
SERVICE_FARM = "farm"

SERVICE_KINDS = frozenset({
    SERVICE_RENDER,
    SERVICE_DATA,
    SERVICE_REGISTRY,
    SERVICE_MONITOR,
    SERVICE_CLIENT,
    SERVICE_GRID,
    SERVICE_FARM,
})

# -- per-service telemetry event kinds ------------------------------------------------
# (:meth:`repro.obs.telemetry.ServiceTelemetry.event`; forwarded into the
# flight recorder under ``EVENT_TELEMETRY_PREFIX``)

TELEMETRY_SUBSCRIBE = "subscribe"
TELEMETRY_SESSION_CREATED = "render-session-created"
TELEMETRY_SESSION_CLOSED = "render-session-closed"

TELEMETRY_EVENT_KINDS = frozenset({
    TELEMETRY_SUBSCRIBE,
    TELEMETRY_SESSION_CREATED,
    TELEMETRY_SESSION_CLOSED,
})

# -- metric family kinds --------------------------------------------------------------
# (:class:`repro.obs.metrics.MetricFamily` and snapshot payloads)

METRIC_COUNTER = "counter"
METRIC_GAUGE = "gauge"
METRIC_HISTOGRAM = "histogram"

METRIC_KINDS = frozenset({
    METRIC_COUNTER,
    METRIC_GAUGE,
    METRIC_HISTOGRAM,
})

#: label keys whose value space is bounded by construction rather than
#: by a closed literal set — the auditable exemption list for the
#: ``label-cardinality`` lint rule.  ``link``: one series per simulated
#: topology edge; the topology is finite and fixed per scenario.
BOUNDED_LABEL_KEYS = frozenset({
    "link",
})

# -- derived metric names -------------------------------------------------------------
# Grid-wide aggregates the monitor computes from scraped payloads.  They
# never pass through a MetricsRegistry call site, so the metric-registry
# checker treats this frozenset as their registration.

GRID_RENDER_SERVICES = "rave_grid_render_services"
GRID_MEAN_FPS = "rave_grid_mean_fps"
GRID_MIN_FPS = "rave_grid_min_fps"
GRID_OVERLOADED_FRACTION = "rave_grid_overloaded_fraction"
GRID_MEAN_UTILISATION = "rave_grid_mean_utilisation"
GRID_MAX_UTILISATION = "rave_grid_max_utilisation"
GRID_QUEUE_DEPTH = "rave_grid_queue_depth"
GRID_REJECTION_RATE = "rave_grid_rejection_rate"
GRID_FARM_BACKLOG = "rave_grid_farm_backlog"
GRID_FARM_THROUGHPUT = "rave_grid_farm_throughput"
GRID_FARM_STARVED = "rave_grid_farm_starved_jobs"

# Federated tail-latency bases: the monitor merges every service's
# cumulative buckets per ``le`` and publishes grid-wide quantiles under
# ``<base>_p95`` / ``<base>_p99`` (suffixes resolve to the base name, so
# declaring the base covers the derived quantile keys).
GRID_QUEUE_WAIT = "rave_grid_queue_wait_seconds"
GRID_FARM_RENDER = "rave_grid_farm_render_seconds"

DERIVED_METRICS = frozenset({
    GRID_RENDER_SERVICES,
    GRID_MEAN_FPS,
    GRID_MIN_FPS,
    GRID_OVERLOADED_FRACTION,
    GRID_MEAN_UTILISATION,
    GRID_MAX_UTILISATION,
    GRID_QUEUE_DEPTH,
    GRID_REJECTION_RATE,
    GRID_FARM_BACKLOG,
    GRID_FARM_THROUGHPUT,
    GRID_FARM_STARVED,
    GRID_QUEUE_WAIT,
    GRID_FARM_RENDER,
})

# -- admission-plane scraped gauge names ----------------------------------------------
# Registered (as string literals, for the metric-registry checker) by the
# SessionGridManager's telemetry; the monitor maps the flat scraped values
# onto the GRID_QUEUE_DEPTH / GRID_REJECTION_RATE derived aggregates.

ADMISSION_QUEUE_DEPTH = "rave_queue_depth"
ADMISSION_REJECTION_RATE = "rave_admission_rejection_rate"

# -- render-farm scraped gauge names --------------------------------------------------
# Registered (as string literals) by the FrameQueueService's telemetry;
# the monitor maps queue depth / throughput onto the GRID_FARM_BACKLOG /
# GRID_FARM_THROUGHPUT derived aggregates the farm-backlog rule fires on.

FARM_QUEUE_DEPTH = "rave_farm_queue_depth"
FARM_FRAMES_PER_SECOND = "rave_farm_frames_per_second"
FARM_STARVED_JOBS = "rave_farm_starved_jobs"

#: every kind a ``.kind == "..."`` comparison may legitimately name
KNOWN_KINDS = (EVENT_KINDS | ALERT_KINDS | SERVICE_KINDS
               | TELEMETRY_EVENT_KINDS | METRIC_KINDS)

__all__ = [
    "EVENT_PLACEMENT",
    "EVENT_MIGRATION",
    "EVENT_RECOVERY",
    "EVENT_RELEASE",
    "EVENT_LEASE_TRANSITION",
    "EVENT_CODEC_SWITCH",
    "EVENT_ADMIT",
    "EVENT_QUEUE",
    "EVENT_REJECT",
    "EVENT_SHED",
    "EVENT_RESTORE",
    "EVENT_FAULT_PREFIX",
    "EVENT_SCALE_PREFIX",
    "EVENT_TELEMETRY_PREFIX",
    "EVENT_FARM_PREFIX",
    "EVENT_ALERT_PREFIX",
    "EVENT_SANITIZER_PREFIX",
    "EVENT_KINDS",
    "EVENT_PREFIXES",
    "ALERT_OVERLOAD",
    "ALERT_UNDERLOAD",
    "GRID_OVERLOAD_KIND",
    "GRID_UNDERLOAD_KIND",
    "GRID_SATURATED_KIND",
    "FARM_BACKLOG_KIND",
    "FARM_STARVATION_KIND",
    "TAIL_LATENCY_KIND",
    "ALERT_KINDS",
    "SERVICE_RENDER",
    "SERVICE_DATA",
    "SERVICE_REGISTRY",
    "SERVICE_MONITOR",
    "SERVICE_CLIENT",
    "SERVICE_GRID",
    "SERVICE_FARM",
    "SERVICE_KINDS",
    "TELEMETRY_SUBSCRIBE",
    "TELEMETRY_SESSION_CREATED",
    "TELEMETRY_SESSION_CLOSED",
    "TELEMETRY_EVENT_KINDS",
    "METRIC_COUNTER",
    "METRIC_GAUGE",
    "METRIC_HISTOGRAM",
    "METRIC_KINDS",
    "BOUNDED_LABEL_KEYS",
    "GRID_RENDER_SERVICES",
    "GRID_MEAN_FPS",
    "GRID_MIN_FPS",
    "GRID_OVERLOADED_FRACTION",
    "GRID_MEAN_UTILISATION",
    "GRID_MAX_UTILISATION",
    "GRID_QUEUE_DEPTH",
    "GRID_REJECTION_RATE",
    "GRID_FARM_BACKLOG",
    "GRID_FARM_THROUGHPUT",
    "GRID_FARM_STARVED",
    "GRID_QUEUE_WAIT",
    "GRID_FARM_RENDER",
    "DERIVED_METRICS",
    "ADMISSION_QUEUE_DEPTH",
    "ADMISSION_REJECTION_RATE",
    "FARM_QUEUE_DEPTH",
    "FARM_FRAMES_PER_SECOND",
    "FARM_STARVED_JOBS",
    "KNOWN_KINDS",
]
