"""Exporters: Prometheus text format and JSON snapshots.

Two consumers, two formats:

- :func:`prometheus_text` renders a registry in the Prometheus exposition
  format (``# HELP`` / ``# TYPE`` headers, ``_bucket``/``_sum``/``_count``
  expansion for histograms) so a scrape endpoint or a text diff can read
  it;
- :func:`snapshot` / :func:`write_snapshot` produce the plain-JSON form
  the benchmark harness stores as a trajectory artifact: simulated time,
  every metric family, every span, and the reassembled per-frame chains.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import format_le
from repro.obs.tracing import Tracer


def _format_value(value: float) -> str:
    if value != value:                       # NaN never equals itself
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if value == int(value):
        return str(int(value))
    return repr(value)


def _escape_label_value(value) -> str:
    """Prometheus exposition escaping: backslash, double quote, newline."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels_text(labels: dict, extra: dict | None = None) -> str:
    merged = {**labels, **(extra or {})}
    if not merged:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"'
                     for k, v in merged.items())
    return "{" + inner + "}"


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every family in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for label_items, inst in sorted(family.children.items()):
            labels = dict(label_items)
            if family.kind == "histogram":
                for le, count in inst.cumulative_buckets():
                    lines.append(
                        f"{family.name}_bucket"
                        f"{_labels_text(labels, {'le': format_le(le)})}"
                        f" {count}")
                lines.append(f"{family.name}_sum{_labels_text(labels)} "
                             f"{_format_value(inst.sum)}")
                lines.append(f"{family.name}_count{_labels_text(labels)} "
                             f"{inst.count}")
            else:
                lines.append(f"{family.name}{_labels_text(labels)} "
                             f"{_format_value(inst.value)}")
    return "\n".join(lines) + "\n"


def snapshot(registry: MetricsRegistry, tracer: Tracer | None = None,
             clock=None, meta: dict | None = None, source: str = "default",
             recorder=None, extra: dict | None = None) -> dict:
    """One self-describing dict: metrics + spans + per-frame chains.

    ``source`` names the producer: registry-level metadata (family /
    series / sample counts, simulated time) lands under
    ``wall_meta[source]``, so snapshots from different services federate
    with a plain dict union — no key collisions.  ``recorder`` adds the
    flight recorder's dumps; ``extra`` merges caller sections (e.g. a
    monitor-service report) top-level.
    """
    sim_now = clock.now if clock is not None else None
    stats = registry.stats()
    out: dict = {
        "format": "rave-observability-snapshot/1",
        "simulated_seconds": sim_now,
        "registry": stats,
        "wall_meta": {source: {"simulated_seconds": sim_now, **stats}},
        "metrics": registry.snapshot(),
    }
    if meta:
        out["meta"] = dict(meta)
    if tracer is not None:
        out["spans"] = tracer.snapshot()
        out["frames"] = {
            str(frame): [s.name for s in spans]
            for frame, spans in sorted(tracer.chains().items(),
                                       key=lambda kv: str(kv[0]))
        }
        out["spans_dropped"] = tracer.dropped
    if recorder is not None:
        out["flight_recorder"] = {
            "events_seen": recorder.seen,
            "capacity": recorder.capacity,
            "dumps": list(recorder.dumps),
        }
    if extra:
        for key, section in extra.items():
            out[key] = section
    return out


def write_snapshot(path, registry: MetricsRegistry,
                   tracer: Tracer | None = None, clock=None,
                   meta: dict | None = None, source: str = "default",
                   recorder=None, extra: dict | None = None) -> Path:
    """Serialise :func:`snapshot` to ``path`` as indented JSON."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(
        snapshot(registry, tracer, clock, meta, source=source,
                 recorder=recorder, extra=extra),
        indent=2, sort_keys=False) + "\n")
    return target


__all__ = [
    "prometheus_text",
    "snapshot",
    "write_snapshot",
]
