"""Per-service telemetry: the scrapeable side of the monitoring plane.

The process-global :mod:`repro.obs` bundle models a benchmark harness
watching the whole simulation from outside.  RAVE itself is distributed:
each render service, data service and the UDDI registry owns its load
numbers, and anyone who wants them must fetch them *over the network* —
exactly how NetLogger/Ganglia-era grid monitoring fed real schedulers.

:class:`ServiceTelemetry` gives one service its own
:class:`~repro.obs.metrics.MetricsRegistry` plus a bounded event stream.
Gauges that mirror live state (fps, utilisation, session counts) are
refreshed by registered *collectors* at scrape time, so the hot paths
only touch counters/histograms they already compute.  :meth:`scrape`
produces a plain-dict payload; :meth:`scrape_frame` wraps it in the
binary data-plane framing (``services/protocol.py``) so a scrape has a
real wire size and pays simulated transfer cost.

:func:`federate` merges scraped payloads into one labelled metrics dict
— every series gains ``service``/``host`` labels — which is what the
monitor service publishes as its federated snapshot.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.obs.metrics import MetricsRegistry
from repro.obs.quantiles import (
    DEFAULT_QUANTILES,
    buckets_from_snapshot,
    estimate_quantile,
    quantile_suffix,
)

#: payload format tag carried by every scrape
TELEMETRY_FORMAT = "rave-telemetry/1"


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured service-side event (session created, failover, ...)."""

    time: float
    kind: str
    detail: str = ""


class ServiceTelemetry:
    """One service's own metrics registry + bounded event stream."""

    def __init__(self, service: str, host: str, kind: str,
                 event_capacity: int = 256) -> None:
        self.service = service
        self.host = host
        self.kind = kind                     # "render" | "data" | "registry"
        self.registry = MetricsRegistry()
        self._events: deque[TelemetryEvent] = deque(maxlen=event_capacity)
        #: total events ever emitted (ring overflow never hides the count)
        self.events_seen = 0
        self.scrapes = 0
        self._collectors: list = []

    # -- producing ----------------------------------------------------------------

    def add_collector(self, fn) -> None:
        """Register ``fn(registry)`` to refresh gauges at scrape time."""
        self._collectors.append(fn)

    def event(self, kind: str, time: float = 0.0, detail: str = "") -> None:
        self._events.append(TelemetryEvent(time=time, kind=kind,
                                           detail=detail))
        self.events_seen += 1

    def events(self) -> list[TelemetryEvent]:
        return list(self._events)

    def collect(self) -> None:
        """Run every registered collector against the registry."""
        for fn in self._collectors:
            fn(self.registry)

    # -- scraping -----------------------------------------------------------------

    def scrape(self, now: float = 0.0) -> dict:
        """Collect, then return the full payload a scraper would receive."""
        self.collect()
        self.scrapes += 1
        return {
            "format": TELEMETRY_FORMAT,
            "service": self.service,
            "host": self.host,
            "kind": self.kind,
            "time": now,
            "metrics": self.registry.snapshot(),
            "registry": self.registry.stats(),
            "events": [
                {"time": e.time, "kind": e.kind, "detail": e.detail}
                for e in self._events
            ],
            "events_seen": self.events_seen,
            "scrapes": self.scrapes,
        }

    def scrape_frame(self, now: float = 0.0) -> bytes:
        """The scrape as wire bytes (binary framing + JSON payload)."""
        from repro.services.protocol import frame_telemetry

        return frame_telemetry(self.scrape(now))


def flatten_metrics(metrics: dict) -> dict[str, float]:
    """Single-series counter/gauge families as ``{name: value}``.

    This is the view alert rules and SLO targets evaluate: a per-service
    registry keeps its headline gauges label-free, so one number per
    name.  Histograms contribute ``<name>_count`` and ``<name>_sum``
    plus tail estimates (``<name>_p50``/``_p95``/``_p99``, interpolated
    from the scraped cumulative buckets) once they hold observations;
    multi-series families are skipped (rules address scalars).
    """
    flat: dict[str, float] = {}
    for name, family in metrics.items():
        series = family.get("series", [])
        if len(series) != 1 or series[0].get("labels"):
            continue
        entry = series[0]
        if family.get("kind") == "histogram":
            flat[f"{name}_count"] = float(entry["count"])
            flat[f"{name}_sum"] = float(entry["sum"])
            if entry.get("count") and entry.get("buckets"):
                pairs = buckets_from_snapshot(entry)
                for q in DEFAULT_QUANTILES:
                    flat[f"{name}_{quantile_suffix(q)}"] = (
                        estimate_quantile(pairs, q))
        else:
            flat[name] = float(entry["value"])
    return flat


def federate(payloads, stats: dict | None = None) -> dict:
    """Merge scraped payloads into one metrics dict with origin labels.

    Every series from every payload appears under its family name with
    ``service`` and ``host`` labels added, so two services exporting the
    same metric name coexist instead of colliding.

    Two payloads claiming the *same* origin (identical ``service`` and
    ``host``) do collide: the later payload wins (its series replace the
    earlier one's), and the overwrite is counted — pass ``stats`` to
    receive ``{"federate_collisions": n}`` so the monitor can expose the
    loss instead of hiding it.
    """
    merged: dict[str, dict] = {}
    seen_origins: set[tuple[str, str]] = set()
    collisions = 0
    for payload in payloads:
        origin_key = (payload["service"], payload["host"])
        origin = {"service": payload["service"], "host": payload["host"]}
        if origin_key in seen_origins:
            # last-writer-wins, but audited: strip the earlier payload's
            # series before this one lands, and count the overwrite
            collisions += 1
            for family in merged.values():
                family["series"] = [
                    entry for entry in family["series"]
                    if (entry["labels"].get("service"),
                        entry["labels"].get("host")) != origin_key
                ]
        seen_origins.add(origin_key)
        for name, family in payload.get("metrics", {}).items():
            target = merged.setdefault(name, {
                "kind": family.get("kind", ""),
                "help": family.get("help", ""),
                "series": [],
            })
            for entry in family.get("series", []):
                labelled = dict(entry)
                labelled["labels"] = {**entry.get("labels", {}), **origin}
                target["series"].append(labelled)
    if stats is not None:
        stats["federate_collisions"] = (
            stats.get("federate_collisions", 0) + collisions)
    return {name: family for name, family in merged.items()
            if family["series"]}


__all__ = [
    "TELEMETRY_FORMAT",
    "TelemetryEvent",
    "ServiceTelemetry",
    "flatten_metrics",
    "federate",
]
