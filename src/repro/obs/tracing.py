"""Frame tracing: structured spans on the simulated clock.

A :class:`Span` is one named stage with a start and end in *simulated
seconds* (``repro.network.clock`` time) plus free-form attributes; the
streaming and session paths record the paper's pipeline stages —
``render`` → ``encode`` → ``transfer`` → ``composite`` → ``blit`` — with a
``frame`` attribute so a per-frame timeline can be reassembled
(:meth:`Tracer.chains`).

Most instrumented paths compute their timings analytically, so the primary
API is :meth:`Tracer.record` with explicit start/end; :meth:`Tracer.span`
is a clock-driven context manager for code that advances the simulator
while it works.  :class:`NullTracer` is the off-switch: it stores nothing.

Cross-service requests carry a :class:`TraceContext` — a 64-bit trace id
plus the parent span's id, both drawn from a *seeded* RNG so replays are
deterministic.  The context rides the binary frame header
(:mod:`repro.services.protocol`, ``FLAG_TRACE``) and the SOAP envelope
header; every hop records its spans with a ``trace`` attribute, and
:meth:`Tracer.trace` reassembles the whole thin-client → admission →
render → stream journey under one id.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass(frozen=True)
class TraceContext:
    """One request's identity on the wire: trace id + parent span id.

    Both ids are 16-hex-char strings (64 bits).  A context is minted once
    at the request's origin (:func:`new_trace_context`) and re-derived at
    every hop via :meth:`child`, which keeps the trace id and replaces
    the span id — the classic W3C ``traceparent`` shape, shrunk to the
    simulator's needs.
    """

    trace_id: str
    span_id: str

    def child(self, rng) -> "TraceContext":
        """The next hop's context: same trace, fresh span id."""
        return TraceContext(trace_id=self.trace_id, span_id=_hex64(rng))


def _hex64(rng) -> str:
    """16 hex chars from a seeded RNG (deterministic under replay)."""
    return f"{rng.getrandbits(64):016x}"


def new_trace_context(rng) -> TraceContext:
    """Mint a fresh trace: both ids drawn from the caller's seeded RNG."""
    return TraceContext(trace_id=_hex64(rng), span_id=_hex64(rng))


@dataclass
class Span:
    """One traced pipeline stage in simulated time."""

    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def matches(self, **attrs) -> bool:
        return all(self.attrs.get(k) == v for k, v in attrs.items())


class Tracer:
    """Collects spans; bounded so runaway scenarios cannot eat memory."""

    enabled = True

    def __init__(self, clock=None, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0

    def record(self, name: str, start: float, end: float, **attrs) -> Span:
        """Record one completed stage with explicit simulated times."""
        if end < start:
            raise ValueError(
                f"span {name!r} ends ({end}) before it starts ({start})")
        span = Span(name=name, start=float(start), end=float(end),
                    attrs=attrs)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Clock-driven span: times taken from the attached sim clock."""
        if self.clock is None:
            raise ValueError("tracer has no clock; use record() instead")
        start = self.clock.now
        yield
        self.record(name, start, self.clock.now, **attrs)

    # -- queries -----------------------------------------------------------------

    def select(self, name: str | None = None, **attrs) -> list[Span]:
        """Spans with the given name (if any) and matching attributes."""
        return [s for s in self.spans
                if (name is None or s.name == name) and s.matches(**attrs)]

    def trace(self, trace_id: str) -> list[Span]:
        """Every span recorded under ``trace_id``, ordered by start time.

        Spans join a trace by carrying a ``trace`` attribute; this is the
        cross-service view — one request's journey from thin client
        through admission, rendering and streaming, regardless of which
        service recorded each stage.
        """
        spans = [s for s in self.spans if s.attrs.get("trace") == trace_id]
        spans.sort(key=lambda s: (s.start, s.end))
        return spans

    def trace_ids(self) -> list[str]:
        """Every distinct trace id seen, sorted."""
        return sorted({s.attrs["trace"] for s in self.spans
                       if "trace" in s.attrs})

    def chains(self, key: str = "frame", **attrs) -> dict:
        """Group matching spans into per-frame chains, ordered by start.

        Returns ``{frame value: [spans...]}`` for every span carrying the
        ``key`` attribute; the per-frame lists are start-ordered, so a
        complete chain reads ``render → ... → blit`` directly.
        """
        grouped: dict = {}
        for span in self.spans:
            if key not in span.attrs or not span.matches(**attrs):
                continue
            grouped.setdefault(span.attrs[key], []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start, s.end))
        return grouped

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def snapshot(self) -> list[dict]:
        """Plain-data view of every span (the JSON exporter's payload)."""
        return [{"name": s.name, "start": s.start, "end": s.end,
                 "duration": s.duration, "attrs": dict(s.attrs)}
                for s in self.spans]


_NULL_SPAN = Span(name="", start=0.0, end=0.0)


class NullTracer(Tracer):
    """Tracer that stores nothing (the off-switch fast path)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, name: str, start: float, end: float, **attrs) -> Span:
        return _NULL_SPAN

    @contextmanager
    def span(self, name: str, **attrs):
        yield


NULL_TRACER = NullTracer()

__all__ = [
    "Span",
    "TraceContext",
    "new_trace_context",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
