"""Frame tracing: structured spans on the simulated clock.

A :class:`Span` is one named stage with a start and end in *simulated
seconds* (``repro.network.clock`` time) plus free-form attributes; the
streaming and session paths record the paper's pipeline stages —
``render`` → ``encode`` → ``transfer`` → ``composite`` → ``blit`` — with a
``frame`` attribute so a per-frame timeline can be reassembled
(:meth:`Tracer.chains`).

Most instrumented paths compute their timings analytically, so the primary
API is :meth:`Tracer.record` with explicit start/end; :meth:`Tracer.span`
is a clock-driven context manager for code that advances the simulator
while it works.  :class:`NullTracer` is the off-switch: it stores nothing.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Span:
    """One traced pipeline stage in simulated time."""

    name: str
    start: float
    end: float
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def matches(self, **attrs) -> bool:
        return all(self.attrs.get(k) == v for k, v in attrs.items())


class Tracer:
    """Collects spans; bounded so runaway scenarios cannot eat memory."""

    enabled = True

    def __init__(self, clock=None, capacity: int = 100_000) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.clock = clock
        self.capacity = capacity
        self.spans: list[Span] = []
        self.dropped = 0

    def record(self, name: str, start: float, end: float, **attrs) -> Span:
        """Record one completed stage with explicit simulated times."""
        if end < start:
            raise ValueError(
                f"span {name!r} ends ({end}) before it starts ({start})")
        span = Span(name=name, start=float(start), end=float(end),
                    attrs=attrs)
        if len(self.spans) < self.capacity:
            self.spans.append(span)
        else:
            self.dropped += 1
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        """Clock-driven span: times taken from the attached sim clock."""
        if self.clock is None:
            raise ValueError("tracer has no clock; use record() instead")
        start = self.clock.now
        yield
        self.record(name, start, self.clock.now, **attrs)

    # -- queries -----------------------------------------------------------------

    def select(self, name: str | None = None, **attrs) -> list[Span]:
        """Spans with the given name (if any) and matching attributes."""
        return [s for s in self.spans
                if (name is None or s.name == name) and s.matches(**attrs)]

    def chains(self, key: str = "frame", **attrs) -> dict:
        """Group matching spans into per-frame chains, ordered by start.

        Returns ``{frame value: [spans...]}`` for every span carrying the
        ``key`` attribute; the per-frame lists are start-ordered, so a
        complete chain reads ``render → ... → blit`` directly.
        """
        grouped: dict = {}
        for span in self.spans:
            if key not in span.attrs or not span.matches(**attrs):
                continue
            grouped.setdefault(span.attrs[key], []).append(span)
        for spans in grouped.values():
            spans.sort(key=lambda s: (s.start, s.end))
        return grouped

    def clear(self) -> None:
        self.spans.clear()
        self.dropped = 0

    def snapshot(self) -> list[dict]:
        """Plain-data view of every span (the JSON exporter's payload)."""
        return [{"name": s.name, "start": s.start, "end": s.end,
                 "duration": s.duration, "attrs": dict(s.attrs)}
                for s in self.spans]


_NULL_SPAN = Span(name="", start=0.0, end=0.0)


class NullTracer(Tracer):
    """Tracer that stores nothing (the off-switch fast path)."""

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=1)

    def record(self, name: str, start: float, end: float, **attrs) -> Span:
        return _NULL_SPAN

    @contextmanager
    def span(self, name: str, **attrs):
        yield


NULL_TRACER = NullTracer()

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
]
