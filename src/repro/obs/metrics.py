"""Metrics primitives: labelled counters, gauges and histograms.

The data model follows the Prometheus client conventions (a *family* per
metric name, one child instrument per label combination) but is
simulation-aware by omission: nothing here reads the wall clock.  Values
are plain accumulators; code holding the simulated clock decides what
"now" means when it observes a duration.

Instrumented hot paths must cost nothing when observability is off, so
:class:`NullRegistry` hands out shared no-op instruments — ``inc``,
``set`` and ``observe`` are empty single-dispatch calls, and no families,
labels or strings are ever materialised.
"""

from __future__ import annotations

import bisect
import re

from repro.obs.quantiles import estimate_quantile, format_le

#: default latency buckets (simulated seconds), upper bounds
DEFAULT_BUCKETS = (0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                   0.5, 1.0, 2.5, 5.0, 10.0, float("inf"))

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")


class Counter:
    """Monotonically increasing accumulator."""

    kind = "counter"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (amount={amount!r})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A value that can go up and down (utilisation, bandwidth estimate)."""

    kind = "gauge"
    __slots__ = ("_value",)

    def __init__(self) -> None:
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution of observations (count, sum, buckets)."""

    kind = "histogram"
    __slots__ = ("buckets", "_bucket_counts", "_sum", "_count")

    def __init__(self, buckets: tuple = DEFAULT_BUCKETS) -> None:
        bounds = [float(b) for b in buckets]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly ascending")
        if not bounds or bounds[-1] != float("inf"):
            bounds.append(float("inf"))
        self.buckets = tuple(bounds)
        self._bucket_counts = [0] * len(self.buckets)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        self._bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        self._sum += value
        self._count += 1

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(le, cumulative count)`` pairs."""
        out, running = [], 0
        for bound, n in zip(self.buckets, self._bucket_counts):
            running += n
            out.append((bound, running))
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from the cumulative buckets."""
        return estimate_quantile(self.cumulative_buckets(), q)


class MetricFamily:
    """All children of one metric name, keyed by their label values."""

    __slots__ = ("name", "kind", "help", "buckets", "children")

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: tuple | None = None) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = buckets
        self.children: dict[tuple, object] = {}

    def child(self, labels: tuple) -> object:
        inst = self.children.get(labels)
        if inst is None:
            if self.kind == "counter":
                inst = Counter()
            elif self.kind == "gauge":
                inst = Gauge()
            else:
                inst = Histogram(self.buckets or DEFAULT_BUCKETS)
            self.children[labels] = inst
        return inst


class MetricsRegistry:
    """Factory and store for metric families.

    Instruments are created on first use and cached, so call sites can be
    written inline::

        registry.counter("rave_scheduler_placements_total",
                         mode="single").inc()

    Label values are passed as keyword arguments; a family's kind is fixed
    by its first use and a later request under a different kind raises.
    """

    def __init__(self) -> None:
        self._families: dict[str, MetricFamily] = {}

    # -- instrument factories ----------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._child(name, "counter", help, None, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._child(name, "gauge", help, None, labels)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple | None = None, **labels) -> Histogram:
        return self._child(name, "histogram", help, buckets, labels)

    def _child(self, name, kind, help, buckets, labels):
        family = self._families.get(name)
        if family is None:
            if not _NAME_RE.match(name):
                raise ValueError(f"invalid metric name {name!r}")
            family = MetricFamily(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {family.kind}")
        return family.child(tuple(sorted(labels.items())))

    # -- introspection -----------------------------------------------------------

    def families(self) -> list[MetricFamily]:
        return [self._families[n] for n in sorted(self._families)]

    def value(self, name: str, **labels) -> float:
        """Test/debug helper: a child's value (histograms: their count)."""
        family = self._families[name]
        inst = family.children[tuple(sorted(labels.items()))]
        return inst.count if family.kind == "histogram" else inst.value

    def has(self, name: str) -> bool:
        return name in self._families

    def stats(self) -> dict:
        """Registry-level metadata: family, series and sample counts.

        ``samples`` counts recorded observations — one per counter/gauge
        series plus every histogram observation — so federated snapshots
        can report how much telemetry each producer contributed.
        """
        families = self.families()
        series = sum(len(f.children) for f in families)
        samples = 0
        for family in families:
            for inst in family.children.values():
                samples += inst.count if family.kind == "histogram" else 1
        return {"families": len(families), "series": series,
                "samples": samples}

    def snapshot(self) -> dict:
        """Plain-data view of every family (the JSON exporter's payload)."""
        out: dict[str, dict] = {}
        for family in self.families():
            series = []
            for labels, inst in sorted(family.children.items()):
                entry: dict = {"labels": dict(labels)}
                if family.kind == "histogram":
                    entry.update(
                        count=inst.count, sum=inst.sum, mean=inst.mean,
                        buckets={format_le(le): n
                                 for le, n in inst.cumulative_buckets()})
                else:
                    entry["value"] = inst.value
                series.append(entry)
            out[family.name] = {"kind": family.kind, "help": family.help,
                                "series": series}
        return out


class _NoopCounter:
    """Shared do-nothing counter (the off-switch fast path)."""

    kind = "counter"
    __slots__ = ()
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        pass


class _NoopGauge:
    """Shared do-nothing gauge."""

    kind = "gauge"
    __slots__ = ()
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass


class _NoopHistogram:
    """Shared do-nothing histogram."""

    kind = "histogram"
    __slots__ = ()
    count = 0
    sum = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        pass

    def cumulative_buckets(self) -> list:
        return []

    def quantile(self, q: float) -> float:
        return 0.0


_NOOP_COUNTER = _NoopCounter()
_NOOP_GAUGE = _NoopGauge()
_NOOP_HISTOGRAM = _NoopHistogram()


class NullRegistry(MetricsRegistry):
    """Registry that records nothing and allocates nothing per call."""

    def __init__(self) -> None:
        super().__init__()

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return _NOOP_COUNTER

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return _NOOP_GAUGE

    def histogram(self, name: str, help: str = "",
                  buckets: tuple | None = None, **labels) -> Histogram:
        return _NOOP_HISTOGRAM


NULL_REGISTRY = NullRegistry()

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
]
